//! Quickstart: run a two-query contract-driven workload end to end.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use caqe::contract::Contract;
use caqe::core::{CaqeStrategy, ExecConfig, ExecutionStrategy, QuerySpec, Workload};
use caqe::data::{Distribution, TableGenerator};
use caqe::operators::MappingSet;
use caqe::types::DimMask;

fn main() {
    // 1. Two base tables, 2 preference attributes each, join selectivity 5%.
    let gen = TableGenerator::new(2_000, 2, Distribution::Independent)
        .with_selectivities(&[0.05])
        .with_seed(42);
    let hotels = gen.generate("Hotels");
    let tours = gen.generate("Tours");

    // 2. Mapping functions produce a 4-dimensional output space; each
    //    output attribute mixes one hotel and one tour attribute
    //    (e.g. "total price", "combined inconvenience", …).
    let mapping = MappingSet::mixed(2, 2, 4);

    // 3. Two skyline-over-join queries with very different contracts:
    //    an interactive user needing answers within 3 virtual seconds, and
    //    a patient report generator happy with logarithmic decay.
    let workload = Workload::new(vec![
        QuerySpec {
            join_col: 0,
            mapping: mapping.clone(),
            pref: DimMask::from_dims([0, 1]),
            priority: 0.9,
            contract: Contract::Deadline { t_hard: 3.0 },
        },
        QuerySpec {
            join_col: 0,
            mapping,
            pref: DimMask::from_dims([1, 2, 3]),
            priority: 0.4,
            contract: Contract::LogDecay,
        },
    ]);

    // 4. Run CAQE.
    let exec = ExecConfig::default().with_target_cells(2_000, 10);
    let outcome = CaqeStrategy.run(&hotels, &tours, &workload, &exec);

    println!("strategy            : {}", outcome.strategy);
    println!("virtual time        : {:.2}s", outcome.virtual_seconds);
    println!("join results        : {}", outcome.stats.join_results);
    println!("skyline comparisons : {}", outcome.stats.dom_comparisons);
    println!("workload satisfaction: {:.3}", outcome.avg_satisfaction());
    println!();
    for q in &outcome.per_query {
        println!(
            "{}: {} results, first at {:.2}s, last at {:.2}s, pScore {:.1}, satisfaction {:.3}",
            q.query,
            q.count(),
            q.first_emission().unwrap_or(f64::NAN),
            q.last_emission().unwrap_or(f64::NAN),
            q.p_score,
            q.satisfaction,
        );
    }
}
