//! The internet-aggregator scenario of the paper's introduction (Example 2):
//! three users search Hotels ⋈ Tours packages with conflicting contracts.
//!
//! * **Q1 — John Smith** wants choices within his 10–15 minute break
//!   (a hard deadline contract) and cares about distance and rating.
//! * **Q2 — Jane Doe** wants attractive deals *as soon as they are
//!   identified* (logarithmic decay) and cares about price, compromising on
//!   distance.
//! * **Q3 — ACME travel** compiles hourly reports (cardinality quota:
//!   a steady tenth of the report every interval) and optimizes ratings,
//!   sights and cost.
//!
//! ```text
//! cargo run --release --example travel_planner
//! ```

use caqe::baselines::all_strategies;
use caqe::contract::Contract;
use caqe::core::{ExecConfig, QuerySpec, Workload};
use caqe::data::{Distribution, TableGenerator};
use caqe::operators::{MappingFn, MappingSet};
use caqe::types::DimMask;

fn main() {
    // Hotels(price, distance, neg-rating) and Tours(cost, travel-time,
    // neg-sights) — smaller is better on every attribute (§2.1).
    let gen = TableGenerator::new(3_000, 3, Distribution::Independent)
        .with_selectivities(&[0.02])
        .with_seed(7);
    let hotels = gen.generate("Hotels");
    let tours = gen.generate("Tours");

    // A shared output space in the spirit of Example 5:
    //   x1 = total price     = 10·hotel.price + tour.cost
    //   x2 = inconvenience   = hotel.distance + 2·tour.travel_time
    //   x3 = neg. experience = hotel.neg_rating + tour.neg_sights
    //   x4 = value-for-money = price blended with experience
    let mapping = MappingSet::new(vec![
        MappingFn::new(vec![10.0, 0.0, 0.0], vec![1.0, 0.0, 0.0], 0.0),
        MappingFn::new(vec![0.0, 1.0, 0.0], vec![0.0, 2.0, 0.0], 0.0),
        MappingFn::new(vec![0.0, 0.0, 1.0], vec![0.0, 0.0, 1.0], 0.0),
        MappingFn::new(vec![2.0, 0.0, 0.5], vec![0.2, 0.0, 0.5], 0.0),
    ]);

    let workload = Workload::new(vec![
        // John: distance + rating, hard 12-virtual-second deadline.
        QuerySpec {
            join_col: 0,
            mapping: mapping.clone(),
            pref: DimMask::from_dims([1, 2]),
            priority: 0.9,
            contract: Contract::Deadline { t_hard: 12.0 },
        },
        // Jane: price + value, alert-me-now decay.
        QuerySpec {
            join_col: 0,
            mapping: mapping.clone(),
            pref: DimMask::from_dims([0, 3]),
            priority: 0.6,
            contract: Contract::LogDecay,
        },
        // ACME: experience + price + value, steady reporting quota.
        QuerySpec {
            join_col: 0,
            mapping,
            pref: DimMask::from_dims([0, 2, 3]),
            priority: 0.3,
            contract: Contract::Quota {
                frac: 0.1,
                interval: 5.0,
            },
        },
    ]);

    let exec = ExecConfig::default().with_target_cells(3_000, 12);
    println!("Travel planner: Hotels ⋈ Tours, 3 users, 5 systems\n");
    println!(
        "{:<9} {:>8} {:>12} {:>12} {:>10}   per-user satisfaction",
        "system", "avg-sat", "joins", "dom-cmps", "virt-sec"
    );
    for strategy in all_strategies() {
        let o = strategy.run(&hotels, &tours, &workload, &exec);
        let per: Vec<String> = o
            .per_query
            .iter()
            .map(|q| format!("{}={:.2}", q.query, q.satisfaction))
            .collect();
        println!(
            "{:<9} {:>8.3} {:>12} {:>12} {:>10.2}   {}",
            o.strategy,
            o.avg_satisfaction(),
            o.stats.join_results,
            o.stats.dom_comparisons,
            o.virtual_seconds,
            per.join(" ")
        );
    }
}
