//! The stock-ticker scenario of the paper's introduction (Example 1):
//! one analytical backend serves watchers with wildly different
//! progressiveness expectations over the same Stocks ⋈ Signals join.
//!
//! * real-time watchers: refresh within a tight deadline;
//! * trend analysts: steady periodic delivery (cardinality quota);
//! * recommenders: batch consumers tolerating decay.
//!
//! The example sweeps the deadline parameter to show how CAQE's advantage
//! over the blocking baseline grows as contracts tighten — the essence of
//! contract-driven processing.
//!
//! ```text
//! cargo run --release --example stock_ticker
//! ```

use caqe::baselines::JfslStrategy;
use caqe::contract::Contract;
use caqe::core::{CaqeStrategy, ExecConfig, ExecutionStrategy, QuerySpec, Workload};
use caqe::data::{Distribution, TableGenerator};
use caqe::operators::MappingSet;
use caqe::types::DimMask;

fn build_workload(deadline: f64) -> Workload {
    let mapping = MappingSet::mixed(3, 3, 5);
    Workload::new(vec![
        // Real-time watcher: volatility × momentum, hard deadline.
        QuerySpec {
            join_col: 0,
            mapping: mapping.clone(),
            pref: DimMask::from_dims([0, 1]),
            priority: 1.0,
            contract: Contract::Deadline { t_hard: deadline },
        },
        // Another watcher on different dimensions, same deadline.
        QuerySpec {
            join_col: 0,
            mapping: mapping.clone(),
            pref: DimMask::from_dims([2, 3]),
            priority: 0.9,
            contract: Contract::Deadline { t_hard: deadline },
        },
        // Trend analyst: steady 10%-per-interval quota.
        QuerySpec {
            join_col: 0,
            mapping: mapping.clone(),
            pref: DimMask::from_dims([0, 2, 4]),
            priority: 0.5,
            contract: Contract::Quota {
                frac: 0.1,
                interval: deadline / 4.0,
            },
        },
        // Portfolio recommender: tolerant log decay over 4 dimensions.
        QuerySpec {
            join_col: 0,
            mapping,
            pref: DimMask::from_dims([1, 2, 3, 4]),
            priority: 0.2,
            contract: Contract::LogDecay,
        },
    ])
}

fn main() {
    let gen = TableGenerator::new(2_500, 3, Distribution::Independent)
        .with_selectivities(&[0.02])
        .with_seed(99);
    let stocks = gen.generate("Stocks");
    let signals = gen.generate("Signals");
    let exec = ExecConfig::default().with_target_cells(2_500, 12);

    // Calibrate deadlines against the blocking baseline's total runtime.
    let probe = JfslStrategy.run(&stocks, &signals, &build_workload(1.0), &exec);
    let total = probe.virtual_seconds;
    println!("Stocks ⋈ Signals (independent attributes)");
    println!("blocking baseline total runtime: {total:.1} virtual seconds\n");
    println!(
        "{:<22} {:>10} {:>10} {:>12}",
        "deadline (frac of JFSL)", "CAQE", "JFSL", "CAQE factor"
    );
    for fraction in [0.8, 0.4, 0.2, 0.1, 0.05] {
        let w = build_workload(total * fraction);
        let caqe = CaqeStrategy.run(&stocks, &signals, &w, &exec);
        let jfsl = JfslStrategy.run(&stocks, &signals, &w, &exec);
        let (a, b) = (caqe.avg_satisfaction(), jfsl.avg_satisfaction());
        println!(
            "{:<22} {:>10.3} {:>10.3} {:>11.1}x",
            format!("{:.0}% ({:.1}s)", fraction * 100.0, total * fraction),
            a,
            b,
            a / b.max(1e-9)
        );
    }
}
