//! A tour of the shared min-max-cuboid plan (Figures 5–6 of the paper),
//! built for the running workload of Figure 1.
//!
//! ```text
//! cargo run --example cuboid_tour
//! ```

use caqe::cuboid::{q_serve, skycube_subspaces, MinMaxCuboid, SharedSkylinePlan};
use caqe::types::{DimMask, QueryId, SimClock, Stats};

fn main() {
    // Figure 1: four queries over skyline dimensions d1..d4.
    let prefs = vec![
        DimMask::from_dims([0, 1]),    // Q1: {d1, d2}
        DimMask::from_dims([0, 1, 2]), // Q2: {d1, d2, d3}
        DimMask::from_dims([1, 2]),    // Q3: {d2, d3}
        DimMask::from_dims([1, 2, 3]), // Q4: {d2, d3, d4}
    ];

    println!("Workload (Figure 1):");
    for (i, p) in prefs.iter().enumerate() {
        println!("  Q{}: skyline over {p}", i + 1);
    }

    // Figure 5: the full skycube would maintain 2^4 − 1 = 15 subspaces.
    let skycube = skycube_subspaces(&prefs);
    println!("\nFull skycube (Figure 5): {} subspaces", skycube.len());

    // Figure 6: the min-max cuboid keeps only the useful ones.
    let cuboid = MinMaxCuboid::build(&prefs);
    println!(
        "Min-max cuboid (Figure 6): {} subspaces ({} pruned)\n",
        cuboid.len(),
        skycube.len() - cuboid.len()
    );
    for (level, subs) in cuboid.levels().iter().enumerate() {
        let rendered: Vec<String> = subs
            .iter()
            .map(|&u| {
                let serves = q_serve(u, &prefs);
                format!("{u}→{serves}")
            })
            .collect();
        println!("  level {level}: {}", rendered.join("   "));
    }

    // Insert the hotel-style tuples of the paper's Example 16 region corners
    // and watch which query skylines they land in.
    println!("\nShared skyline plan in action:");
    let mut plan = SharedSkylinePlan::new(cuboid, true);
    let mut clock = SimClock::default();
    let mut stats = Stats::new();
    let tuples: [(&str, [f64; 4]); 3] = [
        ("a", [6.0, 8.5, 8.0, 4.0]),
        ("b", [8.0, 6.0, 6.5, 5.0]),
        ("c", [7.0, 5.0, 4.0, 1.0]),
    ];
    for (tag, (name, vals)) in tuples.iter().enumerate() {
        let ins = plan.insert(tag as u64, vals, &mut clock, &mut stats);
        let in_queries: Vec<String> = ins
            .in_query_sky
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(q, _)| format!("Q{}", q + 1))
            .collect();
        println!(
            "  insert {name} {vals:?} → in skylines of {}",
            in_queries.join(",")
        );
        for (q, evicted) in &ins.query_evictions {
            println!("      evicted tags {evicted:?} from {q}");
        }
    }
    println!(
        "\nComparisons spent: {} (shared across all four queries)",
        stats.dom_comparisons
    );
    for q in 0..4 {
        let qid = QueryId(q as u16);
        println!(
            "  final skyline of Q{}: tags {:?}",
            q + 1,
            plan.query_skyline_tags(qid)
        );
    }
}
