//! A gallery of progressiveness contracts (Figures 2–3 and Table 2 of the
//! paper), rendered as ASCII curves of utility over emission time.
//!
//! ```text
//! cargo run --example contract_gallery
//! ```

use caqe::contract::{Contract, EmissionCtx};

/// Renders a utility curve over the given time grid as a bar per sample.
fn plot(name: &str, contract: &Contract, t_max: f64) {
    println!("{name}");
    let steps = 24;
    for i in 0..steps {
        let ts = t_max * (i as f64 + 0.5) / steps as f64;
        // A steady reporter: one result per (t_max/steps) tick of the grid.
        let u = contract.utility(&EmissionCtx::new(ts, i as u64 + 1, steps as f64));
        let width = (u.max(0.0) * 40.0).round() as usize;
        println!("  t={ts:>6.1}s |{:<40}| {u:.2}", "█".repeat(width));
    }
    println!();
}

fn main() {
    // Figure 2.a — hard 30-minute deadline (Example 7).
    plot(
        "C1 — hard deadline at t=30 (Figure 2.a / Equation 1)",
        &Contract::Deadline { t_hard: 30.0 },
        60.0,
    );

    // Figure 2.b — piecewise decay (Example 8).
    plot(
        "piecewise — 1 until t=5, 0.8 until t=30, then worthless (Figure 2.b)",
        &Contract::Piecewise {
            steps: vec![(5.0, 1.0), (30.0, 0.8)],
            tail: 0.0,
        },
        60.0,
    );

    // Table 2 C2 — logarithmic decay.
    plot(
        "C2 — logarithmic decay 1/log10(ts)",
        &Contract::LogDecay,
        1000.0,
    );

    // Table 2 C3 — soft deadline with hyperbolic decay.
    plot(
        "C3 — soft deadline at t=10, then 1/(ts − 10)",
        &Contract::SoftDeadline { t_soft: 10.0 },
        40.0,
    );

    // Figure 3.a — cardinality quota (Example 9): 10% of results per
    // interval. The steady reporter above meets it exactly, so to show the
    // penalty we simulate a *late* reporter.
    println!("C4 — 10% of results due per 10s interval, late reporter (Figure 3.a)");
    let c4 = Contract::Quota {
        frac: 0.1,
        interval: 10.0,
    };
    for (seq, ts) in [(1u64, 5.0), (2, 25.0), (3, 50.0), (4, 100.0), (5, 400.0)] {
        let u = c4.utility(&EmissionCtx::new(ts, seq, 10.0));
        println!("  result #{seq} at t={ts:>5.0}s → utility {u:.2}");
    }
    println!();

    // Example 11 — hybrid contract as a product of two specifications.
    println!("hybrid — quota × deadline (Example 11 / Equation 5)");
    let hybrid = Contract::Product(
        Box::new(Contract::Quota {
            frac: 0.1,
            interval: 60.0,
        }),
        Box::new(Contract::Deadline { t_hard: 1800.0 }),
    );
    for ts in [30.0, 600.0, 1799.0, 1801.0] {
        let u = hybrid.utility(&EmissionCtx::new(ts, 1, 100.0));
        println!("  result #1 at t={ts:>6.0}s → utility {u:.2}");
    }
}
