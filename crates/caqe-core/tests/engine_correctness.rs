//! End-to-end correctness of the CAQE engine: whatever the scheduling
//! policy, every query must receive exactly its true skyline-over-join
//! result set, and no emitted result may ever be invalidated.

use caqe_contract::Contract;
use caqe_core::{
    run_engine, CaqeStrategy, EngineConfig, ExecConfig, ExecutionStrategy, QuerySpec, Workload,
};
use caqe_data::{Distribution, TableGenerator};
use caqe_operators::{hash_join_project, skyline_reference, JoinSpec, MappingSet};
use caqe_types::{DimMask, SimClock, Stats};
use std::collections::BTreeSet;

fn tables(
    n: usize,
    dist: Distribution,
    sigma: f64,
    seed: u64,
) -> (caqe_data::Table, caqe_data::Table) {
    let gen = TableGenerator::new(n, 2, dist)
        .with_selectivities(&[sigma])
        .with_seed(seed);
    (gen.generate("R"), gen.generate("T"))
}

fn figure1_workload(contract: Contract) -> Workload {
    // DVA-safe mixed mappings (Example 5 style) — see MappingSet::mixed.
    let mapping = MappingSet::mixed(2, 2, 4);
    let prefs = [
        DimMask::from_dims([0, 1]),
        DimMask::from_dims([0, 1, 2]),
        DimMask::from_dims([1, 2]),
        DimMask::from_dims([1, 2, 3]),
    ];
    Workload::new(
        prefs
            .iter()
            .map(|&pref| QuerySpec {
                join_col: 0,
                mapping: mapping.clone(),
                pref,
                priority: 0.8,
                contract: contract.clone(),
            })
            .collect(),
    )
}

/// The ground truth: join everything, then per-query reference skyline.
fn reference_results(
    r: &caqe_data::Table,
    t: &caqe_data::Table,
    workload: &Workload,
) -> Vec<BTreeSet<(u64, u64)>> {
    let mut clock = SimClock::default();
    let mut stats = Stats::new();
    workload
        .queries()
        .iter()
        .map(|spec| {
            let join = hash_join_project(
                r.records(),
                t.records(),
                JoinSpec::on_column(spec.join_col),
                &spec.mapping,
                &mut clock,
                &mut stats,
            );
            let points: Vec<Vec<f64>> = join.iter().map(|o| o.vals.clone()).collect();
            skyline_reference(&points, spec.pref)
                .into_iter()
                .map(|i| (join[i].rid, join[i].tid))
                .collect()
        })
        .collect()
}

fn assert_engine_matches_reference(engine_cfg: &EngineConfig, dist: Distribution, seed: u64) {
    let (r, t) = tables(250, dist, 0.05, seed);
    let w = figure1_workload(Contract::LogDecay);
    let exec = ExecConfig::default().with_target_cells(250, 8);
    let expect = reference_results(&r, &t, &w);
    let outcome = run_engine("engine", &r, &t, &w, &exec, engine_cfg, 0);
    for (qi, want) in expect.iter().enumerate() {
        let got: BTreeSet<(u64, u64)> = outcome.per_query[qi].results.iter().copied().collect();
        assert_eq!(
            &got,
            want,
            "query {} result mismatch under {:?}/{:?} (got {} want {})",
            qi + 1,
            engine_cfg.policy,
            dist,
            got.len(),
            want.len()
        );
        // No duplicates were emitted.
        assert_eq!(got.len(), outcome.per_query[qi].results.len());
    }
}

#[test]
fn caqe_results_match_reference_independent() {
    assert_engine_matches_reference(&EngineConfig::caqe(), Distribution::Independent, 1);
}

#[test]
fn caqe_results_match_reference_correlated() {
    assert_engine_matches_reference(&EngineConfig::caqe(), Distribution::Correlated, 2);
}

#[test]
fn caqe_results_match_reference_anticorrelated() {
    assert_engine_matches_reference(&EngineConfig::caqe(), Distribution::Anticorrelated, 3);
}

#[test]
fn sjfsl_results_match_reference() {
    assert_engine_matches_reference(&EngineConfig::s_jfsl(), Distribution::Independent, 4);
    assert_engine_matches_reference(&EngineConfig::s_jfsl(), Distribution::Anticorrelated, 5);
}

#[test]
fn progxe_core_results_match_reference() {
    assert_engine_matches_reference(&EngineConfig::progxe_core(), Distribution::Independent, 6);
}

#[test]
fn emissions_are_timestamped_monotonically() {
    let (r, t) = tables(300, Distribution::Independent, 0.05, 7);
    let w = figure1_workload(Contract::Deadline { t_hard: 5.0 });
    let exec = ExecConfig::default().with_target_cells(300, 8);
    let outcome = CaqeStrategy.run(&r, &t, &w, &exec);
    for q in &outcome.per_query {
        for pair in q.emissions.windows(2) {
            assert!(pair[0].0 <= pair[1].0, "timestamps went backwards");
        }
        assert_eq!(q.emissions.len(), q.results.len());
    }
    assert!(outcome.virtual_seconds > 0.0);
    assert!(outcome.stats.join_results > 0);
    assert!(outcome.stats.tuples_emitted as usize == outcome.total_results());
}

#[test]
fn emitted_results_are_never_dominated_later() {
    // Progressive-safety invariant: an emitted tuple must be in the final
    // reference skyline — emission is final, never retracted.
    let (r, t) = tables(200, Distribution::Anticorrelated, 0.1, 8);
    let w = figure1_workload(Contract::LogDecay);
    let exec = ExecConfig::default().with_target_cells(200, 6);
    let expect = reference_results(&r, &t, &w);
    let outcome = CaqeStrategy.run(&r, &t, &w, &exec);
    for (qi, q) in outcome.per_query.iter().enumerate() {
        for pair in &q.results {
            assert!(
                expect[qi].contains(pair),
                "emitted non-final tuple {pair:?} for query {}",
                qi + 1
            );
        }
    }
}

#[test]
fn single_query_workload_works() {
    let (r, t) = tables(200, Distribution::Independent, 0.1, 9);
    let mapping = MappingSet::mixed(2, 2, 4);
    let w = Workload::new(vec![QuerySpec {
        join_col: 0,
        mapping,
        pref: DimMask::from_dims([0, 2]),
        priority: 1.0,
        contract: Contract::LogDecay,
    }]);
    let exec = ExecConfig::default().with_target_cells(200, 6);
    let expect = reference_results(&r, &t, &w);
    let outcome = CaqeStrategy.run(&r, &t, &w, &exec);
    let got: BTreeSet<(u64, u64)> = outcome.per_query[0].results.iter().copied().collect();
    assert_eq!(got, expect[0]);
}

#[test]
fn multi_join_group_workload() {
    // Queries over two different join columns: the engine must share within
    // groups yet schedule globally.
    let gen = TableGenerator::new(200, 2, Distribution::Independent)
        .with_selectivities(&[0.1, 0.05])
        .with_seed(10);
    let r = gen.generate("R");
    let t = gen.generate("T");
    let mapping = MappingSet::mixed(2, 2, 4);
    let w = Workload::new(vec![
        QuerySpec {
            join_col: 0,
            mapping: mapping.clone(),
            pref: DimMask::from_dims([0, 1]),
            priority: 0.9,
            contract: Contract::LogDecay,
        },
        QuerySpec {
            join_col: 1,
            mapping: mapping.clone(),
            pref: DimMask::from_dims([1, 2]),
            priority: 0.5,
            contract: Contract::Deadline { t_hard: 10.0 },
        },
        QuerySpec {
            join_col: 0,
            mapping,
            pref: DimMask::from_dims([2, 3]),
            priority: 0.2,
            contract: Contract::LogDecay,
        },
    ]);
    let exec = ExecConfig::default().with_target_cells(200, 6);
    let expect = reference_results(&r, &t, &w);
    let outcome = CaqeStrategy.run(&r, &t, &w, &exec);
    for (qi, want) in expect.iter().enumerate() {
        let got: BTreeSet<(u64, u64)> = outcome.per_query[qi].results.iter().copied().collect();
        assert_eq!(&got, want, "query {} mismatch", qi + 1);
    }
}

#[test]
fn clock_offset_shifts_timestamps() {
    let (r, t) = tables(150, Distribution::Independent, 0.1, 11);
    let w = figure1_workload(Contract::LogDecay);
    let exec = ExecConfig::default().with_target_cells(150, 4);
    let base = run_engine("x", &r, &t, &w, &exec, &EngineConfig::caqe(), 0);
    let offset_ticks = 1_000_000;
    let shifted = run_engine("x", &r, &t, &w, &exec, &EngineConfig::caqe(), offset_ticks);
    let dt = offset_ticks as f64 / exec.cost_model.ticks_per_second;
    assert!(shifted.virtual_seconds > base.virtual_seconds);
    let a = base.per_query[0].emissions.first().unwrap().0;
    let b = shifted.per_query[0].emissions.first().unwrap().0;
    assert!((b - a - dt).abs() < 1e-6);
}

#[test]
fn concat_mapping_with_ties_needs_dva_off() {
    // Pass-through mappings create tied points on R-only subspaces —
    // exactly the DVA violation the paper assumes away. With the Theorem 1
    // shortcuts disabled the engine must still be exact.
    let (r, t) = tables(150, Distribution::Independent, 0.1, 12);
    let mapping = MappingSet::concat(2, 2);
    let w = Workload::new(
        [
            DimMask::from_dims([0, 1]),
            DimMask::from_dims([0, 1, 2]),
            DimMask::from_dims([1, 2, 3]),
        ]
        .iter()
        .map(|&pref| QuerySpec {
            join_col: 0,
            mapping: mapping.clone(),
            pref,
            priority: 0.5,
            contract: Contract::LogDecay,
        })
        .collect(),
    );
    let mut exec = ExecConfig::default().with_target_cells(150, 4);
    exec.assume_dva = false;
    let expect = reference_results(&r, &t, &w);
    let outcome = run_engine("caqe", &r, &t, &w, &exec, &EngineConfig::caqe(), 0);
    for (qi, want) in expect.iter().enumerate() {
        let got: BTreeSet<(u64, u64)> = outcome.per_query[qi].results.iter().copied().collect();
        assert_eq!(&got, want, "query {} mismatch under ties", qi + 1);
    }
}
