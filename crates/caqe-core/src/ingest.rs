//! Input preparation: fault-plan corruption followed by ingestion
//! validation (DESIGN.md §13).
//!
//! Every execution strategy funnels its base tables through
//! [`prepare_inputs`] before touching them, so corrupt input is handled
//! identically — and deterministically — across CAQE and the baselines.

use crate::config::ExecConfig;
use caqe_data::{validate_table, Table, ValidationReport};
use caqe_trace::{TraceEvent, TraceSink};
use caqe_types::{EngineError, Ticks};

/// The outcome of preparing one pair of base tables.
#[derive(Debug, Clone)]
pub struct PreparedInputs {
    /// Replacement R table, or `None` when the original is usable as-is
    /// (clean input, no corruption fault) — the golden-path fast case.
    pub r: Option<Table>,
    /// Replacement T table, likewise.
    pub t: Option<Table>,
    /// Validation findings for R.
    pub r_report: ValidationReport,
    /// Validation findings for T.
    pub t_report: ValidationReport,
}

impl PreparedInputs {
    /// The R table to execute against.
    pub fn r_table<'a>(&'a self, original: &'a Table) -> &'a Table {
        self.r.as_ref().unwrap_or(original)
    }

    /// The T table to execute against.
    pub fn t_table<'a>(&'a self, original: &'a Table) -> &'a Table {
        self.t.as_ref().unwrap_or(original)
    }

    /// Records quarantined plus values clamped, across both tables.
    pub fn quarantined(&self) -> u64 {
        self.r_report.quarantined + self.t_report.quarantined
    }

    /// Values clamped across both tables.
    pub fn clamped(&self) -> u64 {
        self.r_report.clamped + self.t_report.clamped
    }
}

fn prepare_one<S: TraceSink>(
    table: &Table,
    exec: &ExecConfig,
    tick: Ticks,
    sink: &mut S,
) -> Result<(Option<Table>, ValidationReport), EngineError> {
    // Fault-plan corruption is applied *before* validation: the chaos
    // harness models a broken upstream producer, and validation is the
    // engine's defense against it.
    let corrupted = if exec.faults.corrupt_rate > 0.0 {
        Some(exec.faults.corrupt_table(table))
    } else {
        None
    };
    let validated = validate_table(corrupted.as_ref().unwrap_or(table), exec.validation)?;
    if S::ENABLED && (exec.faults.is_active() || !validated.report.is_clean()) {
        sink.record(TraceEvent::IngestAudit {
            tick,
            table: table.name().to_string(),
            policy: exec.validation.name(),
            quarantined: validated.report.quarantined,
            clamped: validated.report.clamped,
        });
    }
    // The cleaned table wins; otherwise keep the corrupted copy (it passed
    // validation untouched); otherwise the original is usable as-is.
    Ok((validated.table.or(corrupted), validated.report))
}

/// Applies the fault plan's ingestion corruption (if any) and validates
/// both tables under `exec.validation`. Emits one `IngestAudit` trace
/// event per table when a fault plan is active or violations were found —
/// never on the clean no-fault path, preserving golden traces.
pub fn prepare_inputs<S: TraceSink>(
    r: &Table,
    t: &Table,
    exec: &ExecConfig,
    tick: Ticks,
    sink: &mut S,
) -> Result<PreparedInputs, EngineError> {
    let (r_new, r_report) = prepare_one(r, exec, tick, sink)?;
    let (t_new, t_report) = prepare_one(t, exec, tick, sink)?;
    Ok(PreparedInputs {
        r: r_new,
        t: t_new,
        r_report,
        t_report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use caqe_data::{Record, ValidationPolicy};
    use caqe_faults::FaultPlan;
    use caqe_trace::{NoopSink, RecordingSink};

    fn clean_tables() -> (Table, Table) {
        let recs = |n: u64| {
            (0..n)
                .map(|i| Record::new(i, vec![1.0 + i as f64, 2.0], vec![(i % 3) as u32]))
                .collect::<Vec<_>>()
        };
        (
            Table::new("R", 2, 1, recs(20)),
            Table::new("T", 2, 1, recs(20)),
        )
    }

    #[test]
    fn clean_no_fault_path_is_a_no_op() {
        let (r, t) = clean_tables();
        let mut sink = RecordingSink::default();
        let prep =
            prepare_inputs(&r, &t, &ExecConfig::default(), 0, &mut sink).expect("clean input");
        assert!(prep.r.is_none() && prep.t.is_none());
        assert!(sink.events().is_empty(), "no events on the golden path");
        assert!(std::ptr::eq(prep.r_table(&r), &r));
    }

    #[test]
    fn corruption_with_reject_is_a_typed_error() {
        let (r, t) = clean_tables();
        let exec = ExecConfig::default().with_faults(FaultPlan::seeded(3).with_corruption(0.5));
        let err = prepare_inputs(&r, &t, &exec, 0, &mut NoopSink).expect_err("must reject");
        assert!(matches!(err, EngineError::CorruptInput { .. }));
    }

    #[test]
    fn corruption_with_quarantine_cleans_and_audits() {
        let (r, t) = clean_tables();
        let exec = ExecConfig::default()
            .with_faults(FaultPlan::seeded(3).with_corruption(0.5))
            .with_validation(ValidationPolicy::Quarantine);
        let mut sink = RecordingSink::default();
        let prep = prepare_inputs(&r, &t, &exec, 7, &mut sink).expect("quarantine never fails");
        assert!(prep.quarantined() > 0);
        let audits: Vec<_> = sink
            .events()
            .iter()
            .filter(|e| matches!(e, TraceEvent::IngestAudit { .. }))
            .collect();
        assert_eq!(audits.len(), 2);
        // Every surviving record is finite with unique ids.
        for table in [prep.r_table(&r), prep.t_table(&t)] {
            assert!(table
                .records()
                .iter()
                .all(|rec| rec.vals.iter().all(|v| v.is_finite())));
        }
    }
}
