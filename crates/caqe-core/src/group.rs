//! Join groups: queries that share a join condition and mapping functions.
//!
//! The paper's shared plan (§4.1) targets queries that are "identical except
//! for their skyline dimensions". Real workloads (Figure 1) mix join
//! conditions (`JC_1`, `JC_2`), so the engine partitions the workload into
//! *join groups*: within a group the join, projection and subspace skylines
//! are fully shared through one min-max cuboid; across groups the optimizer
//! still schedules regions globally by CSM.

use crate::config::ExecConfig;
use crate::workload::Workload;
use caqe_cuboid::{MinMaxCuboid, SharedSkylinePlan};
use caqe_operators::MappingSet;
use caqe_parallel::Threads;
use caqe_partition::Partitioning;
use caqe_regions::depgraph::Edge;
use caqe_regions::{build_regions, DependencyGraph, RegionBuildInput, RegionSet};
use caqe_trace::{SpanKind, TraceBuffer, TraceEvent, TraceSink};
use caqe_types::{DimMask, PointStore, QueryId, SimClock, Stats};

/// Provenance of one materialized join tuple living in a group's arena.
/// The tuple's output-space point lives at the same index in the group's
/// flat [`PointStore`] ([`JoinGroup::points`]).
#[derive(Debug, Clone, Copy)]
pub struct ArenaTuple {
    /// Contributing R record id.
    pub rid: u64,
    /// Contributing T record id.
    pub tid: u64,
    /// The region whose processing materialized this tuple.
    pub origin: caqe_types::RegionId,
}

/// A join group with all its shared execution state.
pub struct JoinGroup {
    /// The shared join column.
    pub join_col: usize,
    /// The shared mapping functions.
    pub mapping: MappingSet,
    /// Global ids of member queries, in local order.
    pub members: Vec<QueryId>,
    /// The group's output regions (serving sets use global query ids).
    pub regions: RegionSet,
    /// Scheduling dependency graph (mutated as regions complete).
    pub dg: DependencyGraph,
    /// Immutable snapshot of threat in-edges, used for safe emission after
    /// the scheduling graph has shed nodes.
    pub static_threats_in: Vec<Vec<Edge>>,
    /// Immutable snapshot of threat out-edges: when a region dies, the
    /// pending tuples of exactly these targets must be re-examined.
    pub static_threats_out: Vec<Vec<Edge>>,
    /// The shared min-max-cuboid skyline plan (local query indexing).
    pub plan: SharedSkylinePlan,
    /// Materialized join tuples; the tag passed to the plan is the index
    /// into this arena (and into [`Self::points`]).
    pub arena: Vec<ArenaTuple>,
    /// Flat output-space points of the arena tuples: point `i` belongs to
    /// `arena[i]`. Interned once per tuple; everything downstream (plan
    /// insertion, pending-emission safety tests, discard sweeps) reads the
    /// slice instead of cloning.
    pub points: PointStore,
    /// Cached progressiveness estimates per region (local-query order);
    /// `None` marks a dirty entry.
    pub prog_cache: Vec<Option<Vec<f64>>>,
}

impl JoinGroup {
    /// The local index of a global query id, if it belongs to this group.
    pub fn local_of(&self, q: QueryId) -> Option<usize> {
        self.members.iter().position(|&m| m == q)
    }
}

/// A memoized group build: everything a cold [`build_one_group`] produced
/// that is expensive to recompute, plus the exact tick and counter deltas
/// it charged — replaying a memo leaves the clock, stats and trace in the
/// same state as rebuilding would.
///
/// The key is the full tuple `(join_col, mapping, queries, coarse_pruning,
/// build_dg, keep_empty)`: a memo only ever replays for the group build it
/// was recorded from.
#[derive(Debug, Clone)]
pub struct GroupMemo {
    /// The group's shared join column.
    pub join_col: usize,
    /// The group's shared mapping functions.
    pub mapping: MappingSet,
    /// Member `(global id, preference)` pairs, in group-local order.
    pub queries: Vec<(QueryId, DimMask)>,
    /// Whether the look-ahead coarse skyline ran during the build.
    pub coarse_pruning: bool,
    /// Whether the dependency graph was materialized.
    pub build_dg: bool,
    /// Whether empty regions were kept as revivable husks (session mode).
    pub keep_empty: bool,
    /// The built region set (post-look-ahead state).
    pub regions: RegionSet,
    /// Threat in-edges; the full graph is reconstructed by transposition.
    pub threats_in: Vec<Vec<Edge>>,
    /// Structural digest of the min-max cuboid the preferences imply,
    /// cross-checked when a persisted memo is loaded.
    pub cuboid_digest: u64,
    /// Virtual ticks the cold build charged.
    pub ticks: u64,
    /// Counter deltas the cold build charged (per-query stats untouched).
    pub stats: Stats,
}

impl GroupMemo {
    /// Whether this memo was recorded for exactly this group build.
    pub fn matches(
        &self,
        join_col: usize,
        mapping: &MappingSet,
        queries: &[(QueryId, DimMask)],
        coarse_pruning: bool,
        build_dg: bool,
        keep_empty: bool,
    ) -> bool {
        self.join_col == join_col
            && self.coarse_pruning == coarse_pruning
            && self.build_dg == build_dg
            && self.keep_empty == keep_empty
            && self.queries == queries
            && self.mapping == *mapping
    }
}

/// Partitions the workload into join groups by `(join column, mapping)`,
/// preserving first-appearance order — the grouping every build and memo
/// path must agree on.
pub(crate) fn group_workload(workload: &Workload) -> Vec<(usize, MappingSet, Vec<QueryId>)> {
    let mut groups: Vec<(usize, MappingSet, Vec<QueryId>)> = Vec::new();
    for (i, q) in workload.queries().iter().enumerate() {
        let qid = QueryId(i as u16);
        match groups
            .iter_mut()
            .find(|(col, m, _)| *col == q.join_col && *m == q.mapping)
        {
            Some((_, _, members)) => members.push(qid),
            None => groups.push((q.join_col, q.mapping.clone(), vec![qid])),
        }
    }
    groups
}

/// Groups the workload's queries and builds per-group shared state.
///
/// `coarse_pruning` controls whether the look-ahead coarse skyline runs
/// (CAQE / ProgXe+) or is skipped (S-JFSL). `build_dg` controls whether the
/// dependency graph is materialized at all — blind blocking pipelines have
/// no use for it and should not pay for it.
///
/// Groups share no state during construction, so with `threads` allowing it
/// each group is built on a worker against a *private* clock and stats.
/// Construction only ever charges ticks — it never reads the current time —
/// so the per-worker tick deltas are merged back in fixed group order and
/// the shared clock lands on exactly the serial value.
///
/// Tracing follows the same contract: workers record phase spans with ticks
/// relative to their private clock into a [`TraceBuffer`], and the buffers
/// are rebased and drained into `sink` in the same fixed group order as the
/// tick deltas — so the trace, too, is identical at every worker count.
#[allow(clippy::too_many_arguments)] // one engine toggle per argument
pub fn build_groups<S: TraceSink>(
    workload: &Workload,
    part_r: &Partitioning,
    part_t: &Partitioning,
    exec: &ExecConfig,
    coarse_pruning: bool,
    build_dg: bool,
    keep_empty: bool,
    threads: Threads,
    clock: &mut SimClock,
    stats: &mut Stats,
    sink: &mut S,
) -> Vec<JoinGroup> {
    build_groups_with_memos(
        workload,
        part_r,
        part_t,
        exec,
        coarse_pruning,
        build_dg,
        keep_empty,
        &[],
        threads,
        clock,
        stats,
        sink,
    )
}

/// [`build_groups`] with a memo slice from a warm-started
/// [`crate::plan::PreparedPlan`]: a group whose full key matches a memo is
/// *replayed* (clock advanced by the recorded ticks, counters re-applied,
/// identical spans recorded, state cloned) instead of rebuilt. Groups
/// without a memo go through the cold path — mixing is safe because memos
/// carry their exact deltas.
#[allow(clippy::too_many_arguments)] // one engine toggle per argument
pub(crate) fn build_groups_with_memos<S: TraceSink>(
    workload: &Workload,
    part_r: &Partitioning,
    part_t: &Partitioning,
    exec: &ExecConfig,
    coarse_pruning: bool,
    build_dg: bool,
    keep_empty: bool,
    memos: &[GroupMemo],
    threads: Threads,
    clock: &mut SimClock,
    stats: &mut Stats,
    sink: &mut S,
) -> Vec<JoinGroup> {
    // Group by (join column, mapping functions).
    let groups = group_workload(workload);

    let model = *clock.model();
    let built = caqe_parallel::map_ordered(threads, groups, |gi, (join_col, mapping, members)| {
        let mut wclock = SimClock::new(model);
        let mut wstats = Stats::new();
        let mut buf = TraceBuffer::new(S::ENABLED);
        let queries: Vec<(QueryId, DimMask)> = members
            .iter()
            .map(|&q| (q, workload.query(q).pref))
            .collect();
        let memo = memos.iter().find(|m| {
            m.matches(
                join_col,
                &mapping,
                &queries,
                coarse_pruning,
                build_dg,
                keep_empty,
            )
        });
        let group = match memo {
            Some(m) => replay_group(m, exec, gi as u32, &mut wclock, &mut wstats, &mut buf),
            None => build_one_group(
                part_r,
                part_t,
                exec,
                coarse_pruning,
                build_dg,
                keep_empty,
                gi as u32,
                join_col,
                mapping,
                queries,
                &mut wclock,
                &mut wstats,
                &mut buf,
            ),
        };
        buf.record(TraceEvent::Span {
            kind: SpanKind::GroupBuild,
            group: Some(gi as u32),
            region: None,
            start_tick: 0,
            end_tick: wclock.ticks(),
        });
        (group, wclock.ticks(), wstats, buf)
    });

    // Merge worker deltas in fixed group order: tick charges are additive,
    // so the final clock and stats are independent of worker scheduling.
    // Each group's trace buffer is rebased to the clock value at which the
    // serial loop would have started that group.
    let mut out = Vec::with_capacity(built.len());
    caqe_parallel::fold_ordered(built, &mut out, |out, _, (group, ticks, wstats, buf)| {
        buf.merge_into(sink, clock.ticks());
        clock.advance(ticks);
        *stats += wstats;
        out.push(group);
    });
    out
}

/// Builds one join group's shared state (regions, dependency graph, plan).
/// `queries` carries the `(global id, preference)` pairs directly so the
/// online session layer can open a group for a query the initial workload
/// never contained.
#[allow(clippy::too_many_arguments)]
pub(crate) fn build_one_group(
    part_r: &Partitioning,
    part_t: &Partitioning,
    exec: &ExecConfig,
    coarse_pruning: bool,
    build_dg: bool,
    keep_empty: bool,
    gi: u32,
    join_col: usize,
    mapping: MappingSet,
    queries: Vec<(QueryId, DimMask)>,
    clock: &mut SimClock,
    stats: &mut Stats,
    buf: &mut TraceBuffer,
) -> JoinGroup {
    let members: Vec<QueryId> = queries.iter().map(|(q, _)| *q).collect();
    let input = RegionBuildInput {
        part_r,
        part_t,
        join_col,
        mapping: &mapping,
        queries: &queries,
        coarse_pruning,
        keep_empty,
    };
    let la_start = clock.ticks();
    let regions = build_regions(&input, clock, stats);
    let dg = if build_dg {
        DependencyGraph::build(&regions, clock, stats)
    } else {
        DependencyGraph::empty(regions.len())
    };
    buf.record(TraceEvent::Span {
        kind: SpanKind::LookAhead,
        group: Some(gi),
        region: None,
        start_tick: la_start,
        end_tick: clock.ticks(),
    });
    let static_threats_in = (0..regions.len())
        .map(|i| dg.threats_in(caqe_types::RegionId(i as u32)).to_vec())
        .collect();
    let static_threats_out = (0..regions.len())
        .map(|i| dg.threats_out(caqe_types::RegionId(i as u32)).to_vec())
        .collect();
    let prefs: Vec<DimMask> = queries.iter().map(|(_, m)| *m).collect();
    let mut plan = SharedSkylinePlan::new(MinMaxCuboid::build(&prefs), exec.assume_dva);
    // The region envelope bounds every tuple the mappings can produce —
    // exactly the quantization range signature screening wants (DESIGN.md
    // §17). Screening never changes observables, so no config gate.
    if let Some((lo, hi)) = regions.mapped_bounds() {
        plan.enable_sig_cache(&lo, &hi);
    }
    let prog_cache = vec![None; regions.len()];
    let points = PointStore::new(mapping.output_dims());
    JoinGroup {
        join_col,
        mapping,
        members,
        regions,
        dg,
        static_threats_in,
        static_threats_out,
        plan,
        arena: Vec::new(),
        points,
        prog_cache,
    }
}

/// Replays a memoized group build: charges the recorded tick/counter
/// deltas, records the same `LookAhead` span the cold build would, and
/// instantiates the group from the memo's persisted structures. The only
/// recomputed pieces — the dependency-graph transpose, the min-max cuboid
/// and the signature cache — are pure functions of the stored state, so
/// the resulting group is indistinguishable from a cold build.
pub(crate) fn replay_group(
    memo: &GroupMemo,
    exec: &ExecConfig,
    gi: u32,
    clock: &mut SimClock,
    stats: &mut Stats,
    buf: &mut TraceBuffer,
) -> JoinGroup {
    let la_start = clock.ticks();
    clock.advance(memo.ticks);
    *stats += memo.stats.clone();
    buf.record(TraceEvent::Span {
        kind: SpanKind::LookAhead,
        group: Some(gi),
        region: None,
        start_tick: la_start,
        end_tick: clock.ticks(),
    });
    let members: Vec<QueryId> = memo.queries.iter().map(|(q, _)| *q).collect();
    let regions = memo.regions.clone();
    let dg = DependencyGraph::from_threats_in(memo.threats_in.clone());
    let static_threats_in = (0..regions.len())
        .map(|i| dg.threats_in(caqe_types::RegionId(i as u32)).to_vec())
        .collect();
    let static_threats_out = (0..regions.len())
        .map(|i| dg.threats_out(caqe_types::RegionId(i as u32)).to_vec())
        .collect();
    let prefs: Vec<DimMask> = memo.queries.iter().map(|(_, m)| *m).collect();
    let cuboid = MinMaxCuboid::build(&prefs);
    debug_assert_eq!(
        cuboid.structure_digest(),
        memo.cuboid_digest,
        "memoized cuboid digest out of sync"
    );
    let mut plan = SharedSkylinePlan::new(cuboid, exec.assume_dva);
    if let Some((lo, hi)) = regions.mapped_bounds() {
        plan.enable_sig_cache(&lo, &hi);
    }
    let prog_cache = vec![None; regions.len()];
    let points = PointStore::new(memo.mapping.output_dims());
    JoinGroup {
        join_col: memo.join_col,
        mapping: memo.mapping.clone(),
        members,
        regions,
        dg,
        static_threats_in,
        static_threats_out,
        plan,
        arena: Vec::new(),
        points,
        prog_cache,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{QuerySpec, WorkloadBuilder};
    use caqe_contract::Contract;
    use caqe_data::{Distribution, TableGenerator};
    use caqe_partition::QuadTreeConfig;

    fn spec(join_col: usize, pref: DimMask) -> QuerySpec {
        QuerySpec {
            join_col,
            mapping: MappingSet::concat(2, 2),
            pref,
            priority: 0.5,
            contract: Contract::LogDecay,
        }
    }

    #[test]
    fn grouping_by_join_condition() {
        let w = WorkloadBuilder::new()
            .query(spec(0, DimMask::from_dims([0, 1])))
            .query(spec(1, DimMask::from_dims([1, 2])))
            .query(spec(0, DimMask::from_dims([2, 3])))
            .build();
        let gen =
            TableGenerator::new(200, 2, Distribution::Independent).with_selectivities(&[0.1, 0.1]);
        let r = gen.generate("R");
        let t = gen.generate("T");
        let cfg = QuadTreeConfig {
            max_leaf_size: 64,
            max_depth: 4,
            max_cells: usize::MAX,
        };
        let pr = Partitioning::build(&r, cfg);
        let pt = Partitioning::build(&t, cfg);
        let exec = ExecConfig::default();
        let mut clock = SimClock::default();
        let mut stats = Stats::new();
        let groups = build_groups(
            &w,
            &pr,
            &pt,
            &exec,
            true,
            true,
            false,
            Threads::default(),
            &mut clock,
            &mut stats,
            &mut caqe_trace::NoopSink,
        );
        assert_eq!(groups.len(), 2);
        let g0 = groups.iter().find(|g| g.join_col == 0).unwrap();
        assert_eq!(g0.members, vec![QueryId(0), QueryId(2)]);
        assert_eq!(g0.local_of(QueryId(2)), Some(1));
        assert_eq!(g0.local_of(QueryId(1)), None);
        let g1 = groups.iter().find(|g| g.join_col == 1).unwrap();
        assert_eq!(g1.members, vec![QueryId(1)]);
        // Shared state shapes line up.
        for g in &groups {
            assert_eq!(g.static_threats_in.len(), g.regions.len());
            assert_eq!(g.prog_cache.len(), g.regions.len());
            assert!(g.arena.is_empty());
        }
    }
}
