//! Versioned on-disk plan persistence and warm-start restore.
//!
//! Building the shared plan — quad-tree partitionings, output regions,
//! dependency graph, min-max cuboid — is the dominant cost of a cold
//! start, yet every piece of it is a pure function of the base tables,
//! the execution config and the workload's group keys. This module
//! memoizes that build into a [`PreparedPlan`] that can be written to a
//! compact versioned text format with the crash-safe discipline of the
//! serving snapshot (temp file, fsync, atomic rename) and read back on
//! restart, skipping the rebuild entirely.
//!
//! Correctness contract: a warm start must be *observationally
//! bit-identical* to a cold start. The memo therefore stores not just
//! the structures but the exact virtual-clock ticks and counter deltas
//! the cold build charged, and replay re-applies them together with the
//! same trace spans. Anything that cannot be proven current — a table
//! fingerprint mismatch, a config change, a corrupt or future-version
//! file — invalidates the whole plan and the engine silently falls back
//! to the cold path; there is never a partial apply.

use crate::config::ExecConfig;
use crate::group::{build_one_group, group_workload, GroupMemo};
use crate::workload::Workload;
use caqe_cuboid::MinMaxCuboid;
use caqe_data::Table;
use caqe_operators::{MappingFn, MappingSet, PresortCache};
use caqe_partition::Partitioning;
use caqe_regions::depgraph::Edge;
use caqe_regions::{OutputRegion, RegionSet};
use caqe_trace::TraceBuffer;
use caqe_types::ids::QuerySet;
use caqe_types::{
    f64_hex, parse_f64_hex, CellId, DimMask, Fnv1a, QueryId, Rect, RegionId, SimClock, Stats,
};
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::Path;

/// On-disk format version this build writes and the highest it can read.
pub const PLAN_VERSION: u64 = 1;

/// Why a persisted plan could not be used. Every variant is total: the
/// caller falls back to a cold rebuild, never to a partially applied plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// The file could not be read or written.
    Io(String),
    /// The file exists but its contents are not a well-formed plan
    /// (bad checksum, truncation, malformed section).
    Corrupt(String),
    /// The file declares a format version newer than this build supports.
    Version { found: u64 },
    /// The file is well-formed but was built against different inputs.
    Stale {
        /// Which fingerprint mismatched (`"table R"`, `"table T"`, `"config"`).
        what: &'static str,
        /// The fingerprint recorded in the file.
        expected: u64,
        /// The fingerprint of the current input.
        found: u64,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Io(e) => write!(f, "plan io error: {e}"),
            PlanError::Corrupt(why) => write!(f, "corrupt plan: {why}"),
            PlanError::Version { found } => write!(
                f,
                "plan format v{found} is newer than supported v{PLAN_VERSION}"
            ),
            PlanError::Stale {
                what,
                expected,
                found,
            } => write!(
                f,
                "stale plan: {what} fingerprint {expected:016x} != current {found:016x}"
            ),
        }
    }
}

impl std::error::Error for PlanError {}

fn corrupt(why: impl Into<String>) -> PlanError {
    PlanError::Corrupt(why.into())
}

/// Content fingerprint of a base table: FNV-1a over name, arities and
/// every record's id, value bits and join keys. Acts as the *table
/// version* a persisted plan is keyed on — any row change invalidates.
pub fn table_fingerprint(t: &Table) -> u64 {
    let mut h = Fnv1a::new();
    h.str(t.name());
    h.usize(t.dims());
    h.usize(t.join_cols());
    h.usize(t.len());
    for rec in t.records() {
        h.u64(rec.id);
        for &v in &rec.vals {
            h.f64(v);
        }
        for &k in &rec.keys {
            h.u64(u64::from(k));
        }
    }
    h.finish()
}

/// Fingerprint of the execution-config knobs the plan build depends on:
/// the quad-tree granularity and the full cost model. Other `ExecConfig`
/// fields (fault plans, parallelism, …) do not shape the built plan.
pub fn config_fingerprint(exec: &ExecConfig) -> u64 {
    let mut h = Fnv1a::new();
    h.usize(exec.quadtree.max_leaf_size);
    h.usize(exec.quadtree.max_depth);
    h.usize(exec.quadtree.max_cells);
    let m = &exec.cost_model;
    h.u64(m.join_probe);
    h.u64(m.map_eval);
    h.u64(m.dom_cmp);
    h.u64(m.emit);
    h.u64(m.region_overhead);
    h.f64(m.sort_cmp);
    h.f64(m.ticks_per_second);
    h.finish()
}

/// A fully memoized shared plan for one `(R, T, config)` triple, plus
/// the cross-query presort cache that rides along. Built once (cold),
/// persisted, and consumed by the engine's warm path.
#[derive(Debug, Clone)]
pub struct PreparedPlan {
    /// Fingerprint of the R table the plan was built from.
    pub table_fp_r: u64,
    /// Fingerprint of the T table the plan was built from.
    pub table_fp_t: u64,
    /// Fingerprint of the build-relevant config knobs.
    pub config_fp: u64,
    /// Memoized R-side partitioning.
    pub part_r: Partitioning,
    /// Memoized T-side partitioning.
    pub part_t: Partitioning,
    /// Per-group build memos (regions, threats, tick/counter deltas).
    pub memos: Vec<GroupMemo>,
    /// Subspace presort memo surviving restarts with the plan.
    pub presort: PresortCache,
}

impl PreparedPlan {
    /// Builds the table-level plan state (partitionings + fingerprints).
    /// Group memos are added per workload via [`Self::memoize`].
    pub fn build(r: &Table, t: &Table, exec: &ExecConfig) -> Self {
        PreparedPlan {
            table_fp_r: table_fingerprint(r),
            table_fp_t: table_fingerprint(t),
            config_fp: config_fingerprint(exec),
            part_r: Partitioning::build(r, exec.quadtree),
            part_t: Partitioning::build(t, exec.quadtree),
            memos: Vec::new(),
            presort: PresortCache::new(),
        }
    }

    /// Whether this plan was built from exactly these inputs. The engine
    /// consults this before taking the warm path; any mismatch means a
    /// silent cold build.
    pub fn matches_inputs(&self, r: &Table, t: &Table, exec: &ExecConfig) -> bool {
        self.config_fp == config_fingerprint(exec)
            && self.table_fp_r == table_fingerprint(r)
            && self.table_fp_t == table_fingerprint(t)
    }

    /// Memoizes every join group of `workload` under the given engine
    /// toggles, running the real cold build against scratch clock/stats
    /// so the recorded deltas are exact. Groups already memoized under
    /// the same key are skipped, so catalogs with shared group keys pay
    /// each build once.
    pub fn memoize(
        &mut self,
        workload: &Workload,
        exec: &ExecConfig,
        coarse_pruning: bool,
        build_dg: bool,
        keep_empty: bool,
    ) {
        for (join_col, mapping, members) in group_workload(workload) {
            let queries: Vec<(QueryId, DimMask)> = members
                .iter()
                .map(|&q| (q, workload.query(q).pref))
                .collect();
            if self
                .find_memo(
                    join_col,
                    &mapping,
                    &queries,
                    coarse_pruning,
                    build_dg,
                    keep_empty,
                )
                .is_some()
            {
                continue;
            }
            let mut clock = SimClock::new(exec.cost_model);
            let mut stats = Stats::new();
            let mut buf = TraceBuffer::new(false);
            let group = build_one_group(
                &self.part_r,
                &self.part_t,
                exec,
                coarse_pruning,
                build_dg,
                keep_empty,
                0,
                join_col,
                mapping.clone(),
                queries.clone(),
                &mut clock,
                &mut stats,
                &mut buf,
            );
            let prefs: Vec<DimMask> = queries.iter().map(|(_, m)| *m).collect();
            debug_assert!(
                stats.per_query.is_empty(),
                "group builds must not touch per-query stats"
            );
            self.memos.push(GroupMemo {
                join_col,
                mapping,
                queries,
                coarse_pruning,
                build_dg,
                keep_empty,
                regions: group.regions,
                threats_in: group.static_threats_in,
                cuboid_digest: MinMaxCuboid::build(&prefs).structure_digest(),
                ticks: clock.ticks(),
                stats,
            });
        }
    }

    /// The memo matching a group key, if any.
    pub fn find_memo(
        &self,
        join_col: usize,
        mapping: &MappingSet,
        queries: &[(QueryId, DimMask)],
        coarse_pruning: bool,
        build_dg: bool,
        keep_empty: bool,
    ) -> Option<&GroupMemo> {
        self.memos.iter().find(|m| {
            m.matches(
                join_col,
                mapping,
                queries,
                coarse_pruning,
                build_dg,
                keep_empty,
            )
        })
    }

    // ------------------------------------------------------------------
    // On-disk format.
    // ------------------------------------------------------------------

    /// Serializes the plan to the versioned text format. Layout:
    ///
    /// ```text
    /// caqe-plan v1
    /// fp <r> <t> <config>            (all 016x)
    /// part r <ncells> / cell <n> <rows...>
    /// part t <ncells> / cell <n> <rows...>
    /// memos <n> / per memo: memo/mapping/fn*/queries/stats/regions/
    ///                        region*/threats/tin*
    /// presort <nlines> / embedded PresortCache text
    /// checksum <016x>                (FNV-1a over every body line)
    /// ```
    ///
    /// Floats are stored as exact bit patterns (16 hex digits), so a
    /// round-trip is bit-identical, NaN payloads included.
    pub fn to_text(&self) -> String {
        let mut body = String::new();
        body.push_str(&format!(
            "fp {:016x} {:016x} {:016x}\n",
            self.table_fp_r, self.table_fp_t, self.config_fp
        ));
        write_partitioning(&mut body, "r", &self.part_r);
        write_partitioning(&mut body, "t", &self.part_t);
        body.push_str(&format!("memos {}\n", self.memos.len()));
        for m in &self.memos {
            write_memo(&mut body, m);
        }
        let presort = self.presort.to_text();
        let plines = presort.lines().count();
        body.push_str(&format!("presort {plines}\n"));
        body.push_str(&presort);
        let mut h = Fnv1a::new();
        h.bytes(body.as_bytes());
        format!(
            "caqe-plan v{PLAN_VERSION}\n{body}checksum {:016x}\n",
            h.finish()
        )
    }

    /// Parses a plan back from its text form. The header version is
    /// examined *first* (so a future format is reported as
    /// [`PlanError::Version`], never mis-parsed as corruption), then the
    /// checksum is verified over the body, then the sections are parsed
    /// with full validation. `r` and `t` are the tables the caller wants
    /// to serve: the stored fingerprints must match them (else
    /// [`PlanError::Stale`]) and the partitionings are reconstructed
    /// from the persisted row lists against them.
    pub fn from_text(
        text: &str,
        r: &Table,
        t: &Table,
        exec: &ExecConfig,
    ) -> Result<Self, PlanError> {
        // 1. Version gate, before anything else is trusted.
        let mut first = text.lines();
        let header = first.next().ok_or_else(|| corrupt("empty file"))?;
        let version: u64 = header
            .strip_prefix("caqe-plan v")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| corrupt("missing plan header"))?;
        if version > PLAN_VERSION {
            return Err(PlanError::Version { found: version });
        }

        // 2. Checksum over the body (everything between header and the
        //    trailing checksum line).
        let lines: Vec<&str> = text.lines().collect();
        let last = *lines.last().ok_or_else(|| corrupt("empty file"))?;
        let stored = last
            .strip_prefix("checksum ")
            .ok_or_else(|| corrupt("missing checksum footer"))?;
        let stored = u64::from_str_radix(stored, 16).map_err(|_| corrupt("malformed checksum"))?;
        let body = &lines[1..lines.len() - 1];
        let mut h = Fnv1a::new();
        for line in body {
            h.bytes(line.as_bytes());
            h.bytes(b"\n");
        }
        if h.finish() != stored {
            return Err(corrupt("checksum mismatch"));
        }

        // 3. Sections.
        let mut it = body.iter().copied();
        let fp = fields(
            it.next().ok_or_else(|| corrupt("missing fp line"))?,
            "fp",
            3,
        )?;
        let table_fp_r = parse_hex64(fp[0])?;
        let table_fp_t = parse_hex64(fp[1])?;
        let config_fp = parse_hex64(fp[2])?;
        // Staleness: the plan must have been built from exactly the
        // inputs the caller is about to serve.
        check_stale("config", config_fp, config_fingerprint(exec))?;
        check_stale("table R", table_fp_r, table_fingerprint(r))?;
        check_stale("table T", table_fp_t, table_fingerprint(t))?;

        let part_r = read_partitioning(&mut it, "r", r)?;
        let part_t = read_partitioning(&mut it, "t", t)?;

        let nmemos = parse_count(
            it.next().ok_or_else(|| corrupt("missing memos line"))?,
            "memos",
        )?;
        let mut memos = Vec::with_capacity(nmemos);
        for _ in 0..nmemos {
            memos.push(read_memo(&mut it)?);
        }

        let plines = parse_count(
            it.next().ok_or_else(|| corrupt("missing presort line"))?,
            "presort",
        )?;
        let mut ptext = String::new();
        for _ in 0..plines {
            let line = it
                .next()
                .ok_or_else(|| corrupt("truncated presort section"))?;
            ptext.push_str(line);
            ptext.push('\n');
        }
        let presort = PresortCache::from_text(&ptext).map_err(corrupt)?;

        if it.next().is_some() {
            return Err(corrupt("trailing data after presort section"));
        }

        Ok(PreparedPlan {
            table_fp_r,
            table_fp_t,
            config_fp,
            part_r,
            part_t,
            memos,
            presort,
        })
    }

    /// Writes the plan to `path` with the crash-safe discipline of the
    /// serving snapshot: temp file in the same directory, `fsync`,
    /// atomic rename over the target, then directory `fsync` — a crash
    /// at any point leaves either the old plan or the new one, never a
    /// torn file.
    pub fn save(&self, path: &Path) -> Result<(), PlanError> {
        let text = self.to_text();
        let io = |e: std::io::Error| PlanError::Io(e.to_string());
        let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
        let tmp = path.with_extension("plan.tmp");
        {
            let mut f = fs::File::create(&tmp).map_err(io)?;
            f.write_all(text.as_bytes()).map_err(io)?;
            f.sync_all().map_err(io)?;
        }
        fs::rename(&tmp, path).map_err(io)?;
        if let Some(dir) = dir {
            // Persist the rename itself (the directory entry).
            fs::File::open(dir).and_then(|d| d.sync_all()).map_err(io)?;
        }
        Ok(())
    }

    /// Loads a plan from `path` and validates it against the current
    /// inputs. Every failure is typed; callers are expected to fall back
    /// to a cold build on any `Err`.
    pub fn load(path: &Path, r: &Table, t: &Table, exec: &ExecConfig) -> Result<Self, PlanError> {
        let text = fs::read_to_string(path).map_err(|e| PlanError::Io(e.to_string()))?;
        Self::from_text(&text, r, t, exec)
    }
}

fn check_stale(what: &'static str, expected: u64, found: u64) -> Result<(), PlanError> {
    if expected != found {
        return Err(PlanError::Stale {
            what,
            expected,
            found,
        });
    }
    Ok(())
}

// ----------------------------------------------------------------------
// Section writers.
// ----------------------------------------------------------------------

fn write_partitioning(out: &mut String, tag: &str, part: &Partitioning) {
    out.push_str(&format!("part {tag} {}\n", part.len()));
    for cell in part.cells() {
        out.push_str(&format!("cell {}", cell.rows.len()));
        for &row in &cell.rows {
            out.push_str(&format!(" {row}"));
        }
        out.push('\n');
    }
}

fn write_memo(out: &mut String, m: &GroupMemo) {
    out.push_str(&format!(
        "memo {} {} {} {} {} {:016x}\n",
        m.join_col,
        u8::from(m.coarse_pruning),
        u8::from(m.build_dg),
        u8::from(m.keep_empty),
        m.ticks,
        m.cuboid_digest
    ));
    out.push_str(&format!("mapping {}\n", m.mapping.fns().len()));
    for f in m.mapping.fns() {
        out.push_str(&format!("fn {}", f.weights_r.len()));
        for &w in &f.weights_r {
            out.push_str(&format!(" {}", f64_hex(w)));
        }
        out.push_str(&format!(" {}", f.weights_t.len()));
        for &w in &f.weights_t {
            out.push_str(&format!(" {}", f64_hex(w)));
        }
        out.push_str(&format!(" {}\n", f64_hex(f.offset)));
    }
    out.push_str(&format!("queries {}", m.queries.len()));
    for (q, mask) in &m.queries {
        out.push_str(&format!(" {}:{}", q.0, mask.0));
    }
    out.push('\n');
    let counters: Vec<(&str, u64)> = m
        .stats
        .counters()
        .into_iter()
        .filter(|(_, v)| *v != 0)
        .collect();
    out.push_str(&format!("stats {}", counters.len()));
    for (name, v) in counters {
        out.push_str(&format!(" {name}={v}"));
    }
    out.push('\n');
    let dims = m.regions.regions().first().map_or(0, |r| r.bounds.dims());
    out.push_str(&format!("regions {} {dims}\n", m.regions.len()));
    for reg in m.regions.regions() {
        out.push_str(&format!(
            "region {} {} {} {} {} {} {:016x}",
            reg.id.0,
            reg.r_cell.0,
            reg.t_cell.0,
            reg.n_r,
            reg.n_t,
            f64_hex(reg.est_join),
            reg.serving.0
        ));
        for &v in reg.bounds.lo() {
            out.push_str(&format!(" {}", f64_hex(v)));
        }
        for &v in reg.bounds.hi() {
            out.push_str(&format!(" {}", f64_hex(v)));
        }
        out.push('\n');
    }
    out.push_str(&format!("threats {}\n", m.threats_in.len()));
    for edges in &m.threats_in {
        out.push_str(&format!("tin {}", edges.len()));
        for e in edges {
            out.push_str(&format!(" {}:{:016x}", e.peer.0, e.queries.0));
        }
        out.push('\n');
    }
}

// ----------------------------------------------------------------------
// Section readers. Every parse failure is a typed `Corrupt`.
// ----------------------------------------------------------------------

fn parse_hex64(s: &str) -> Result<u64, PlanError> {
    u64::from_str_radix(s, 16).map_err(|_| corrupt(format!("bad hex field {s:?}")))
}

fn parse_dec<T: std::str::FromStr>(s: &str) -> Result<T, PlanError> {
    s.parse()
        .map_err(|_| corrupt(format!("bad numeric field {s:?}")))
}

fn parse_float(s: &str) -> Result<f64, PlanError> {
    parse_f64_hex(s).ok_or_else(|| corrupt(format!("bad float field {s:?}")))
}

/// Splits a line into fields after checking its tag; `want` counts the
/// fields after the tag (`usize::MAX` = variable).
fn fields<'a>(line: &'a str, tag: &str, want: usize) -> Result<Vec<&'a str>, PlanError> {
    let mut parts = line.split_whitespace();
    if parts.next() != Some(tag) {
        return Err(corrupt(format!("expected {tag:?} line, got {line:?}")));
    }
    let rest: Vec<&str> = parts.collect();
    if want != usize::MAX && rest.len() != want {
        return Err(corrupt(format!(
            "{tag:?} line has {} fields, expected {want}",
            rest.len()
        )));
    }
    Ok(rest)
}

fn parse_count(line: &str, tag: &str) -> Result<usize, PlanError> {
    let f = fields(line, tag, 1)?;
    parse_dec(f[0])
}

fn read_partitioning<'a>(
    it: &mut impl Iterator<Item = &'a str>,
    tag: &str,
    table: &Table,
) -> Result<Partitioning, PlanError> {
    let head = fields(
        it.next().ok_or_else(|| corrupt("missing part section"))?,
        "part",
        2,
    )?;
    if head[0] != tag {
        return Err(corrupt(format!(
            "expected part {tag}, got part {}",
            head[0]
        )));
    }
    let ncells: usize = parse_dec(head[1])?;
    let mut cell_rows = Vec::with_capacity(ncells);
    for _ in 0..ncells {
        let f = fields(
            it.next().ok_or_else(|| corrupt("truncated part section"))?,
            "cell",
            usize::MAX,
        )?;
        let n: usize = parse_dec(
            f.first()
                .copied()
                .ok_or_else(|| corrupt("empty cell line"))?,
        )?;
        if f.len() != n + 1 {
            return Err(corrupt("cell row count mismatch"));
        }
        let rows: Result<Vec<usize>, _> = f[1..].iter().map(|s| parse_dec(s)).collect();
        cell_rows.push(rows?);
    }
    Partitioning::from_cell_rows(table, cell_rows).map_err(corrupt)
}

fn read_memo<'a>(it: &mut impl Iterator<Item = &'a str>) -> Result<GroupMemo, PlanError> {
    let head = fields(
        it.next().ok_or_else(|| corrupt("missing memo line"))?,
        "memo",
        6,
    )?;
    let join_col: usize = parse_dec(head[0])?;
    let coarse_pruning = parse_flag(head[1])?;
    let build_dg = parse_flag(head[2])?;
    let keep_empty = parse_flag(head[3])?;
    let ticks: u64 = parse_dec(head[4])?;
    let cuboid_digest = parse_hex64(head[5])?;

    let nfns = parse_count(
        it.next().ok_or_else(|| corrupt("missing mapping line"))?,
        "mapping",
    )?;
    let mut fns = Vec::with_capacity(nfns);
    for _ in 0..nfns {
        let f = fields(
            it.next()
                .ok_or_else(|| corrupt("truncated mapping section"))?,
            "fn",
            usize::MAX,
        )?;
        let mut pos = 0usize;
        let take = |f: &[&str], pos: &mut usize, n: usize| -> Result<Vec<f64>, PlanError> {
            let end = pos.checked_add(n).filter(|&e| e <= f.len());
            let end = end.ok_or_else(|| corrupt("fn line truncated"))?;
            let vals: Result<Vec<f64>, _> = f[*pos..end].iter().map(|s| parse_float(s)).collect();
            *pos = end;
            vals
        };
        let nr: usize = parse_dec(f.first().copied().ok_or_else(|| corrupt("empty fn line"))?)?;
        pos += 1;
        let weights_r = take(&f, &mut pos, nr)?;
        let nt: usize = parse_dec(
            f.get(pos)
                .copied()
                .ok_or_else(|| corrupt("fn line truncated"))?,
        )?;
        pos += 1;
        let weights_t = take(&f, &mut pos, nt)?;
        let offset = parse_float(
            f.get(pos)
                .copied()
                .ok_or_else(|| corrupt("fn line truncated"))?,
        )?;
        pos += 1;
        if pos != f.len() {
            return Err(corrupt("trailing fields on fn line"));
        }
        for &w in weights_r.iter().chain(weights_t.iter()) {
            if w.is_nan() || w < 0.0 {
                return Err(corrupt("mapping weights must be non-negative"));
            }
        }
        fns.push(MappingFn::new(weights_r, weights_t, offset));
    }
    if fns.is_empty() {
        return Err(corrupt("memo mapping has no functions"));
    }
    let mapping = MappingSet::new(fns);

    let qf = fields(
        it.next().ok_or_else(|| corrupt("missing queries line"))?,
        "queries",
        usize::MAX,
    )?;
    let nq: usize = parse_dec(
        qf.first()
            .copied()
            .ok_or_else(|| corrupt("empty queries line"))?,
    )?;
    if qf.len() != nq + 1 {
        return Err(corrupt("queries count mismatch"));
    }
    let mut queries = Vec::with_capacity(nq);
    for tok in &qf[1..] {
        let (q, mask) = tok
            .split_once(':')
            .ok_or_else(|| corrupt("malformed query token"))?;
        let q: u16 = parse_dec(q)?;
        let mask: u32 = parse_dec(mask)?;
        queries.push((QueryId(q), DimMask(mask)));
    }

    let sf = fields(
        it.next().ok_or_else(|| corrupt("missing stats line"))?,
        "stats",
        usize::MAX,
    )?;
    let nc: usize = parse_dec(
        sf.first()
            .copied()
            .ok_or_else(|| corrupt("empty stats line"))?,
    )?;
    if sf.len() != nc + 1 {
        return Err(corrupt("stats count mismatch"));
    }
    let mut stats = Stats::new();
    for tok in &sf[1..] {
        let (name, v) = tok
            .split_once('=')
            .ok_or_else(|| corrupt("malformed stat token"))?;
        let v: u64 = parse_dec(v)?;
        if !stats.set_counter(name, v) {
            return Err(corrupt(format!("unknown stat counter {name:?}")));
        }
    }

    let rf = fields(
        it.next().ok_or_else(|| corrupt("missing regions line"))?,
        "regions",
        2,
    )?;
    let nregions: usize = parse_dec(rf[0])?;
    let dims: usize = parse_dec(rf[1])?;
    let mut regions = Vec::with_capacity(nregions);
    for i in 0..nregions {
        let f = fields(
            it.next()
                .ok_or_else(|| corrupt("truncated regions section"))?,
            "region",
            7 + 2 * dims,
        )?;
        let id: u32 = parse_dec(f[0])?;
        if id as usize != i {
            return Err(corrupt("region ids must be dense and ordered"));
        }
        let r_cell: u32 = parse_dec(f[1])?;
        let t_cell: u32 = parse_dec(f[2])?;
        let n_r: usize = parse_dec(f[3])?;
        let n_t: usize = parse_dec(f[4])?;
        let est_join = parse_float(f[5])?;
        let serving = parse_hex64(f[6])?;
        let lo: Result<Vec<f64>, _> = f[7..7 + dims].iter().map(|s| parse_float(s)).collect();
        let hi: Result<Vec<f64>, _> = f[7 + dims..7 + 2 * dims]
            .iter()
            .map(|s| parse_float(s))
            .collect();
        let (lo, hi) = (lo?, hi?);
        // Pre-validate: `Rect::new` panics on inverted or NaN corners.
        if lo
            .iter()
            .zip(&hi)
            .any(|(l, h)| l.is_nan() || h.is_nan() || l > h)
        {
            return Err(corrupt("region bounds are not a valid box"));
        }
        regions.push(OutputRegion::new(
            RegionId(id),
            CellId(r_cell),
            CellId(t_cell),
            Rect::new(lo, hi),
            n_r,
            n_t,
            est_join,
            QuerySet(serving),
        ));
    }
    let region_set = RegionSet::new(regions, queries.clone());

    let nt = parse_count(
        it.next().ok_or_else(|| corrupt("missing threats line"))?,
        "threats",
    )?;
    if nt != nregions {
        return Err(corrupt("threat row count != region count"));
    }
    let mut threats_in = Vec::with_capacity(nt);
    for _ in 0..nt {
        let f = fields(
            it.next()
                .ok_or_else(|| corrupt("truncated threats section"))?,
            "tin",
            usize::MAX,
        )?;
        let ne: usize = parse_dec(
            f.first()
                .copied()
                .ok_or_else(|| corrupt("empty tin line"))?,
        )?;
        if f.len() != ne + 1 {
            return Err(corrupt("tin edge count mismatch"));
        }
        let mut edges = Vec::with_capacity(ne);
        for tok in &f[1..] {
            let (peer, qs) = tok
                .split_once(':')
                .ok_or_else(|| corrupt("malformed edge token"))?;
            let peer: u32 = parse_dec(peer)?;
            if peer as usize >= nregions {
                return Err(corrupt("edge peer out of range"));
            }
            edges.push(Edge {
                peer: RegionId(peer),
                queries: QuerySet(parse_hex64(qs)?),
            });
        }
        threats_in.push(edges);
    }

    // Cross-check: the min-max cuboid is a pure function of the stored
    // preferences; its structural digest must match what the cold build
    // recorded, or the queries section does not describe the plan that
    // was memoized.
    let prefs: Vec<DimMask> = queries.iter().map(|(_, m)| *m).collect();
    if MinMaxCuboid::build(&prefs).structure_digest() != cuboid_digest {
        return Err(corrupt("cuboid digest mismatch"));
    }

    Ok(GroupMemo {
        join_col,
        mapping,
        queries,
        coarse_pruning,
        build_dg,
        keep_empty,
        regions: region_set,
        threats_in,
        cuboid_digest,
        ticks,
        stats,
    })
}

fn parse_flag(s: &str) -> Result<bool, PlanError> {
    match s {
        "0" => Ok(false),
        "1" => Ok(true),
        _ => Err(corrupt(format!("bad flag field {s:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{QuerySpec, WorkloadBuilder};
    use caqe_contract::Contract;
    use caqe_data::{Distribution, TableGenerator};

    fn fixture() -> (Table, Table, Workload, ExecConfig) {
        let gen =
            TableGenerator::new(300, 2, Distribution::Independent).with_selectivities(&[0.1, 0.1]);
        let r = gen.generate("R");
        let t = gen.generate("T");
        let w = WorkloadBuilder::new()
            .query(QuerySpec {
                join_col: 0,
                mapping: MappingSet::concat(2, 2),
                pref: DimMask::from_dims([0, 1]),
                priority: 0.5,
                contract: Contract::LogDecay,
            })
            .query(QuerySpec {
                join_col: 1,
                mapping: MappingSet::concat(2, 2),
                pref: DimMask::from_dims([1, 2]),
                priority: 0.5,
                contract: Contract::LogDecay,
            })
            .query(QuerySpec {
                join_col: 0,
                mapping: MappingSet::concat(2, 2),
                pref: DimMask::from_dims([2, 3]),
                priority: 0.5,
                contract: Contract::LogDecay,
            })
            .build();
        let exec = ExecConfig::default().with_target_cells(300, 4);
        (r, t, w, exec)
    }

    fn built_plan() -> (Table, Table, Workload, ExecConfig, PreparedPlan) {
        let (r, t, w, exec) = fixture();
        let mut plan = PreparedPlan::build(&r, &t, &exec);
        plan.memoize(&w, &exec, true, true, false);
        (r, t, w, exec, plan)
    }

    #[test]
    fn fingerprints_track_content() {
        let (r, t, _, exec) = fixture();
        assert_ne!(table_fingerprint(&r), table_fingerprint(&t));
        let mut recs = r.records().to_vec();
        recs[0].vals[0] += 1.0;
        let r2 = Table::new(r.name(), r.dims(), r.join_cols(), recs);
        assert_ne!(table_fingerprint(&r), table_fingerprint(&r2));
        let mut exec2 = exec;
        exec2.quadtree.max_leaf_size += 1;
        assert_ne!(config_fingerprint(&exec), config_fingerprint(&exec2));
        let mut exec3 = exec;
        exec3.cost_model.sort_cmp += 0.5;
        assert_ne!(config_fingerprint(&exec), config_fingerprint(&exec3));
    }

    #[test]
    fn memoize_is_idempotent_and_grouped() {
        let (_, _, w, exec, plan) = {
            let (r, t, w, exec, plan) = built_plan();
            drop((r, t));
            ((), (), w, exec, plan)
        };
        // Two join columns -> two groups -> two memos.
        assert_eq!(plan.memos.len(), 2);
        let mut plan = plan;
        plan.memoize(&w, &exec, true, true, false);
        assert_eq!(plan.memos.len(), 2, "re-memoizing must not duplicate");
        // A different toggle combination is a distinct key.
        plan.memoize(&w, &exec, true, true, true);
        assert_eq!(plan.memos.len(), 4);
    }

    #[test]
    fn text_round_trip_is_exact() {
        let (r, t, _, exec, plan) = built_plan();
        let text = plan.to_text();
        let back = PreparedPlan::from_text(&text, &r, &t, &exec).expect("round trip");
        assert_eq!(back.table_fp_r, plan.table_fp_r);
        assert_eq!(back.part_r, plan.part_r);
        assert_eq!(back.part_t, plan.part_t);
        assert_eq!(back.memos.len(), plan.memos.len());
        for (a, b) in plan.memos.iter().zip(&back.memos) {
            assert_eq!(a.join_col, b.join_col);
            assert_eq!(a.mapping, b.mapping);
            assert_eq!(a.queries, b.queries);
            assert_eq!(a.regions, b.regions);
            assert_eq!(a.threats_in, b.threats_in);
            assert_eq!(a.ticks, b.ticks);
            assert_eq!(a.cuboid_digest, b.cuboid_digest);
            assert_eq!(a.stats.counters(), b.stats.counters());
        }
        // Serialization itself is deterministic.
        assert_eq!(text, back.to_text());
    }

    #[test]
    fn version_gate_beats_checksum() {
        let (r, t, _, exec, plan) = built_plan();
        // A future version with a completely different body layout must
        // be reported as Version, not Corrupt.
        let future = plan.to_text().replacen("caqe-plan v1", "caqe-plan v9", 1);
        match PreparedPlan::from_text(&future, &r, &t, &exec) {
            Err(PlanError::Version { found: 9 }) => {}
            other => panic!("expected Version error, got {other:?}"),
        }
    }

    #[test]
    fn corruption_is_typed_and_total() {
        let (r, t, _, exec, plan) = built_plan();
        let text = plan.to_text();
        // Bit flip in the middle of the body.
        let mid = text.len() / 2;
        let mut flipped = text.clone().into_bytes();
        flipped[mid] = if flipped[mid] == b'0' { b'1' } else { b'0' };
        let flipped = String::from_utf8(flipped).expect("ascii");
        assert!(matches!(
            PreparedPlan::from_text(&flipped, &r, &t, &exec),
            Err(PlanError::Corrupt(_))
        ));
        // Truncation before the checksum footer.
        let cut = text.rfind("checksum").expect("footer");
        assert!(matches!(
            PreparedPlan::from_text(&text[..cut], &r, &t, &exec),
            Err(PlanError::Corrupt(_))
        ));
        // Empty file.
        assert!(matches!(
            PreparedPlan::from_text("", &r, &t, &exec),
            Err(PlanError::Corrupt(_))
        ));
    }

    #[test]
    fn stale_inputs_are_rejected() {
        let (r, t, _, exec, plan) = built_plan();
        let text = plan.to_text();
        let mut recs = r.records().to_vec();
        recs[0].vals[0] += 1.0;
        let r2 = Table::new(r.name(), r.dims(), r.join_cols(), recs);
        match PreparedPlan::from_text(&text, &r2, &t, &exec) {
            Err(PlanError::Stale {
                what: "table R", ..
            }) => {}
            other => panic!("expected stale table R, got {other:?}"),
        }
        let mut exec2 = exec;
        exec2.quadtree.max_leaf_size += 1;
        match PreparedPlan::from_text(&text, &r, &t, &exec2) {
            Err(PlanError::Stale { what: "config", .. }) => {}
            other => panic!("expected stale config, got {other:?}"),
        }
    }

    #[test]
    fn save_and_load_round_trip() {
        let (r, t, _, exec, plan) = built_plan();
        let dir = std::env::temp_dir().join("caqe_plan_test");
        std::fs::create_dir_all(&dir).expect("tmpdir");
        let path = dir.join("plan.caqeplan");
        plan.save(&path).expect("save");
        let back = PreparedPlan::load(&path, &r, &t, &exec).expect("load");
        assert_eq!(back.to_text(), plan.to_text());
        assert!(back.matches_inputs(&r, &t, &exec));
        std::fs::remove_file(&path).ok();
    }
}
