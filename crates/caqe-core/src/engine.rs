//! The contract-aware execution engine (§5.3–§6, Algorithm 1).
//!
//! One parametric engine implements CAQE and, through
//! [`EngineConfig`](crate::config::EngineConfig) presets, the shared-plan
//! S-JFSL baseline and the count-driven core of ProgXe+:
//!
//! 1. build quad-tree partitionings and per-join-group shared state
//!    (regions, dependency graph, min-max-cuboid skyline plan);
//! 2. loop: pick the next region per the scheduling policy; join its cell
//!    pair; insert surviving join tuples into the shared skyline plan;
//!    discard output cells/regions dominated by the new tuples; emit every
//!    pending result that is now guaranteed final; update the run-time
//!    satisfaction weights (Equation 11);
//! 3. stop when every region is processed or discarded; by then every
//!    query's final skyline has been emitted.

use crate::config::{EngineConfig, ExecConfig, SchedulingPolicy};
use crate::group::{build_groups, ArenaTuple, JoinGroup};
use crate::outcome::{QueryOutcome, RunOutcome};
use crate::workload::Workload;
use caqe_contract::{update_weights, QueryScore};
use caqe_data::Table;
use caqe_partition::Partitioning;
use caqe_regions::{buchta_estimate, estimate_ticks, prog_est, region_csm};
use caqe_types::ids::QuerySet;
use caqe_types::{QueryId, RegionId, SimClock, Stats, Value};
use std::collections::HashMap;
use std::time::Instant;

/// A tuple waiting for its safety guarantee before progressive emission.
#[derive(Debug, Clone)]
struct PendingTuple {
    tag: u64,
    /// Per query the tuple is still pending for: an optional cached
    /// *witness* — an alive region known to threaten the tuple. While the
    /// witness stays alive (and serving the query), re-checking safety costs
    /// nothing; only when it dies is the threat list re-scanned.
    entries: Vec<(QueryId, Option<RegionId>)>,
}

/// Per-group mutable emission state.
#[derive(Default)]
struct PendingState {
    /// Pending tuples indexed by their origin region.
    by_origin: HashMap<u32, Vec<PendingTuple>>,
}

/// Runs the engine over a workload.
///
/// `start_ticks` offsets the virtual clock, letting sequential per-query
/// baselines (ProgXe+) continue a shared timeline across invocations.
pub fn run_engine(
    name: &str,
    r: &Table,
    t: &Table,
    workload: &Workload,
    exec: &ExecConfig,
    engine: &EngineConfig,
    start_ticks: u64,
) -> RunOutcome {
    let wall_start = Instant::now();
    let mut clock = SimClock::new(exec.cost_model);
    clock.advance(start_ticks);
    let mut stats = Stats::new();

    let part_r = Partitioning::build(r, exec.quadtree);
    let part_t = Partitioning::build(t, exec.quadtree);

    // Blind blocking pipelines never consult the dependency graph; everyone
    // else needs it for scheduling, discarding or emission safety.
    let needs_dg = engine.progressive_emission
        || engine.dominance_discard
        || engine.policy != SchedulingPolicy::Fifo;
    let mut groups = build_groups(
        workload,
        &part_r,
        &part_t,
        exec,
        engine.coarse_pruning,
        needs_dg,
        &mut clock,
        &mut stats,
    );

    let nq = workload.len();
    let mut scores: Vec<QueryScore> = Vec::with_capacity(nq);
    for (qi, spec) in workload.queries().iter().enumerate() {
        let qid = QueryId(qi as u16);
        // Initial cardinality estimate: Buchta over the expected join size
        // of the regions serving the query.
        let join_est: f64 = groups
            .iter()
            .flat_map(|g| g.regions.regions())
            .filter(|reg| reg.serving.contains(qid))
            .map(|reg| reg.est_join)
            .sum();
        let est = buchta_estimate(join_est.max(1.0), spec.pref.len());
        scores.push(QueryScore::new(spec.contract.clone(), est));
    }
    let mut weights = workload.initial_weights();

    let mut pendings: Vec<PendingState> = (0..groups.len())
        .map(|_| PendingState::default())
        .collect();
    let mut emissions: Vec<Vec<(f64, f64)>> = vec![Vec::new(); nq];
    let mut results: Vec<Vec<(u64, u64)>> = vec![Vec::new(); nq];

    while let Some((gi, rid)) =
        select_region(&groups, engine.policy, &scores, &weights, &clock)
    {
        // --- Tuple-level processing of the chosen region (§6). ---
        clock.charge_region_overhead();
        stats.regions_processed += 1;

        let new_by_query = process_region_tuples(
            &mut groups[gi],
            r,
            t,
            &part_r,
            &part_t,
            rid,
            &mut pendings[gi],
            engine.progressive_emission,
            &mut clock,
            &mut stats,
        );

        groups[gi].regions.region_mut(rid).processed = true;

        // Origins whose pending tuples must be re-examined this round.
        let mut recheck: Vec<u32> = vec![rid.0];
        recheck.extend(
            groups[gi].static_threats_out[rid.index()]
                .iter()
                .map(|e| e.peer.0),
        );

        // --- Discard regions / cells dominated by the new tuples. ---
        if engine.dominance_discard {
            discard_dominated(
                &mut groups[gi],
                rid,
                &new_by_query,
                &mut recheck,
                &mut clock,
                &mut stats,
            );
        }

        // --- Scheduling-graph maintenance (Algorithm 1). ---
        let out_peers: Vec<RegionId> = groups[gi]
            .dg
            .threats_out(rid)
            .iter()
            .map(|e| e.peer)
            .collect();
        groups[gi].dg.remove(rid);
        for p in out_peers {
            groups[gi].prog_cache[p.index()] = None;
        }
        groups[gi].prog_cache[rid.index()] = None;

        // --- Progressive result reporting (§6, Example 19). ---
        if engine.progressive_emission {
            recheck.sort_unstable();
            recheck.dedup();
            emit_safe(
                &mut groups[gi],
                &mut pendings[gi],
                &recheck,
                &mut scores,
                &mut emissions,
                &mut results,
                &mut clock,
                &mut stats,
            );
        }

        // --- Satisfaction feedback (Equation 11). ---
        if engine.feedback {
            let sats: Vec<f64> = scores.iter().map(|s| s.runtime_satisfaction()).collect();
            update_weights(&mut weights, &sats);
        }
    }

    if engine.progressive_emission {
        // Every region is processed or dead; all pending tuples must have
        // been emitted by the final recheck cascade.
        debug_assert!(pendings
            .iter()
            .all(|p| p.by_origin.values().all(|v| v.is_empty())));
    } else {
        // Blocking profile (S-JFSL): report every query's final skyline
        // only now that all processing has finished.
        for g in &groups {
            for (local, &global) in g.members.iter().enumerate() {
                let mut entries: Vec<(u64, u64, u64)> = g
                    .plan
                    .query_skyline_entries(caqe_types::QueryId(local as u16))
                    .iter()
                    .map(|(tag, _)| {
                        let tu = &g.arena[*tag as usize];
                        (*tag, tu.rid, tu.tid)
                    })
                    .collect();
                entries.sort_unstable();
                for (_, rid, tid) in entries {
                    clock.charge_emits(1);
                    stats.tuples_emitted += 1;
                    let ts = clock.now();
                    let u = scores[global.index()].record(ts);
                    emissions[global.index()].push((ts, u));
                    results[global.index()].push((rid, tid));
                }
            }
        }
    }

    let per_query = (0..nq)
        .map(|qi| {
            let qid = QueryId(qi as u16);
            let score = &scores[qi];
            QueryOutcome {
                query: qid,
                emissions: std::mem::take(&mut emissions[qi]),
                results: std::mem::take(&mut results[qi]),
                p_score: score.p_score(),
                satisfaction: score.final_satisfaction(),
            }
        })
        .collect();

    RunOutcome {
        strategy: name.to_string(),
        per_query,
        stats,
        virtual_seconds: clock.now(),
        wall_seconds: wall_start.elapsed().as_secs_f64(),
    }
}

/// Picks the next region per the scheduling policy: among dependency-graph
/// roots when any exist (falling back to all alive regions on cycles), the
/// one with the highest score.
fn select_region(
    groups: &[JoinGroup],
    policy: SchedulingPolicy,
    scores: &[QueryScore],
    weights: &[f64],
    clock: &SimClock,
) -> Option<(usize, RegionId)> {
    if policy == SchedulingPolicy::Fifo {
        for (gi, g) in groups.iter().enumerate() {
            if let Some(rid) = g.regions.regions().iter().find(|r| r.is_alive()).map(|r| r.id)
            {
                return Some((gi, rid));
            }
        }
        return None;
    }

    let mut best: Option<(usize, RegionId, f64)> = None;
    let mut any_alive = false;
    for roots_only in [true, false] {
        for (gi, g) in groups.iter().enumerate() {
            for reg in g.regions.regions() {
                if !reg.is_alive() {
                    continue;
                }
                any_alive = true;
                if roots_only && !g.dg.is_root(reg.id) {
                    continue;
                }
                let score = candidate_score(g, reg.id, policy, scores, weights, clock);
                if best.is_none_or(|(_, _, s)| score > s) {
                    best = Some((gi, reg.id, score));
                }
            }
        }
        if best.is_some() || !any_alive {
            break;
        }
        // No roots (mutual-domination cycle): fall back to all alive.
    }
    best.map(|(gi, rid, _)| (gi, rid))
}

/// Scores one candidate region under the active policy.
fn candidate_score(
    g: &JoinGroup,
    rid: RegionId,
    policy: SchedulingPolicy,
    scores: &[QueryScore],
    weights: &[f64],
    clock: &SimClock,
) -> f64 {
    let reg = g.regions.region(rid);
    // Dominance-potential tiebreaker: heavily overlapping regions can drive
    // every progressiveness estimate to zero at once. Preferring the region
    // whose *worst* corner sorts best breaks the tie productively — its
    // tuples dominate the most output space, triggering the discard cascade
    // that unblocks safe emission everywhere else.
    let potential: f64 = g
        .members
        .iter()
        .filter(|&&q| reg.serving.contains(q))
        .map(|&q| {
            let mask = g.regions.pref(q);
            let hi_score: f64 = mask.iter().map(|k| reg.bounds.hi()[k]).sum();
            weights[q.index()] / (1.0 + hi_score / mask.len() as f64)
        })
        .sum();
    match policy {
        SchedulingPolicy::ContractDriven => {
            // Equation 8 scores the expected utility of the region's
            // progressive output at its projected completion time; we rank
            // by benefit *per unit cost* so that, under utility functions
            // that are flat early on (e.g. C2's log decay), small
            // fast-emitting regions are preferred over monoliths.
            let ticks = estimate_ticks(reg, clock.model(), g.mapping.output_dims());
            let csm = region_csm(
                &g.regions,
                &g.dg,
                reg,
                scores,
                weights,
                clock,
                g.mapping.output_dims(),
            ) / ticks.max(1) as f64;
            csm + 1e-3 * potential
        }
        SchedulingPolicy::CountDriven => {
            // ProgXe+: estimated progressive output per tick, contract-blind.
            let ticks = estimate_ticks(reg, clock.model(), g.mapping.output_dims());
            let total: f64 = g
                .members
                .iter()
                .map(|&q| prog_est(&g.regions, &g.dg, reg, q))
                .sum();
            total / ticks.max(1) as f64 + 1e-3 * potential
        }
        SchedulingPolicy::Fifo => 0.0,
    }
}

/// Joins the region's cell pair, projects, and inserts surviving tuples into
/// the shared skyline plan. Returns, per member query (local order), the
/// output-space points newly admitted to that query's skyline.
#[allow(clippy::too_many_arguments)]
fn process_region_tuples(
    g: &mut JoinGroup,
    r: &Table,
    t: &Table,
    part_r: &Partitioning,
    part_t: &Partitioning,
    rid: RegionId,
    pending: &mut PendingState,
    progressive: bool,
    clock: &mut SimClock,
    stats: &mut Stats,
) -> Vec<Vec<Vec<Value>>> {
    let n_local = g.members.len();
    let mut new_by_query: Vec<Vec<Vec<Value>>> = vec![Vec::new(); n_local];

    let (r_cell, t_cell, serving) = {
        let reg = g.regions.region(rid);
        (reg.r_cell, reg.t_cell, reg.serving)
    };
    if serving.is_empty() {
        return new_by_query;
    }

    // Hash join within the cell pair (build on T side).
    let mut index: HashMap<u32, Vec<usize>> = HashMap::new();
    for &ti in &part_t.cell(t_cell).rows {
        index
            .entry(t.record(ti).key(g.join_col))
            .or_default()
            .push(ti);
    }

    let out_dims = g.mapping.output_dims() as u64;
    let r_rows: Vec<usize> = part_r.cell(r_cell).rows.clone();
    for ri in r_rows {
        clock.charge_join_probes(1);
        stats.join_probes += 1;
        let rrec = r.record(ri);
        let Some(matches) = index.get(&rrec.key(g.join_col)) else {
            continue;
        };
        for &ti in matches {
            clock.charge_join_probes(1);
            stats.join_probes += 1;
            let trec = t.record(ti);
            clock.charge_map_evals(out_dims);
            stats.map_evals += out_dims;
            stats.join_results += 1;
            let vals = g.mapping.apply(&rrec.vals, &trec.vals);

            // Cell-level lineage: which queries can this tuple still serve?
            let reg = g.regions.region(rid);
            let lineage = match reg.locate(&vals) {
                Some(c) => reg.cell_lineage(c).intersect(reg.serving),
                None => reg.serving,
            };
            if lineage.is_empty() {
                stats.tuples_discarded += 1;
                continue;
            }

            let tag = g.arena.len() as u64;
            g.arena.push(ArenaTuple {
                rid: rrec.id,
                tid: trec.id,
                vals: vals.clone(),
                origin: rid,
            });
            let ins = g.plan.insert(tag, &vals, clock, stats);

            // Register newly admitted skyline tuples as pending emissions.
            let mut pend_entries: Vec<(QueryId, Option<RegionId>)> = Vec::new();
            for (local, &in_sky) in ins.in_query_sky.iter().enumerate() {
                let global = g.members[local];
                if in_sky && serving.contains(global) && lineage.contains(global) {
                    pend_entries.push((global, None));
                    new_by_query[local].push(vals.clone());
                }
            }
            if progressive && !pend_entries.is_empty() {
                pending
                    .by_origin
                    .entry(rid.0)
                    .or_default()
                    .push(PendingTuple {
                        tag,
                        entries: pend_entries,
                    });
            }

            // Handle evictions: invalidated provisional results.
            if progressive {
                for (local_q, evicted) in &ins.query_evictions {
                    let global = g.members[local_q.index()];
                    for &etag in evicted {
                        let origin = g.arena[etag as usize].origin;
                        if let Some(list) = pending.by_origin.get_mut(&origin.0) {
                            for p in list.iter_mut() {
                                if p.tag == etag {
                                    p.entries.retain(|(q, _)| *q != global);
                                }
                            }
                            list.retain(|p| !p.entries.is_empty());
                        }
                    }
                }
            }
        }
    }
    new_by_query
}

/// Discards output cells (and whole regions) of threatened neighbors that
/// are dominated by newly materialized skyline tuples (§6).
fn discard_dominated(
    g: &mut JoinGroup,
    rid: RegionId,
    new_by_query: &[Vec<Vec<Value>>],
    recheck: &mut Vec<u32>,
    clock: &mut SimClock,
    stats: &mut Stats,
) {
    let edges: Vec<(RegionId, QuerySet)> = g
        .dg
        .threats_out(rid)
        .iter()
        .map(|e| (e.peer, e.queries))
        .collect();

    for (peer, w) in edges {
        let mut shrunk = false;
        let mut died = false;
        {
            let prefs: Vec<(usize, QueryId)> = g
                .members
                .iter()
                .enumerate()
                .map(|(l, &q)| (l, q))
                .collect();
            for (local, global) in prefs {
                if !w.contains(global) {
                    continue;
                }
                let mask = g.regions.pref(global);
                let news = &new_by_query[local];
                if news.is_empty() {
                    continue;
                }
                let reg = g.regions.region(peer);
                if reg.processed || !reg.serving.contains(global) {
                    continue;
                }
                // Find cells fully dominated by some new tuple.
                let mut kills: Vec<usize> = Vec::new();
                for (c, cell) in reg.grid().iter().enumerate() {
                    if !reg.cell_lineage(c).contains(global) {
                        continue;
                    }
                    for tuple in news {
                        clock.charge_dom_cmps(1);
                        stats.region_comparisons += 1;
                        if point_dominates_rect(tuple, cell.lo(), mask) {
                            kills.push(c);
                            break;
                        }
                    }
                }
                if kills.is_empty() {
                    continue;
                }
                let reg = g.regions.region_mut(peer);
                let single = QuerySet::singleton(global);
                for c in kills {
                    let dead = reg.kill_cell(c, single);
                    if !dead.is_empty() {
                        shrunk = true;
                    }
                }
                if reg.serving.is_empty() {
                    died = true;
                }
            }
        }
        if shrunk || died {
            g.prog_cache[peer.index()] = None;
            // The peer threatens fewer things now; its own targets may have
            // become safe.
            recheck.extend(g.static_threats_out[peer.index()].iter().map(|e| e.peer.0));
        }
        if died {
            stats.regions_pruned += 1;
            let out_peers: Vec<RegionId> = g
                .dg
                .threats_out(peer)
                .iter()
                .map(|e| e.peer)
                .collect();
            g.dg.remove(peer);
            for p in out_peers {
                g.prog_cache[p.index()] = None;
            }
            // A dead region never produces tuples: anything it threatened
            // must be rechecked.
            recheck.push(peer.0);
        }
    }
}

/// `p ≺_V` every point of the box whose lower corner is `lo`.
fn point_dominates_rect(p: &[Value], lo: &[Value], mask: caqe_types::DimMask) -> bool {
    let mut strict = false;
    for k in mask.iter() {
        if p[k] > lo[k] {
            return false;
        }
        if p[k] < lo[k] {
            strict = true;
        }
    }
    strict
}

/// Emits every pending tuple (of the given origin regions) that can no
/// longer be dominated by any alive region (§6, Example 19).
#[allow(clippy::too_many_arguments)]
fn emit_safe(
    g: &mut JoinGroup,
    pending: &mut PendingState,
    origins: &[u32],
    scores: &mut [QueryScore],
    emissions: &mut [Vec<(f64, f64)>],
    results: &mut [Vec<(u64, u64)>],
    clock: &mut SimClock,
    stats: &mut Stats,
) {
    for &origin in origins {
        let Some(mut list) = pending.by_origin.remove(&origin) else {
            continue;
        };
        let threats = &g.static_threats_in[origin as usize];
        let regions = &g.regions;
        let arena = &g.arena;
        list.retain_mut(|p| {
            let tuple = &arena[p.tag as usize];
            p.entries.retain_mut(|(q, witness)| {
                // Fast path: the cached witness still blocks this tuple —
                // region bounds are immutable, so alive + serving is enough.
                if let Some(w) = witness {
                    let reg = regions.region(*w);
                    if !reg.processed && reg.serving.contains(*q) {
                        return true;
                    }
                }
                let mask = regions.pref(*q);
                let mut blocker: Option<RegionId> = None;
                for e in threats {
                    if !e.queries.contains(*q) {
                        continue;
                    }
                    let reg = regions.region(e.peer);
                    if reg.processed || !reg.serving.contains(*q) {
                        continue;
                    }
                    clock.charge_dom_cmps(1);
                    stats.region_comparisons += 1;
                    if reg.bounds.may_dominate_point(&tuple.vals, mask) {
                        blocker = Some(e.peer);
                        break;
                    }
                }
                match blocker {
                    Some(b) => {
                        *witness = Some(b);
                        true
                    }
                    None => {
                        clock.charge_emits(1);
                        stats.tuples_emitted += 1;
                        let ts = clock.now();
                        let u = scores[q.index()].record(ts);
                        emissions[q.index()].push((ts, u));
                        results[q.index()].push((tuple.rid, tuple.tid));
                        false
                    }
                }
            });
            !p.entries.is_empty()
        });
        if !list.is_empty() {
            pending.by_origin.insert(origin, list);
        }
    }
}
