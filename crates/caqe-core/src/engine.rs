//! The contract-aware execution engine (§5.3–§6, Algorithm 1).
//!
//! One parametric engine implements CAQE and, through
//! [`EngineConfig`](crate::config::EngineConfig) presets, the shared-plan
//! S-JFSL baseline and the count-driven core of ProgXe+:
//!
//! 1. build quad-tree partitionings and per-join-group shared state
//!    (regions, dependency graph, min-max-cuboid skyline plan);
//! 2. loop: pick the next region per the scheduling policy; join its cell
//!    pair; insert surviving join tuples into the shared skyline plan;
//!    discard output cells/regions dominated by the new tuples; emit every
//!    pending result that is now guaranteed final; update the run-time
//!    satisfaction weights (Equation 11);
//! 3. stop when every region is processed or discarded; by then every
//!    query's final skyline has been emitted.

use crate::config::{EngineConfig, ExecConfig, SchedulingPolicy};
use crate::group::{build_groups_with_memos, build_one_group, ArenaTuple, JoinGroup};
use crate::ingest::prepare_inputs;
use crate::outcome::{QueryOutcome, RunOutcome};
use crate::plan::PreparedPlan;
use crate::session::{EventStream, SessionEvent};
use crate::workload::{QuerySpec, Workload};
use caqe_contract::{update_weights_masked, QueryScore};
use caqe_cuboid::{MinMaxCuboid, SharedSkylinePlan};
use caqe_data::Table;
use caqe_faults::{FaultPlan, InjectedPanic};
use caqe_operators::SortedJoinIndex;
use caqe_parallel::Threads;
use caqe_partition::Partitioning;
use caqe_regions::depgraph::Edge;
use caqe_regions::{
    buchta_estimate, estimate_ticks, prog_est, region_csm, OutputRegion, ReconciledEstimate,
};
use caqe_trace::{NoopSink, SpanKind, TraceBuffer, TraceEvent, TraceSink};
use caqe_types::ids::QuerySet;
use caqe_types::{DimMask, EngineError, PointId, QueryId, RegionId, SimClock, Stats, Value};
use std::panic::{catch_unwind, panic_any, AssertUnwindSafe};
use std::time::Instant;

/// Minimum R-rows per chunk in the parallel probe phase: below this the
/// per-worker thread-spawn cost outweighs the probe work, so small cells run
/// on fewer workers (or entirely inline). Affects only the chunk split,
/// never the result.
const PAR_MIN_ROWS: usize = 256;

/// A tuple waiting for its safety guarantee before progressive emission.
#[derive(Debug, Clone)]
struct PendingTuple {
    tag: u64,
    /// Per query the tuple is still pending for: an optional cached
    /// *witness* — an alive region known to threaten the tuple. While the
    /// witness stays alive (and serving the query), re-checking safety costs
    /// nothing; only when it dies is the threat list re-scanned.
    entries: Vec<(QueryId, Option<RegionId>)>,
}

/// Per-group mutable emission state.
///
/// Indexed densely by region id rather than through a hash map: traced code
/// paths iterate this state, and iteration-ordered maps are banned there
/// (see clippy.toml) — dense vectors make the order a pure function of the
/// input for free, and drop the hashing from the hot path.
struct PendingState {
    /// Pending tuples per origin region (one slot per region id).
    by_origin: Vec<Vec<PendingTuple>>,
}

/// Runs the engine over a workload, panicking on ingestion failure.
///
/// `start_ticks` offsets the virtual clock, letting sequential per-query
/// baselines (ProgXe+) continue a shared timeline across invocations.
/// Prefer [`try_run_engine`] where corrupt input must be handled.
pub fn run_engine(
    name: &str,
    r: &Table,
    t: &Table,
    workload: &Workload,
    exec: &ExecConfig,
    engine: &EngineConfig,
    start_ticks: u64,
) -> RunOutcome {
    match try_run_engine(name, r, t, workload, exec, engine, start_ticks) {
        Ok(outcome) => outcome,
        Err(e) => panic!("engine run failed: {e}"),
    }
}

/// Fallible [`run_engine`]: corrupt input under the `Reject` validation
/// policy surfaces as [`EngineError::CorruptInput`] instead of a panic.
pub fn try_run_engine(
    name: &str,
    r: &Table,
    t: &Table,
    workload: &Workload,
    exec: &ExecConfig,
    engine: &EngineConfig,
    start_ticks: u64,
) -> Result<RunOutcome, EngineError> {
    try_run_engine_traced(
        name,
        r,
        t,
        workload,
        exec,
        engine,
        start_ticks,
        &mut NoopSink,
    )
}

/// The stable lowercase policy label used in trace decision events.
fn policy_label(policy: SchedulingPolicy) -> &'static str {
    match policy {
        SchedulingPolicy::ContractDriven => "contract",
        SchedulingPolicy::CountDriven => "count",
        SchedulingPolicy::Fifo => "fifo",
    }
}

/// [`run_engine`] with a trace sink observing every scheduler decision,
/// emission, estimator audit and phase span.
///
/// Tracing is strictly passive: every recording site (including the
/// recomputation feeding it) sits under `if S::ENABLED`, reads the clock
/// but never charges it, and with [`NoopSink`] monomorphizes away entirely —
/// the outcome (stats, ticks, results) is bit-identical with tracing on,
/// off, or compiled out, at every `parallelism` setting.
#[allow(clippy::too_many_arguments)]
pub fn run_engine_traced<S: TraceSink>(
    name: &str,
    r: &Table,
    t: &Table,
    workload: &Workload,
    exec: &ExecConfig,
    engine: &EngineConfig,
    start_ticks: u64,
    sink: &mut S,
) -> RunOutcome {
    match try_run_engine_traced(name, r, t, workload, exec, engine, start_ticks, sink) {
        Ok(outcome) => outcome,
        Err(e) => panic!("engine run failed: {e}"),
    }
}

/// Fallible [`run_engine_traced`]; see [`try_run_engine`].
#[allow(clippy::too_many_arguments)]
pub fn try_run_engine_traced<S: TraceSink>(
    name: &str,
    r: &Table,
    t: &Table,
    workload: &Workload,
    exec: &ExecConfig,
    engine: &EngineConfig,
    start_ticks: u64,
    sink: &mut S,
) -> Result<RunOutcome, EngineError> {
    try_run_engine_online_traced(
        name,
        r,
        t,
        workload,
        &EventStream::empty(),
        exec,
        engine,
        start_ticks,
        sink,
    )
}

/// Runs the engine over an online session: the initial `workload` plus a
/// deterministic [`EventStream`] of admissions and departures, panicking on
/// failure. With an empty stream this is exactly [`run_engine`],
/// byte-for-byte (including the recorded trace).
#[allow(clippy::too_many_arguments)]
pub fn run_engine_online(
    name: &str,
    r: &Table,
    t: &Table,
    workload: &Workload,
    events: &EventStream,
    exec: &ExecConfig,
    engine: &EngineConfig,
    start_ticks: u64,
) -> RunOutcome {
    match try_run_engine_online_traced(
        name,
        r,
        t,
        workload,
        events,
        exec,
        engine,
        start_ticks,
        &mut NoopSink,
    ) {
        Ok(outcome) => outcome,
        Err(e) => panic!("engine run failed: {e}"),
    }
}

/// Fallible [`run_engine_online`] without tracing.
#[allow(clippy::too_many_arguments)]
pub fn try_run_engine_online(
    name: &str,
    r: &Table,
    t: &Table,
    workload: &Workload,
    events: &EventStream,
    exec: &ExecConfig,
    engine: &EngineConfig,
    start_ticks: u64,
) -> Result<RunOutcome, EngineError> {
    try_run_engine_online_traced(
        name,
        r,
        t,
        workload,
        events,
        exec,
        engine,
        start_ticks,
        &mut NoopSink,
    )
}

/// The event-aware engine core (see the module doc of [`crate::session`]).
///
/// A non-empty stream switches the engine into *session mode*: every join
/// tuple is materialized into the group arena (so a later admission can
/// backfill its subspace from the complete history), fully pruned regions
/// are kept as revivable husks, and events are applied sequentially on the
/// main scheduling thread at the first loop iteration whose virtual clock
/// has reached their scheduled tick — the trace therefore stays
/// bit-identical at every `parallelism` setting.
#[allow(clippy::too_many_arguments)]
pub fn try_run_engine_online_traced<S: TraceSink>(
    name: &str,
    r: &Table,
    t: &Table,
    workload: &Workload,
    events: &EventStream,
    exec: &ExecConfig,
    engine: &EngineConfig,
    start_ticks: u64,
    sink: &mut S,
) -> Result<RunOutcome, EngineError> {
    try_run_engine_online_prepared(
        name,
        r,
        t,
        workload,
        events,
        exec,
        engine,
        start_ticks,
        None,
        sink,
    )
}

/// [`try_run_engine_online_traced`] with an optional warm-start
/// [`PreparedPlan`]. A plan is only consumed when it provably describes
/// this exact run — matching table and config fingerprints *and* a strict
/// no-op ingestion (fault plans or validation rewrites disqualify it);
/// otherwise the engine silently takes the cold path. Either way the run
/// is observationally bit-identical: partitionings clone instead of
/// rebuild, memoized groups replay their exact tick/counter/trace deltas.
#[allow(clippy::too_many_arguments)]
pub fn try_run_engine_online_prepared<S: TraceSink>(
    name: &str,
    r: &Table,
    t: &Table,
    workload: &Workload,
    events: &EventStream,
    exec: &ExecConfig,
    engine: &EngineConfig,
    start_ticks: u64,
    plan: Option<&PreparedPlan>,
    sink: &mut S,
) -> Result<RunOutcome, EngineError> {
    let wall_start = Instant::now();
    // Reject streams whose tie-break semantics are unsatisfiable (a
    // departure applying before its query's admission) before any work.
    events.validate(workload.len())?;
    let session_mode = !events.is_empty();
    let threads = Threads::from_config(exec.parallelism);
    let mut clock = SimClock::new(exec.cost_model);
    clock.advance(start_ticks);
    let mut stats = Stats::new();
    stats.ensure_queries(workload.len());
    if S::ENABLED {
        sink.record(TraceEvent::Meta {
            strategy: name.to_string(),
            queries: workload.len(),
            ticks_per_second: exec.cost_model.ticks_per_second,
            start_tick: start_ticks,
        });
    }

    // Ingestion: fault-plan corruption (if any) followed by validation.
    // A strict no-op — no copy, no tick, no event — on clean no-fault input.
    let raw_r: *const Table = r;
    let raw_t: *const Table = t;
    let prep = prepare_inputs(r, t, exec, start_ticks, sink)?;
    stats.ingest_quarantined += prep.quarantined();
    stats.ingest_clamped += prep.clamped();
    let r = prep.r_table(r);
    let t = prep.t_table(t);

    // Warm-start gate: the plan is consumed only when ingestion was a
    // strict no-op (the tables the plan fingerprints are the tables the
    // run will see) and every fingerprint matches. Fingerprinting scans
    // the tables once — far cheaper than the quad-tree + region builds it
    // saves — and a `false` here silently selects the cold path.
    let warm = plan.filter(|p| {
        std::ptr::eq(r as *const Table, raw_r)
            && std::ptr::eq(t as *const Table, raw_t)
            && p.matches_inputs(r, t, exec)
    });

    // The two partitionings are independent; the quad-tree build is not
    // charged to the virtual clock, so running them concurrently is free of
    // determinism concerns. A warm start clones the memoized partitionings
    // instead — `Partitioning::build` is deterministic, so the clone is the
    // value the build would produce.
    let (part_r, part_t) = match warm {
        Some(p) => (p.part_r.clone(), p.part_t.clone()),
        None => caqe_parallel::join2(
            threads,
            || Partitioning::build(r, exec.quadtree),
            || Partitioning::build(t, exec.quadtree),
        ),
    };
    if S::ENABLED {
        // Degenerate span by design: the quad-tree build charges no ticks.
        sink.record(TraceEvent::Span {
            kind: SpanKind::PartitionBuild,
            group: None,
            region: None,
            start_tick: start_ticks,
            end_tick: clock.ticks(),
        });
    }

    // Blind blocking pipelines never consult the dependency graph; everyone
    // else needs it for scheduling, discarding or emission safety.
    let needs_dg = engine.progressive_emission
        || engine.dominance_discard
        || engine.policy != SchedulingPolicy::Fifo;
    // Phase accounting: the breakdown is charged at the main-thread phase
    // boundaries (worker deltas are merged inside), so it is identical for
    // any sink and any thread count.
    let build_t0 = clock.ticks();
    let build_d0 = stats.dom_comparisons + stats.region_comparisons;
    let mut groups = build_groups_with_memos(
        workload,
        &part_r,
        &part_t,
        exec,
        engine.coarse_pruning,
        needs_dg,
        session_mode,
        warm.map_or(&[][..], |p| p.memos.as_slice()),
        threads,
        &mut clock,
        &mut stats,
        sink,
    );
    stats.build_ticks += clock.ticks() - build_t0;
    stats.build_dom_cmps += stats.dom_comparisons + stats.region_comparisons - build_d0;

    let nq = workload.len();
    let mut scores: Vec<QueryScore> = Vec::with_capacity(nq);
    for (qi, spec) in workload.queries().iter().enumerate() {
        let qid = QueryId(qi as u16);
        // Initial cardinality estimate: Buchta over the expected join size
        // of the regions serving the query.
        let join_est: f64 = groups
            .iter()
            .flat_map(|g| g.regions.regions())
            .filter(|reg| reg.serving.contains(qid))
            .map(|reg| reg.est_join)
            .sum();
        let est = buchta_estimate(join_est.max(1.0), spec.pref.len());
        scores.push(QueryScore::new(spec.contract.clone(), est));
    }
    let mut weights = workload.initial_weights();
    // Liveness of every query slot ever seen: initial queries start active,
    // admitted ones are appended active, departures flip their slot off
    // (slots are never reused — global ids stay stable).
    let mut active: Vec<bool> = vec![true; nq];

    let mut pendings: Vec<PendingState> = groups
        .iter()
        .map(|g| PendingState {
            by_origin: vec![Vec::new(); g.regions.len()],
        })
        .collect();
    let mut emissions: Vec<Vec<(f64, f64)>> = vec![Vec::new(); nq];
    let mut results: Vec<Vec<(u64, u64)>> = vec![Vec::new(); nq];
    // FIFO scan cursors: first index per group that may still be alive.
    // Liveness is monotone (processed/discarded regions never revive), so
    // the skipped prefix never needs rescanning. (Backoff is temporary and
    // handled by a forward scan from the cursor, never by the cursor.)
    let mut fifo_cursors: Vec<usize> = vec![0; groups.len()];
    // Per-region recovery state: failed attempts and virtual-tick backoff.
    let mut health: Vec<RegionHealth> = groups
        .iter()
        .map(|g| RegionHealth::new(g.regions.len()))
        .collect();
    // Degradation: the earliest tick the satisfaction floor is enforced
    // (and, after each shed, re-enforced) at.
    let mut next_shed_check = start_ticks.saturating_add(exec.degradation.grace_ticks);
    // Online session cursor: events are applied in stream order, each at
    // the first loop iteration whose clock has reached its scheduled tick.
    let event_list = events.events();
    let mut next_ev = 0usize;

    loop {
        // --- Online session events (admission / departure). Processed
        // sequentially on the main scheduling thread, so application ticks
        // are thread-invariant. ---
        while next_ev < event_list.len() && event_list[next_ev].at() <= clock.ticks() {
            let ev_idx = next_ev as u64;
            match event_list[next_ev].clone() {
                SessionEvent::Admit { spec, .. } => apply_admit(
                    spec,
                    ev_idx,
                    &part_r,
                    &part_t,
                    exec,
                    engine,
                    needs_dg,
                    &mut groups,
                    &mut pendings,
                    &mut fifo_cursors,
                    &mut health,
                    &mut scores,
                    &mut weights,
                    &mut active,
                    &mut emissions,
                    &mut results,
                    &mut clock,
                    &mut stats,
                    sink,
                )?,
                SessionEvent::Depart { query, .. } => apply_depart(
                    query,
                    engine,
                    &mut groups,
                    &mut pendings,
                    &mut scores,
                    &mut active,
                    &mut emissions,
                    &mut results,
                    &mut clock,
                    &mut stats,
                    sink,
                )?,
            }
            next_ev += 1;
        }

        // --- Contract-aware degradation (DESIGN.md §13): when the mean
        // running satisfaction slips below the configured floor, shed the
        // lowest-CSM root region (Alg. 1 ranking, live Eq. 11 weights)
        // instead of letting every query stall behind it. ---
        if engine.progressive_emission
            && exec.degradation.enabled()
            && clock.ticks() >= next_shed_check
        {
            // Restricted to active *unfinished* queries: a query whose every
            // serving region is processed or dead is as satisfied as it will
            // ever be, and its (typically high) score must not mask a
            // starving peer. `None` — nothing unfinished — skips the check.
            let mean_sat = shed_mean_satisfaction(&groups, &scores, &active);
            if let Some(mean_sat) = mean_sat.filter(|m| *m < exec.degradation.sat_floor) {
                if let Some((sgi, srid)) = pick_shed_victim(&groups, &scores, &weights, &clock) {
                    stats.regions_shed += 1;
                    if S::ENABLED {
                        sink.record(TraceEvent::RegionShed {
                            tick: clock.ticks(),
                            group: sgi as u32,
                            region: srid.0,
                            satisfaction: mean_sat,
                        });
                    }
                    let mut recheck = retire_region(&mut groups[sgi], srid);
                    recheck.sort_unstable();
                    recheck.dedup();
                    emit_safe(
                        &mut groups[sgi],
                        &mut pendings[sgi],
                        &recheck,
                        &mut scores,
                        &mut emissions,
                        &mut results,
                        &mut clock,
                        &mut stats,
                        sink,
                    );
                    next_shed_check = clock.ticks().saturating_add(exec.degradation.grace_ticks);
                }
            }
        }

        let picked = select_region(
            &groups,
            &pendings,
            engine.policy,
            &scores,
            &weights,
            &clock,
            &mut fifo_cursors,
            &health,
            &exec.faults,
        );
        let (gi, rid, score) = match picked {
            Some(pick) => pick,
            None => {
                // Nothing schedulable right now: either all alive regions
                // are backing off after failed attempts, or the engine is
                // idle waiting for a future session event. Advance the
                // virtual clock to the earliest of the two wake-ups and
                // rescan; exit only when neither exists.
                let wake = earliest_wakeup(&groups, &health, clock.ticks());
                let next_event = event_list.get(next_ev).map(|e| e.at());
                let target = match (wake, next_event) {
                    (Some(w), Some(e)) => Some(w.min(e)),
                    (Some(w), None) => Some(w),
                    (None, other) => other,
                };
                match target {
                    Some(tick) => {
                        clock.advance(tick.saturating_sub(clock.ticks()));
                        continue;
                    }
                    None => break,
                }
            }
        };
        // Trace the decision and capture the schedule-time estimates for the
        // completion-side audit. Everything here is a pure read of engine
        // state: the clock is consulted, never charged.
        let sched_tick = clock.ticks();
        let join_results_before = stats.join_results;
        let mut audit = ReconciledEstimate::default();
        if S::ENABLED {
            let g = &groups[gi];
            let reg = g.regions.region(rid);
            let out_dims = g.mapping.output_dims();
            audit.est_join = reg.est_join;
            audit.est_skyline = g
                .members
                .iter()
                .filter(|&&q| reg.serving.contains(q))
                .map(|&q| buchta_estimate(reg.est_join.max(1.0), g.regions.pref(q).len()))
                .sum();
            audit.est_ticks =
                perturbed_est_ticks(&exec.faults, gi as u32, reg, clock.model(), out_dims);
            let prog: f64 = g
                .members
                .iter()
                .map(|&q| prog_est(&g.regions, &g.dg, reg, q))
                .sum();
            let csm = region_csm(&g.regions, &g.dg, reg, &scores, &weights, &clock, out_dims);
            sink.record(TraceEvent::Decision {
                tick: sched_tick,
                group: gi as u32,
                region: rid.0,
                policy: policy_label(engine.policy),
                root: g.dg.is_root(rid),
                score,
                csm,
                prog_est: prog,
                est_ticks: audit.est_ticks,
                weights: weights.clone(),
            });
            // One estimator-fault record per *scheduled* region (never per
            // scored candidate — that would flood the trace).
            let est_factor = exec.faults.estimator_factor(gi as u32, rid.0);
            if est_factor != 1.0 {
                sink.record(TraceEvent::FaultInjected {
                    tick: sched_tick,
                    group: gi as u32,
                    region: rid.0,
                    kind: "estimator",
                    factor: est_factor,
                });
            }
        }

        // --- Tuple-level processing of the chosen region (§6), isolated
        // against worker panics — injected by the fault plan or genuine. ---
        clock.charge_region_overhead();
        let attempt = health[gi].attempts[rid.index()] + 1;
        let arena_before = groups[gi].arena.len();
        let inject = exec.faults.panics(gi as u32, rid.0, attempt);
        if inject && S::ENABLED {
            sink.record(TraceEvent::FaultInjected {
                tick: clock.ticks(),
                group: gi as u32,
                region: rid.0,
                kind: "panic",
                factor: 1.0,
            });
        }
        let unit = catch_unwind(AssertUnwindSafe(|| {
            if inject {
                panic_any(InjectedPanic {
                    group: gi as u32,
                    region: rid.0,
                    attempt,
                });
            }
            process_region_tuples(
                &mut groups[gi],
                r,
                t,
                &part_r,
                &part_t,
                rid,
                &mut pendings[gi],
                engine.progressive_emission,
                session_mode,
                threads,
                &mut clock,
                &mut stats,
            )
        }));
        let new_by_query = match unit {
            Ok(out) => out,
            Err(payload) => {
                drop(payload);
                health[gi].attempts[rid.index()] = attempt;
                // A unit that mutated shared state before dying cannot be
                // re-run (its tuples would double-insert), so it skips the
                // retry budget and is quarantined at once. Injected panics
                // fire at unit entry and therefore always retry cleanly.
                let dirty = groups[gi].arena.len() != arena_before;
                if dirty || attempt >= exec.recovery.max_attempts {
                    stats.regions_quarantined += 1;
                    if S::ENABLED {
                        sink.record(TraceEvent::RegionQuarantined {
                            tick: clock.ticks(),
                            group: gi as u32,
                            region: rid.0,
                            attempts: attempt,
                        });
                    }
                    let mut recheck = retire_region(&mut groups[gi], rid);
                    if engine.progressive_emission {
                        recheck.sort_unstable();
                        recheck.dedup();
                        emit_safe(
                            &mut groups[gi],
                            &mut pendings[gi],
                            &recheck,
                            &mut scores,
                            &mut emissions,
                            &mut results,
                            &mut clock,
                            &mut stats,
                            sink,
                        );
                    }
                } else {
                    stats.region_retries += 1;
                    let backoff = exec.recovery.backoff_ticks(attempt);
                    health[gi].not_before[rid.index()] = clock.ticks() + backoff;
                    if S::ENABLED {
                        sink.record(TraceEvent::RegionRetry {
                            tick: clock.ticks(),
                            group: gi as u32,
                            region: rid.0,
                            attempt,
                            backoff_ticks: backoff,
                        });
                    }
                }
                continue;
            }
        };
        stats.regions_processed += 1;
        groups[gi].regions.region_mut(rid).processed = true;

        // --- Injected cost spike: actual ticks blow past the estimate. ---
        if let Some(factor) = exec.faults.cost_spike(gi as u32, rid.0) {
            let elapsed = clock.ticks() - sched_tick;
            let extra = (elapsed as f64 * (factor - 1.0)).max(0.0).round() as u64;
            clock.advance(extra);
            if S::ENABLED {
                sink.record(TraceEvent::FaultInjected {
                    tick: clock.ticks(),
                    group: gi as u32,
                    region: rid.0,
                    kind: "cost_spike",
                    factor,
                });
            }
        }

        if S::ENABLED {
            let completed_tick = clock.ticks();
            audit.actual_join = stats.join_results - join_results_before;
            audit.actual_skyline = new_by_query.iter().map(|v| v.len() as u64).sum();
            audit.actual_ticks = completed_tick - sched_tick;
            sink.record(TraceEvent::Span {
                kind: SpanKind::Region,
                group: Some(gi as u32),
                region: Some(rid.0),
                start_tick: sched_tick,
                end_tick: completed_tick,
            });
            sink.record(TraceEvent::EstimateAudit {
                scheduled_tick: sched_tick,
                completed_tick,
                group: gi as u32,
                region: rid.0,
                estimate: audit,
            });
        }

        // Origins whose pending tuples must be re-examined this round.
        let mut recheck: Vec<u32> = vec![rid.0];
        recheck.extend(
            groups[gi].static_threats_out[rid.index()]
                .iter()
                .map(|e| e.peer.0),
        );

        // --- Discard regions / cells dominated by the new tuples. ---
        if engine.dominance_discard {
            discard_dominated(
                &mut groups[gi],
                rid,
                &new_by_query,
                &mut recheck,
                &mut clock,
                &mut stats,
            );
        }

        // --- Scheduling-graph maintenance (Algorithm 1). ---
        let out_peers: Vec<RegionId> = groups[gi]
            .dg
            .threats_out(rid)
            .iter()
            .map(|e| e.peer)
            .collect();
        groups[gi].dg.remove(rid);
        for p in out_peers {
            groups[gi].prog_cache[p.index()] = None;
        }
        groups[gi].prog_cache[rid.index()] = None;

        // --- Progressive result reporting (§6, Example 19). ---
        if engine.progressive_emission {
            recheck.sort_unstable();
            recheck.dedup();
            emit_safe(
                &mut groups[gi],
                &mut pendings[gi],
                &recheck,
                &mut scores,
                &mut emissions,
                &mut results,
                &mut clock,
                &mut stats,
                sink,
            );
        }

        // --- Satisfaction feedback (Equation 11), over the active query
        // set. With every slot active this is exactly the historical
        // `update_weights`, bit-for-bit. ---
        if engine.feedback {
            let sats: Vec<f64> = scores.iter().map(|s| s.runtime_satisfaction()).collect();
            update_weights_masked(&mut weights, &sats, &active);
        }
    }

    if engine.progressive_emission {
        // Every region is processed or dead; all pending tuples must have
        // been emitted by the final recheck cascade.
        debug_assert!(pendings
            .iter()
            .all(|p| p.by_origin.iter().all(|v| v.is_empty())));
    } else {
        // Blocking profile (S-JFSL): report every query's final skyline
        // only now that all processing has finished.
        let emit_t0 = clock.ticks();
        for g in &groups {
            for (local, &global) in g.members.iter().enumerate() {
                let mut entries: Vec<(u64, u32, u64, u64)> = g
                    .plan
                    .query_skyline_tags(caqe_types::QueryId(local as u16))
                    .iter()
                    .map(|&tag| {
                        let tu = &g.arena[tag as usize];
                        (tag, tu.origin.0, tu.rid, tu.tid)
                    })
                    .collect();
                entries.sort_unstable();
                for (tag, origin, rid, tid) in entries {
                    clock.charge_emits(1);
                    let ts = clock.now();
                    let u = scores[global.index()].record(ts);
                    stats.record_emission(global.index(), u);
                    emissions[global.index()].push((ts, u));
                    results[global.index()].push((rid, tid));
                    if S::ENABLED {
                        sink.record(TraceEvent::Emission {
                            tick: clock.ticks(),
                            query: global.0,
                            seq: results[global.index()].len() as u64,
                            rid: origin,
                            tid: tag,
                            utility: u,
                            satisfaction: scores[global.index()].runtime_satisfaction(),
                        });
                    }
                }
            }
        }
        stats.emit_ticks += clock.ticks() - emit_t0;
    }

    let per_query = (0..scores.len())
        .map(|qi| {
            let qid = QueryId(qi as u16);
            let score = &scores[qi];
            QueryOutcome {
                query: qid,
                emissions: std::mem::take(&mut emissions[qi]),
                results: std::mem::take(&mut results[qi]),
                p_score: score.p_score(),
                satisfaction: score.final_satisfaction(),
            }
        })
        .collect();

    Ok(RunOutcome {
        strategy: name.to_string(),
        per_query,
        stats,
        virtual_seconds: clock.now(),
        wall_seconds: wall_start.elapsed().as_secs_f64(),
    })
}

/// Per-region recovery bookkeeping for one join group.
struct RegionHealth {
    /// Failed processing attempts so far (0 = never failed).
    attempts: Vec<u32>,
    /// Earliest virtual tick the region may be rescheduled at.
    not_before: Vec<u64>,
}

impl RegionHealth {
    fn new(n: usize) -> Self {
        RegionHealth {
            attempts: vec![0; n],
            not_before: vec![0; n],
        }
    }

    /// Whether the region is serving a backoff penalty at `now`.
    fn blocked(&self, rid: RegionId, now: u64) -> bool {
        self.not_before[rid.index()] > now
    }
}

/// The engine-side cost projection for a region, with any estimator
/// perturbation fault applied (DESIGN.md §13). A factor of exactly 1.0 —
/// the no-fault case — takes the untouched estimate, keeping the golden
/// path bit-identical.
fn perturbed_est_ticks(
    faults: &FaultPlan,
    gi: u32,
    reg: &OutputRegion,
    model: &caqe_types::CostModel,
    out_dims: usize,
) -> u64 {
    let base = estimate_ticks(reg, model, out_dims);
    let factor = faults.estimator_factor(gi, reg.id.0);
    if factor == 1.0 {
        base
    } else {
        ((base as f64 * factor).ceil() as u64).max(1)
    }
}

/// The earliest backoff expiry among alive-but-blocked regions, if any
/// region is still alive and every alive region is blocked at `now`.
fn earliest_wakeup(groups: &[JoinGroup], health: &[RegionHealth], now: u64) -> Option<u64> {
    let mut wake: Option<u64> = None;
    for (gi, g) in groups.iter().enumerate() {
        for reg in g.regions.regions() {
            if !reg.is_alive() {
                continue;
            }
            let nb = health[gi].not_before[reg.id.index()];
            if nb > now && wake.map_or(true, |w| nb < w) {
                wake = Some(nb);
            }
        }
    }
    wake
}

/// Mean running satisfaction over the active queries that are still
/// *unfinished* — served by at least one alive region. Returns `None` when
/// no such query exists, which disables the shed check entirely: a finished
/// query's (typically high) satisfaction must never mask a starving peer,
/// and with nothing unfinished there is nothing shedding could help.
fn shed_mean_satisfaction(
    groups: &[JoinGroup],
    scores: &[QueryScore],
    active: &[bool],
) -> Option<f64> {
    let mut n = 0usize;
    let mut sum = 0.0f64;
    for (qi, score) in scores.iter().enumerate() {
        if !active.get(qi).copied().unwrap_or(false) {
            continue;
        }
        let qid = QueryId(qi as u16);
        let unfinished = groups.iter().any(|g| {
            g.regions
                .regions()
                .iter()
                .any(|reg| reg.is_alive() && reg.serving.contains(qid))
        });
        if unfinished {
            n += 1;
            sum += score.runtime_satisfaction();
        }
    }
    (n > 0).then(|| sum / n as f64)
}

/// Inserts `q` into the static-snapshot edge toward `peer`, creating the
/// edge if absent (the snapshot twin of the dependency graph's patch rule).
fn add_query_to_static_edge(edges: &mut Vec<Edge>, peer: RegionId, q: QueryId) {
    match edges.iter_mut().find(|e| e.peer == peer) {
        Some(e) => {
            e.queries.insert(q);
        }
        None => edges.push(Edge {
            peer,
            queries: QuerySet::singleton(q),
        }),
    }
}

/// Extends the immutable threat snapshots for a newly admitted query: the
/// same geometric rule as `DependencyGraph::build`, evaluated over *all*
/// ordered region pairs regardless of liveness — a husk that is dead today
/// may be revived by a later admission, and the emission-safety test reads
/// these snapshots long after the scheduling graph has shed its nodes.
fn patch_static_threats(g: &mut JoinGroup, q: QueryId, clock: &mut SimClock, stats: &mut Stats) {
    let m = g.regions.pref(q).0;
    let n = g.regions.len();
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            clock.charge_dom_cmps(1);
            stats.region_comparisons += 1;
            let (ri, rj) = (&g.regions.regions()[i], &g.regions.regions()[j]);
            let d = ri.bounds.dims();
            let (mut weak, mut strict) = (0u32, 0u32);
            for k in 0..d {
                let (a, b) = (ri.bounds.lo()[k], rj.bounds.hi()[k]);
                if a <= b {
                    weak |= 1 << k;
                }
                if a < b {
                    strict |= 1 << k;
                }
            }
            if weak & m == m && strict & m != 0 {
                add_query_to_static_edge(&mut g.static_threats_out[i], RegionId(j as u32), q);
                add_query_to_static_edge(&mut g.static_threats_in[j], RegionId(i as u32), q);
            }
        }
    }
}

/// Applies one admission event: assigns the next global query slot, patches
/// (or, on the comparison arm, rebuilds) the owning group's shared state,
/// backfills the arrival's skyline from the materialized history, and
/// registers the backfilled results for progressive emission.
#[allow(clippy::too_many_arguments)]
fn apply_admit<S: TraceSink>(
    spec: QuerySpec,
    ev_idx: u64,
    part_r: &Partitioning,
    part_t: &Partitioning,
    exec: &ExecConfig,
    engine: &EngineConfig,
    needs_dg: bool,
    groups: &mut Vec<JoinGroup>,
    pendings: &mut Vec<PendingState>,
    fifo_cursors: &mut Vec<usize>,
    health: &mut Vec<RegionHealth>,
    scores: &mut Vec<QueryScore>,
    weights: &mut Vec<f64>,
    active: &mut Vec<bool>,
    emissions: &mut Vec<Vec<(f64, f64)>>,
    results: &mut Vec<Vec<(u64, u64)>>,
    clock: &mut SimClock,
    stats: &mut Stats,
    sink: &mut S,
) -> Result<(), EngineError> {
    // Injected admission panics fire *before* any state mutation, so every
    // failed attempt is a clean retry after a deterministic virtual backoff.
    let mut attempt = 1u32;
    while attempt <= exec.recovery.max_attempts && exec.faults.admit_panics(ev_idx, attempt) {
        if S::ENABLED {
            sink.record(TraceEvent::FaultInjected {
                tick: clock.ticks(),
                group: u32::MAX,
                region: u32::MAX,
                kind: "admit_panic",
                factor: 1.0,
            });
        }
        clock.advance(exec.recovery.backoff_ticks(attempt));
        attempt += 1;
    }

    if scores.len() >= 64 {
        return Err(EngineError::BadEventSpec {
            fragment: format!("admit event #{ev_idx}"),
            reason: "session exceeds the 64-query capacity".to_string(),
        });
    }
    let q = QueryId(scores.len() as u16);

    let slot = groups
        .iter()
        .position(|g| g.join_col == spec.join_col && g.mapping == spec.mapping);
    // Admission-time plan patching / group building is build-phase work.
    let build_t0 = clock.ticks();
    let build_d0 = stats.dom_comparisons + stats.region_comparisons;
    match slot {
        Some(gi) => {
            // Patch the existing group in place: Def. 7 admission is purely
            // additive on the lattice, Def. 9 edges gain the new query's
            // bits, and unprocessed husks are revived with every cell alive
            // (conservative lineage — dominated extras never reach a final
            // skyline).
            let g = &mut groups[gi];
            g.members.push(q);
            g.regions.admit_query(q, spec.pref);
            if needs_dg {
                g.dg.admit_query(&g.regions, q, clock, stats);
                patch_static_threats(g, q, clock, stats);
            }
            if exec.rebuild_on_admit {
                // Comparison arm: rebuild the whole plan from the complete
                // materialized history instead of patching the lattice.
                let prefs: Vec<DimMask> = g.members.iter().map(|&m| g.regions.pref(m)).collect();
                let act: Vec<bool> = g
                    .members
                    .iter()
                    .map(|&m| m == q || active.get(m.index()).copied().unwrap_or(false))
                    .collect();
                let mut plan = SharedSkylinePlan::new(
                    MinMaxCuboid::build_masked(&prefs, &act),
                    exec.assume_dva,
                );
                if let Some((lo, hi)) = g.regions.mapped_bounds() {
                    plan.enable_sig_cache(&lo, &hi);
                }
                if !g.points.is_empty() {
                    plan.insert_batch(
                        0,
                        g.points.as_flat(),
                        g.points.stride(),
                        Threads::from_config(exec.parallelism),
                        clock,
                        stats,
                    );
                }
                g.plan = plan;
            } else {
                g.plan.admit_query(spec.pref, &g.points, clock, stats);
            }
            // Serving sets changed everywhere: every cached progressiveness
            // estimate and the FIFO liveness cursor are stale (revived
            // husks break the cursor's monotone-death assumption).
            g.prog_cache = vec![None; g.regions.len()];
            fifo_cursors[gi] = 0;
        }
        None => {
            // The arrival opens a brand-new join group, built sequentially
            // on the main scheduling thread against the shared clock.
            let gi = groups.len() as u32;
            let mut wclock = SimClock::new(*clock.model());
            let mut wstats = Stats::new();
            let mut buf = TraceBuffer::new(S::ENABLED);
            let group = build_one_group(
                part_r,
                part_t,
                exec,
                engine.coarse_pruning,
                needs_dg,
                true,
                gi,
                spec.join_col,
                spec.mapping.clone(),
                vec![(q, spec.pref)],
                &mut wclock,
                &mut wstats,
                &mut buf,
            );
            buf.record(TraceEvent::Span {
                kind: SpanKind::GroupBuild,
                group: Some(gi),
                region: None,
                start_tick: 0,
                end_tick: wclock.ticks(),
            });
            buf.merge_into(sink, clock.ticks());
            clock.advance(wclock.ticks());
            *stats += wstats;
            pendings.push(PendingState {
                by_origin: vec![Vec::new(); group.regions.len()],
            });
            fifo_cursors.push(0);
            health.push(RegionHealth::new(group.regions.len()));
            groups.push(group);
        }
    }
    stats.build_ticks += clock.ticks() - build_t0;
    stats.build_dom_cmps += stats.dom_comparisons + stats.region_comparisons - build_d0;
    let (gi, group_label) = match slot {
        Some(gi) => (gi, gi as u32),
        None => (groups.len() - 1, u32::MAX),
    };

    // Cardinality estimate over the regions now serving the arrival, with
    // any injected estimator perturbation applied on top.
    let join_est: f64 = groups
        .iter()
        .flat_map(|g| g.regions.regions())
        .filter(|reg| reg.serving.contains(q))
        .map(|reg| reg.est_join)
        .sum();
    let mut est = buchta_estimate(join_est.max(1.0), spec.pref.len());
    let est_factor = exec.faults.admit_est_factor(ev_idx);
    if est_factor != 1.0 {
        est *= est_factor;
        if S::ENABLED {
            sink.record(TraceEvent::FaultInjected {
                tick: clock.ticks(),
                group: group_label,
                region: u32::MAX,
                kind: "admit_est",
                factor: est_factor,
            });
        }
    }
    // Contracts judge the arrival on time since *its* admission, never
    // against deadlines that expired before it existed.
    scores.push(QueryScore::new_at(spec.contract.clone(), est, clock.now()));
    weights.push(spec.priority);
    active.push(true);
    emissions.push(Vec::new());
    results.push(Vec::new());
    stats.ensure_queries(scores.len());

    if S::ENABLED {
        sink.record(TraceEvent::Admit {
            tick: clock.ticks(),
            query: q.0,
            contract: spec.contract.label().to_string(),
            group: group_label,
            incremental: !exec.rebuild_on_admit,
        });
    }

    // Results already in the arrival's (backfilled) skyline become pending
    // emissions immediately; any with no alive threat are emitted now.
    if engine.progressive_emission {
        let local = groups[gi].members.len() - 1;
        let tags = groups[gi].plan.query_skyline_tags(QueryId(local as u16));
        let mut recheck: Vec<u32> = Vec::new();
        for tag in tags {
            let origin = groups[gi].arena[tag as usize].origin;
            pendings[gi].by_origin[origin.index()].push(PendingTuple {
                tag,
                entries: vec![(q, None)],
            });
            recheck.push(origin.0);
        }
        recheck.sort_unstable();
        recheck.dedup();
        if !recheck.is_empty() {
            emit_safe(
                &mut groups[gi],
                &mut pendings[gi],
                &recheck,
                scores,
                emissions,
                results,
                clock,
                stats,
                sink,
            );
        }
    }
    Ok(())
}

/// Applies one departure event: drops the query from every pending tuple,
/// retires its sole-provider regions the way shedding does, strips its bits
/// from the dependency graph and prunes its lattice slot (Def. 7 departure
/// is purely subtractive).
#[allow(clippy::too_many_arguments)]
fn apply_depart<S: TraceSink>(
    q: QueryId,
    engine: &EngineConfig,
    groups: &mut [JoinGroup],
    pendings: &mut [PendingState],
    scores: &mut [QueryScore],
    active: &mut [bool],
    emissions: &mut [Vec<(f64, f64)>],
    results: &mut [Vec<(u64, u64)>],
    clock: &mut SimClock,
    stats: &mut Stats,
    sink: &mut S,
) -> Result<(), EngineError> {
    if !active.get(q.index()).copied().unwrap_or(false) {
        return Err(EngineError::BadEventSpec {
            fragment: format!("depart={}", q.0),
            reason: "query is not active".to_string(),
        });
    }
    let Some((gi, local)) = groups
        .iter()
        .enumerate()
        .find_map(|(gi, g)| g.local_of(q).map(|l| (gi, l)))
    else {
        return Err(EngineError::BadEventSpec {
            fragment: format!("depart={}", q.0),
            reason: "query belongs to no join group".to_string(),
        });
    };
    active[q.index()] = false;

    // The departing query's provisional results must stop at this tick:
    // purge its entries from every pending tuple first.
    for list in pendings[gi].by_origin.iter_mut() {
        for p in list.iter_mut() {
            p.entries.retain(|(qq, _)| *qq != q);
        }
        list.retain(|p| !p.entries.is_empty());
    }

    // Regions whose serving set empties are retired exactly the way
    // shedding retires regions; survivors merely lose the query's bit.
    let newly_dead = groups[gi].regions.depart_query(q);
    let mut recheck: Vec<u32> = Vec::new();
    for &rid in &newly_dead {
        recheck.extend(retire_region(&mut groups[gi], rid));
    }
    groups[gi].dg.depart_query(q);
    {
        let g = &mut groups[gi];
        g.plan.depart_query(QueryId(local as u16));
        g.prog_cache = vec![None; g.regions.len()];
    }

    if S::ENABLED {
        sink.record(TraceEvent::Depart {
            tick: clock.ticks(),
            query: q.0,
            regions_retired: newly_dead.len() as u32,
        });
    }

    // Retired regions can no longer dominate anything: other queries'
    // pending tuples they threatened may be safe now.
    if engine.progressive_emission && !recheck.is_empty() {
        recheck.sort_unstable();
        recheck.dedup();
        emit_safe(
            &mut groups[gi],
            &mut pendings[gi],
            &recheck,
            scores,
            emissions,
            results,
            clock,
            stats,
            sink,
        );
    }
    Ok(())
}

/// Picks the load-shedding victim: the alive dependency-graph root with the
/// lowest CSM (the Alg. 1 ranking inverted, under the live Eq. 11 weights),
/// skipping any region that is the *sole* remaining provider for some query
/// it serves — shedding it would silently zero that query's result.
fn pick_shed_victim(
    groups: &[JoinGroup],
    scores: &[QueryScore],
    weights: &[f64],
    clock: &SimClock,
) -> Option<(usize, RegionId)> {
    let mut victim: Option<(usize, RegionId, f64)> = None;
    for (gi, g) in groups.iter().enumerate() {
        let out_dims = g.mapping.output_dims();
        for reg in g.regions.regions() {
            if !reg.is_alive() || !g.dg.is_root(reg.id) {
                continue;
            }
            // Sole-provider guard: every query this region serves must have
            // at least one other alive region serving it.
            let sole = g.members.iter().any(|&q| {
                reg.serving.contains(q)
                    && !g
                        .regions
                        .regions()
                        .iter()
                        .any(|o| o.id != reg.id && o.is_alive() && o.serving.contains(q))
            });
            if sole {
                continue;
            }
            let csm = region_csm(&g.regions, &g.dg, reg, scores, weights, clock, out_dims);
            if victim.map_or(true, |(_, _, best)| csm < best) {
                victim = Some((gi, reg.id, csm));
            }
        }
    }
    victim.map(|(gi, rid, _)| (gi, rid))
}

/// Retires a region that will never produce tuples (quarantined after
/// repeated failures, or shed under degradation): empties its serving set,
/// removes it from the dependency graph and invalidates the progressiveness
/// caches it touched. Returns the origins whose pending tuples must be
/// rechecked — the retired region itself plus everything it statically
/// threatened (a retired region never materializes tuples, so its targets
/// may now be safe).
fn retire_region(g: &mut JoinGroup, rid: RegionId) -> Vec<u32> {
    let serving = g.regions.region(rid).serving;
    {
        let reg = g.regions.region_mut(rid);
        for q in serving.iter() {
            reg.kill_query(q);
        }
    }
    let out_peers: Vec<RegionId> = g.dg.threats_out(rid).iter().map(|e| e.peer).collect();
    g.dg.remove(rid);
    for p in &out_peers {
        g.prog_cache[p.index()] = None;
    }
    g.prog_cache[rid.index()] = None;
    let mut recheck: Vec<u32> = vec![rid.0];
    recheck.extend(g.static_threats_out[rid.index()].iter().map(|e| e.peer.0));
    recheck
}

/// Picks the next region per the scheduling policy: among dependency-graph
/// roots when any exist (falling back to all alive regions on cycles), the
/// one with the highest score. Regions serving a backoff penalty are
/// skipped; the caller advances the clock to the earliest wake-up when
/// nothing else is schedulable. Returns the winner and its score.
#[allow(clippy::too_many_arguments)]
fn select_region(
    groups: &[JoinGroup],
    pendings: &[PendingState],
    policy: SchedulingPolicy,
    scores: &[QueryScore],
    weights: &[f64],
    clock: &SimClock,
    fifo_cursors: &mut [usize],
    health: &[RegionHealth],
    faults: &FaultPlan,
) -> Option<(usize, RegionId, f64)> {
    let now = clock.ticks();
    if policy == SchedulingPolicy::Fifo {
        // Amortized O(1): advance each group's cursor past the dead prefix
        // once instead of rescanning every region on every pick. Backoff is
        // temporary, so blocked regions are handled by the forward scan and
        // never absorbed into the cursor.
        for (gi, g) in groups.iter().enumerate() {
            let regions = g.regions.regions();
            let mut cursor = fifo_cursors[gi];
            while cursor < regions.len() && !regions[cursor].is_alive() {
                cursor += 1;
            }
            fifo_cursors[gi] = cursor;
            for reg in &regions[cursor..] {
                if reg.is_alive() && !health[gi].blocked(reg.id, now) {
                    return Some((gi, reg.id, 0.0));
                }
            }
        }
        return None;
    }

    // Per group: how many pending tuples cite each region as their emission
    // blocker (witness), per query. Processing a heavily-cited blocker
    // unblocks those tuples — or moves their witness one step down the
    // blocker clique — so candidates are credited for it below. Dense
    // region-indexed table (inner count vectors allocated only for cited
    // regions); no iteration-ordered map on this traced path.
    let blocked: Vec<Vec<Vec<u32>>> = if policy == SchedulingPolicy::ContractDriven {
        pendings
            .iter()
            .enumerate()
            .map(|(gi, pending)| {
                let mut per_region: Vec<Vec<u32>> = vec![Vec::new(); groups[gi].regions.len()];
                for p in pending.by_origin.iter().flatten() {
                    for (q, witness) in &p.entries {
                        if let Some(w) = witness {
                            let counts = &mut per_region[w.index()];
                            if counts.is_empty() {
                                counts.resize(scores.len(), 0);
                            }
                            counts[q.index()] += 1;
                        }
                    }
                }
                per_region
            })
            .collect()
    } else {
        Vec::new()
    };

    let mut best: Option<(usize, RegionId, f64)> = None;
    let mut any_alive = false;
    for roots_only in [true, false] {
        for (gi, g) in groups.iter().enumerate() {
            for reg in g.regions.regions() {
                if !reg.is_alive() {
                    continue;
                }
                any_alive = true;
                if health[gi].blocked(reg.id, now) {
                    continue;
                }
                if roots_only && !g.dg.is_root(reg.id) {
                    continue;
                }
                let witnessed = blocked
                    .get(gi)
                    .map(|m| m[reg.id.index()].as_slice())
                    .filter(|w| !w.is_empty());
                let score = candidate_score(
                    g, gi as u32, reg.id, policy, scores, weights, clock, witnessed, faults,
                );
                if best.map_or(true, |(_, _, s)| score > s) {
                    best = Some((gi, reg.id, score));
                }
            }
        }
        if best.is_some() || !any_alive {
            break;
        }
        // No roots (mutual-domination cycle): fall back to all alive.
    }
    best
}

/// Scores one candidate region under the active policy.
///
/// `witnessed` — for the contract-driven policy: per query, the number of
/// pending tuples currently naming this region as their emission blocker.
#[allow(clippy::too_many_arguments)]
fn candidate_score(
    g: &JoinGroup,
    gi: u32,
    rid: RegionId,
    policy: SchedulingPolicy,
    scores: &[QueryScore],
    weights: &[f64],
    clock: &SimClock,
    witnessed: Option<&[u32]>,
    faults: &FaultPlan,
) -> f64 {
    let reg = g.regions.region(rid);
    // Dominance-potential tiebreaker: heavily overlapping regions can drive
    // every progressiveness estimate to zero at once. Preferring the region
    // whose *worst* corner sorts best breaks the tie productively — its
    // tuples dominate the most output space, triggering the discard cascade
    // that unblocks safe emission everywhere else.
    let potential: f64 = g
        .members
        .iter()
        .filter(|&&q| reg.serving.contains(q))
        .map(|&q| {
            let mask = g.regions.pref(q);
            let hi_score: f64 = mask.iter().map(|k| reg.bounds.hi()[k]).sum();
            weights[q.index()] / (1.0 + hi_score / mask.len() as f64)
        })
        .sum();
    match policy {
        SchedulingPolicy::ContractDriven => {
            // Equation 8 scores the expected utility of the region's
            // progressive output at its projected completion time. We rank
            // by *raw* expected benefit rather than benefit per tick: under
            // heavy subspace overlap the regions that matter most are the
            // dense minimal-corner ones whose output dominates (and thereby
            // discards or unblocks) the bulk of the landscape, and dividing
            // by their — systematically underestimated — cost starves
            // exactly those regions in favour of cheap peripheral ones.
            let ticks =
                perturbed_est_ticks(faults, gi, reg, clock.model(), g.mapping.output_dims());
            let t_done = clock.projected(ticks);
            // Unblocking benefit: tuples already materialized and waiting on
            // exactly this region earn their utility the moment it completes
            // (or move their witness one blocker down the clique). Without
            // this term the optimizer spreads effort across cliques and
            // every emission arrives late.
            let unblock: f64 = witnessed
                .map(|counts| {
                    counts
                        .iter()
                        .enumerate()
                        .filter(|(_, &n)| n > 0)
                        .map(|(qi, &n)| {
                            weights[qi] * n as f64 * scores[qi].hypothetical_utility(t_done, 1)
                        })
                        .sum()
                })
                .unwrap_or(0.0);
            let csm = region_csm(
                &g.regions,
                &g.dg,
                reg,
                scores,
                weights,
                clock,
                g.mapping.output_dims(),
            );
            csm + unblock + 1e-3 * potential
        }
        SchedulingPolicy::CountDriven => {
            // ProgXe+: estimated progressive output per tick, contract-blind.
            let ticks =
                perturbed_est_ticks(faults, gi, reg, clock.model(), g.mapping.output_dims());
            let total: f64 = g
                .members
                .iter()
                .map(|&q| prog_est(&g.regions, &g.dg, reg, q))
                .sum();
            total / ticks.max(1) as f64 + 1e-3 * potential
        }
        SchedulingPolicy::Fifo => 0.0,
    }
}

/// The surviving join candidates of one probe chunk, in flat layout: one
/// provenance/lineage row per candidate, with the projected points packed
/// contiguously (`vals[i*stride..(i+1)*stride]` belongs to `meta[i]`).
struct CandidateBatch {
    /// `(r_row, t_row, lineage)` per candidate, in probe order.
    meta: Vec<(usize, usize, QuerySet)>,
    /// Flat projected output-space points, stride = mapping output dims.
    vals: Vec<Value>,
}

/// Joins the region's cell pair, projects, and inserts surviving tuples into
/// the shared skyline plan. Returns, per member query (local order), the
/// handles (into the group's point store) of tuples newly admitted to that
/// query's skyline.
///
/// The hash-probe/projection phase is data-parallel over contiguous R-row
/// chunks: workers only read shared state and accumulate private tick/stat
/// deltas, which are merged in chunk order before the (inherently
/// sequential) plan insertion runs over the candidates in original row
/// order. The virtual clock is never *read* inside the region, so moving
/// the probe charges ahead of the insert charges leaves every observable —
/// final ticks, stats, plan state, emission timestamps — bit-identical to
/// the serial interleaving.
#[allow(clippy::too_many_arguments)]
fn process_region_tuples(
    g: &mut JoinGroup,
    r: &Table,
    t: &Table,
    part_r: &Partitioning,
    part_t: &Partitioning,
    rid: RegionId,
    pending: &mut PendingState,
    progressive: bool,
    materialize_all: bool,
    threads: Threads,
    clock: &mut SimClock,
    stats: &mut Stats,
) -> Vec<Vec<PointId>> {
    let n_local = g.members.len();
    let mut new_by_query: Vec<Vec<PointId>> = vec![Vec::new(); n_local];

    let (r_cell, t_cell, serving) = {
        let reg = g.regions.region(rid);
        (reg.r_cell, reg.t_cell, reg.serving)
    };
    if serving.is_empty() {
        return new_by_query;
    }

    // Join index within the cell pair (build on T side): stable-sorted
    // `(key, row)` runs — matches per key come back in cell-row order, the
    // same order an append-built hash index would yield.
    let t_rows: &[usize] = &part_t.cell(t_cell).rows;
    let join_col = g.join_col;
    let index = SortedJoinIndex::build(t_rows.len(), |i| t.record(t_rows[i]).key(join_col));

    let out_dims = g.mapping.output_dims() as u64;
    let stride = g.mapping.output_dims();
    let r_rows: &[usize] = &part_r.cell(r_cell).rows;

    // --- Phase 1: probe + project, parallel over R-row chunks. ---
    let (cand_meta, cand_vals) = {
        let reg = g.regions.region(rid);
        let mapping = &g.mapping;
        let model = *clock.model();
        let ranges = caqe_parallel::chunk_ranges(threads, r_rows.len(), PAR_MIN_ROWS);
        let per_chunk = caqe_parallel::map_indexed(threads, ranges.len(), |ci| {
            let (start, end) = ranges[ci];
            let mut wclock = SimClock::new(model);
            let mut wstats = Stats::new();
            let mut found = CandidateBatch {
                meta: Vec::new(),
                vals: Vec::new(),
            };
            for &ri in &r_rows[start..end] {
                wclock.charge_join_probes(1);
                wstats.join_probes += 1;
                let rrec = r.record(ri);
                for mi in index.matches(rrec.key(join_col)) {
                    let ti = t_rows[mi];
                    wclock.charge_join_probes(1);
                    wstats.join_probes += 1;
                    let trec = t.record(ti);
                    wclock.charge_map_evals(out_dims);
                    wstats.map_evals += out_dims;
                    wstats.join_results += 1;
                    // Project straight into the chunk's flat buffer; roll
                    // back if the tuple turns out to serve nobody.
                    let vstart = found.vals.len();
                    mapping.apply_into(&rrec.vals, &trec.vals, &mut found.vals);
                    let vals = &found.vals[vstart..];

                    // Cell-level lineage: which queries can this tuple
                    // still serve?
                    let lineage = match reg.locate(vals) {
                        Some(c) => reg.cell_lineage(c).intersect(serving),
                        None => serving,
                    };
                    // Session mode keeps even serving-nobody tuples: the
                    // group arena must be the *complete* tag-ordered join
                    // history so a later admission can backfill its fresh
                    // subspaces from it. Such tuples are dominated in every
                    // query subspace, so they never reach a skyline — the
                    // result sets are unchanged, only the history is.
                    if lineage.is_empty() && !materialize_all {
                        wstats.tuples_discarded += 1;
                        found.vals.truncate(vstart);
                        continue;
                    }
                    found.meta.push((ri, ti, lineage));
                }
            }
            (found, wclock.ticks(), wstats)
        });
        // Merge chunk deltas in chunk order; concatenation restores the
        // exact serial candidate order because chunks are contiguous.
        let mut cand_meta: Vec<(usize, usize, QuerySet)> = Vec::new();
        let mut cand_vals: Vec<Value> = Vec::new();
        for (found, ticks, wstats) in per_chunk {
            clock.advance(ticks);
            stats.probe_ticks += ticks;
            *stats += wstats;
            cand_meta.extend(found.meta);
            cand_vals.extend(found.vals);
        }
        (cand_meta, cand_vals)
    };

    // --- Phase 2: shared-plan insertion, deterministically sharded. ---
    // The arena/point-store rows are appended first (tags stay dense, in
    // candidate order), then the whole candidate batch goes through
    // `SharedSkylinePlan::insert_batch`, which shards the per-subspace
    // skyline maintenance across `threads` and merges in fixed subspace
    // order — bit-identical to inserting the candidates one at a time.
    // The per-candidate emission/eviction bookkeeping below never touches
    // the clock, so replaying it after the batch leaves every observable
    // unchanged from the serial interleaving.
    if cand_meta.is_empty() {
        return new_by_query;
    }
    let first_tag = g.arena.len() as u64;
    stats.arena_tuples += cand_meta.len() as u64;
    let mut pids: Vec<PointId> = Vec::with_capacity(cand_meta.len());
    for (ci, (r_row, t_row, _)) in cand_meta.iter().enumerate() {
        let vals = &cand_vals[ci * stride..(ci + 1) * stride];
        g.arena.push(ArenaTuple {
            rid: r.record(*r_row).id,
            tid: t.record(*t_row).id,
            origin: rid,
        });
        let pid = g.points.push(vals);
        debug_assert_eq!(
            pid.index() as u64,
            first_tag + ci as u64,
            "arena/point-store desync"
        );
        pids.push(pid);
    }
    let insert_t0 = clock.ticks();
    let insert_d0 = stats.dom_comparisons;
    let inserts = g
        .plan
        .insert_batch(first_tag, &cand_vals, stride, threads, clock, stats);
    stats.insert_ticks += clock.ticks() - insert_t0;
    stats.insert_dom_cmps += stats.dom_comparisons - insert_d0;
    debug_assert_eq!(inserts.len(), cand_meta.len());
    for (ci, ((_, _, lineage), ins)) in cand_meta.into_iter().zip(inserts).enumerate() {
        let tag = first_tag + ci as u64;
        let pid = pids[ci];

        // Register newly admitted skyline tuples as pending emissions.
        let mut pend_entries: Vec<(QueryId, Option<RegionId>)> = Vec::new();
        for (local, &in_sky) in ins.in_query_sky.iter().enumerate() {
            let global = g.members[local];
            if in_sky && serving.contains(global) && lineage.contains(global) {
                pend_entries.push((global, None));
                new_by_query[local].push(pid);
            }
        }
        if progressive && !pend_entries.is_empty() {
            pending.by_origin[rid.index()].push(PendingTuple {
                tag,
                entries: pend_entries,
            });
        }

        // Handle evictions: invalidated provisional results.
        if progressive {
            for (local_q, evicted) in &ins.query_evictions {
                let global = g.members[local_q.index()];
                for &etag in evicted {
                    let origin = g.arena[etag as usize].origin;
                    let list = &mut pending.by_origin[origin.index()];
                    for p in list.iter_mut() {
                        if p.tag == etag {
                            p.entries.retain(|(q, _)| *q != global);
                        }
                    }
                    list.retain(|p| !p.entries.is_empty());
                }
            }
        }
    }
    new_by_query
}

/// Discards output cells (and whole regions) of threatened neighbors that
/// are dominated by newly materialized skyline tuples (§6).
fn discard_dominated(
    g: &mut JoinGroup,
    rid: RegionId,
    new_by_query: &[Vec<PointId>],
    recheck: &mut Vec<u32>,
    clock: &mut SimClock,
    stats: &mut Stats,
) {
    let edges: Vec<(RegionId, QuerySet)> =
        g.dg.threats_out(rid)
            .iter()
            .map(|e| (e.peer, e.queries))
            .collect();

    for (peer, w) in edges {
        let mut shrunk = false;
        let mut died = false;
        {
            let prefs: Vec<(usize, QueryId)> =
                g.members.iter().enumerate().map(|(l, &q)| (l, q)).collect();
            for (local, global) in prefs {
                if !w.contains(global) {
                    continue;
                }
                let mask = g.regions.pref(global);
                let news = &new_by_query[local];
                if news.is_empty() {
                    continue;
                }
                let reg = g.regions.region(peer);
                if reg.processed || !reg.serving.contains(global) {
                    continue;
                }
                // Find cells fully dominated by some new tuple.
                let mut kills: Vec<usize> = Vec::new();
                for (c, cell) in reg.grid().iter().enumerate() {
                    if !reg.cell_lineage(c).contains(global) {
                        continue;
                    }
                    for &pid in news {
                        clock.charge_dom_cmps(1);
                        stats.region_comparisons += 1;
                        if point_dominates_rect(g.points.get(pid), cell.lo(), mask) {
                            kills.push(c);
                            break;
                        }
                    }
                }
                if kills.is_empty() {
                    continue;
                }
                let reg = g.regions.region_mut(peer);
                let single = QuerySet::singleton(global);
                for c in kills {
                    let dead = reg.kill_cell(c, single);
                    if !dead.is_empty() {
                        shrunk = true;
                    }
                }
                if reg.serving.is_empty() {
                    died = true;
                }
            }
        }
        if shrunk || died {
            g.prog_cache[peer.index()] = None;
            // The peer threatens fewer things now; its own targets may have
            // become safe.
            recheck.extend(g.static_threats_out[peer.index()].iter().map(|e| e.peer.0));
        }
        if died {
            stats.regions_pruned += 1;
            let out_peers: Vec<RegionId> = g.dg.threats_out(peer).iter().map(|e| e.peer).collect();
            g.dg.remove(peer);
            for p in out_peers {
                g.prog_cache[p.index()] = None;
            }
            // A dead region never produces tuples: anything it threatened
            // must be rechecked.
            recheck.push(peer.0);
        }
    }
}

/// `p ≺_V` every point of the box whose lower corner is `lo`.
fn point_dominates_rect(p: &[Value], lo: &[Value], mask: caqe_types::DimMask) -> bool {
    let mut strict = false;
    for k in mask.iter() {
        if p[k] > lo[k] {
            return false;
        }
        if p[k] < lo[k] {
            strict = true;
        }
    }
    strict
}

/// Emits every pending tuple (of the given origin regions) that can no
/// longer be dominated by any alive region (§6, Example 19).
#[allow(clippy::too_many_arguments)]
fn emit_safe<S: TraceSink>(
    g: &mut JoinGroup,
    pending: &mut PendingState,
    origins: &[u32],
    scores: &mut [QueryScore],
    emissions: &mut [Vec<(f64, f64)>],
    results: &mut [Vec<(u64, u64)>],
    clock: &mut SimClock,
    stats: &mut Stats,
    sink: &mut S,
) {
    let emit_t0 = clock.ticks();
    let emit_d0 = stats.region_comparisons;
    for &origin in origins {
        let mut list = std::mem::take(&mut pending.by_origin[origin as usize]);
        if list.is_empty() {
            continue;
        }
        let threats = &g.static_threats_in[origin as usize];
        let regions = &g.regions;
        let arena = &g.arena;
        let points = &g.points;
        list.retain_mut(|p| {
            let tuple = &arena[p.tag as usize];
            let vals = points.at(p.tag as usize);
            p.entries.retain_mut(|(q, witness)| {
                // Fast path: the cached witness still blocks this tuple —
                // region bounds are immutable, so alive + serving is enough.
                if let Some(w) = witness {
                    let reg = regions.region(*w);
                    if !reg.processed && reg.serving.contains(*q) {
                        return true;
                    }
                }
                let mask = regions.pref(*q);
                let mut blocker: Option<RegionId> = None;
                for e in threats {
                    if !e.queries.contains(*q) {
                        continue;
                    }
                    let reg = regions.region(e.peer);
                    if reg.processed || !reg.serving.contains(*q) {
                        continue;
                    }
                    clock.charge_dom_cmps(1);
                    stats.region_comparisons += 1;
                    if reg.bounds.may_dominate_point(vals, mask) {
                        blocker = Some(e.peer);
                        break;
                    }
                }
                match blocker {
                    Some(b) => {
                        *witness = Some(b);
                        true
                    }
                    None => {
                        clock.charge_emits(1);
                        let ts = clock.now();
                        let u = scores[q.index()].record(ts);
                        stats.record_emission(q.index(), u);
                        emissions[q.index()].push((ts, u));
                        results[q.index()].push((tuple.rid, tuple.tid));
                        if S::ENABLED {
                            sink.record(TraceEvent::Emission {
                                tick: clock.ticks(),
                                query: q.0,
                                seq: results[q.index()].len() as u64,
                                rid: tuple.origin.0,
                                tid: p.tag,
                                utility: u,
                                satisfaction: scores[q.index()].runtime_satisfaction(),
                            });
                        }
                        false
                    }
                }
            });
            !p.entries.is_empty()
        });
        if !list.is_empty() {
            pending.by_origin[origin as usize] = list;
        }
    }
    stats.emit_ticks += clock.ticks() - emit_t0;
    stats.emit_region_cmps += stats.region_comparisons - emit_d0;
}
