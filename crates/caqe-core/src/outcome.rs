//! Run outcomes: everything the paper's evaluation measures (§7.1).

use caqe_types::{QueryId, Stats, VirtualSeconds};

/// Per-query outcome of one workload execution.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The query.
    pub query: QueryId,
    /// `(emission time, utility)` of every result, in emission order.
    pub emissions: Vec<(VirtualSeconds, f64)>,
    /// Provenance `(rid, tid)` of every result, in emission order — used by
    /// correctness tests to compare result *sets* across strategies.
    pub results: Vec<(u64, u64)>,
    /// The progressiveness score `pScore` (Equation 7).
    pub p_score: f64,
    /// The average satisfaction reported in Figures 9 and 11 (mean utility
    /// per result, clamped to `[0, 1]`; vacuously 1 for empty results).
    pub satisfaction: f64,
}

impl QueryOutcome {
    /// Number of results emitted.
    pub fn count(&self) -> usize {
        self.results.len()
    }

    /// Time of the first emission, if any — a progressiveness indicator.
    pub fn first_emission(&self) -> Option<VirtualSeconds> {
        self.emissions.first().map(|(ts, _)| *ts)
    }

    /// Time of the last emission, if any.
    pub fn last_emission(&self) -> Option<VirtualSeconds> {
        self.emissions.last().map(|(ts, _)| *ts)
    }
}

/// The outcome of running one strategy over one workload.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Strategy name ("CAQE", "S-JFSL", "JFSL", "ProgXe+", "SSMJ").
    pub strategy: String,
    /// Per-query outcomes, indexed by `QueryId`.
    pub per_query: Vec<QueryOutcome>,
    /// Operation counters (join results = memory metric, dominance
    /// comparisons = CPU metric, Figure 10).
    pub stats: Stats,
    /// Total virtual execution time.
    pub virtual_seconds: VirtualSeconds,
    /// Wall-clock seconds actually spent (informational).
    pub wall_seconds: f64,
}

impl RunOutcome {
    /// The workload-wide average satisfaction (the y-axis of Figures 9
    /// and 11): the mean of the per-query satisfaction metrics.
    pub fn avg_satisfaction(&self) -> f64 {
        if self.per_query.is_empty() {
            return 1.0;
        }
        self.per_query.iter().map(|q| q.satisfaction).sum::<f64>() / self.per_query.len() as f64
    }

    /// The cumulative progressiveness score of the workload (Equation 6).
    pub fn total_p_score(&self) -> f64 {
        self.per_query.iter().map(|q| q.p_score).sum()
    }

    /// Total results emitted across queries.
    pub fn total_results(&self) -> usize {
        self.per_query.iter().map(|q| q.count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome() -> RunOutcome {
        RunOutcome {
            strategy: "TEST".into(),
            per_query: vec![
                QueryOutcome {
                    query: QueryId(0),
                    emissions: vec![(1.0, 1.0), (2.0, 0.5)],
                    results: vec![(0, 0), (1, 1)],
                    p_score: 1.5,
                    satisfaction: 0.75,
                },
                QueryOutcome {
                    query: QueryId(1),
                    emissions: vec![],
                    results: vec![],
                    p_score: 0.0,
                    satisfaction: 1.0,
                },
            ],
            stats: Stats::new(),
            virtual_seconds: 2.0,
            wall_seconds: 0.01,
        }
    }

    #[test]
    fn aggregates() {
        let o = outcome();
        assert!((o.avg_satisfaction() - 0.875).abs() < 1e-12);
        assert_eq!(o.total_p_score(), 1.5);
        assert_eq!(o.total_results(), 2);
        assert_eq!(o.per_query[0].count(), 2);
        assert_eq!(o.per_query[0].first_emission(), Some(1.0));
        assert_eq!(o.per_query[0].last_emission(), Some(2.0));
        assert_eq!(o.per_query[1].first_emission(), None);
    }
}
