//! Run outcomes: everything the paper's evaluation measures (§7.1).

use caqe_types::{QueryId, Stats, VirtualSeconds};

/// Per-query outcome of one workload execution.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The query.
    pub query: QueryId,
    /// `(emission time, utility)` of every result, in emission order.
    pub emissions: Vec<(VirtualSeconds, f64)>,
    /// Provenance `(rid, tid)` of every result, in emission order — used by
    /// correctness tests to compare result *sets* across strategies.
    pub results: Vec<(u64, u64)>,
    /// The progressiveness score `pScore` (Equation 7).
    pub p_score: f64,
    /// The average satisfaction reported in Figures 9 and 11 (mean utility
    /// per result, clamped to `[0, 1]`; vacuously 1 for empty results).
    pub satisfaction: f64,
}

impl QueryOutcome {
    /// Number of results emitted.
    pub fn count(&self) -> usize {
        self.results.len()
    }

    /// Time of the first emission, if any — a progressiveness indicator.
    pub fn first_emission(&self) -> Option<VirtualSeconds> {
        self.emissions.first().map(|(ts, _)| *ts)
    }

    /// Time of the last emission, if any.
    pub fn last_emission(&self) -> Option<VirtualSeconds> {
        self.emissions.last().map(|(ts, _)| *ts)
    }
}

/// The outcome of running one strategy over one workload.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Strategy name ("CAQE", "S-JFSL", "JFSL", "ProgXe+", "SSMJ").
    pub strategy: String,
    /// Per-query outcomes, indexed by `QueryId`.
    pub per_query: Vec<QueryOutcome>,
    /// Operation counters (join results = memory metric, dominance
    /// comparisons = CPU metric, Figure 10).
    pub stats: Stats,
    /// Total virtual execution time.
    pub virtual_seconds: VirtualSeconds,
    /// Wall-clock seconds actually spent (informational).
    pub wall_seconds: f64,
}

impl RunOutcome {
    /// The workload-wide average satisfaction (the y-axis of Figures 9
    /// and 11): the mean of the per-query satisfaction metrics.
    pub fn avg_satisfaction(&self) -> f64 {
        if self.per_query.is_empty() {
            return 1.0;
        }
        self.per_query.iter().map(|q| q.satisfaction).sum::<f64>() / self.per_query.len() as f64
    }

    /// The cumulative progressiveness score of the workload (Equation 6).
    pub fn total_p_score(&self) -> f64 {
        self.per_query.iter().map(|q| q.p_score).sum()
    }

    /// Total results emitted across queries.
    pub fn total_results(&self) -> usize {
        self.per_query.iter().map(|q| q.count()).sum()
    }

    /// FNV-1a digest of everything deterministic about the run: per-query
    /// emission `(time, utility)` pairs (by exact bit pattern), result
    /// provenance, and the virtual clock. Wall time is excluded by
    /// construction.
    ///
    /// Two runs are observably equivalent iff their digests match; the
    /// serving layer uses this to prove a snapshot/restore cycle
    /// trace-equivalent to an uninterrupted run without retaining full
    /// outcomes.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        mix(self.per_query.len() as u64);
        for q in &self.per_query {
            mix(q.emissions.len() as u64);
            for (ts, util) in &q.emissions {
                mix(ts.to_bits());
                mix(util.to_bits());
            }
            for (rid, tid) in &q.results {
                mix(*rid);
                mix(*tid);
            }
            mix(q.p_score.to_bits());
            mix(q.satisfaction.to_bits());
        }
        mix(self.virtual_seconds.to_bits());
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome() -> RunOutcome {
        RunOutcome {
            strategy: "TEST".into(),
            per_query: vec![
                QueryOutcome {
                    query: QueryId(0),
                    emissions: vec![(1.0, 1.0), (2.0, 0.5)],
                    results: vec![(0, 0), (1, 1)],
                    p_score: 1.5,
                    satisfaction: 0.75,
                },
                QueryOutcome {
                    query: QueryId(1),
                    emissions: vec![],
                    results: vec![],
                    p_score: 0.0,
                    satisfaction: 1.0,
                },
            ],
            stats: Stats::new(),
            virtual_seconds: 2.0,
            wall_seconds: 0.01,
        }
    }

    #[test]
    fn aggregates() {
        let o = outcome();
        assert!((o.avg_satisfaction() - 0.875).abs() < 1e-12);
        assert_eq!(o.total_p_score(), 1.5);
        assert_eq!(o.total_results(), 2);
        assert_eq!(o.per_query[0].count(), 2);
        assert_eq!(o.per_query[0].first_emission(), Some(1.0));
        assert_eq!(o.per_query[0].last_emission(), Some(2.0));
        assert_eq!(o.per_query[1].first_emission(), None);
    }

    #[test]
    fn digest_ignores_wall_time_but_sees_everything_else() {
        let a = outcome();
        let mut b = outcome();
        b.wall_seconds = 123.0;
        assert_eq!(a.digest(), b.digest(), "wall time must not matter");
        let mut c = outcome();
        c.per_query[0].emissions[1].1 = 0.5000001;
        assert_ne!(a.digest(), c.digest(), "utility changes must matter");
        let mut d = outcome();
        d.per_query[1].results.push((9, 9));
        assert_ne!(a.digest(), d.digest(), "result sets must matter");
        let mut e = outcome();
        e.virtual_seconds = 3.0;
        assert_ne!(a.digest(), e.digest(), "the virtual clock must matter");
    }
}
