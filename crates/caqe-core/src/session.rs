//! Online workload sessions: a deterministic stream of admission and
//! departure events keyed on the virtual clock.
//!
//! The batch engine processes a fixed workload `S_Q`; real decision-support
//! front-ends admit and retire queries while the shared plan is running.
//! A [`SessionEvent`] stream extends the engine to that regime without
//! giving up bit-determinism: events carry *virtual* ticks, are applied
//! sequentially on the main scheduling thread at the first loop iteration
//! whose clock reading has reached them, and every piece of incremental
//! plan maintenance they trigger charges the same clock — so the whole
//! session remains a pure function of (workload, events, config) at any
//! `--threads` setting.

use crate::workload::QuerySpec;
use caqe_types::{EngineError, QueryId, Ticks};

/// One dynamic workload change.
#[derive(Debug, Clone)]
pub enum SessionEvent {
    /// A query (with its contract, carried inside the spec) joins the
    /// running workload no earlier than virtual tick `at`.
    Admit {
        /// Earliest virtual tick the admission may be processed at.
        at: Ticks,
        /// The arriving query.
        spec: QuerySpec,
    },
    /// A query leaves the workload no earlier than virtual tick `at`; its
    /// sole-provider regions are retired the way shedding retires regions.
    Depart {
        /// Earliest virtual tick the departure may be processed at.
        at: Ticks,
        /// Global id of the departing query.
        query: QueryId,
    },
}

impl SessionEvent {
    /// The event's scheduled virtual tick.
    pub fn at(&self) -> Ticks {
        match self {
            SessionEvent::Admit { at, .. } => *at,
            SessionEvent::Depart { at, .. } => *at,
        }
    }

    /// Secondary sort key at equal ticks: departures apply before
    /// admissions (rank 0 vs 1), departures among themselves by ascending
    /// query id. Admissions share one key and keep textual order through
    /// the stable sort.
    fn tie_key(&self) -> (u8, u64) {
        match self {
            SessionEvent::Depart { query, .. } => (0, u64::from(query.0)),
            SessionEvent::Admit { .. } => (1, 0),
        }
    }
}

/// An ordered stream of [`SessionEvent`]s. Construction sorts stably by
/// scheduled tick with a *defined* tie-break — part of the determinism
/// contract:
///
/// 1. ascending scheduled tick;
/// 2. at equal ticks, **departures before admissions** (a slot freed by a
///    departure is available to a same-tick admission, never the reverse);
/// 3. departures at one tick by ascending query id;
/// 4. admissions at one tick in textual order (stable sort).
///
/// A consequence of rule 2: a departure naming a query that is only
/// admitted at the same (or a later) tick would apply before that query
/// exists. [`EventStream::validate`] rejects such streams up front as
/// [`EngineError::BadEventSpec`].
#[derive(Debug, Clone, Default)]
pub struct EventStream {
    events: Vec<SessionEvent>,
}

impl EventStream {
    /// The empty stream: the engine then behaves exactly like the batch
    /// engine, byte-for-byte.
    pub fn empty() -> Self {
        EventStream::default()
    }

    /// Builds a stream, stably sorting into application order (see the
    /// type-level tie-break rules).
    pub fn new(mut events: Vec<SessionEvent>) -> Self {
        events.sort_by_key(|e| {
            let (rank, id) = e.tie_key();
            (e.at(), rank, id)
        });
        EventStream { events }
    }

    /// Checks the stream against the engine's id-assignment rule (an
    /// admission receives global id `initial_queries + admission order`)
    /// and rejects any departure that would apply before its query is
    /// admitted: departures sort before admissions at equal ticks, so a
    /// depart-at-tick-T of a query admitted at tick ≥ T can never name a
    /// live query. The engine calls this once before the run loop.
    pub fn validate(&self, initial_queries: usize) -> Result<(), EngineError> {
        let admit_ticks: Vec<Ticks> = self
            .events
            .iter()
            .filter_map(|e| match e {
                SessionEvent::Admit { at, .. } => Some(*at),
                SessionEvent::Depart { .. } => None,
            })
            .collect();
        for e in &self.events {
            if let SessionEvent::Depart { at, query } = e {
                let admitted_at = (query.0 as usize)
                    .checked_sub(initial_queries)
                    .and_then(|i| admit_ticks.get(i).copied());
                if let Some(t) = admitted_at {
                    if t >= *at {
                        return Err(EngineError::BadEventSpec {
                            fragment: format!("depart@{at}={}", query.0),
                            reason: format!(
                                "query {} is only admitted at tick {t}; departures apply \
                                 before admissions at equal ticks",
                                query.0
                            ),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// The events in application order.
    pub fn events(&self) -> &[SessionEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the stream is empty (the batch profile).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Parses the CLI event grammar against a pool of admittable queries:
    ///
    /// ```text
    /// spec    := "" | "none" | event ("," event)*
    /// event   := "admit@" TICK "=" POOL_IDX    — admit pool[POOL_IDX]
    ///          | "depart@" TICK "=" QUERY_ID   — retire global query id
    /// ```
    ///
    /// Pool indices are validated here; departure ids are validated at
    /// runtime (a departure may name a query admitted by an earlier event,
    /// whose global id the parser can compute: initial workload size plus
    /// admission order).
    pub fn parse(spec: &str, pool: &[QuerySpec]) -> Result<EventStream, EngineError> {
        let spec = spec.trim();
        if spec.is_empty() || spec == "none" {
            return Ok(EventStream::empty());
        }
        let mut events = Vec::new();
        for part in spec.split(',') {
            let part = part.trim();
            let bad = |reason: &str| EngineError::BadEventSpec {
                fragment: part.to_string(),
                reason: reason.to_string(),
            };
            let (head, value) = part
                .split_once('=')
                .ok_or_else(|| bad("expected key=value"))?;
            let (kind, tick) = head
                .split_once('@')
                .ok_or_else(|| bad("expected kind@tick"))?;
            let at: Ticks = tick.parse().map_err(|_| bad("tick must be a u64"))?;
            match kind {
                "admit" => {
                    let idx: usize = value
                        .parse()
                        .map_err(|_| bad("pool index must be a usize"))?;
                    let spec = pool
                        .get(idx)
                        .ok_or_else(|| bad("pool index out of range"))?
                        .clone();
                    events.push(SessionEvent::Admit { at, spec });
                }
                "depart" => {
                    let qid: u16 = value.parse().map_err(|_| bad("query id must be a u16"))?;
                    events.push(SessionEvent::Depart {
                        at,
                        query: QueryId(qid),
                    });
                }
                _ => return Err(bad("unknown event kind (admit|depart)")),
            }
        }
        Ok(EventStream::new(events))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caqe_contract::Contract;
    use caqe_operators::MappingSet;
    use caqe_types::DimMask;

    fn pool() -> Vec<QuerySpec> {
        vec![
            QuerySpec {
                join_col: 0,
                mapping: MappingSet::concat(2, 2),
                pref: DimMask::from_dims([0, 1]),
                priority: 0.5,
                contract: Contract::LogDecay,
            },
            QuerySpec {
                join_col: 0,
                mapping: MappingSet::concat(2, 2),
                pref: DimMask::from_dims([2, 3]),
                priority: 0.8,
                contract: Contract::Deadline { t_hard: 1.0 },
            },
        ]
    }

    #[test]
    fn parse_orders_by_tick_stably() {
        let s = EventStream::parse("depart@500=0,admit@100=1,admit@100=0", &pool()).expect("valid");
        assert_eq!(s.len(), 3);
        let ticks: Vec<Ticks> = s.events().iter().map(|e| e.at()).collect();
        assert_eq!(ticks, vec![100, 100, 500]);
        // Stable: the two tick-100 admits keep textual order (pool 1 first).
        match (&s.events()[0], &s.events()[1]) {
            (SessionEvent::Admit { spec: a, .. }, SessionEvent::Admit { spec: b, .. }) => {
                assert_eq!(a.priority, 0.8);
                assert_eq!(b.priority, 0.5);
            }
            other => panic!("expected two admits, got {other:?}"),
        }
        match &s.events()[2] {
            SessionEvent::Depart { query, .. } => assert_eq!(*query, QueryId(0)),
            other => panic!("expected depart, got {other:?}"),
        }
    }

    #[test]
    fn equal_tick_departs_sort_before_admits_and_by_id() {
        let s = EventStream::parse("admit@100=0,depart@100=1,admit@100=1,depart@100=0", &pool())
            .expect("valid");
        let kinds: Vec<(Ticks, Option<u16>)> = s
            .events()
            .iter()
            .map(|e| match e {
                SessionEvent::Depart { at, query } => (*at, Some(query.0)),
                SessionEvent::Admit { at, .. } => (*at, None),
            })
            .collect();
        // Departs first (ascending id), then admits in textual order.
        assert_eq!(
            kinds,
            vec![(100, Some(0)), (100, Some(1)), (100, None), (100, None)]
        );
        match (&s.events()[2], &s.events()[3]) {
            (SessionEvent::Admit { spec: a, .. }, SessionEvent::Admit { spec: b, .. }) => {
                assert_eq!(a.priority, 0.5, "first textual admit is pool 0");
                assert_eq!(b.priority, 0.8, "second textual admit is pool 1");
            }
            other => panic!("expected two admits, got {other:?}"),
        }
    }

    #[test]
    fn validate_rejects_same_tick_depart_of_admitted_query() {
        // Two initial queries: the first admission receives global id 2.
        // Departing id 2 at the same tick would apply before the admission
        // (departs-first tie-break) — rejected up front.
        let s = EventStream::parse("admit@500=0,depart@500=2", &pool()).expect("parses");
        match s.validate(2) {
            Err(EngineError::BadEventSpec { fragment, .. }) => {
                assert!(fragment.contains("depart@500=2"), "fragment: {fragment}");
            }
            other => panic!("expected BadEventSpec, got {other:?}"),
        }
        // Departing a query admitted strictly earlier is fine.
        let ok = EventStream::parse("admit@500=0,depart@600=2", &pool()).expect("parses");
        assert!(ok.validate(2).is_ok());
        // Departing an initial query at any tick is fine.
        let ok = EventStream::parse("depart@500=1,admit@500=0", &pool()).expect("parses");
        assert!(ok.validate(2).is_ok());
        // A depart scheduled *before* the admission is equally unsatisfiable.
        let bad = EventStream::parse("admit@900=0,depart@400=2", &pool()).expect("parses");
        assert!(bad.validate(2).is_err());
    }

    #[test]
    fn empty_and_none_yield_the_batch_profile() {
        assert!(EventStream::parse("", &pool()).expect("empty").is_empty());
        assert!(EventStream::parse("none", &pool())
            .expect("none")
            .is_empty());
        assert!(EventStream::empty().is_empty());
    }

    #[test]
    fn bad_specs_are_typed_errors() {
        for bad in [
            "admit@100",
            "admit=0",
            "admit@x=0",
            "admit@100=9",
            "admit@100=x",
            "depart@100=x",
            "retire@100=0",
        ] {
            match EventStream::parse(bad, &pool()) {
                Err(EngineError::BadEventSpec { .. }) => {}
                other => panic!("{bad:?} should fail to parse, got {other:?}"),
            }
        }
    }
}
