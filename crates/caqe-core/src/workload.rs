//! Workload model: skyline-over-join queries with contracts and priorities.

use caqe_contract::Contract;
use caqe_operators::MappingSet;
use caqe_types::{DimMask, QueryId};

/// One skyline-over-join query `SJ_[JC, F, X, P](R, T)` (§2.2) augmented
/// with its contract and priority (§7.1).
#[derive(Debug, Clone)]
pub struct QuerySpec {
    /// The join condition: index of the join column.
    pub join_col: usize,
    /// The scalar mapping functions producing the output space `X`.
    pub mapping: MappingSet,
    /// The skyline preference subspace `P` over the output dimensions.
    pub pref: DimMask,
    /// Query priority `pr_i ∈ [0, 1]` (HIGH ≥ 0.7 > MEDIUM ≥ 0.4 > LOW).
    pub priority: f64,
    /// The progressiveness contract.
    pub contract: Contract,
}

impl QuerySpec {
    /// Validates internal consistency.
    ///
    /// # Panics
    /// Panics if the preference references output dimensions the mapping
    /// does not produce, or the priority leaves `[0, 1]`.
    pub fn validate(&self) {
        let out = DimMask::full(self.mapping.output_dims());
        assert!(
            self.pref.is_subset_of(out),
            "preference {} references dims outside the {}-dim output space",
            self.pref,
            self.mapping.output_dims()
        );
        assert!(!self.pref.is_empty(), "empty preference subspace");
        assert!(
            (0.0..=1.0).contains(&self.priority),
            "priority {} outside [0, 1]",
            self.priority
        );
    }
}

/// A workload `S_Q` of queries with contracts `S_C`.
#[derive(Debug, Clone)]
pub struct Workload {
    queries: Vec<QuerySpec>,
}

impl Workload {
    /// Creates a validated workload.
    ///
    /// # Panics
    /// Panics if empty or any query fails validation.
    pub fn new(queries: Vec<QuerySpec>) -> Self {
        assert!(!queries.is_empty(), "workload must contain a query");
        for q in &queries {
            q.validate();
        }
        Workload { queries }
    }

    /// The queries in workload order (`QueryId(i)` is `queries()[i]`).
    pub fn queries(&self) -> &[QuerySpec] {
        &self.queries
    }

    /// Number of queries `|S_Q|`.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the workload is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// The query with the given id.
    pub fn query(&self, q: QueryId) -> &QuerySpec {
        &self.queries[q.index()]
    }

    /// Query ids sorted by descending priority — the processing order the
    /// paper's non-shared baselines use (§7.1).
    pub fn by_priority(&self) -> Vec<QueryId> {
        let mut ids: Vec<QueryId> = (0..self.queries.len()).map(|i| QueryId(i as u16)).collect();
        ids.sort_by(|a, b| {
            self.queries[b.index()]
                .priority
                .total_cmp(&self.queries[a.index()].priority)
        });
        ids
    }

    /// Initial optimizer weights: the query priorities.
    pub fn initial_weights(&self) -> Vec<f64> {
        self.queries.iter().map(|q| q.priority).collect()
    }
}

/// Fluent construction of common workloads.
#[derive(Debug, Default)]
pub struct WorkloadBuilder {
    queries: Vec<QuerySpec>,
}

impl WorkloadBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        WorkloadBuilder::default()
    }

    /// Adds one query.
    pub fn query(mut self, spec: QuerySpec) -> Self {
        self.queries.push(spec);
        self
    }

    /// Finalizes the workload.
    ///
    /// # Panics
    /// Panics if no queries were added or any is invalid.
    pub fn build(self) -> Workload {
        Workload::new(self.queries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(pref: DimMask, priority: f64) -> QuerySpec {
        QuerySpec {
            join_col: 0,
            mapping: MappingSet::concat(2, 2),
            pref,
            priority,
            contract: Contract::LogDecay,
        }
    }

    #[test]
    fn builder_and_accessors() {
        let w = WorkloadBuilder::new()
            .query(spec(DimMask::from_dims([0, 1]), 0.9))
            .query(spec(DimMask::from_dims([2, 3]), 0.3))
            .build();
        assert_eq!(w.len(), 2);
        assert_eq!(w.query(QueryId(1)).priority, 0.3);
        assert_eq!(w.initial_weights(), vec![0.9, 0.3]);
    }

    #[test]
    fn priority_ordering() {
        let w = WorkloadBuilder::new()
            .query(spec(DimMask::from_dims([0, 1]), 0.2))
            .query(spec(DimMask::from_dims([1, 2]), 0.8))
            .query(spec(DimMask::from_dims([2, 3]), 0.5))
            .build();
        assert_eq!(w.by_priority(), vec![QueryId(1), QueryId(2), QueryId(0)]);
    }

    #[test]
    #[should_panic]
    fn pref_outside_output_space_rejected() {
        spec(DimMask::from_dims([7]), 0.5).validate();
    }

    #[test]
    #[should_panic]
    fn empty_workload_rejected() {
        let _ = Workload::new(vec![]);
    }

    #[test]
    #[should_panic]
    fn priority_out_of_range_rejected() {
        spec(DimMask::from_dims([0]), 1.5).validate();
    }
}
