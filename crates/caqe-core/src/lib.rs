//! The CAQE framework (§4–§6 of the paper): a contract-driven optimizer and
//! contract-aware executor for workloads of concurrent skyline-over-join
//! queries.
//!
//! The pipeline, mirroring Figure 4:
//!
//! 1. queries are grouped by shared join condition and mapping functions
//!    ([`group`]); each group gets a **min-max cuboid** shared plan;
//! 2. **multi-query output look-ahead** builds the abstract output space:
//!    quad-tree cells → output regions → dependency graph (`caqe-regions`);
//! 3. the **contract-driven optimizer** (Algorithm 1) iteratively picks the
//!    root region with the highest Cumulative Satisfaction Metric;
//! 4. the **contract-aware executor** processes the chosen region at tuple
//!    level over the shared plan, progressively emits results that are
//!    guaranteed final, and feeds run-time satisfaction back into the
//!    optimizer's weights (Equation 11).
//!
//! The same engine, reconfigured through [`config::EngineConfig`], also
//! realizes the shared-plan baseline **S-JFSL** (FIFO order, no look-ahead
//! pruning, no feedback) and the per-query progressive baseline **ProgXe+**
//! (count-driven scheduling, single-query workloads) — see
//! `caqe-baselines`.

// Library code must degrade, not abort (DESIGN.md §13).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod config;
pub mod engine;
pub mod group;
pub mod ingest;
pub mod outcome;
pub mod plan;
pub mod session;
pub mod strategy;
pub mod workload;

pub use config::{DegradationPolicy, EngineConfig, ExecConfig, RecoveryPolicy, SchedulingPolicy};
pub use engine::{
    run_engine, run_engine_online, run_engine_traced, try_run_engine, try_run_engine_online,
    try_run_engine_online_prepared, try_run_engine_online_traced, try_run_engine_traced,
};
pub use group::GroupMemo;
pub use ingest::{prepare_inputs, PreparedInputs};
pub use outcome::{QueryOutcome, RunOutcome};
pub use plan::{config_fingerprint, table_fingerprint, PlanError, PreparedPlan, PLAN_VERSION};
pub use session::{EventStream, SessionEvent};
pub use strategy::{CaqeStrategy, ExecutionStrategy};
pub use workload::{QuerySpec, Workload, WorkloadBuilder};
