//! The execution-strategy abstraction the experiment harness compares.

use crate::config::{EngineConfig, ExecConfig};
use crate::engine::{run_engine, run_engine_traced};
use crate::outcome::RunOutcome;
use crate::workload::Workload;
use caqe_data::Table;
use caqe_trace::{RecordingSink, TraceEvent, TraceSink};

/// A technique that executes a whole workload over a pair of base tables —
/// CAQE itself or any of the paper's competitors (§7.1).
pub trait ExecutionStrategy {
    /// Display name used in experiment output ("CAQE", "JFSL", …).
    fn name(&self) -> &'static str;

    /// Executes the workload and reports the outcome.
    fn run(&self, r: &Table, t: &Table, workload: &Workload, exec: &ExecConfig) -> RunOutcome;

    /// Executes the workload while recording a deterministic trace.
    ///
    /// Takes the concrete [`RecordingSink`] (rather than a generic
    /// `impl TraceSink`) so the trait stays object-safe — the harness
    /// compares strategies through `Box<dyn ExecutionStrategy>`. The
    /// default implementation runs untraced and records only the run
    /// header, for strategies that predate the tracing layer.
    fn run_traced(
        &self,
        r: &Table,
        t: &Table,
        workload: &Workload,
        exec: &ExecConfig,
        sink: &mut RecordingSink,
    ) -> RunOutcome {
        sink.record(TraceEvent::Meta {
            strategy: self.name().to_string(),
            queries: workload.len(),
            ticks_per_second: exec.cost_model.ticks_per_second,
            start_tick: 0,
        });
        self.run(r, t, workload, exec)
    }
}

/// The full CAQE framework.
#[derive(Debug, Clone, Default)]
pub struct CaqeStrategy;

impl ExecutionStrategy for CaqeStrategy {
    fn name(&self) -> &'static str {
        "CAQE"
    }

    fn run(&self, r: &Table, t: &Table, workload: &Workload, exec: &ExecConfig) -> RunOutcome {
        run_engine(self.name(), r, t, workload, exec, &EngineConfig::caqe(), 0)
    }

    fn run_traced(
        &self,
        r: &Table,
        t: &Table,
        workload: &Workload,
        exec: &ExecConfig,
        sink: &mut RecordingSink,
    ) -> RunOutcome {
        run_engine_traced(
            self.name(),
            r,
            t,
            workload,
            exec,
            &EngineConfig::caqe(),
            0,
            sink,
        )
    }
}
