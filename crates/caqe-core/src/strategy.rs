//! The execution-strategy abstraction the experiment harness compares.

use crate::config::{EngineConfig, ExecConfig};
use crate::engine::run_engine;
use crate::outcome::RunOutcome;
use crate::workload::Workload;
use caqe_data::Table;

/// A technique that executes a whole workload over a pair of base tables —
/// CAQE itself or any of the paper's competitors (§7.1).
pub trait ExecutionStrategy {
    /// Display name used in experiment output ("CAQE", "JFSL", …).
    fn name(&self) -> &'static str;

    /// Executes the workload and reports the outcome.
    fn run(&self, r: &Table, t: &Table, workload: &Workload, exec: &ExecConfig) -> RunOutcome;
}

/// The full CAQE framework.
#[derive(Debug, Clone, Default)]
pub struct CaqeStrategy;

impl ExecutionStrategy for CaqeStrategy {
    fn name(&self) -> &'static str {
        "CAQE"
    }

    fn run(&self, r: &Table, t: &Table, workload: &Workload, exec: &ExecConfig) -> RunOutcome {
        run_engine(self.name(), r, t, workload, exec, &EngineConfig::caqe(), 0)
    }
}
