//! The execution-strategy abstraction the experiment harness compares.

use crate::config::{EngineConfig, ExecConfig};
use crate::engine::{try_run_engine, try_run_engine_traced};
use crate::outcome::RunOutcome;
use crate::workload::Workload;
use caqe_data::Table;
use caqe_trace::{RecordingSink, TraceEvent, TraceSink};
use caqe_types::EngineError;

/// A technique that executes a whole workload over a pair of base tables —
/// CAQE itself or any of the paper's competitors (§7.1).
pub trait ExecutionStrategy {
    /// Display name used in experiment output ("CAQE", "JFSL", …).
    fn name(&self) -> &'static str;

    /// Executes the workload and reports the outcome, or a typed error —
    /// e.g. corrupt input under the `Reject` validation policy.
    fn try_run(
        &self,
        r: &Table,
        t: &Table,
        workload: &Workload,
        exec: &ExecConfig,
    ) -> Result<RunOutcome, EngineError>;

    /// [`ExecutionStrategy::try_run`] while recording a deterministic trace.
    ///
    /// Takes the concrete [`RecordingSink`] (rather than a generic
    /// `impl TraceSink`) so the trait stays object-safe — the harness
    /// compares strategies through `Box<dyn ExecutionStrategy>`. The
    /// default implementation runs untraced and records only the run
    /// header, for strategies that predate the tracing layer.
    fn try_run_traced(
        &self,
        r: &Table,
        t: &Table,
        workload: &Workload,
        exec: &ExecConfig,
        sink: &mut RecordingSink,
    ) -> Result<RunOutcome, EngineError> {
        sink.record(TraceEvent::Meta {
            strategy: self.name().to_string(),
            queries: workload.len(),
            ticks_per_second: exec.cost_model.ticks_per_second,
            start_tick: 0,
        });
        self.try_run(r, t, workload, exec)
    }

    /// Infallible [`ExecutionStrategy::try_run`], panicking on ingestion
    /// failure — the historical interface, kept for harness call sites
    /// that never enable fault plans.
    fn run(&self, r: &Table, t: &Table, workload: &Workload, exec: &ExecConfig) -> RunOutcome {
        match self.try_run(r, t, workload, exec) {
            Ok(outcome) => outcome,
            Err(e) => panic!("strategy {} failed: {e}", self.name()),
        }
    }

    /// Infallible [`ExecutionStrategy::try_run_traced`]; see
    /// [`ExecutionStrategy::run`].
    fn run_traced(
        &self,
        r: &Table,
        t: &Table,
        workload: &Workload,
        exec: &ExecConfig,
        sink: &mut RecordingSink,
    ) -> RunOutcome {
        match self.try_run_traced(r, t, workload, exec, sink) {
            Ok(outcome) => outcome,
            Err(e) => panic!("strategy {} failed: {e}", self.name()),
        }
    }
}

/// The full CAQE framework.
#[derive(Debug, Clone, Default)]
pub struct CaqeStrategy;

impl ExecutionStrategy for CaqeStrategy {
    fn name(&self) -> &'static str {
        "CAQE"
    }

    fn try_run(
        &self,
        r: &Table,
        t: &Table,
        workload: &Workload,
        exec: &ExecConfig,
    ) -> Result<RunOutcome, EngineError> {
        try_run_engine(self.name(), r, t, workload, exec, &EngineConfig::caqe(), 0)
    }

    fn try_run_traced(
        &self,
        r: &Table,
        t: &Table,
        workload: &Workload,
        exec: &ExecConfig,
        sink: &mut RecordingSink,
    ) -> Result<RunOutcome, EngineError> {
        try_run_engine_traced(
            self.name(),
            r,
            t,
            workload,
            exec,
            &EngineConfig::caqe(),
            0,
            sink,
        )
    }
}
