//! Engine and execution configuration.

use caqe_partition::QuadTreeConfig;
use caqe_types::CostModel;

/// How the engine picks the next region for tuple-level processing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulingPolicy {
    /// CAQE proper: rank dependency-graph roots by the Cumulative
    /// Satisfaction Metric (Equation 8).
    ContractDriven,
    /// The count-driven policy of ProgXe+ [27]: maximize estimated
    /// progressive output per unit cost, ignoring contracts and weights.
    CountDriven,
    /// Blind pipelining in region-id order — the shared-plan S-JFSL
    /// baseline.
    Fifo,
}

/// Knobs that turn the shared engine into CAQE, S-JFSL or the core of
/// ProgXe+. Defaults are full CAQE.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Region scheduling policy.
    pub policy: SchedulingPolicy,
    /// Run the coarse-level skyline during look-ahead, pruning regions that
    /// cannot contribute to any query (§5.2).
    pub coarse_pruning: bool,
    /// After processing a region, discard output cells / regions dominated
    /// by actually generated tuples (§6, "tuple level processing").
    pub dominance_discard: bool,
    /// Apply the satisfaction-based weight feedback (Equation 11).
    pub feedback: bool,
    /// Emit results progressively through the dependency-graph safety test
    /// (§6). When false the run is *blocking*: every query's skyline is
    /// reported only when all processing finishes (the S-JFSL profile).
    pub progressive_emission: bool,
}

impl EngineConfig {
    /// Full CAQE.
    pub fn caqe() -> Self {
        EngineConfig {
            policy: SchedulingPolicy::ContractDriven,
            coarse_pruning: true,
            dominance_discard: true,
            feedback: true,
            progressive_emission: true,
        }
    }

    /// The S-JFSL baseline: shared min-max-cuboid plan, blind FIFO
    /// pipelining, no look-ahead pruning, no feedback, blocking output.
    pub fn s_jfsl() -> Self {
        EngineConfig {
            policy: SchedulingPolicy::Fifo,
            coarse_pruning: false,
            dominance_discard: false,
            feedback: false,
            progressive_emission: false,
        }
    }

    /// The region engine underlying ProgXe+ [27]: progressive and
    /// output-space driven, but count-based and contract-blind.
    pub fn progxe_core() -> Self {
        EngineConfig {
            policy: SchedulingPolicy::CountDriven,
            coarse_pruning: true,
            dominance_discard: true,
            feedback: false,
            progressive_emission: true,
        }
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig::caqe()
    }
}

/// Environment shared by every execution strategy in a comparison: the
/// virtual-clock cost model and the input partitioning granularity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecConfig {
    /// Tick prices and the ticks→seconds rate.
    pub cost_model: CostModel,
    /// Quad-tree construction parameters.
    pub quadtree: QuadTreeConfig,
    /// Whether the Distinct Value Attributes assumption may be exploited
    /// (Theorem 1 shortcuts). True for the standard generators.
    pub assume_dva: bool,
    /// Host-side worker threads for the deterministic parallel layer:
    /// `None` = serial (the default), `Some(0)` = all available cores,
    /// `Some(n)` = exactly `n` workers. Parallelism only changes wall-clock
    /// speed — the virtual clock, stats and results are bit-identical at
    /// every setting.
    pub parallelism: Option<usize>,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            cost_model: CostModel::default(),
            quadtree: QuadTreeConfig::default(),
            assume_dva: true,
            parallelism: None,
        }
    }
}

impl ExecConfig {
    /// Caps the partitioning at roughly `cells_per_table` leaves per table
    /// — the region count then stays near `cells_per_table²`, keeping the
    /// look-ahead's quadratic cost proportional to the tuple-level work it
    /// saves. (`n` is accepted for call-site readability; the quad-tree's
    /// largest-first budgeted splitting makes the bound size-independent.)
    pub fn with_target_cells(mut self, _n: usize, cells_per_table: usize) -> Self {
        self.quadtree = QuadTreeConfig::with_cell_budget(cells_per_table);
        self
    }

    /// Sets the worker-thread knob (see [`ExecConfig::parallelism`]).
    pub fn with_parallelism(mut self, parallelism: Option<usize>) -> Self {
        self.parallelism = parallelism;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_where_it_matters() {
        let caqe = EngineConfig::caqe();
        let sj = EngineConfig::s_jfsl();
        let px = EngineConfig::progxe_core();
        assert_eq!(caqe.policy, SchedulingPolicy::ContractDriven);
        assert_eq!(sj.policy, SchedulingPolicy::Fifo);
        assert_eq!(px.policy, SchedulingPolicy::CountDriven);
        assert!(caqe.feedback && !sj.feedback && !px.feedback);
        assert!(!sj.coarse_pruning && px.coarse_pruning);
        assert!(caqe.progressive_emission && px.progressive_emission);
        assert!(!sj.progressive_emission);
        assert_eq!(EngineConfig::default(), caqe);
    }

    #[test]
    fn target_cells_sets_cell_budget() {
        let c = ExecConfig::default().with_target_cells(10_000, 40);
        assert_eq!(c.quadtree.max_cells, 40);
        let tiny = ExecConfig::default().with_target_cells(10, 0);
        assert_eq!(tiny.quadtree.max_cells, 1);
    }

    #[test]
    fn parallelism_defaults_serial() {
        assert_eq!(ExecConfig::default().parallelism, None);
        let c = ExecConfig::default().with_parallelism(Some(4));
        assert_eq!(c.parallelism, Some(4));
    }
}
