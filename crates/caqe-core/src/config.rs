//! Engine and execution configuration.

use caqe_data::ValidationPolicy;
use caqe_faults::FaultPlan;
use caqe_partition::QuadTreeConfig;
use caqe_types::CostModel;

/// How the engine picks the next region for tuple-level processing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulingPolicy {
    /// CAQE proper: rank dependency-graph roots by the Cumulative
    /// Satisfaction Metric (Equation 8).
    ContractDriven,
    /// The count-driven policy of ProgXe+ [27]: maximize estimated
    /// progressive output per unit cost, ignoring contracts and weights.
    CountDriven,
    /// Blind pipelining in region-id order — the shared-plan S-JFSL
    /// baseline.
    Fifo,
}

/// Knobs that turn the shared engine into CAQE, S-JFSL or the core of
/// ProgXe+. Defaults are full CAQE.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Region scheduling policy.
    pub policy: SchedulingPolicy,
    /// Run the coarse-level skyline during look-ahead, pruning regions that
    /// cannot contribute to any query (§5.2).
    pub coarse_pruning: bool,
    /// After processing a region, discard output cells / regions dominated
    /// by actually generated tuples (§6, "tuple level processing").
    pub dominance_discard: bool,
    /// Apply the satisfaction-based weight feedback (Equation 11).
    pub feedback: bool,
    /// Emit results progressively through the dependency-graph safety test
    /// (§6). When false the run is *blocking*: every query's skyline is
    /// reported only when all processing finishes (the S-JFSL profile).
    pub progressive_emission: bool,
}

impl EngineConfig {
    /// Full CAQE.
    pub fn caqe() -> Self {
        EngineConfig {
            policy: SchedulingPolicy::ContractDriven,
            coarse_pruning: true,
            dominance_discard: true,
            feedback: true,
            progressive_emission: true,
        }
    }

    /// The S-JFSL baseline: shared min-max-cuboid plan, blind FIFO
    /// pipelining, no look-ahead pruning, no feedback, blocking output.
    pub fn s_jfsl() -> Self {
        EngineConfig {
            policy: SchedulingPolicy::Fifo,
            coarse_pruning: false,
            dominance_discard: false,
            feedback: false,
            progressive_emission: false,
        }
    }

    /// The region engine underlying ProgXe+ [27]: progressive and
    /// output-space driven, but count-based and contract-blind.
    pub fn progxe_core() -> Self {
        EngineConfig {
            policy: SchedulingPolicy::CountDriven,
            coarse_pruning: true,
            dominance_discard: true,
            feedback: false,
            progressive_emission: true,
        }
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig::caqe()
    }
}

/// How the engine recovers from a region processing unit that panicked
/// (injected by a chaos plan or a genuine bug caught by `catch_unwind`).
/// Backoff is measured in *virtual ticks*, so recovery schedules are
/// deterministic and thread-invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Processing attempts before a region is quarantined.
    pub max_attempts: u32,
    /// Backoff after the first failure, doubling per retry.
    pub backoff_base_ticks: u64,
    /// Ceiling on the exponential backoff.
    pub backoff_cap_ticks: u64,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_attempts: 3,
            backoff_base_ticks: 64,
            backoff_cap_ticks: 1024,
        }
    }
}

impl RecoveryPolicy {
    /// Backoff after the `attempt`-th failure (1-based): exponential with
    /// a cap, `base · 2^(attempt-1)` ticks.
    pub fn backoff_ticks(&self, attempt: u32) -> u64 {
        let shift = attempt.saturating_sub(1).min(32);
        self.backoff_base_ticks
            .saturating_mul(1u64 << shift)
            .min(self.backoff_cap_ticks)
    }
}

/// Contract-aware load shedding (DESIGN.md §13): when the workload's mean
/// running satisfaction drops below `sat_floor` under load, the scheduler
/// sheds the lowest-CSM dependency-graph root region (re-invoking the
/// Alg. 1 ranking with the live Eq. 11 weights) instead of letting every
/// query stall behind it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradationPolicy {
    /// Mean running-satisfaction floor in `[0, 1]`. `0.0` (the default)
    /// disables shedding entirely — a strict no-op on the golden path.
    pub sat_floor: f64,
    /// Virtual ticks before the floor is first enforced, so startup (when
    /// no query has emitted yet) is not misread as degradation.
    pub grace_ticks: u64,
}

impl Default for DegradationPolicy {
    fn default() -> Self {
        DegradationPolicy {
            sat_floor: 0.0,
            grace_ticks: 20_000,
        }
    }
}

impl DegradationPolicy {
    /// Whether shedding can ever trigger.
    pub fn enabled(&self) -> bool {
        self.sat_floor > 0.0
    }
}

/// Environment shared by every execution strategy in a comparison: the
/// virtual-clock cost model and the input partitioning granularity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecConfig {
    /// Tick prices and the ticks→seconds rate.
    pub cost_model: CostModel,
    /// Quad-tree construction parameters.
    pub quadtree: QuadTreeConfig,
    /// Whether the Distinct Value Attributes assumption may be exploited
    /// (Theorem 1 shortcuts). True for the standard generators.
    pub assume_dva: bool,
    /// Host-side worker threads for the deterministic parallel layer:
    /// `None` = serial (the default), `Some(0)` = all available cores,
    /// `Some(n)` = exactly `n` workers. Parallelism only changes wall-clock
    /// speed — the virtual clock, stats and results are bit-identical at
    /// every setting.
    pub parallelism: Option<usize>,
    /// Deterministic fault plan ([`FaultPlan::none`] by default — every
    /// injection hook is then a strict no-op).
    pub faults: FaultPlan,
    /// Ingestion validation policy for non-finite values and duplicate
    /// record ids.
    pub validation: ValidationPolicy,
    /// Panic isolation / retry / quarantine knobs.
    pub recovery: RecoveryPolicy,
    /// Contract-aware load shedding (disabled by default).
    pub degradation: DegradationPolicy,
    /// Online sessions only: rebuild the whole shared skyline plan from the
    /// group's materialized history on every admission instead of patching
    /// the lattice incrementally (Def. 7). The results are identical; only
    /// the maintenance cost differs — this is the comparison arm of the
    /// churn benchmark. Ignored when the event stream is empty.
    pub rebuild_on_admit: bool,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            cost_model: CostModel::default(),
            quadtree: QuadTreeConfig::default(),
            assume_dva: true,
            parallelism: None,
            faults: FaultPlan::none(),
            validation: ValidationPolicy::default(),
            recovery: RecoveryPolicy::default(),
            degradation: DegradationPolicy::default(),
            rebuild_on_admit: false,
        }
    }
}

impl ExecConfig {
    /// Caps the partitioning at roughly `cells_per_table` leaves per table
    /// — the region count then stays near `cells_per_table²`, keeping the
    /// look-ahead's quadratic cost proportional to the tuple-level work it
    /// saves. (`n` is accepted for call-site readability; the quad-tree's
    /// largest-first budgeted splitting makes the bound size-independent.)
    pub fn with_target_cells(mut self, _n: usize, cells_per_table: usize) -> Self {
        self.quadtree = QuadTreeConfig::with_cell_budget(cells_per_table);
        self
    }

    /// Sets the worker-thread knob (see [`ExecConfig::parallelism`]).
    pub fn with_parallelism(mut self, parallelism: Option<usize>) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Installs a fault plan (see [`FaultPlan`]).
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the ingestion validation policy.
    pub fn with_validation(mut self, validation: ValidationPolicy) -> Self {
        self.validation = validation;
        self
    }

    /// Sets the panic recovery knobs.
    pub fn with_recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.recovery = recovery;
        self
    }

    /// Enables contract-aware shedding below the given satisfaction floor.
    pub fn with_degradation(mut self, degradation: DegradationPolicy) -> Self {
        self.degradation = degradation;
        self
    }

    /// Selects the full-rebuild admission path for online sessions (see
    /// [`ExecConfig::rebuild_on_admit`]).
    pub fn with_rebuild_on_admit(mut self, rebuild: bool) -> Self {
        self.rebuild_on_admit = rebuild;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_where_it_matters() {
        let caqe = EngineConfig::caqe();
        let sj = EngineConfig::s_jfsl();
        let px = EngineConfig::progxe_core();
        assert_eq!(caqe.policy, SchedulingPolicy::ContractDriven);
        assert_eq!(sj.policy, SchedulingPolicy::Fifo);
        assert_eq!(px.policy, SchedulingPolicy::CountDriven);
        assert!(caqe.feedback && !sj.feedback && !px.feedback);
        assert!(!sj.coarse_pruning && px.coarse_pruning);
        assert!(caqe.progressive_emission && px.progressive_emission);
        assert!(!sj.progressive_emission);
        assert_eq!(EngineConfig::default(), caqe);
    }

    #[test]
    fn target_cells_sets_cell_budget() {
        let c = ExecConfig::default().with_target_cells(10_000, 40);
        assert_eq!(c.quadtree.max_cells, 40);
        let tiny = ExecConfig::default().with_target_cells(10, 0);
        assert_eq!(tiny.quadtree.max_cells, 1);
    }

    #[test]
    fn parallelism_defaults_serial() {
        assert_eq!(ExecConfig::default().parallelism, None);
        let c = ExecConfig::default().with_parallelism(Some(4));
        assert_eq!(c.parallelism, Some(4));
    }

    #[test]
    fn fault_handling_defaults_are_inert() {
        let c = ExecConfig::default();
        assert!(!c.faults.is_active());
        assert_eq!(c.validation, ValidationPolicy::Reject);
        assert!(!c.degradation.enabled());
        let chaos = ExecConfig::default()
            .with_faults(FaultPlan::seeded(1).with_panics(0.5))
            .with_validation(ValidationPolicy::Clamp)
            .with_degradation(DegradationPolicy {
                sat_floor: 0.4,
                grace_ticks: 100,
            });
        assert!(chaos.faults.is_active());
        assert!(chaos.degradation.enabled());
        assert_ne!(chaos, ExecConfig::default());
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let r = RecoveryPolicy::default();
        assert_eq!(r.backoff_ticks(1), 64);
        assert_eq!(r.backoff_ticks(2), 128);
        assert_eq!(r.backoff_ticks(3), 256);
        assert_eq!(r.backoff_ticks(10), 1024);
        assert_eq!(r.backoff_ticks(63), 1024); // shift clamp, no overflow
    }
}
