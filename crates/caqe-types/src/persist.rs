//! Line-oriented persistence primitives shared by the plan-snapshot codecs
//! (DESIGN.md §19).
//!
//! Every on-disk artifact in this repo — the serve-layer session snapshot
//! and the PR 10 plan snapshot — is a plain-text, line-oriented file sealed
//! by an FNV-1a checksum, with floats encoded as the hex of their IEEE-754
//! bits so round-trips are lossless bit-for-bit (NaN payloads included).
//! This module centralizes those primitives so each codec spells them the
//! same way.

use crate::Value;

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// One-shot FNV-1a over a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.bytes(bytes);
    h.finish()
}

/// Incremental FNV-1a hasher for fingerprinting structured data.
///
/// Multi-byte integers are folded little-endian; floats are folded as their
/// IEEE-754 bit patterns, so `-0.0` and `+0.0` fingerprint differently —
/// exactly the distinction the deterministic engine preserves.
#[derive(Debug, Clone)]
pub struct Fnv1a {
    h: u64,
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

impl Fnv1a {
    /// A fresh hasher at the offset basis.
    pub fn new() -> Self {
        Fnv1a { h: FNV_OFFSET }
    }

    /// Folds raw bytes.
    pub fn bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.h ^= u64::from(b);
            self.h = self.h.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Folds a `u64` little-endian.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.bytes(&v.to_le_bytes())
    }

    /// Folds a `usize` as a `u64`.
    pub fn usize(&mut self, v: usize) -> &mut Self {
        self.u64(v as u64)
    }

    /// Folds a float by its bit pattern.
    pub fn f64(&mut self, v: Value) -> &mut Self {
        self.u64(v.to_bits())
    }

    /// Folds a string's UTF-8 bytes, length-prefixed so concatenations
    /// cannot collide.
    pub fn str(&mut self, s: &str) -> &mut Self {
        self.usize(s.len()).bytes(s.as_bytes())
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.h
    }
}

/// Encodes a float as the 16-hex-digit form of its IEEE-754 bits — the
/// lossless wire form every snapshot codec uses.
pub fn f64_hex(v: Value) -> String {
    format!("{:016x}", v.to_bits())
}

/// Decodes a float from its bit-pattern hex form.
pub fn parse_f64_hex(s: &str) -> Option<Value> {
    u64::from_str_radix(s, 16).ok().map(Value::from_bits)
}

/// Parses a decimal `u64` field.
pub fn parse_u64(s: &str) -> Option<u64> {
    s.parse().ok()
}

/// Parses a decimal `usize` field.
pub fn parse_usize(s: &str) -> Option<usize> {
    s.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn incremental_equals_one_shot() {
        let mut h = Fnv1a::new();
        h.bytes(b"foo").bytes(b"bar");
        assert_eq!(h.finish(), fnv1a(b"foobar"));
    }

    #[test]
    fn f64_hex_round_trips_exactly() {
        for v in [
            0.0,
            -0.0,
            1.5,
            -3.25e-100,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE,
        ] {
            let back = parse_f64_hex(&f64_hex(v)).expect("hex parses");
            assert_eq!(back.to_bits(), v.to_bits(), "{v}");
        }
        // NaN payload preserved bit-for-bit.
        let nan = f64::from_bits(0x7ff8_dead_beef_0001);
        assert_eq!(
            parse_f64_hex(&f64_hex(nan)).map(f64::to_bits),
            Some(nan.to_bits())
        );
    }

    #[test]
    fn signed_zeros_fingerprint_differently() {
        let a = {
            let mut h = Fnv1a::new();
            h.f64(0.0);
            h.finish()
        };
        let b = {
            let mut h = Fnv1a::new();
            h.f64(-0.0);
            h.finish()
        };
        assert_ne!(a, b);
    }

    #[test]
    fn str_folding_is_length_prefixed() {
        let ab = {
            let mut h = Fnv1a::new();
            h.str("ab").str("c");
            h.finish()
        };
        let a_bc = {
            let mut h = Fnv1a::new();
            h.str("a").str("bc");
            h.finish()
        };
        assert_ne!(ab, a_bc);
    }

    #[test]
    fn bad_hex_rejected() {
        assert!(parse_f64_hex("not-hex").is_none());
        assert!(parse_u64("3.5").is_none());
    }
}
