//! Operation counters — the metrics of the paper's evaluation (§7.1):
//! memory usage is proxied by the number of join results and CPU usage by
//! the number of pairwise skyline (dominance) comparisons, exactly as the
//! paper measures them in Figure 10.

use std::ops::AddAssign;

/// Per-query emission counters: the raw material of the Figure 9/11
/// per-query satisfaction breakdowns, accumulated directly by the
/// executors instead of being reconstructed from emission logs.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PerQueryStats {
    /// Result tuples emitted for this query.
    pub tuples_emitted: u64,
    /// Sum of the utilities awarded to this query's emissions (the
    /// numerator of the run-time satisfaction metric `v(Q_i, t)`).
    pub utility_sum: f64,
}

impl AddAssign for PerQueryStats {
    fn add_assign(&mut self, rhs: PerQueryStats) {
        self.tuples_emitted += rhs.tuples_emitted;
        self.utility_sum += rhs.utility_sum;
    }
}

/// Counters accumulated by an execution strategy over a whole workload run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Stats {
    /// Join-candidate pairs examined (probe attempts).
    pub join_probes: u64,
    /// Join results materialized (the paper's memory-usage metric).
    pub join_results: u64,
    /// Pairwise tuple-level dominance comparisons (the paper's CPU-usage
    /// metric, Figure 10.b).
    pub dom_comparisons: u64,
    /// Abstract region/cell-level dominance tests performed by the
    /// look-ahead, dependency graph and safe-emission machinery. These
    /// advance the virtual clock like any other work but are reported
    /// separately, mirroring the paper's metric which counts tuple-level
    /// skyline comparisons only.
    pub region_comparisons: u64,
    /// Mapping-function evaluations.
    pub map_evals: u64,
    /// Result tuples emitted across all queries.
    pub tuples_emitted: u64,
    /// Units of work (regions / chunks) processed at tuple level.
    pub regions_processed: u64,
    /// Regions discarded without tuple-level processing (look-ahead pruning).
    pub regions_pruned: u64,
    /// Join results discarded because their output cell was dominated.
    pub tuples_discarded: u64,
    /// Region processing attempts that failed (panicked) and were requeued
    /// with backoff. Zero unless fault injection is active.
    pub region_retries: u64,
    /// Regions quarantined after exhausting their retry budget.
    pub regions_quarantined: u64,
    /// Root regions shed by the contract-aware degradation policy.
    pub regions_shed: u64,
    /// Records dropped or quarantined by ingestion validation (non-finite
    /// values or duplicate identifiers).
    pub ingest_quarantined: u64,
    /// Non-finite preference values clamped by ingestion validation.
    pub ingest_clamped: u64,
    /// Virtual ticks spent building join groups (partitioning excluded —
    /// the quad-tree build is uncharged). Accounted at the engine's phase
    /// boundaries on the main scheduling thread, so the breakdown is
    /// thread-invariant like every other counter.
    pub build_ticks: u64,
    /// Virtual ticks spent in the probe/project phase of region processing.
    pub probe_ticks: u64,
    /// Virtual ticks spent in shared-plan skyline insertion.
    pub insert_ticks: u64,
    /// Virtual ticks spent in emission-safety checks and result emission.
    pub emit_ticks: u64,
    /// Dominance + region comparisons charged during group build.
    pub build_dom_cmps: u64,
    /// Tuple-level dominance comparisons charged during plan insertion.
    pub insert_dom_cmps: u64,
    /// Region-level comparisons charged by the emission-safety scan.
    pub emit_region_cmps: u64,
    /// Kernel dispatch diagnostic: times the block-bitset path was taken.
    /// Describes *which implementation ran*, not what it charged — excluded
    /// from [`Stats::observable`] because forced-scalar replays legitimately
    /// differ here while remaining observationally identical.
    pub block_kernel_ops: u64,
    /// Kernel dispatch diagnostic: times the scalar fallback was taken by a
    /// dispatching entry point (direct calls to `*_scalar` twins count
    /// nothing — they are references, not dispatch decisions).
    pub scalar_kernel_ops: u64,
    /// Prune-layer diagnostic: partition buckets skipped whole because the
    /// coarse lattice key proved them incomparable to the candidate. Like
    /// the kernel-dispatch counters this describes *how* the work was done,
    /// not what it charged — excluded from [`Stats::observable`].
    pub sig_partitions_skipped: u64,
    /// Prune-layer diagnostic: candidates rejected at partition level (a
    /// bucket key proved every member a dominator without touching member
    /// points). At most one per candidate, so this never exceeds
    /// `dom_comparisons`. Excluded from [`Stats::observable`].
    pub sig_partitions_rejected: u64,
    /// Prune-layer diagnostic: point signatures quantized (signature
    /// construction is uncharged physical work, like the SFS presort).
    /// Excluded from [`Stats::observable`].
    pub sig_builds: u64,
    /// Presort/signature cache lookups answered from an existing interned
    /// entry. Excluded from [`Stats::observable`].
    pub presort_cache_hits: u64,
    /// Presort/signature cache lookups that had to build a fresh entry.
    /// Excluded from [`Stats::observable`].
    pub presort_cache_misses: u64,
    /// Tuples materialized into group arenas (join-history occupancy).
    pub arena_tuples: u64,
    /// Points interned into shared-plan stores (one-copy occupancy).
    pub plan_points_interned: u64,
    /// Per-query breakdown of emissions and utility, indexed by `QueryId`.
    /// Empty until an executor sizes it to the workload; worker-thread stat
    /// deltas carry it empty, so merges never misattribute across indices.
    pub per_query: Vec<PerQueryStats>,
}

/// Applies a caller macro to every scalar `u64` counter field, in
/// declaration order. One source of truth for the name↔field mapping that
/// [`Stats::counters`] and [`Stats::set_counter`] expose to the plan
/// snapshot codec (DESIGN.md §19) — adding a counter here keeps persistence
/// in sync automatically.
macro_rules! with_counter_fields {
    ($apply:ident) => {
        $apply!(
            join_probes,
            join_results,
            dom_comparisons,
            region_comparisons,
            map_evals,
            tuples_emitted,
            regions_processed,
            regions_pruned,
            tuples_discarded,
            region_retries,
            regions_quarantined,
            regions_shed,
            ingest_quarantined,
            ingest_clamped,
            build_ticks,
            probe_ticks,
            insert_ticks,
            emit_ticks,
            build_dom_cmps,
            insert_dom_cmps,
            emit_region_cmps,
            block_kernel_ops,
            scalar_kernel_ops,
            sig_partitions_skipped,
            sig_partitions_rejected,
            sig_builds,
            presort_cache_hits,
            presort_cache_misses,
            arena_tuples,
            plan_points_interned
        )
    };
}

impl Stats {
    /// A zeroed counter set (workload-global totals only; call
    /// [`Stats::ensure_queries`] to open the per-query breakdown).
    pub fn new() -> Self {
        Stats::default()
    }

    /// Every scalar counter as a `(name, value)` pair, in declaration
    /// order. The per-query breakdown is not included — worker-side stat
    /// deltas (the thing the plan snapshot memoizes) carry it empty.
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        macro_rules! list {
            ($($f:ident),*) => { vec![$((stringify!($f), self.$f)),*] };
        }
        with_counter_fields!(list)
    }

    /// Sets the named scalar counter, returning `false` for an unknown
    /// name (so snapshot parsers can reject stale field names instead of
    /// silently dropping them).
    pub fn set_counter(&mut self, name: &str, value: u64) -> bool {
        macro_rules! set {
            ($($f:ident),*) => {
                match name {
                    $(stringify!($f) => { self.$f = value; true })*
                    _ => false,
                }
            };
        }
        with_counter_fields!(set)
    }

    /// Sizes the per-query breakdown to at least `n` entries.
    pub fn ensure_queries(&mut self, n: usize) {
        if self.per_query.len() < n {
            self.per_query.resize(n, PerQueryStats::default());
        }
    }

    /// Credits one emission with utility `u` to query index `q`, growing
    /// the breakdown on demand.
    pub fn record_emission(&mut self, q: usize, u: f64) {
        self.tuples_emitted += 1;
        self.ensure_queries(q + 1);
        self.per_query[q].tuples_emitted += 1;
        self.per_query[q].utility_sum += u;
    }

    /// The charged observables: a copy with the kernel-dispatch diagnostics
    /// zeroed. Scalar-vs-block equivalence checks compare through this —
    /// the dispatch counters say *which* implementation ran, which is the
    /// one thing a forced-scalar reference arm is allowed to differ on.
    #[must_use]
    pub fn observable(&self) -> Stats {
        let mut s = self.clone();
        s.block_kernel_ops = 0;
        s.scalar_kernel_ops = 0;
        s.sig_partitions_skipped = 0;
        s.sig_partitions_rejected = 0;
        s.sig_builds = 0;
        s.presort_cache_hits = 0;
        s.presort_cache_misses = 0;
        s
    }
}

impl AddAssign for Stats {
    fn add_assign(&mut self, rhs: Stats) {
        self.join_probes += rhs.join_probes;
        self.join_results += rhs.join_results;
        self.dom_comparisons += rhs.dom_comparisons;
        self.region_comparisons += rhs.region_comparisons;
        self.map_evals += rhs.map_evals;
        self.tuples_emitted += rhs.tuples_emitted;
        self.regions_processed += rhs.regions_processed;
        self.regions_pruned += rhs.regions_pruned;
        self.tuples_discarded += rhs.tuples_discarded;
        self.region_retries += rhs.region_retries;
        self.regions_quarantined += rhs.regions_quarantined;
        self.regions_shed += rhs.regions_shed;
        self.ingest_quarantined += rhs.ingest_quarantined;
        self.ingest_clamped += rhs.ingest_clamped;
        self.build_ticks += rhs.build_ticks;
        self.probe_ticks += rhs.probe_ticks;
        self.insert_ticks += rhs.insert_ticks;
        self.emit_ticks += rhs.emit_ticks;
        self.build_dom_cmps += rhs.build_dom_cmps;
        self.insert_dom_cmps += rhs.insert_dom_cmps;
        self.emit_region_cmps += rhs.emit_region_cmps;
        self.block_kernel_ops += rhs.block_kernel_ops;
        self.scalar_kernel_ops += rhs.scalar_kernel_ops;
        self.sig_partitions_skipped += rhs.sig_partitions_skipped;
        self.sig_partitions_rejected += rhs.sig_partitions_rejected;
        self.sig_builds += rhs.sig_builds;
        self.presort_cache_hits += rhs.presort_cache_hits;
        self.presort_cache_misses += rhs.presort_cache_misses;
        self.arena_tuples += rhs.arena_tuples;
        self.plan_points_interned += rhs.plan_points_interned;
        self.ensure_queries(rhs.per_query.len());
        for (mine, theirs) in self.per_query.iter_mut().zip(rhs.per_query) {
            *mine += theirs;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_assign_sums_fields() {
        let mut a = Stats {
            join_probes: 1,
            join_results: 2,
            dom_comparisons: 3,
            region_comparisons: 9,
            map_evals: 4,
            tuples_emitted: 5,
            regions_processed: 6,
            regions_pruned: 7,
            tuples_discarded: 8,
            region_retries: 10,
            regions_quarantined: 11,
            regions_shed: 12,
            ingest_quarantined: 13,
            ingest_clamped: 14,
            build_ticks: 15,
            probe_ticks: 16,
            insert_ticks: 17,
            emit_ticks: 18,
            build_dom_cmps: 19,
            insert_dom_cmps: 20,
            emit_region_cmps: 21,
            block_kernel_ops: 22,
            scalar_kernel_ops: 23,
            sig_partitions_skipped: 26,
            sig_partitions_rejected: 27,
            sig_builds: 28,
            presort_cache_hits: 29,
            presort_cache_misses: 30,
            arena_tuples: 24,
            plan_points_interned: 25,
            per_query: vec![PerQueryStats {
                tuples_emitted: 5,
                utility_sum: 2.5,
            }],
        };
        a += a.clone();
        assert_eq!(a.join_probes, 2);
        assert_eq!(a.region_comparisons, 18);
        assert_eq!(a.tuples_discarded, 16);
        assert_eq!(a.region_retries, 20);
        assert_eq!(a.regions_quarantined, 22);
        assert_eq!(a.regions_shed, 24);
        assert_eq!(a.ingest_quarantined, 26);
        assert_eq!(a.ingest_clamped, 28);
        assert_eq!(a.build_ticks, 30);
        assert_eq!(a.probe_ticks, 32);
        assert_eq!(a.insert_ticks, 34);
        assert_eq!(a.emit_ticks, 36);
        assert_eq!(a.build_dom_cmps, 38);
        assert_eq!(a.insert_dom_cmps, 40);
        assert_eq!(a.emit_region_cmps, 42);
        assert_eq!(a.block_kernel_ops, 44);
        assert_eq!(a.scalar_kernel_ops, 46);
        assert_eq!(a.sig_partitions_skipped, 52);
        assert_eq!(a.sig_partitions_rejected, 54);
        assert_eq!(a.sig_builds, 56);
        assert_eq!(a.presort_cache_hits, 58);
        assert_eq!(a.presort_cache_misses, 60);
        assert_eq!(a.arena_tuples, 48);
        assert_eq!(a.plan_points_interned, 50);
        assert_eq!(a.per_query[0].tuples_emitted, 10);
        assert!((a.per_query[0].utility_sum - 5.0).abs() < 1e-12);
    }

    #[test]
    fn observable_zeroes_only_dispatch_diagnostics() {
        let mut s = Stats::new();
        s.dom_comparisons = 7;
        s.block_kernel_ops = 3;
        s.scalar_kernel_ops = 4;
        s.sig_partitions_skipped = 5;
        s.sig_partitions_rejected = 6;
        s.sig_builds = 8;
        s.presort_cache_hits = 9;
        s.presort_cache_misses = 10;
        let o = s.observable();
        assert_eq!(o.dom_comparisons, 7);
        assert_eq!(o.block_kernel_ops, 0);
        assert_eq!(o.scalar_kernel_ops, 0);
        assert_eq!(o.sig_partitions_skipped, 0);
        assert_eq!(o.sig_partitions_rejected, 0);
        assert_eq!(o.sig_builds, 0);
        assert_eq!(o.presort_cache_hits, 0);
        assert_eq!(o.presort_cache_misses, 0);
        // Everything else is untouched.
        let mut expect = s.clone();
        expect.block_kernel_ops = 0;
        expect.scalar_kernel_ops = 0;
        expect.sig_partitions_skipped = 0;
        expect.sig_partitions_rejected = 0;
        expect.sig_builds = 0;
        expect.presort_cache_hits = 0;
        expect.presort_cache_misses = 0;
        assert_eq!(o, expect);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(Stats::new(), Stats::default());
        assert_eq!(Stats::new().join_results, 0);
        assert!(Stats::new().per_query.is_empty());
    }

    #[test]
    fn per_query_merge_handles_length_mismatch() {
        let mut a = Stats::new();
        a.ensure_queries(1);
        a.per_query[0].tuples_emitted = 3;
        let mut b = Stats::new();
        b.ensure_queries(3);
        b.per_query[2].utility_sum = 1.5;
        a += b;
        assert_eq!(a.per_query.len(), 3);
        assert_eq!(a.per_query[0].tuples_emitted, 3);
        assert_eq!(a.per_query[1], PerQueryStats::default());
        assert!((a.per_query[2].utility_sum - 1.5).abs() < 1e-12);
        // Merging an empty (worker-delta) breakdown changes nothing.
        let snapshot = a.clone();
        a += Stats::new();
        assert_eq!(a.per_query, snapshot.per_query);
    }

    #[test]
    fn counters_name_every_scalar_field() {
        let mut s = Stats::new();
        s.join_probes = 1;
        s.plan_points_interned = 30;
        let counters = s.counters();
        assert_eq!(counters.len(), 30);
        assert_eq!(counters[0], ("join_probes", 1));
        assert_eq!(counters[29], ("plan_points_interned", 30));
        // Round-trip: rebuilding from the pairs reproduces the struct.
        let mut back = Stats::new();
        for (name, v) in counters {
            assert!(back.set_counter(name, v), "unknown counter {name}");
        }
        assert_eq!(back, s);
        assert!(!back.set_counter("no_such_counter", 1));
    }

    #[test]
    fn record_emission_grows_and_credits() {
        let mut s = Stats::new();
        s.record_emission(2, 0.5);
        s.record_emission(2, 0.25);
        s.record_emission(0, 1.0);
        assert_eq!(s.tuples_emitted, 3);
        assert_eq!(s.per_query.len(), 3);
        assert_eq!(s.per_query[2].tuples_emitted, 2);
        assert!((s.per_query[2].utility_sum - 0.75).abs() < 1e-12);
        assert_eq!(s.per_query[1].tuples_emitted, 0);
        assert_eq!(s.per_query[0].tuples_emitted, 1);
    }
}
