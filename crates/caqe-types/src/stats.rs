//! Operation counters — the metrics of the paper's evaluation (§7.1):
//! memory usage is proxied by the number of join results and CPU usage by
//! the number of pairwise skyline (dominance) comparisons, exactly as the
//! paper measures them in Figure 10.

use std::ops::AddAssign;

/// Counters accumulated by an execution strategy over a whole workload run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// Join-candidate pairs examined (probe attempts).
    pub join_probes: u64,
    /// Join results materialized (the paper's memory-usage metric).
    pub join_results: u64,
    /// Pairwise tuple-level dominance comparisons (the paper's CPU-usage
    /// metric, Figure 10.b).
    pub dom_comparisons: u64,
    /// Abstract region/cell-level dominance tests performed by the
    /// look-ahead, dependency graph and safe-emission machinery. These
    /// advance the virtual clock like any other work but are reported
    /// separately, mirroring the paper's metric which counts tuple-level
    /// skyline comparisons only.
    pub region_comparisons: u64,
    /// Mapping-function evaluations.
    pub map_evals: u64,
    /// Result tuples emitted across all queries.
    pub tuples_emitted: u64,
    /// Units of work (regions / chunks) processed at tuple level.
    pub regions_processed: u64,
    /// Regions discarded without tuple-level processing (look-ahead pruning).
    pub regions_pruned: u64,
    /// Join results discarded because their output cell was dominated.
    pub tuples_discarded: u64,
}

impl Stats {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Stats::default()
    }
}

impl AddAssign for Stats {
    fn add_assign(&mut self, rhs: Stats) {
        self.join_probes += rhs.join_probes;
        self.join_results += rhs.join_results;
        self.dom_comparisons += rhs.dom_comparisons;
        self.region_comparisons += rhs.region_comparisons;
        self.map_evals += rhs.map_evals;
        self.tuples_emitted += rhs.tuples_emitted;
        self.regions_processed += rhs.regions_processed;
        self.regions_pruned += rhs.regions_pruned;
        self.tuples_discarded += rhs.tuples_discarded;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_assign_sums_fields() {
        let mut a = Stats {
            join_probes: 1,
            join_results: 2,
            dom_comparisons: 3,
            region_comparisons: 9,
            map_evals: 4,
            tuples_emitted: 5,
            regions_processed: 6,
            regions_pruned: 7,
            tuples_discarded: 8,
        };
        a += a;
        assert_eq!(a.join_probes, 2);
        assert_eq!(a.region_comparisons, 18);
        assert_eq!(a.tuples_discarded, 16);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(Stats::new(), Stats::default());
        assert_eq!(Stats::new().join_results, 0);
    }
}
