//! Operation counters — the metrics of the paper's evaluation (§7.1):
//! memory usage is proxied by the number of join results and CPU usage by
//! the number of pairwise skyline (dominance) comparisons, exactly as the
//! paper measures them in Figure 10.

use std::ops::AddAssign;

/// Per-query emission counters: the raw material of the Figure 9/11
/// per-query satisfaction breakdowns, accumulated directly by the
/// executors instead of being reconstructed from emission logs.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PerQueryStats {
    /// Result tuples emitted for this query.
    pub tuples_emitted: u64,
    /// Sum of the utilities awarded to this query's emissions (the
    /// numerator of the run-time satisfaction metric `v(Q_i, t)`).
    pub utility_sum: f64,
}

impl AddAssign for PerQueryStats {
    fn add_assign(&mut self, rhs: PerQueryStats) {
        self.tuples_emitted += rhs.tuples_emitted;
        self.utility_sum += rhs.utility_sum;
    }
}

/// Counters accumulated by an execution strategy over a whole workload run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Stats {
    /// Join-candidate pairs examined (probe attempts).
    pub join_probes: u64,
    /// Join results materialized (the paper's memory-usage metric).
    pub join_results: u64,
    /// Pairwise tuple-level dominance comparisons (the paper's CPU-usage
    /// metric, Figure 10.b).
    pub dom_comparisons: u64,
    /// Abstract region/cell-level dominance tests performed by the
    /// look-ahead, dependency graph and safe-emission machinery. These
    /// advance the virtual clock like any other work but are reported
    /// separately, mirroring the paper's metric which counts tuple-level
    /// skyline comparisons only.
    pub region_comparisons: u64,
    /// Mapping-function evaluations.
    pub map_evals: u64,
    /// Result tuples emitted across all queries.
    pub tuples_emitted: u64,
    /// Units of work (regions / chunks) processed at tuple level.
    pub regions_processed: u64,
    /// Regions discarded without tuple-level processing (look-ahead pruning).
    pub regions_pruned: u64,
    /// Join results discarded because their output cell was dominated.
    pub tuples_discarded: u64,
    /// Region processing attempts that failed (panicked) and were requeued
    /// with backoff. Zero unless fault injection is active.
    pub region_retries: u64,
    /// Regions quarantined after exhausting their retry budget.
    pub regions_quarantined: u64,
    /// Root regions shed by the contract-aware degradation policy.
    pub regions_shed: u64,
    /// Records dropped or quarantined by ingestion validation (non-finite
    /// values or duplicate identifiers).
    pub ingest_quarantined: u64,
    /// Non-finite preference values clamped by ingestion validation.
    pub ingest_clamped: u64,
    /// Per-query breakdown of emissions and utility, indexed by `QueryId`.
    /// Empty until an executor sizes it to the workload; worker-thread stat
    /// deltas carry it empty, so merges never misattribute across indices.
    pub per_query: Vec<PerQueryStats>,
}

impl Stats {
    /// A zeroed counter set (workload-global totals only; call
    /// [`Stats::ensure_queries`] to open the per-query breakdown).
    pub fn new() -> Self {
        Stats::default()
    }

    /// Sizes the per-query breakdown to at least `n` entries.
    pub fn ensure_queries(&mut self, n: usize) {
        if self.per_query.len() < n {
            self.per_query.resize(n, PerQueryStats::default());
        }
    }

    /// Credits one emission with utility `u` to query index `q`, growing
    /// the breakdown on demand.
    pub fn record_emission(&mut self, q: usize, u: f64) {
        self.tuples_emitted += 1;
        self.ensure_queries(q + 1);
        self.per_query[q].tuples_emitted += 1;
        self.per_query[q].utility_sum += u;
    }
}

impl AddAssign for Stats {
    fn add_assign(&mut self, rhs: Stats) {
        self.join_probes += rhs.join_probes;
        self.join_results += rhs.join_results;
        self.dom_comparisons += rhs.dom_comparisons;
        self.region_comparisons += rhs.region_comparisons;
        self.map_evals += rhs.map_evals;
        self.tuples_emitted += rhs.tuples_emitted;
        self.regions_processed += rhs.regions_processed;
        self.regions_pruned += rhs.regions_pruned;
        self.tuples_discarded += rhs.tuples_discarded;
        self.region_retries += rhs.region_retries;
        self.regions_quarantined += rhs.regions_quarantined;
        self.regions_shed += rhs.regions_shed;
        self.ingest_quarantined += rhs.ingest_quarantined;
        self.ingest_clamped += rhs.ingest_clamped;
        self.ensure_queries(rhs.per_query.len());
        for (mine, theirs) in self.per_query.iter_mut().zip(rhs.per_query) {
            *mine += theirs;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_assign_sums_fields() {
        let mut a = Stats {
            join_probes: 1,
            join_results: 2,
            dom_comparisons: 3,
            region_comparisons: 9,
            map_evals: 4,
            tuples_emitted: 5,
            regions_processed: 6,
            regions_pruned: 7,
            tuples_discarded: 8,
            region_retries: 10,
            regions_quarantined: 11,
            regions_shed: 12,
            ingest_quarantined: 13,
            ingest_clamped: 14,
            per_query: vec![PerQueryStats {
                tuples_emitted: 5,
                utility_sum: 2.5,
            }],
        };
        a += a.clone();
        assert_eq!(a.join_probes, 2);
        assert_eq!(a.region_comparisons, 18);
        assert_eq!(a.tuples_discarded, 16);
        assert_eq!(a.region_retries, 20);
        assert_eq!(a.regions_quarantined, 22);
        assert_eq!(a.regions_shed, 24);
        assert_eq!(a.ingest_quarantined, 26);
        assert_eq!(a.ingest_clamped, 28);
        assert_eq!(a.per_query[0].tuples_emitted, 10);
        assert!((a.per_query[0].utility_sum - 5.0).abs() < 1e-12);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(Stats::new(), Stats::default());
        assert_eq!(Stats::new().join_results, 0);
        assert!(Stats::new().per_query.is_empty());
    }

    #[test]
    fn per_query_merge_handles_length_mismatch() {
        let mut a = Stats::new();
        a.ensure_queries(1);
        a.per_query[0].tuples_emitted = 3;
        let mut b = Stats::new();
        b.ensure_queries(3);
        b.per_query[2].utility_sum = 1.5;
        a += b;
        assert_eq!(a.per_query.len(), 3);
        assert_eq!(a.per_query[0].tuples_emitted, 3);
        assert_eq!(a.per_query[1], PerQueryStats::default());
        assert!((a.per_query[2].utility_sum - 1.5).abs() < 1e-12);
        // Merging an empty (worker-delta) breakdown changes nothing.
        let snapshot = a.clone();
        a += Stats::new();
        assert_eq!(a.per_query, snapshot.per_query);
    }

    #[test]
    fn record_emission_grows_and_credits() {
        let mut s = Stats::new();
        s.record_emission(2, 0.5);
        s.record_emission(2, 0.25);
        s.record_emission(0, 1.0);
        assert_eq!(s.tuples_emitted, 3);
        assert_eq!(s.per_query.len(), 3);
        assert_eq!(s.per_query[2].tuples_emitted, 2);
        assert!((s.per_query[2].utility_sum - 0.75).abs() < 1e-12);
        assert_eq!(s.per_query[1].tuples_emitted, 0);
        assert_eq!(s.per_query[0].tuples_emitted, 1);
    }
}
