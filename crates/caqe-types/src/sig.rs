//! Quantized rank signatures: per-point lattice keys for signature-level
//! dominance screening (DESIGN.md §17).
//!
//! Each point is summarized by packing one small per-dimension bucket code
//! into a `u64`. The quantizer is *monotone* (smaller value ⇒ smaller or
//! equal code), so strict code inequalities transfer to the underlying
//! values: if every field of `a`'s signature is strictly below `b`'s, then
//! `a` strictly improves on `b` in every dimension and therefore dominates
//! it (Definition 2); if strict inequalities exist in both directions the
//! pair is incomparable. Everything else — equal codes anywhere — is
//! *ambiguous* and must fall back to the exact float test. [`sig_relate`]
//! therefore returns `Option<DomRelation>`: `Some` verdicts are proven,
//! `None` means "ask [`relate_in`](crate::relate_in)".
//!
//! The comparison itself is a branch-free SWAR subtraction: the top bit of
//! every field is a spare *borrow* bit kept at zero in valid signatures, so
//! `(a | high) - b` evaluates all per-field comparisons in two integer ops
//! without cross-field borrow propagation.

use crate::dominance::DomRelation;
use crate::stats::Stats;
use crate::store::PointStore;
use crate::subspace::DimMask;
use crate::Value;

/// Signature of a point with a NaN in a signature dimension: every spare
/// bit is set, so [`sig_relate`] refuses a verdict for any pair involving
/// it and the pair falls back to the exact float path (which treats NaN as
/// unordered, exactly like [`relate_in`](crate::relate_in)).
pub const SIG_POISON: u64 = u64::MAX;

/// Maximum subspace width a signature can encode (4 bits per field: one
/// spare borrow bit plus at least 3 code bits — below that the lattice is
/// too coarse to ever prove anything).
pub const SIG_MAX_DIMS: usize = 16;

/// A monotone per-dimension quantizer producing packed `u64` signatures
/// for one subspace.
///
/// Field `j` (the `j`-th dimension of the mask in ascending order) lives at
/// bits `j*w..(j+1)*w` where `w` is the field width; its top bit is the
/// spare borrow bit, always zero in a valid signature. Codes are a clamped
/// linear quantization of `[lo, hi]`: values outside the bounds saturate,
/// which keeps the map monotone (the soundness requirement) even when the
/// bounds were estimated from a sample of the data.
#[derive(Debug, Clone, PartialEq)]
pub struct SigQuantizer {
    /// Signature dimensions, ascending (the mask's iteration order).
    dims: Vec<usize>,
    /// Per-field lower bound of the quantization range.
    lo: Vec<Value>,
    /// Per-field `levels / (hi - lo)`, or `0.0` for a degenerate range
    /// (collapsed, infinite or overflowing): such a field always codes 0
    /// and never proves a strict inequality — sound, just uninformative.
    scale: Vec<Value>,
    /// Bits per field, spare bit included.
    field_width: u32,
    /// Largest code a field can hold: `2^(field_width-1) - 1`.
    levels: u64,
    /// The spare (top) bit of every field.
    high_mask: u64,
    /// The top [`COARSE_BITS`] *code* bits of every field — the bucket-key
    /// mask used for partition-level screening.
    coarse_mask: u64,
}

/// Code bits per field retained in the coarse partition key.
const COARSE_BITS: u32 = 3;

impl SigQuantizer {
    /// Builds a quantizer for `mask` from per-dimension bounds indexed by
    /// full-stride dimension number. Returns `None` when the subspace is
    /// empty, wider than [`SIG_MAX_DIMS`], or any bound is NaN.
    pub fn from_bounds(mask: DimMask, lo: &[Value], hi: &[Value]) -> Option<SigQuantizer> {
        let d = mask.len();
        if d == 0 || d > SIG_MAX_DIMS {
            return None;
        }
        // Wider fields buy nothing past ~16 bits and keep shifts cheap.
        let field_width = (64 / d as u32).min(16);
        let levels = (1u64 << (field_width - 1)) - 1;
        let coarse = COARSE_BITS.min(field_width - 1);
        let mut dims = Vec::with_capacity(d);
        let mut los = Vec::with_capacity(d);
        let mut scales = Vec::with_capacity(d);
        let mut high_mask = 0u64;
        let mut coarse_mask = 0u64;
        for (j, k) in mask.iter().enumerate() {
            let (l, h) = (*lo.get(k)?, *hi.get(k)?);
            if l.is_nan() || h.is_nan() {
                return None;
            }
            let scale = if l.is_finite() && h.is_finite() && h > l && (h - l).is_finite() {
                levels as Value / (h - l)
            } else {
                0.0
            };
            dims.push(k);
            los.push(l);
            scales.push(scale);
            let shift = j as u32 * field_width;
            high_mask |= 1u64 << (shift + field_width - 1);
            coarse_mask |= ((1u64 << coarse) - 1) << (shift + field_width - 1 - coarse);
        }
        Some(SigQuantizer {
            dims,
            lo: los,
            scale: scales,
            field_width,
            levels,
            high_mask,
            coarse_mask,
        })
    }

    /// Builds a quantizer whose bounds are the per-dimension min/max of the
    /// *finite* values in `points` (NaN rows poison their own signatures,
    /// not the range). Returns `None` for unsupported subspace widths or an
    /// empty store.
    pub fn from_store(points: &PointStore, mask: DimMask) -> Option<SigQuantizer> {
        if points.is_empty() {
            return None;
        }
        let stride = points.stride();
        let mut lo = vec![Value::INFINITY; stride];
        let mut hi = vec![Value::NEG_INFINITY; stride];
        for i in 0..points.len() {
            let row = points.at(i);
            for k in mask.iter() {
                let v = row[k];
                if v.is_finite() {
                    lo[k] = lo[k].min(v);
                    hi[k] = hi[k].max(v);
                }
            }
        }
        SigQuantizer::from_bounds(mask, &lo, &hi)
    }

    /// The signature of a full-stride point row. NaN in any signature
    /// dimension yields [`SIG_POISON`].
    #[inline]
    pub fn sig(&self, point: &[Value]) -> u64 {
        let mut s = 0u64;
        for (j, &k) in self.dims.iter().enumerate() {
            let v = point[k];
            if v.is_nan() {
                return SIG_POISON;
            }
            let code = if self.scale[j] > 0.0 {
                // `as u64` saturates: -inf/negative → 0, +inf/huge → MAX.
                (((v - self.lo[j]) * self.scale[j]) as u64).min(self.levels)
            } else {
                0
            };
            s |= code << (j as u32 * self.field_width);
        }
        s
    }

    /// The spare-bit mask to pass to [`sig_relate`].
    #[inline]
    pub fn high_mask(&self) -> u64 {
        self.high_mask
    }

    /// The coarse bucket key of a signature: its top code bits per field.
    /// Masking is a per-field monotone floor, so coarse keys are themselves
    /// valid (coarser) signatures and [`sig_relate`] verdicts on them hold
    /// for every signature sharing the key.
    #[inline]
    pub fn bucket_key(&self, sig: u64) -> u64 {
        sig & self.coarse_mask
    }

    /// Number of signature dimensions.
    pub fn width(&self) -> usize {
        self.dims.len()
    }

    /// Decomposes the quantizer into its field values for persistence
    /// (DESIGN.md §19). [`SigQuantizer::from_parts`] is the exact inverse.
    pub fn to_parts(&self) -> SigQuantizerParts {
        SigQuantizerParts {
            dims: self.dims.clone(),
            lo: self.lo.clone(),
            scale: self.scale.clone(),
            field_width: self.field_width,
            levels: self.levels,
            high_mask: self.high_mask,
            coarse_mask: self.coarse_mask,
        }
    }

    /// Reassembles a quantizer persisted via [`SigQuantizer::to_parts`].
    /// Returns `None` when the parts are structurally inconsistent (length
    /// mismatches or a zero field width), so corrupt snapshot input cannot
    /// construct a quantizer that later panics.
    pub fn from_parts(parts: SigQuantizerParts) -> Option<SigQuantizer> {
        let d = parts.dims.len();
        if d == 0
            || d > SIG_MAX_DIMS
            || parts.lo.len() != d
            || parts.scale.len() != d
            || parts.field_width == 0
            || parts.field_width > 64
        {
            return None;
        }
        Some(SigQuantizer {
            dims: parts.dims,
            lo: parts.lo,
            scale: parts.scale,
            field_width: parts.field_width,
            levels: parts.levels,
            high_mask: parts.high_mask,
            coarse_mask: parts.coarse_mask,
        })
    }
}

/// The field values of a [`SigQuantizer`], exposed for lossless
/// persistence round-trips (the quantizer's fields stay private so in-memory
/// construction keeps going through the validated builders).
#[derive(Debug, Clone, PartialEq)]
pub struct SigQuantizerParts {
    /// Signature dimensions, ascending.
    pub dims: Vec<usize>,
    /// Per-field lower quantization bound.
    pub lo: Vec<Value>,
    /// Per-field scale (`levels / (hi - lo)` or `0.0` when degenerate).
    pub scale: Vec<Value>,
    /// Bits per field, spare bit included.
    pub field_width: u32,
    /// Largest code a field can hold.
    pub levels: u64,
    /// The spare (top) bit of every field.
    pub high_mask: u64,
    /// The coarse bucket-key mask.
    pub coarse_mask: u64,
}

/// Signature-level dominance test. `high` is the quantizer's spare-bit
/// mask. Returns a proven verdict or `None` when the signatures cannot
/// decide (equal codes somewhere, or a poisoned operand).
///
/// Soundness rests on quantizer monotonicity: a strict per-field code
/// inequality implies the same strict value inequality, so
/// `Some(Dominates)` (every field strictly smaller) and
/// `Some(Incomparable)` (strict fields both ways) agree with
/// [`relate_in`](crate::relate_in). Ties in any field make full dominance
/// unprovable — the caller falls back to the exact float test.
#[inline]
pub fn sig_relate(a: u64, b: u64, high: u64) -> Option<DomRelation> {
    if a == SIG_POISON || b == SIG_POISON {
        // Poison must refuse a verdict *unconditionally* — including the
        // poison-vs-poison pair, and regardless of the caller's `high` mask
        // (a degenerate `high == 0` would otherwise let two all-ones
        // signatures "prove" a verdict below). NaN is unordered: the only
        // sound answer is the float fallback.
        return None;
    }
    if (a | b) & high != 0 {
        return None; // malformed operand (spare bit set)
    }
    // Per-field borrow trick: the spare bit in the minuend guarantees the
    // field-local subtraction never goes negative, so no borrow crosses a
    // field boundary. The spare bit of the result is *clear* exactly when
    // the minuend's field code was strictly smaller.
    let lt = !((a | high).wrapping_sub(b)) & high;
    let gt = !((b | high).wrapping_sub(a)) & high;
    match (lt != 0, gt != 0) {
        (true, true) => Some(DomRelation::Incomparable),
        (true, false) if lt == high => Some(DomRelation::Dominates),
        (false, true) if gt == high => Some(DomRelation::DominatedBy),
        _ => None,
    }
}

/// Per-point signatures for a whole [`PointStore`], stored alongside the
/// arena (index `i` is the signature of `points.at(i)`).
#[derive(Debug, Clone)]
pub struct SigTable {
    quant: SigQuantizer,
    sigs: Vec<u64>,
}

impl SigTable {
    /// Quantizes every point of the store over `mask`, charging one
    /// signature build per point to `stats.sig_builds` (a diagnostic
    /// counter — signature construction is uncharged physical work on the
    /// virtual clock, like the SFS presort). Returns `None` when the
    /// subspace is unsupported.
    pub fn try_build(points: &PointStore, mask: DimMask, stats: &mut Stats) -> Option<SigTable> {
        let quant = SigQuantizer::from_store(points, mask)?;
        let sigs: Vec<u64> = (0..points.len()).map(|i| quant.sig(points.at(i))).collect();
        stats.sig_builds += sigs.len() as u64;
        Some(SigTable { quant, sigs })
    }

    /// The signature of point `i`.
    #[inline]
    pub fn sig(&self, i: usize) -> u64 {
        self.sigs[i]
    }

    /// The quantizer the table was built with.
    pub fn quantizer(&self) -> &SigQuantizer {
        &self.quant
    }

    /// Number of signatures (the store's point count at build time).
    pub fn len(&self) -> usize {
        self.sigs.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.sigs.is_empty()
    }

    /// All signatures in point order (for persistence).
    pub fn sigs(&self) -> &[u64] {
        &self.sigs
    }

    /// Reassembles a table persisted as quantizer parts plus the raw
    /// signature column. Unlike [`SigTable::try_build`] this charges
    /// nothing: a restored memo must not re-count builds the cold run
    /// already counted.
    pub fn from_parts(quant: SigQuantizer, sigs: Vec<u64>) -> SigTable {
        SigTable { quant, sigs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relate_in;

    fn store(rows: &[&[Value]]) -> PointStore {
        let mut s = PointStore::new(rows[0].len());
        for r in rows {
            s.push(r);
        }
        s
    }

    #[test]
    fn quantizer_is_monotone_and_clamped() {
        let mask = DimMask::from_dims([0, 1]);
        let q = SigQuantizer::from_bounds(mask, &[0.0, 0.0], &[1.0, 1.0]).unwrap();
        let lo = q.sig(&[0.0, 0.0]);
        let mid = q.sig(&[0.5, 0.5]);
        let hi = q.sig(&[1.0, 1.0]);
        assert!(lo < mid && mid < hi);
        // Saturation: out-of-range values clamp to the boundary codes.
        assert_eq!(q.sig(&[-3.0, -1e300]), lo);
        assert_eq!(q.sig(&[7.0, Value::INFINITY]), hi);
        assert_eq!(q.sig(&[Value::NEG_INFINITY, 0.0]), lo);
        // Valid signatures never set a spare bit.
        for s in [lo, mid, hi] {
            assert_eq!(s & q.high_mask(), 0);
        }
    }

    #[test]
    fn nan_points_poison_their_signature() {
        let mask = DimMask::from_dims([0, 1]);
        let q = SigQuantizer::from_bounds(mask, &[0.0, 0.0], &[1.0, 1.0]).unwrap();
        assert_eq!(q.sig(&[0.5, Value::NAN]), SIG_POISON);
        assert_eq!(
            sig_relate(SIG_POISON, q.sig(&[0.5, 0.5]), q.high_mask()),
            None
        );
    }

    #[test]
    fn nan_bounds_refuse_a_quantizer() {
        let mask = DimMask::from_dims([0, 1]);
        assert!(SigQuantizer::from_bounds(mask, &[0.0, Value::NAN], &[1.0, 1.0]).is_none());
        assert!(SigQuantizer::from_bounds(DimMask::from_dims([0usize; 0]), &[], &[]).is_none());
    }

    #[test]
    fn degenerate_ranges_are_sound_but_silent() {
        let mask = DimMask::from_dims([0, 1]);
        // Collapsed and infinite ranges: every value codes 0, no verdicts.
        let q =
            SigQuantizer::from_bounds(mask, &[2.0, Value::NEG_INFINITY], &[2.0, Value::INFINITY])
                .unwrap();
        let a = q.sig(&[1.0, 5.0]);
        let b = q.sig(&[3.0, -5.0]);
        assert_eq!(sig_relate(a, b, q.high_mask()), None);
    }

    #[test]
    fn sig_relate_verdicts_are_exact_on_the_lattice() {
        let mask = DimMask::from_dims([0, 1, 2]);
        let q = SigQuantizer::from_bounds(mask, &[0.0; 3], &[1.0; 3]).unwrap();
        let h = q.high_mask();
        let a = q.sig(&[0.1, 0.1, 0.1]);
        let b = q.sig(&[0.9, 0.9, 0.9]);
        let c = q.sig(&[0.1, 0.9, 0.1]);
        let x = q.sig(&[0.9, 0.1, 0.9]);
        assert_eq!(sig_relate(a, b, h), Some(DomRelation::Dominates));
        assert_eq!(sig_relate(b, a, h), Some(DomRelation::DominatedBy));
        assert_eq!(sig_relate(c, x, h), Some(DomRelation::Incomparable));
        // Ties anywhere are ambiguous, including full equality — here `c`
        // actually dominates `b` (equal in dim 1), but the tied field keeps
        // the signature from proving it.
        assert_eq!(sig_relate(a, a, h), None);
        assert_eq!(sig_relate(b, c, h), None);
        assert_eq!(sig_relate(a, c, h), None);
    }

    #[test]
    fn table_verdicts_agree_with_relate_in() {
        let mask = DimMask::from_dims([0, 1]);
        let rows: Vec<Vec<Value>> = vec![
            vec![0.1, 0.9],
            vec![0.9, 0.1],
            vec![0.2, 0.2],
            vec![0.8, 0.8],
            vec![0.2, 0.2], // duplicate
            vec![Value::NAN, 0.5],
        ];
        let refs: Vec<&[Value]> = rows.iter().map(|r| r.as_slice()).collect();
        let s = store(&refs);
        let mut stats = Stats::new();
        let t = SigTable::try_build(&s, mask, &mut stats).unwrap();
        assert_eq!(stats.sig_builds, rows.len() as u64);
        let h = t.quantizer().high_mask();
        for i in 0..rows.len() {
            for j in 0..rows.len() {
                if let Some(v) = sig_relate(t.sig(i), t.sig(j), h) {
                    assert_eq!(v, relate_in(&rows[i], &rows[j], mask), "pair ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn poison_vs_poison_refuses_a_verdict() {
        let mask = DimMask::from_dims([0, 1]);
        let q = SigQuantizer::from_bounds(mask, &[0.0, 0.0], &[1.0, 1.0]).unwrap();
        // Both operands NaN-poisoned: must be ambiguous, never a verdict.
        assert_eq!(sig_relate(SIG_POISON, SIG_POISON, q.high_mask()), None);
        assert_eq!(
            sig_relate(q.sig(&[Value::NAN, 0.0]), SIG_POISON, q.high_mask()),
            None
        );
        // Even a degenerate high mask cannot turn poison into a proof.
        assert_eq!(sig_relate(SIG_POISON, SIG_POISON, 0), None);
        assert_eq!(sig_relate(SIG_POISON, 0, 0), None);
        assert_eq!(sig_relate(0, SIG_POISON, 0), None);
    }

    #[test]
    fn quantizer_parts_round_trip() {
        let mask = DimMask::from_dims([0, 2]);
        let q = SigQuantizer::from_bounds(mask, &[0.0, 9.0, -1.0], &[1.0, 9.0, 4.0]).unwrap();
        let back = SigQuantizer::from_parts(q.to_parts()).unwrap();
        assert_eq!(back, q);
        for p in [[0.3, 0.0, 2.0], [0.9, 0.0, -7.0], [Value::NAN, 0.0, 0.0]] {
            assert_eq!(back.sig(&p), q.sig(&p));
        }
        // Inconsistent parts are refused.
        let mut bad = q.to_parts();
        bad.lo.pop();
        assert!(SigQuantizer::from_parts(bad).is_none());
        let mut bad = q.to_parts();
        bad.field_width = 0;
        assert!(SigQuantizer::from_parts(bad).is_none());
    }

    #[test]
    fn sig_table_parts_round_trip_without_recharging() {
        let mask = DimMask::from_dims([0, 1]);
        let rows: Vec<Vec<Value>> = vec![vec![0.1, 0.9], vec![0.9, 0.1], vec![0.2, 0.2]];
        let refs: Vec<&[Value]> = rows.iter().map(|r| r.as_slice()).collect();
        let s = store(&refs);
        let mut stats = Stats::new();
        let t = SigTable::try_build(&s, mask, &mut stats).unwrap();
        let back = SigTable::from_parts(
            SigQuantizer::from_parts(t.quantizer().to_parts()).unwrap(),
            t.sigs().to_vec(),
        );
        assert_eq!(back.sigs(), t.sigs());
        assert_eq!(back.quantizer(), t.quantizer());
        assert_eq!(stats.sig_builds, rows.len() as u64); // from_parts charged nothing
    }

    #[test]
    fn bucket_keys_are_coarser_monotone_signatures() {
        let mask = DimMask::from_dims([0, 1]);
        let q = SigQuantizer::from_bounds(mask, &[0.0, 0.0], &[1.0, 1.0]).unwrap();
        let a = q.sig(&[0.05, 0.05]);
        let b = q.sig(&[0.95, 0.95]);
        let (ka, kb) = (q.bucket_key(a), q.bucket_key(b));
        assert_eq!(
            sig_relate(ka, kb, q.high_mask()),
            Some(DomRelation::Dominates)
        );
        // A key verdict must never contradict the full-signature verdict.
        assert_eq!(
            sig_relate(a, b, q.high_mask()),
            Some(DomRelation::Dominates)
        );
        // Keys of nearby points collapse (that is the point of coarseness).
        let c = q.sig(&[0.051, 0.052]);
        assert_eq!(q.bucket_key(c), ka);
    }
}
