//! Axis-aligned boxes and the region-dominance algebra of Definition 8.
//!
//! Quad-tree leaf cells (input space, §5.1) and output regions (§5.2) are
//! both axis-aligned boxes `[lo, hi]`. Definition 8 characterizes the
//! relationship between two regions `R_i(l_i, u_i)` and `R_j(l_j, u_j)` in a
//! subspace `V`:
//!
//! 1. `R_i` **dominates** `R_j` if `u_i ⪯_V l_j` — every point of `R_i`
//!    dominates every point of `R_j`;
//! 2. `R_i` **partially dominates** `R_j` if some point of `R_i` can dominate
//!    some point of `R_j` (`l_i ⪯_V u_j` and strictly better somewhere) but
//!    not (1);
//! 3. otherwise they are **incomparable**.

use crate::dominance::weakly_dominates_in;
use crate::subspace::DimMask;
use crate::Value;

/// How two boxes relate under Definition 8 in a given subspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionRelation {
    /// Every point of the left box dominates every point of the right box.
    Dominates,
    /// Some point of the left box may dominate some point of the right box.
    PartiallyDominates,
    /// No point of the left box can dominate any point of the right box.
    Incomparable,
}

/// An axis-aligned box `[lo, hi]` in `d`-dimensional value space.
///
/// Invariant: `lo.len() == hi.len()` and `lo[k] <= hi[k]` for all `k`.
#[derive(Debug, Clone, PartialEq)]
pub struct Rect {
    lo: Vec<Value>,
    hi: Vec<Value>,
}

impl Rect {
    /// Creates a box from its lower and upper corners.
    ///
    /// # Panics
    /// Panics if the corners have different arity or `lo[k] > hi[k]`.
    pub fn new(lo: Vec<Value>, hi: Vec<Value>) -> Self {
        assert_eq!(lo.len(), hi.len(), "corner arity mismatch");
        for k in 0..lo.len() {
            assert!(
                lo[k] <= hi[k],
                "invalid bounds on dim {k}: lo={} > hi={}",
                lo[k],
                hi[k]
            );
        }
        Rect { lo, hi }
    }

    /// The degenerate box containing a single point.
    pub fn point(p: &[Value]) -> Self {
        Rect {
            lo: p.to_vec(),
            hi: p.to_vec(),
        }
    }

    /// The smallest box enclosing a non-empty set of points.
    ///
    /// Returns `None` for an empty iterator.
    pub fn bounding<'a, I>(points: I) -> Option<Self>
    where
        I: IntoIterator<Item = &'a [Value]>,
    {
        let mut it = points.into_iter();
        let first = it.next()?;
        let mut lo = first.to_vec();
        let mut hi = first.to_vec();
        for p in it {
            for k in 0..lo.len() {
                if p[k] < lo[k] {
                    lo[k] = p[k];
                }
                if p[k] > hi[k] {
                    hi[k] = p[k];
                }
            }
        }
        Some(Rect { lo, hi })
    }

    /// Dimensionality of the box.
    #[inline]
    pub fn dims(&self) -> usize {
        self.lo.len()
    }

    /// Lower corner (best possible point of the box under the preference).
    #[inline]
    pub fn lo(&self) -> &[Value] {
        &self.lo
    }

    /// Upper corner (worst possible point of the box under the preference).
    #[inline]
    pub fn hi(&self) -> &[Value] {
        &self.hi
    }

    /// Side length along dimension `k`.
    #[inline]
    pub fn extent(&self, k: usize) -> Value {
        self.hi[k] - self.lo[k]
    }

    /// Whether the point lies inside the (closed) box.
    pub fn contains_point(&self, p: &[Value]) -> bool {
        debug_assert_eq!(p.len(), self.dims());
        (0..self.dims()).all(|k| self.lo[k] <= p[k] && p[k] <= self.hi[k])
    }

    /// Whether two boxes overlap (closed intersection non-empty).
    pub fn intersects(&self, other: &Rect) -> bool {
        debug_assert_eq!(self.dims(), other.dims());
        (0..self.dims()).all(|k| self.lo[k] <= other.hi[k] && other.lo[k] <= self.hi[k])
    }

    /// Relates `self` to `other` in subspace `mask` per Definition 8.
    ///
    /// The test is conservative in exactly the way the paper needs it:
    /// *Dominates* is a guarantee over every pair of member points;
    /// *PartiallyDominates* means domination of some future tuple pair is
    /// possible and must be accounted for in the dependency graph.
    pub fn relate_region(&self, other: &Rect, mask: DimMask) -> RegionRelation {
        // Full domination: worst point of self ⪯ best point of other, and
        // strictly better somewhere (guaranteed when not all-equal).
        if weakly_dominates_in(&self.hi, &other.lo, mask)
            && mask.iter().any(|k| self.hi[k] < other.lo[k])
        {
            return RegionRelation::Dominates;
        }
        // Possible domination: best point of self ⪯ worst point of other
        // with strict improvement possible somewhere.
        if weakly_dominates_in(&self.lo, &other.hi, mask)
            && mask.iter().any(|k| self.lo[k] < other.hi[k])
        {
            return RegionRelation::PartiallyDominates;
        }
        RegionRelation::Incomparable
    }

    /// Whether every point of `self` dominates every point of `other` in
    /// subspace `mask` (case 1 of Definition 8).
    pub fn dominates_region(&self, other: &Rect, mask: DimMask) -> bool {
        self.relate_region(other, mask) == RegionRelation::Dominates
    }

    /// Whether some point of `self` may dominate some point of `other`
    /// (cases 1 or 2 of Definition 8). This is the edge predicate of the
    /// dependency graph (Definition 9).
    pub fn may_dominate_region(&self, other: &Rect, mask: DimMask) -> bool {
        self.relate_region(other, mask) != RegionRelation::Incomparable
    }

    /// Whether the lower corner of `self` dominates the given point in the
    /// subspace — i.e. whether a *future* tuple materializing anywhere in
    /// `self` could dominate `p`. Used by safe progressive emission (§6).
    pub fn may_dominate_point(&self, p: &[Value], mask: DimMask) -> bool {
        weakly_dominates_in(&self.lo, p, mask) && mask.iter().any(|k| self.lo[k] < p[k])
    }

    /// Splits the box into a regular grid of `parts` cells per dimension of
    /// `mask_dims` (all dimensions), returning the sub-boxes in row-major
    /// order. Used for the progressive cell count (Definition 11).
    #[allow(clippy::needless_range_loop)] // odometer indexing is clearest
    pub fn grid(&self, parts: usize) -> Vec<Rect> {
        assert!(parts >= 1);
        let d = self.dims();
        let total = parts.pow(d as u32);
        let mut out = Vec::with_capacity(total);
        let mut idx = vec![0usize; d];
        loop {
            let mut lo = Vec::with_capacity(d);
            let mut hi = Vec::with_capacity(d);
            for k in 0..d {
                let w = self.extent(k) / parts as Value;
                lo.push(self.lo[k] + w * idx[k] as Value);
                hi.push(if idx[k] + 1 == parts {
                    self.hi[k]
                } else {
                    self.lo[k] + w * (idx[k] + 1) as Value
                });
            }
            out.push(Rect { lo, hi });
            // Odometer increment.
            let mut k = 0;
            loop {
                if k == d {
                    return out;
                }
                idx[k] += 1;
                if idx[k] < parts {
                    break;
                }
                idx[k] = 0;
                k += 1;
            }
        }
    }

    /// The centroid of the box.
    pub fn center(&self) -> Vec<Value> {
        (0..self.dims())
            .map(|k| (self.lo[k] + self.hi[k]) / 2.0)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rect(lo: &[Value], hi: &[Value]) -> Rect {
        Rect::new(lo.to_vec(), hi.to_vec())
    }

    #[test]
    fn example16_region_relations() {
        // Regions from Example 16 of the paper (4-dimensional).
        let r1 = rect(&[6.0, 8.0, 8.0, 4.0], &[8.0, 10.0, 10.0, 6.0]);
        let r2 = rect(&[8.0, 6.0, 6.0, 5.0], &[10.0, 8.0, 8.0, 7.0]);
        let r3 = rect(&[7.0, 5.0, 4.0, 1.0], &[9.0, 7.0, 6.0, 4.0]);

        let d1 = DimMask::singleton(0);
        let d2 = DimMask::singleton(1);
        let d3 = DimMask::singleton(2);
        let d4 = DimMask::singleton(3);

        // R1 is best (non-dominated) on d1: no other region fully dominates it.
        assert!(!r2.dominates_region(&r1, d1));
        assert!(!r3.dominates_region(&r1, d1));
        // R3 is non-dominated on d2, d3, d4.
        for m in [d2, d3, d4] {
            assert!(!r1.dominates_region(&r3, m));
            assert!(!r2.dominates_region(&r3, m));
        }
        // R3 fully dominates R1 on d3: hi(r3)[2]=6 < lo(r1)[2]=8.
        assert!(r3.dominates_region(&r1, d3));
        // R3 fully dominates R1 on {d3,d4}.
        assert!(r3.dominates_region(&r1, DimMask::from_dims([2, 3])));
    }

    #[test]
    fn partial_domination_detected() {
        let a = rect(&[0.0, 0.0], &[5.0, 5.0]);
        let b = rect(&[3.0, 3.0], &[8.0, 8.0]);
        let m = DimMask::full(2);
        assert_eq!(a.relate_region(&b, m), RegionRelation::PartiallyDominates);
        // b's best point (3,3) cannot dominate a's worst (5,5)? It can:
        // 3 < 5 on both dims, so b also partially dominates a.
        assert_eq!(b.relate_region(&a, m), RegionRelation::PartiallyDominates);
    }

    #[test]
    fn full_domination_requires_strictness() {
        let a = rect(&[1.0, 1.0], &[2.0, 2.0]);
        let b = rect(&[2.0, 2.0], &[3.0, 3.0]);
        let m = DimMask::full(2);
        // hi(a) == lo(b): weak but not strict anywhere → not full domination,
        // but partial domination is possible.
        assert_eq!(a.relate_region(&b, m), RegionRelation::PartiallyDominates);

        let c = rect(&[4.0, 4.0], &[5.0, 5.0]);
        assert_eq!(a.relate_region(&c, m), RegionRelation::Dominates);
        assert_eq!(c.relate_region(&a, m), RegionRelation::Incomparable);
    }

    #[test]
    fn may_dominate_point_uses_lower_corner() {
        let r = rect(&[2.0, 2.0], &[9.0, 9.0]);
        let m = DimMask::full(2);
        assert!(r.may_dominate_point(&[5.0, 5.0], m));
        assert!(!r.may_dominate_point(&[1.0, 5.0], m));
        assert!(!r.may_dominate_point(&[2.0, 2.0], m)); // equality only
    }

    #[test]
    fn bounding_box_of_points() {
        let pts: Vec<Vec<Value>> = vec![vec![1.0, 5.0], vec![3.0, 2.0], vec![2.0, 9.0]];
        let r = Rect::bounding(pts.iter().map(|p| p.as_slice())).unwrap();
        assert_eq!(r.lo(), &[1.0, 2.0]);
        assert_eq!(r.hi(), &[3.0, 9.0]);
        assert!(Rect::bounding(std::iter::empty()).is_none());
    }

    #[test]
    fn grid_partitions_exactly() {
        let r = rect(&[0.0, 0.0], &[4.0, 8.0]);
        let g = r.grid(2);
        assert_eq!(g.len(), 4);
        // Cells tile the box: all corners inside, union covers corners.
        for c in &g {
            assert!(r.contains_point(c.lo()));
            assert!(r.contains_point(c.hi()));
        }
        assert!(g.iter().any(|c| c.lo() == [0.0, 0.0]));
        assert!(g.iter().any(|c| c.hi() == [4.0, 8.0]));
    }

    #[test]
    fn grid_one_is_identity() {
        let r = rect(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]);
        let g = r.grid(1);
        assert_eq!(g.len(), 1);
        assert_eq!(g[0], r);
    }

    #[test]
    fn intersects_and_contains() {
        let a = rect(&[0.0, 0.0], &[2.0, 2.0]);
        let b = rect(&[2.0, 2.0], &[3.0, 3.0]);
        let c = rect(&[2.1, 2.1], &[3.0, 3.0]);
        assert!(a.intersects(&b)); // closed boxes touch
        assert!(!a.intersects(&c));
        assert!(a.contains_point(&[1.0, 1.0]));
        assert!(!a.contains_point(&[1.0, 2.5]));
    }

    #[test]
    #[should_panic]
    fn inverted_bounds_panic() {
        let _ = rect(&[1.0], &[0.0]);
    }
}
