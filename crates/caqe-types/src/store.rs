//! Flat structure-of-arrays point storage.
//!
//! Every hot path of the reproduction — skyline maintenance, join output,
//! region processing, engine emission — manipulates output-space points.
//! Storing each point as its own `Vec<f64>` costs a heap allocation and a
//! pointer chase per tuple per access; [`PointStore`] instead packs all
//! points of one collection into a single contiguous `Vec<Value>` with a
//! fixed stride and hands out copy-cheap [`PointId`] handles.
//!
//! Contract (see DESIGN.md §12):
//!
//! * **stride** is fixed at construction; every point has exactly `stride`
//!   values;
//! * **id stability**: [`PointStore::push`] returns ids `0, 1, 2, …` in
//!   insertion order and an id stays valid for the life of the store
//!   (arena semantics — there is no per-point removal);
//! * **count invariance**: the store only changes *where* point values
//!   live, never which comparisons run on them — callers keep charging the
//!   virtual clock per pairwise test exactly as before, so `Stats`, ticks
//!   and traces are byte-identical to the `Vec<Vec<f64>>` layout.

use crate::Value;

/// Copy-cheap handle to a point inside a [`PointStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PointId(pub u32);

impl PointId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An arena of equal-length points stored contiguously (structure of
/// arrays: point `i` occupies `data[i*stride .. (i+1)*stride]`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PointStore {
    stride: usize,
    data: Vec<Value>,
}

impl PointStore {
    /// An empty store for points of `stride` dimensions.
    pub fn new(stride: usize) -> Self {
        PointStore {
            stride,
            data: Vec::new(),
        }
    }

    /// An empty store pre-sized for `points` entries.
    pub fn with_capacity(stride: usize, points: usize) -> Self {
        PointStore {
            stride,
            data: Vec::with_capacity(stride * points),
        }
    }

    /// The fixed number of dimensions per point.
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Number of points stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len().checked_div(self.stride).unwrap_or(0)
    }

    /// Whether the store holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Interns one point, returning its stable id.
    ///
    /// # Panics
    /// Panics in debug builds if `point.len() != stride`.
    #[inline]
    pub fn push(&mut self, point: &[Value]) -> PointId {
        debug_assert_eq!(point.len(), self.stride, "point/stride mismatch");
        let id = PointId(self.len() as u32);
        self.data.extend_from_slice(point);
        id
    }

    /// Interns a point produced by `fill` writing directly into the store's
    /// tail — no intermediate `Vec` allocation. `fill` must append exactly
    /// `stride` values.
    #[inline]
    pub fn push_with(&mut self, fill: impl FnOnce(&mut Vec<Value>)) -> PointId {
        let before = self.data.len();
        fill(&mut self.data);
        debug_assert_eq!(
            self.data.len() - before,
            self.stride,
            "push_with must append exactly `stride` values"
        );
        PointId((before / self.stride.max(1)) as u32)
    }

    /// Drops the most recently pushed point (used when a freshly projected
    /// tuple turns out to be dead on arrival).
    #[inline]
    pub fn pop(&mut self) {
        let n = self.data.len();
        debug_assert!(n >= self.stride);
        self.data.truncate(n - self.stride);
    }

    /// The point with the given id.
    #[inline]
    pub fn get(&self, id: PointId) -> &[Value] {
        let s = id.index() * self.stride;
        &self.data[s..s + self.stride]
    }

    /// The point at positional index `i` (same as `get(PointId(i))`).
    #[inline]
    pub fn at(&self, i: usize) -> &[Value] {
        let s = i * self.stride;
        &self.data[s..s + self.stride]
    }

    /// The whole arena as one flat slice.
    #[inline]
    pub fn as_flat(&self) -> &[Value] {
        &self.data
    }

    /// Iterates over the points in id order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &[Value]> + '_ {
        self.data.chunks_exact(self.stride.max(1))
    }

    /// Removes all points, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Serializes the arena in the columnar snapshot form (DESIGN.md §19):
    /// a header line `pointstore <stride> <points>` followed by one line
    /// per dimension carrying the bit-exact hex of every point's value in
    /// that dimension. Column-major layout keeps each line homogeneous and
    /// round-trips `-0.0`, infinities and NaN payloads losslessly.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let n = self.len();
        let mut out = format!("pointstore {} {}\n", self.stride, n);
        for k in 0..self.stride {
            out.push_str("col");
            for i in 0..n {
                let _ = write!(out, " {}", crate::persist::f64_hex(self.at(i)[k]));
            }
            out.push('\n');
        }
        out
    }

    /// Parses the columnar form produced by [`PointStore::to_text`],
    /// returning a reason on any structural mismatch (wrong header, short
    /// column, trailing data) — never panicking on corrupt input.
    pub fn from_text(text: &str) -> Result<PointStore, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty point store text")?;
        let mut f = header.split_whitespace();
        if f.next() != Some("pointstore") {
            return Err("missing `pointstore` header".to_string());
        }
        let stride = f
            .next()
            .and_then(crate::persist::parse_usize)
            .ok_or("bad stride")?;
        let points = f
            .next()
            .and_then(crate::persist::parse_usize)
            .ok_or("bad point count")?;
        if f.next().is_some() {
            return Err("trailing fields in header".to_string());
        }
        let mut data = vec![0.0; stride * points];
        for k in 0..stride {
            let line = lines.next().ok_or_else(|| format!("missing column {k}"))?;
            let mut vals = line.split_whitespace();
            if vals.next() != Some("col") {
                return Err(format!("column {k} missing `col` tag"));
            }
            for i in 0..points {
                let v = vals
                    .next()
                    .and_then(crate::persist::parse_f64_hex)
                    .ok_or_else(|| format!("column {k} truncated at point {i}"))?;
                data[i * stride + k] = v;
            }
            if vals.next().is_some() {
                return Err(format!("column {k} has trailing values"));
            }
        }
        if lines.next().is_some() {
            return Err("trailing lines after last column".to_string());
        }
        Ok(PointStore { stride, data })
    }
}

/// Per-dimension dense rank columns over a frozen [`PointStore`] snapshot.
///
/// Rank packing (DESIGN.md §15): for each dimension `k`, every point gets a
/// dense `u32` rank such that `rank_k(a) < rank_k(b) ⟺ a[k] < b[k]` for
/// NaN-free data. Points whose values compare `==` (including `-0.0` and
/// `+0.0`, which `total_cmp` distinguishes but `<` does not) share a rank,
/// so *every* strict `<` test on values can be answered by an integer
/// compare on ranks. The block dominance kernels
/// ([`crate::DomKernel::relate_block_ranks`]) exploit this: one tight
/// integer loop per dimension resolves up to 64 candidates against a probe.
///
/// Columns are stored column-major (`column(k)[i]` is point `i`'s rank in
/// dimension `k`) so the per-dimension block loop walks contiguous memory.
///
/// Building ranks is *uncharged* preprocessing, exactly like the SFS
/// presort: it changes where comparison answers come from, never which
/// logical dominance comparisons the algorithms charge to the clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankColumns {
    points: usize,
    /// Column-major ranks: `ranks[k * points + i]`.
    ranks: Vec<u32>,
}

impl RankColumns {
    /// Builds rank columns for every dimension of `store`, or `None` when
    /// the store contains a NaN (ranks cannot represent an unordered value;
    /// callers fall back to the scalar path).
    pub fn try_build(store: &PointStore) -> Option<RankColumns> {
        let n = store.len();
        let d = store.stride();
        let flat = store.as_flat();
        if flat.iter().any(|v| v.is_nan()) {
            return None;
        }
        let mut ranks = vec![0u32; n * d];
        let mut order: Vec<u32> = (0..n as u32).collect();
        for k in 0..d {
            order.sort_by(|&a, &b| flat[a as usize * d + k].total_cmp(&flat[b as usize * d + k]));
            let col = &mut ranks[k * n..(k + 1) * n];
            let mut rank = 0u32;
            let mut prev = 0.0;
            for (j, &i) in order.iter().enumerate() {
                let v = flat[i as usize * d + k];
                // total_cmp sorting puts ==-equal values (incl. -0.0/+0.0)
                // adjacent, so a dense rank advances only on a value change.
                if j > 0 && v != prev {
                    rank += 1;
                }
                col[i as usize] = rank;
                prev = v;
            }
        }
        Some(RankColumns { points: n, ranks })
    }

    /// Number of ranked points per column.
    #[inline]
    pub fn points(&self) -> usize {
        self.points
    }

    /// The rank column of dimension `k` (index by point id).
    #[inline]
    pub fn column(&self, k: usize) -> &[u32] {
        &self.ranks[k * self.points..(k + 1) * self.points]
    }
}

/// A *mutable window* variant used by in-place skyline windows: same flat
/// layout as [`PointStore`], but rows can be removed by swapping the last
/// row into the hole (mirroring `Vec::swap_remove` on a `Vec<Vec<f64>>`).
#[derive(Debug, Clone, Default)]
pub struct SwapStore {
    stride: usize,
    data: Vec<Value>,
}

impl SwapStore {
    /// An empty window for points of `stride` dimensions.
    pub fn new(stride: usize) -> Self {
        SwapStore {
            stride,
            data: Vec::new(),
        }
    }

    /// The fixed number of dimensions per point.
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Number of points in the window.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len().checked_div(self.stride).unwrap_or(0)
    }

    /// Whether the window is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends a point at the end of the window.
    #[inline]
    pub fn push(&mut self, point: &[Value]) {
        debug_assert_eq!(point.len(), self.stride, "point/stride mismatch");
        self.data.extend_from_slice(point);
    }

    /// The point at row `i`.
    #[inline]
    pub fn at(&self, i: usize) -> &[Value] {
        let s = i * self.stride;
        &self.data[s..s + self.stride]
    }

    /// Removes row `i` by moving the last row into its place — exactly the
    /// reordering `Vec::swap_remove` performs on a vector of points.
    #[inline]
    pub fn swap_remove(&mut self, i: usize) {
        let n = self.len();
        debug_assert!(i < n);
        let last = n - 1;
        if i != last {
            let (head, tail) = self.data.split_at_mut(last * self.stride);
            head[i * self.stride..(i + 1) * self.stride].copy_from_slice(tail);
        }
        self.data.truncate(last * self.stride);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_roundtrip() {
        let mut s = PointStore::new(3);
        let a = s.push(&[1.0, 2.0, 3.0]);
        let b = s.push(&[4.0, 5.0, 6.0]);
        assert_eq!(a, PointId(0));
        assert_eq!(b, PointId(1));
        assert_eq!(s.get(a), &[1.0, 2.0, 3.0]);
        assert_eq!(s.get(b), &[4.0, 5.0, 6.0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.at(1), s.get(b));
        assert_eq!(s.as_flat().len(), 6);
    }

    #[test]
    fn push_with_writes_in_place() {
        let mut s = PointStore::with_capacity(2, 4);
        let id = s.push_with(|out| out.extend_from_slice(&[7.0, 8.0]));
        assert_eq!(id, PointId(0));
        assert_eq!(s.get(id), &[7.0, 8.0]);
        s.pop();
        assert!(s.is_empty());
    }

    #[test]
    fn iter_visits_in_id_order() {
        let mut s = PointStore::new(2);
        for i in 0..5 {
            s.push(&[i as Value, (i * i) as Value]);
        }
        let pts: Vec<&[Value]> = s.iter().collect();
        assert_eq!(pts.len(), 5);
        assert_eq!(pts[3], &[3.0, 9.0]);
        s.clear();
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn rank_columns_are_order_isomorphic() {
        let mut s = PointStore::new(2);
        // Ties, signed zeros and both orders per dimension.
        for p in [[3.0, -0.0], [1.0, 0.0], [3.0, 2.0], [0.5, 2.0], [1.0, -5.0]] {
            s.push(&p);
        }
        // Allowed survivor: the fixture is NaN-free by construction.
        #[allow(clippy::unwrap_used)]
        let cols = RankColumns::try_build(&s).unwrap();
        assert_eq!(cols.points(), 5);
        for k in 0..2 {
            let col = cols.column(k);
            for i in 0..5 {
                for j in 0..5 {
                    let (a, b) = (s.at(i)[k], s.at(j)[k]);
                    assert_eq!(a < b, col[i] < col[j], "dim {k}: {a} vs {b}");
                    assert_eq!(a == b, col[i] == col[j], "dim {k}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn rank_columns_reject_nan() {
        let mut s = PointStore::new(2);
        s.push(&[1.0, f64::NAN]);
        assert!(RankColumns::try_build(&s).is_none());
    }

    #[test]
    fn columnar_text_round_trips_bit_exactly() {
        let mut s = PointStore::new(3);
        s.push(&[1.0, -0.0, f64::INFINITY]);
        s.push(&[f64::from_bits(0x7ff8_0000_0000_0001), 2.5e-300, -4.0]);
        let back = PointStore::from_text(&s.to_text()).unwrap();
        assert_eq!(back.stride(), 3);
        assert_eq!(back.len(), 2);
        for i in 0..2 {
            for k in 0..3 {
                assert_eq!(back.at(i)[k].to_bits(), s.at(i)[k].to_bits());
            }
        }
        // Empty stores round-trip too.
        let empty = PointStore::new(4);
        assert_eq!(PointStore::from_text(&empty.to_text()).unwrap(), empty);
    }

    #[test]
    fn columnar_text_rejects_corruption() {
        let mut s = PointStore::new(2);
        s.push(&[1.0, 2.0]);
        let text = s.to_text();
        assert!(PointStore::from_text("").is_err());
        assert!(PointStore::from_text("bogus 2 1").is_err());
        // Truncate the last column.
        let cut = text.rfind(' ').unwrap();
        assert!(PointStore::from_text(&text[..cut]).is_err());
        // Trailing garbage.
        assert!(PointStore::from_text(&format!("{text}junk\n")).is_err());
    }

    #[test]
    fn swap_store_mirrors_vec_swap_remove() {
        let mut flat = SwapStore::new(2);
        let mut nested: Vec<Vec<Value>> = Vec::new();
        for i in 0..6 {
            let p = vec![i as Value, (10 - i) as Value];
            flat.push(&p);
            nested.push(p);
        }
        for kill in [1usize, 3, 0] {
            flat.swap_remove(kill);
            nested.swap_remove(kill);
            assert_eq!(flat.len(), nested.len());
            for (i, p) in nested.iter().enumerate() {
                assert_eq!(flat.at(i), p.as_slice(), "row {i} after kill {kill}");
            }
        }
        while !nested.is_empty() {
            flat.swap_remove(nested.len() - 1);
            nested.pop();
        }
        assert!(flat.is_empty());
    }
}
