//! Deterministic virtual time.
//!
//! The paper measures contract satisfaction against wall-clock time on a
//! specific 2.6 GHz workstation. For a reproducible, hardware-independent
//! reproduction we substitute a **virtual clock**: every elementary
//! operation charges a fixed number of *ticks* through a shared
//! [`CostModel`], and ticks convert to *virtual seconds* at a configurable
//! rate. All compared systems (CAQE and every baseline) charge identical
//! costs for identical work, so relative orderings and crossovers — the
//! quantities the paper's figures report — are preserved (DESIGN.md §3).

/// Virtual time expressed in seconds.
pub type VirtualSeconds = f64;

/// Virtual time expressed in raw clock ticks — the unit trace events are
/// keyed on. Ticks are exact integers, so equality comparisons across runs
/// (the determinism guarantee) never involve floating-point rounding.
pub type Ticks = u64;

/// Tick prices for the elementary operations of skyline-over-join
/// processing. The defaults approximate the relative CPU cost of each
/// operation; what matters for the reproduction is that the *same* model is
/// applied to every compared technique.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Evaluating one join-candidate pair (predicate check + tuple build).
    pub join_probe: u64,
    /// Applying one scalar mapping function to one join result.
    pub map_eval: u64,
    /// One pairwise dominance comparison.
    pub dom_cmp: u64,
    /// Emitting one result tuple to a consumer.
    pub emit: u64,
    /// Fixed overhead for scheduling one region / unit of work.
    pub region_overhead: u64,
    /// Ticks per *sort* comparison (a single scalar compare — cheaper than
    /// a multi-dimensional dominance test). May be fractional.
    pub sort_cmp: f64,
    /// Conversion rate from ticks to virtual seconds.
    pub ticks_per_second: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            join_probe: 2,
            map_eval: 1,
            dom_cmp: 1,
            emit: 1,
            region_overhead: 16,
            sort_cmp: 0.25,
            ticks_per_second: 100_000.0,
        }
    }
}

impl CostModel {
    /// Converts a tick count to virtual seconds under this model.
    #[inline]
    pub fn to_seconds(&self, ticks: u64) -> VirtualSeconds {
        ticks as f64 / self.ticks_per_second
    }
}

/// A monotonically advancing virtual clock.
///
/// Executors call the `charge_*` methods as they perform work; contract
/// evaluation reads [`SimClock::now`] to timestamp emitted result tuples.
#[derive(Debug, Clone)]
pub struct SimClock {
    ticks: u64,
    model: CostModel,
}

impl SimClock {
    /// A clock at time zero with the given cost model.
    pub fn new(model: CostModel) -> Self {
        SimClock { ticks: 0, model }
    }

    /// The cost model driving this clock.
    #[inline]
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// Total ticks elapsed.
    #[inline]
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Current virtual time in seconds.
    #[inline]
    pub fn now(&self) -> VirtualSeconds {
        self.model.to_seconds(self.ticks)
    }

    /// Advances the clock by an arbitrary number of ticks.
    #[inline]
    pub fn advance(&mut self, ticks: u64) {
        self.ticks += ticks;
    }

    /// Charges `n` join-probe operations.
    #[inline]
    pub fn charge_join_probes(&mut self, n: u64) {
        self.ticks += n * self.model.join_probe;
    }

    /// Charges `n` mapping-function evaluations.
    #[inline]
    pub fn charge_map_evals(&mut self, n: u64) {
        self.ticks += n * self.model.map_eval;
    }

    /// Charges `n` dominance comparisons.
    #[inline]
    pub fn charge_dom_cmps(&mut self, n: u64) {
        self.ticks += n * self.model.dom_cmp;
    }

    /// Charges `n` result emissions.
    #[inline]
    pub fn charge_emits(&mut self, n: u64) {
        self.ticks += n * self.model.emit;
    }

    /// Charges the fixed overhead of scheduling one unit of work.
    #[inline]
    pub fn charge_region_overhead(&mut self) {
        self.ticks += self.model.region_overhead;
    }

    /// Charges `n` sort comparisons at the (fractional) sort rate.
    #[inline]
    pub fn charge_sort_cmps(&mut self, n: u64) {
        self.ticks += (n as f64 * self.model.sort_cmp).ceil() as u64;
    }

    /// Estimates, without advancing the clock, the virtual time at which the
    /// clock would sit after `extra_ticks` more work. Used by the optimizer's
    /// cost model when scoring candidate regions (Equation 8's `t_curr + t_c`).
    #[inline]
    pub fn projected(&self, extra_ticks: u64) -> VirtualSeconds {
        self.model.to_seconds(self.ticks + extra_ticks)
    }
}

impl Default for SimClock {
    fn default() -> Self {
        SimClock::new(CostModel::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_starts_at_zero() {
        let c = SimClock::default();
        assert_eq!(c.ticks(), 0);
        assert_eq!(c.now(), 0.0);
    }

    #[test]
    fn charges_accumulate_per_model() {
        let model = CostModel {
            join_probe: 2,
            map_eval: 1,
            dom_cmp: 3,
            emit: 5,
            region_overhead: 7,
            sort_cmp: 0.5,
            ticks_per_second: 10.0,
        };
        let mut c = SimClock::new(model);
        c.charge_join_probes(4); // 8
        c.charge_map_evals(2); // 2
        c.charge_dom_cmps(1); // 3
        c.charge_emits(1); // 5
        c.charge_region_overhead(); // 7
        assert_eq!(c.ticks(), 25);
        assert!((c.now() - 2.5).abs() < 1e-12);
        c.charge_sort_cmps(5); // ceil(2.5) = 3
        assert_eq!(c.ticks(), 28);
    }

    #[test]
    fn projection_does_not_advance() {
        let mut c = SimClock::default();
        c.advance(50_000);
        let t = c.projected(50_000);
        assert!((t - 1.0).abs() < 1e-12);
        assert_eq!(c.ticks(), 50_000);
    }

    #[test]
    fn default_model_rate() {
        let m = CostModel::default();
        assert!((m.to_seconds(100_000) - 1.0).abs() < 1e-12);
    }
}
