//! Strongly-typed identifiers.
//!
//! Queries, output regions and quad-tree cells are referenced pervasively by
//! index; newtypes prevent the classic "wrong index into the wrong Vec" bug.

use std::fmt;

/// Identifier of a query within a workload (index into the workload's query
/// vector).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryId(pub u16);

impl QueryId {
    /// The identifier as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q{}", self.0 + 1)
    }
}

/// Identifier of an output region within a region collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionId(pub u32);

impl RegionId {
    /// The identifier as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// Identifier of a quad-tree leaf cell within one table's partitioning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId(pub u32);

impl CellId {
    /// The identifier as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// A compact set of queries, mirroring the paper's *query lineage* bit
/// vectors (`RQL` for regions, `CQL` for output cells, §5.2 and §6).
///
/// Supports workloads of up to 64 queries — well beyond the paper's
/// `|S_Q| = 11`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct QuerySet(pub u64);

impl QuerySet {
    /// The empty set.
    pub const EMPTY: QuerySet = QuerySet(0);

    /// A set containing a single query.
    pub fn singleton(q: QueryId) -> Self {
        assert!(q.index() < 64, "QuerySet supports up to 64 queries");
        QuerySet(1 << q.index())
    }

    /// A set containing all of the first `n` queries.
    pub fn all(n: usize) -> Self {
        assert!(n <= 64);
        if n == 64 {
            QuerySet(u64::MAX)
        } else {
            QuerySet((1u64 << n) - 1)
        }
    }

    /// Inserts a query.
    #[inline]
    pub fn insert(&mut self, q: QueryId) {
        assert!(q.index() < 64);
        self.0 |= 1 << q.index();
    }

    /// Removes a query.
    #[inline]
    pub fn remove(&mut self, q: QueryId) {
        self.0 &= !(1 << q.index());
    }

    /// Membership test.
    #[inline]
    pub fn contains(self, q: QueryId) -> bool {
        q.index() < 64 && (self.0 >> q.index()) & 1 == 1
    }

    /// Set intersection.
    #[inline]
    pub fn intersect(self, other: QuerySet) -> QuerySet {
        QuerySet(self.0 & other.0)
    }

    /// Set union.
    #[inline]
    pub fn union(self, other: QuerySet) -> QuerySet {
        QuerySet(self.0 | other.0)
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Whether `self ⊆ other`.
    #[inline]
    pub fn is_subset_of(self, other: QuerySet) -> bool {
        self.0 & other.0 == self.0
    }

    /// Number of queries in the set.
    #[inline]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Iterates the member query ids in ascending order.
    pub fn iter(self) -> impl Iterator<Item = QueryId> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let k = bits.trailing_zeros() as u16;
                bits &= bits - 1;
                Some(QueryId(k))
            }
        })
    }
}

impl FromIterator<QueryId> for QuerySet {
    fn from_iter<I: IntoIterator<Item = QueryId>>(iter: I) -> Self {
        let mut s = QuerySet::EMPTY;
        for q in iter {
            s.insert(q);
        }
        s
    }
}

impl fmt::Display for QuerySet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, q) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{q}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Debug for QuerySet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_set_basics() {
        let mut s = QuerySet::EMPTY;
        assert!(s.is_empty());
        s.insert(QueryId(0));
        s.insert(QueryId(3));
        assert_eq!(s.len(), 2);
        assert!(s.contains(QueryId(0)));
        assert!(s.contains(QueryId(3)));
        assert!(!s.contains(QueryId(1)));
        s.remove(QueryId(0));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn query_set_algebra() {
        let a: QuerySet = [QueryId(0), QueryId(1)].into_iter().collect();
        let b: QuerySet = [QueryId(1), QueryId(2)].into_iter().collect();
        assert_eq!(a.intersect(b), QuerySet::singleton(QueryId(1)));
        assert_eq!(a.union(b).len(), 3);
        assert!(QuerySet::singleton(QueryId(1)).is_subset_of(a));
        assert!(!a.is_subset_of(b));
    }

    #[test]
    fn query_set_all() {
        assert_eq!(QuerySet::all(11).len(), 11);
        assert_eq!(QuerySet::all(64).len(), 64);
        assert_eq!(QuerySet::all(0).len(), 0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(QueryId(0).to_string(), "Q1");
        assert_eq!(RegionId(7).to_string(), "R7");
        assert_eq!(CellId(3).to_string(), "L3");
        let s: QuerySet = [QueryId(0), QueryId(2)].into_iter().collect();
        assert_eq!(s.to_string(), "{Q1,Q3}");
    }

    #[test]
    fn iter_ascending() {
        let s: QuerySet = [QueryId(5), QueryId(1), QueryId(9)].into_iter().collect();
        let ids: Vec<_> = s.iter().map(|q| q.0).collect();
        assert_eq!(ids, vec![1, 5, 9]);
    }
}
