//! Subspaces of the skyline dimension full-space (§2.1 of the paper).
//!
//! A *subspace* `V ⊆ D` is a set of dimensions over which a (sub-)skyline is
//! evaluated. We represent a subspace compactly as a bitmask over at most 32
//! dimensions, far beyond the `d ∈ [2, 5]` range the paper evaluates.

use std::fmt;

/// Maximum number of dimensions representable by a [`DimMask`].
pub const MAX_DIMS: usize = 32;

/// A set of dimension indices (a subspace), stored as a bitmask.
///
/// Bit `k` set means dimension `d_{k}` (0-based) is part of the subspace.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct DimMask(pub u32);

impl DimMask {
    /// The empty subspace.
    pub const EMPTY: DimMask = DimMask(0);

    /// Creates a subspace from an iterator of dimension indices.
    ///
    /// # Panics
    /// Panics if any index is `>= MAX_DIMS`.
    pub fn from_dims<I: IntoIterator<Item = usize>>(dims: I) -> Self {
        let mut bits = 0u32;
        for d in dims {
            assert!(d < MAX_DIMS, "dimension index {d} out of range");
            bits |= 1 << d;
        }
        DimMask(bits)
    }

    /// The full space over `d` dimensions: `{d_0, …, d_{d-1}}`.
    ///
    /// # Panics
    /// Panics if `d > MAX_DIMS`.
    pub fn full(d: usize) -> Self {
        assert!(d <= MAX_DIMS);
        if d == MAX_DIMS {
            DimMask(u32::MAX)
        } else {
            DimMask((1u32 << d) - 1)
        }
    }

    /// A single-dimension subspace `{d_k}`.
    pub fn singleton(k: usize) -> Self {
        assert!(k < MAX_DIMS);
        DimMask(1 << k)
    }

    /// Number of dimensions in the subspace (the *level* in the lattice).
    #[inline]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the subspace is empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Whether dimension `k` belongs to the subspace.
    #[inline]
    pub fn contains(self, k: usize) -> bool {
        k < MAX_DIMS && (self.0 >> k) & 1 == 1
    }

    /// Whether `self ⊆ other`.
    #[inline]
    pub fn is_subset_of(self, other: DimMask) -> bool {
        self.0 & other.0 == self.0
    }

    /// Whether `self ⊂ other` (strict).
    #[inline]
    pub fn is_strict_subset_of(self, other: DimMask) -> bool {
        self != other && self.is_subset_of(other)
    }

    /// Set union.
    #[inline]
    pub fn union(self, other: DimMask) -> DimMask {
        DimMask(self.0 | other.0)
    }

    /// Set intersection.
    #[inline]
    pub fn intersect(self, other: DimMask) -> DimMask {
        DimMask(self.0 & other.0)
    }

    /// Set difference `self \ other`.
    #[inline]
    pub fn difference(self, other: DimMask) -> DimMask {
        DimMask(self.0 & !other.0)
    }

    /// Iterates over the dimension indices in ascending order.
    pub fn iter(self) -> DimIter {
        DimIter(self.0)
    }

    /// Enumerates every non-empty subspace of the full space over `d`
    /// dimensions — the `2^d − 1` members of the *skycube* lattice ([36] in
    /// the paper, Figure 5).
    pub fn enumerate_nonempty(d: usize) -> impl Iterator<Item = DimMask> {
        assert!(d < MAX_DIMS, "skycube enumeration limited to < 32 dims");
        (1u32..(1u32 << d)).map(DimMask)
    }

    /// Enumerates every non-empty strict subset of `self`.
    pub fn strict_subsets(self) -> impl Iterator<Item = DimMask> {
        let full = self.0;
        // Standard sub-mask enumeration trick: walk (m - 1) & full downwards.
        std::iter::successors(Some(DimMask((full.wrapping_sub(1)) & full)), move |m| {
            if m.0 == 0 {
                None
            } else {
                Some(DimMask(m.0.wrapping_sub(1) & full))
            }
        })
        .take_while(|m| m.0 != 0)
    }
}

/// Iterator over the dimensions of a [`DimMask`], ascending.
pub struct DimIter(u32);

impl Iterator for DimIter {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            let k = self.0.trailing_zeros() as usize;
            self.0 &= self.0 - 1;
            Some(k)
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for DimIter {}

impl fmt::Debug for DimMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for DimMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, k) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "d{}", k + 1)?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<usize> for DimMask {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        DimMask::from_dims(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_space_has_all_dims() {
        let m = DimMask::full(4);
        assert_eq!(m.len(), 4);
        for k in 0..4 {
            assert!(m.contains(k));
        }
        assert!(!m.contains(4));
    }

    #[test]
    fn singleton_and_subset() {
        let s = DimMask::singleton(2);
        let f = DimMask::full(4);
        assert!(s.is_subset_of(f));
        assert!(s.is_strict_subset_of(f));
        assert!(f.is_subset_of(f));
        assert!(!f.is_strict_subset_of(f));
    }

    #[test]
    fn set_algebra() {
        let a = DimMask::from_dims([0, 1]);
        let b = DimMask::from_dims([1, 2]);
        assert_eq!(a.union(b), DimMask::from_dims([0, 1, 2]));
        assert_eq!(a.intersect(b), DimMask::singleton(1));
        assert_eq!(a.difference(b), DimMask::singleton(0));
    }

    #[test]
    fn iter_ascending() {
        let m = DimMask::from_dims([3, 0, 2]);
        let dims: Vec<_> = m.iter().collect();
        assert_eq!(dims, vec![0, 2, 3]);
        assert_eq!(m.iter().len(), 3);
    }

    #[test]
    fn skycube_enumeration_size() {
        // The skycube over d dims has 2^d − 1 non-empty subspaces (Fig. 5).
        for d in 1..=5 {
            assert_eq!(DimMask::enumerate_nonempty(d).count(), (1 << d) - 1);
        }
    }

    #[test]
    fn strict_subsets_of_three_dims() {
        let m = DimMask::from_dims([0, 1, 3]);
        let subs: Vec<_> = m.strict_subsets().collect();
        // 2^3 − 2 strict non-empty subsets.
        assert_eq!(subs.len(), 6);
        for s in subs {
            assert!(s.is_strict_subset_of(m));
            assert!(!s.is_empty());
        }
    }

    #[test]
    fn display_is_one_based() {
        let m = DimMask::from_dims([0, 2]);
        assert_eq!(m.to_string(), "{d1,d3}");
    }

    #[test]
    fn empty_mask_behaviour() {
        assert!(DimMask::EMPTY.is_empty());
        assert_eq!(DimMask::EMPTY.len(), 0);
        assert_eq!(DimMask::EMPTY.iter().count(), 0);
        assert!(DimMask::EMPTY.is_subset_of(DimMask::singleton(0)));
    }

    #[test]
    #[should_panic]
    fn out_of_range_dim_panics() {
        let _ = DimMask::from_dims([32]);
    }
}
