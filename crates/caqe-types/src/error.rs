//! Typed engine errors.
//!
//! The library crates never abort the process on recoverable conditions:
//! fallible entry points return [`EngineError`] and the callers decide
//! whether to degrade, retry or surface the failure. Only genuinely
//! unreachable states (documented invariant violations) remain panics.

use std::fmt;

/// Everything that can go wrong while running a workload.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The input tables violate the schema contract (arity, join columns).
    InvalidInput {
        /// Which table ("R"/"T" or a table name).
        table: String,
        /// Human-readable description of the violation.
        reason: String,
    },
    /// Ingestion validation rejected the input under the `Reject` policy:
    /// non-finite preference values or duplicate record identifiers.
    CorruptInput {
        /// Which table the violation was found in.
        table: String,
        /// Records carrying NaN or ±Inf preference values.
        non_finite: usize,
        /// Records whose identifier duplicates an earlier record.
        duplicates: usize,
    },
    /// The workload is structurally invalid (empty, bad mapping arity,
    /// out-of-range preference dimensions).
    InvalidWorkload {
        /// Human-readable description of the violation.
        reason: String,
    },
    /// A region's processing unit panicked and exhausted its retry budget;
    /// the run continued by quarantining the region, but a caller that
    /// demanded complete results can observe the loss here.
    RegionFailed {
        /// Join-group index.
        group: u32,
        /// Region identifier within the group.
        region: u32,
        /// Processing attempts made before quarantining.
        attempts: u32,
    },
    /// A fault specification string (`--faults <spec>`) failed to parse.
    BadFaultSpec {
        /// The offending fragment.
        fragment: String,
        /// What was expected instead.
        reason: String,
    },
    /// A session event specification (`--events <spec>`) failed to parse
    /// or referenced a query/pool slot that does not exist.
    BadEventSpec {
        /// The offending fragment.
        fragment: String,
        /// What was expected instead.
        reason: String,
    },
}

impl EngineError {
    /// Whether a wall-clock driver should retry the run that produced this
    /// error. [`RegionFailed`](EngineError::RegionFailed) reports exhausted
    /// in-run recovery of a panicking processing unit — under real (non
    /// seeded-chaos) conditions that is environmental and worth re-running.
    /// Everything else describes the *request* (malformed input, workload
    /// or spec) and will fail identically on every attempt.
    pub fn is_transient(&self) -> bool {
        matches!(self, EngineError::RegionFailed { .. })
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::InvalidInput { table, reason } => {
                write!(f, "invalid input table {table}: {reason}")
            }
            EngineError::CorruptInput {
                table,
                non_finite,
                duplicates,
            } => write!(
                f,
                "corrupt input table {table}: {non_finite} non-finite record(s), \
                 {duplicates} duplicate id(s) (policy: reject)"
            ),
            EngineError::InvalidWorkload { reason } => {
                write!(f, "invalid workload: {reason}")
            }
            EngineError::RegionFailed {
                group,
                region,
                attempts,
            } => write!(
                f,
                "region {region} of group {group} failed after {attempts} attempt(s)"
            ),
            EngineError::BadFaultSpec { fragment, reason } => {
                write!(f, "bad fault spec near {fragment:?}: {reason}")
            }
            EngineError::BadEventSpec { fragment, reason } => {
                write!(f, "bad event spec near {fragment:?}: {reason}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = EngineError::CorruptInput {
            table: "R".into(),
            non_finite: 3,
            duplicates: 1,
        };
        let s = e.to_string();
        assert!(s.contains('R') && s.contains('3') && s.contains('1'));
        let e = EngineError::RegionFailed {
            group: 2,
            region: 7,
            attempts: 4,
        };
        assert!(e.to_string().contains("region 7"));
        let e = EngineError::BadFaultSpec {
            fragment: "spike".into(),
            reason: "missing rate".into(),
        };
        assert!(e.to_string().contains("spike"));
        let e = EngineError::BadEventSpec {
            fragment: "admit@x".into(),
            reason: "tick must be an integer".into(),
        };
        assert!(e.to_string().contains("admit@x"));
    }

    #[test]
    fn only_region_failures_are_transient() {
        assert!(EngineError::RegionFailed {
            group: 0,
            region: 1,
            attempts: 3,
        }
        .is_transient());
        assert!(!EngineError::InvalidWorkload {
            reason: "empty".into(),
        }
        .is_transient());
        assert!(!EngineError::BadEventSpec {
            fragment: "depart@1=9".into(),
            reason: "unknown query".into(),
        }
        .is_transient());
        assert!(!EngineError::CorruptInput {
            table: "R".into(),
            non_finite: 1,
            duplicates: 0,
        }
        .is_transient());
    }

    #[test]
    fn errors_compare_by_value() {
        let a = EngineError::InvalidWorkload {
            reason: "empty".into(),
        };
        assert_eq!(a.clone(), a);
    }
}
