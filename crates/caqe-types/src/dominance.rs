//! Full-space and subspace dominance (Definitions 1 and 2 of the paper).
//!
//! A tuple `τ_i` *dominates* `τ_j` in subspace `V` iff `τ_i` is no worse in
//! every dimension of `V` and strictly better in at least one. Smaller values
//! are preferred throughout (§2.1).
//!
//! Dominance tests are the unit of CPU cost in the paper's evaluation
//! (Figure 10.b counts pairwise skyline comparisons), so every caller is
//! expected to funnel tests through an instrumented counter — either the
//! [`crate::stats::Stats`] sink or a plain `&mut u64`.

use crate::subspace::DimMask;
use crate::Value;

/// The outcome of relating two points under the preference order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DomRelation {
    /// The left point dominates the right one (`a ≺ b`).
    Dominates,
    /// The left point is dominated by the right one (`b ≺ a`).
    DominatedBy,
    /// Equal on every considered dimension.
    Equal,
    /// Neither dominates the other (each is strictly better somewhere).
    Incomparable,
}

impl DomRelation {
    /// Whether the relation means the left point dominates the right.
    #[inline]
    pub fn left_dominates(self) -> bool {
        matches!(self, DomRelation::Dominates)
    }

    /// Flips the relation to the right point's perspective.
    #[inline]
    pub fn flip(self) -> DomRelation {
        match self {
            DomRelation::Dominates => DomRelation::DominatedBy,
            DomRelation::DominatedBy => DomRelation::Dominates,
            other => other,
        }
    }
}

/// Relates `a` and `b` over *all* dimensions of the slices (Definition 1).
///
/// # Panics
/// Panics in debug builds if the slices have different lengths.
#[inline]
pub fn relate(a: &[Value], b: &[Value]) -> DomRelation {
    debug_assert_eq!(a.len(), b.len());
    let mut a_better = false;
    let mut b_better = false;
    for (x, y) in a.iter().zip(b.iter()) {
        if x < y {
            a_better = true;
        } else if y < x {
            b_better = true;
        }
        if a_better && b_better {
            return DomRelation::Incomparable;
        }
    }
    match (a_better, b_better) {
        (true, false) => DomRelation::Dominates,
        (false, true) => DomRelation::DominatedBy,
        (false, false) => DomRelation::Equal,
        (true, true) => unreachable!("early return above"),
    }
}

/// Relates `a` and `b` over the dimensions of subspace `mask` (Definition 2).
#[inline]
pub fn relate_in(a: &[Value], b: &[Value], mask: DimMask) -> DomRelation {
    let mut a_better = false;
    let mut b_better = false;
    for k in mask.iter() {
        let (x, y) = (a[k], b[k]);
        if x < y {
            a_better = true;
        } else if y < x {
            b_better = true;
        }
        if a_better && b_better {
            return DomRelation::Incomparable;
        }
    }
    match (a_better, b_better) {
        (true, false) => DomRelation::Dominates,
        (false, true) => DomRelation::DominatedBy,
        (false, false) => DomRelation::Equal,
        (true, true) => unreachable!("early return above"),
    }
}

/// Full-space dominance test: `a ≺ b` (Definition 1).
#[inline]
pub fn dominates(a: &[Value], b: &[Value]) -> bool {
    relate(a, b) == DomRelation::Dominates
}

/// Subspace dominance test: `a ≺_V b` (Definition 2).
#[inline]
pub fn dominates_in(a: &[Value], b: &[Value], mask: DimMask) -> bool {
    relate_in(a, b, mask) == DomRelation::Dominates
}

/// Weak subspace dominance: `a ⪯_V b`, i.e. `a` no worse than `b` on every
/// dimension of `V`. Used by the region-dominance predicates of Definition 8.
#[inline]
pub fn weakly_dominates_in(a: &[Value], b: &[Value], mask: DimMask) -> bool {
    mask.iter().all(|k| a[k] <= b[k])
}

#[cfg(test)]
mod tests {
    use super::*;

    // Hotels from Example 3 of the paper: (price, rating, distance, wifi).
    // Smaller-is-better on every dimension; ratings are therefore stored
    // inverted in the example below (5 → 0, 2 → 3) to match the convention.
    const H1: [Value; 4] = [200.0, 0.0, 0.5, 20.0];
    const H2: [Value; 4] = [350.0, 0.0, 0.5, 20.0];
    const H3: [Value; 4] = [89.0, 3.0, 3.0, 0.0];

    #[test]
    fn example3_full_space_dominance() {
        // h1 dominates h2 (cheaper, otherwise equal).
        assert!(dominates(&H1, &H2));
        assert!(!dominates(&H2, &H1));
        // h1 and h3 are incomparable.
        assert_eq!(relate(&H1, &H3), DomRelation::Incomparable);
        assert_eq!(relate(&H3, &H1), DomRelation::Incomparable);
    }

    #[test]
    fn example4_subspace_dominance() {
        // In subspace {price, wifi}, h3 dominates both h1 and h2.
        let v = DimMask::from_dims([0, 3]);
        assert!(dominates_in(&H3, &H1, v));
        assert!(dominates_in(&H3, &H2, v));
        assert!(!dominates_in(&H1, &H3, v));
    }

    #[test]
    fn equal_points_do_not_dominate() {
        let a = [1.0, 2.0];
        assert_eq!(relate(&a, &a), DomRelation::Equal);
        assert!(!dominates(&a, &a));
    }

    #[test]
    fn relation_flip_is_involutive() {
        for r in [
            DomRelation::Dominates,
            DomRelation::DominatedBy,
            DomRelation::Equal,
            DomRelation::Incomparable,
        ] {
            assert_eq!(r.flip().flip(), r);
        }
    }

    #[test]
    fn subspace_dominance_ignores_other_dims() {
        // a is terrible on d2 but dominates on {d1}.
        let a = [1.0, 99.0];
        let b = [2.0, 1.0];
        assert!(dominates_in(&a, &b, DimMask::singleton(0)));
        assert!(!dominates_in(&a, &b, DimMask::full(2)));
    }

    #[test]
    fn weak_dominance_allows_equality() {
        let a = [1.0, 2.0];
        let b = [1.0, 2.0];
        assert!(weakly_dominates_in(&a, &b, DimMask::full(2)));
        assert!(!dominates_in(&a, &b, DimMask::full(2)));
    }

    #[test]
    fn dominance_is_a_strict_partial_order() {
        // Irreflexive + asymmetric spot checks.
        let pts: [[Value; 3]; 4] = [
            [1.0, 2.0, 3.0],
            [2.0, 1.0, 3.0],
            [1.0, 1.0, 1.0],
            [3.0, 3.0, 3.0],
        ];
        for p in &pts {
            assert!(!dominates(p, p));
        }
        for a in &pts {
            for b in &pts {
                if dominates(a, b) {
                    assert!(!dominates(b, a));
                }
            }
        }
        // Transitivity on this instance: [1,1,1] ≺ [1,2,3] ≺ [3,3,3] impl.
        assert!(dominates(&pts[2], &pts[0]));
        assert!(dominates(&pts[0], &pts[3]));
        assert!(dominates(&pts[2], &pts[3]));
    }
}
