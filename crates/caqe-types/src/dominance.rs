//! Full-space and subspace dominance (Definitions 1 and 2 of the paper).
//!
//! A tuple `τ_i` *dominates* `τ_j` in subspace `V` iff `τ_i` is no worse in
//! every dimension of `V` and strictly better in at least one. Smaller values
//! are preferred throughout (§2.1).
//!
//! Dominance tests are the unit of CPU cost in the paper's evaluation
//! (Figure 10.b counts pairwise skyline comparisons), so every caller is
//! expected to funnel tests through an instrumented counter — either the
//! [`crate::stats::Stats`] sink or a plain `&mut u64`.

use crate::store::RankColumns;
use crate::subspace::DimMask;
use crate::Value;

/// Window size from which the packed block dominance path pays for itself;
/// below it the specialized scalar shapes win (DESIGN.md §15). The dispatch
/// threshold only moves work between observationally identical paths — it
/// can never change results, `Stats`, ticks or traces.
pub const BLOCK_MIN: usize = 8;

/// The outcome of relating two points under the preference order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DomRelation {
    /// The left point dominates the right one (`a ≺ b`).
    Dominates,
    /// The left point is dominated by the right one (`b ≺ a`).
    DominatedBy,
    /// Equal on every considered dimension.
    Equal,
    /// Neither dominates the other (each is strictly better somewhere).
    Incomparable,
}

impl DomRelation {
    /// Whether the relation means the left point dominates the right.
    #[inline]
    pub fn left_dominates(self) -> bool {
        matches!(self, DomRelation::Dominates)
    }

    /// Flips the relation to the right point's perspective.
    #[inline]
    pub fn flip(self) -> DomRelation {
        match self {
            DomRelation::Dominates => DomRelation::DominatedBy,
            DomRelation::DominatedBy => DomRelation::Dominates,
            other => other,
        }
    }
}

/// Relates `a` and `b` over *all* dimensions of the slices (Definition 1).
///
/// # Panics
/// Panics in debug builds if the slices have different lengths.
#[inline]
pub fn relate(a: &[Value], b: &[Value]) -> DomRelation {
    debug_assert_eq!(a.len(), b.len());
    let mut a_better = false;
    let mut b_better = false;
    for (x, y) in a.iter().zip(b.iter()) {
        if x < y {
            a_better = true;
        } else if y < x {
            b_better = true;
        }
        if a_better && b_better {
            return DomRelation::Incomparable;
        }
    }
    match (a_better, b_better) {
        (true, false) => DomRelation::Dominates,
        (false, true) => DomRelation::DominatedBy,
        (false, false) => DomRelation::Equal,
        (true, true) => unreachable!("early return above"),
    }
}

/// Relates `a` and `b` over the dimensions of subspace `mask` (Definition 2).
#[inline]
pub fn relate_in(a: &[Value], b: &[Value], mask: DimMask) -> DomRelation {
    let mut a_better = false;
    let mut b_better = false;
    for k in mask.iter() {
        let (x, y) = (a[k], b[k]);
        if x < y {
            a_better = true;
        } else if y < x {
            b_better = true;
        }
        if a_better && b_better {
            return DomRelation::Incomparable;
        }
    }
    match (a_better, b_better) {
        (true, false) => DomRelation::Dominates,
        (false, true) => DomRelation::DominatedBy,
        (false, false) => DomRelation::Equal,
        (true, true) => unreachable!("early return above"),
    }
}

/// Full-space dominance test: `a ≺ b` (Definition 1).
#[inline]
pub fn dominates(a: &[Value], b: &[Value]) -> bool {
    relate(a, b) == DomRelation::Dominates
}

/// Subspace dominance test: `a ≺_V b` (Definition 2).
#[inline]
pub fn dominates_in(a: &[Value], b: &[Value], mask: DimMask) -> bool {
    relate_in(a, b, mask) == DomRelation::Dominates
}

/// Weak subspace dominance: `a ⪯_V b`, i.e. `a` no worse than `b` on every
/// dimension of `V`. Used by the region-dominance predicates of Definition 8.
#[inline]
pub fn weakly_dominates_in(a: &[Value], b: &[Value], mask: DimMask) -> bool {
    mask.iter().all(|k| a[k] <= b[k])
}

/// A dominance kernel specialized for one subspace.
///
/// [`relate_in`] re-walks the bitmask (`trailing_zeros` + clear-lowest-bit)
/// on every comparison; a kernel precomputes the dimension list *once* per
/// mask and, when the subspace is the contiguous full space of a known
/// stride, relates the two point slices directly — the layout the flat
/// [`crate::store::PointStore`] hands out.
///
/// The kernel is semantics-preserving by construction: dimensions are
/// visited in the same ascending order with the same early exit as
/// [`relate_in`], so it returns the identical [`DomRelation`] for every
/// input, and callers keep counting one comparison per pairwise test —
/// `Stats`, the virtual clock and traces cannot tell the kernels apart.
#[derive(Debug, Clone)]
pub struct DomKernel {
    mask: DimMask,
    /// Precomputed ascending dimension indices of `mask`.
    dims: Vec<u32>,
    /// Specialized comparison shape, resolved once at construction.
    shape: Shape,
}

/// The comparison shape a [`DomKernel`] dispatches on: the common subspace
/// arities get straight-line code with the dimension indices held inline
/// (no per-comparison load from the `dims` heap allocation).
#[derive(Debug, Clone, Copy)]
enum Shape {
    /// `mask` covers `0..d` contiguously: relate the point prefixes.
    Full(usize),
    /// One-dimensional subspace.
    Single(usize),
    /// Two-dimensional subspace (ascending indices).
    Pair(usize, usize),
    /// Anything else: loop over the precomputed `dims` list.
    General,
}

impl DomKernel {
    /// Builds the kernel for `mask` over points of `stride` dimensions.
    pub fn new(mask: DimMask, stride: usize) -> Self {
        let dims: Vec<u32> = mask.iter().map(|k| k as u32).collect();
        let shape = if mask == DimMask::full(stride) && stride > 0 {
            Shape::Full(stride)
        } else {
            match *dims.as_slice() {
                [k] => Shape::Single(k as usize),
                [i, j] => Shape::Pair(i as usize, j as usize),
                _ => Shape::General,
            }
        };
        DomKernel { mask, dims, shape }
    }

    /// The subspace this kernel relates points in.
    #[inline]
    pub fn mask(&self) -> DimMask {
        self.mask
    }

    /// The precomputed ascending dimension list.
    #[inline]
    pub fn dims(&self) -> &[u32] {
        &self.dims
    }

    /// Number of dimensions in the subspace.
    #[inline]
    pub fn len(&self) -> usize {
        self.dims.len()
    }

    /// Whether the subspace is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.dims.is_empty()
    }

    /// Relates `a` and `b` over the kernel's subspace — identical outcome
    /// to `relate_in(a, b, self.mask())`, without the bitmask walk.
    #[inline]
    pub fn relate(&self, a: &[Value], b: &[Value]) -> DomRelation {
        match self.shape {
            Shape::Full(d) => relate(&a[..d], &b[..d]),
            Shape::Single(k) => verdict(a[k] < b[k], b[k] < a[k]),
            Shape::Pair(i, j) => {
                // Both dimensions are examined unconditionally; the early
                // exit of the general loop only skips work, never changes
                // the verdict, so the outcome is identical.
                verdict(a[i] < b[i] || a[j] < b[j], b[i] < a[i] || b[j] < a[j])
            }
            Shape::General => {
                let mut a_better = false;
                let mut b_better = false;
                for &k in &self.dims {
                    let (x, y) = (a[k as usize], b[k as usize]);
                    if x < y {
                        a_better = true;
                    } else if y < x {
                        b_better = true;
                    }
                    if a_better && b_better {
                        return DomRelation::Incomparable;
                    }
                }
                verdict(a_better, b_better)
            }
        }
    }

    /// Subspace dominance test through the kernel.
    #[inline]
    pub fn dominates(&self, a: &[Value], b: &[Value]) -> bool {
        self.relate(a, b) == DomRelation::Dominates
    }

    /// The `Shape::Block` path over rank columns: relates up to 64 member
    /// points (given by id) against one probe point in a single pass of
    /// branch-free integer compares per dimension, packing the two
    /// strict-improvement flags of every member into one `u64` lane each.
    ///
    /// `BlockVerdicts::relation(j)` equals `relate_in(member_j, probe,
    /// self.mask())` exactly: both sides examine the same dimensions, and
    /// the scalar early exit only skips work, never changes the verdict.
    /// Requires `cols` built over the same store the ids index
    /// ([`RankColumns::try_build`] — NaN-free, so rank `<` ⟺ value `<`).
    ///
    /// # Panics
    /// Panics in debug builds if `members.len() > 64`.
    pub fn relate_block_ranks(
        &self,
        cols: &RankColumns,
        members: &[usize],
        probe: usize,
    ) -> BlockVerdicts {
        debug_assert!(members.len() <= 64, "block limited to 64 lanes");
        let mut member_better = 0u64;
        let mut probe_better = 0u64;
        for &k in &self.dims {
            let col = cols.column(k as usize);
            let pr = col[probe];
            for (j, &m) in members.iter().enumerate() {
                let r = col[m];
                member_better |= ((r < pr) as u64) << j;
                probe_better |= ((pr < r) as u64) << j;
            }
        }
        BlockVerdicts {
            member_better,
            probe_better,
        }
    }

    /// The `Shape::Block` path over raw values: relates the `count`
    /// contiguous member rows starting at row `first` of a flat buffer
    /// (`stride` values per row) against an out-of-buffer probe point.
    /// Used where the member set mutates in place (incremental skylines)
    /// and ranks would go stale.
    ///
    /// Verdict-per-lane semantics match [`Self::relate_block_ranks`].
    ///
    /// # Panics
    /// Panics in debug builds if `count > 64`.
    pub fn relate_block_rows(
        &self,
        data: &[Value],
        stride: usize,
        first: usize,
        count: usize,
        probe: &[Value],
    ) -> BlockVerdicts {
        debug_assert!(count <= 64, "block limited to 64 lanes");
        let mut member_better = 0u64;
        let mut probe_better = 0u64;
        let rows = data[first * stride..].chunks_exact(stride).take(count);
        match self.shape {
            Shape::Single(k) => {
                let pv = probe[k];
                for (j, row) in rows.enumerate() {
                    member_better |= ((row[k] < pv) as u64) << j;
                    probe_better |= ((pv < row[k]) as u64) << j;
                }
            }
            Shape::Pair(a, b) => {
                let (pa, pb) = (probe[a], probe[b]);
                for (j, row) in rows.enumerate() {
                    member_better |= (((row[a] < pa) | (row[b] < pb)) as u64) << j;
                    probe_better |= (((pa < row[a]) | (pb < row[b])) as u64) << j;
                }
            }
            Shape::Full(_) | Shape::General => {
                for (j, row) in rows.enumerate() {
                    let mut mb = false;
                    let mut pb = false;
                    for &k in &self.dims {
                        let (x, pv) = (row[k as usize], probe[k as usize]);
                        mb |= x < pv;
                        pb |= pv < x;
                    }
                    member_better |= (mb as u64) << j;
                    probe_better |= (pb as u64) << j;
                }
            }
        }
        BlockVerdicts {
            member_better,
            probe_better,
        }
    }

    /// The `Shape::Block` path over a *pre-gathered* window: member `j`'s
    /// subspace values live densely at `packed[j*d..(j+1)*d]` (`d` =
    /// [`Self::len`], ascending dimension order) and the probe is packed
    /// the same way. Gathering members once on admission instead of on
    /// every scan is what makes the block path pay off when windows are
    /// small and the backing store is large: the scan touches only a few
    /// cache lines of dense values, with no per-member indirection.
    ///
    /// Verdict-per-lane semantics match [`Self::relate_block_ranks`]; the
    /// two strict-improvement flags are exactly what [`relate_in`] folds
    /// into its verdict, so parity holds for *any* values, NaN included.
    ///
    /// # Panics
    /// Panics in debug builds if `count > 64`.
    pub fn relate_block_packed(
        &self,
        packed: &[Value],
        count: usize,
        probe: &[Value],
    ) -> BlockVerdicts {
        debug_assert!(count <= 64, "block limited to 64 lanes");
        let d = self.dims.len();
        debug_assert!(packed.len() >= count * d && probe.len() >= d);
        let mut member_better = 0u64;
        let mut probe_better = 0u64;
        match d {
            1 => {
                let pv = probe[0];
                for (j, x) in packed[..count].iter().enumerate() {
                    member_better |= ((*x < pv) as u64) << j;
                    probe_better |= ((pv < *x) as u64) << j;
                }
            }
            2 => {
                let (p0, p1) = (probe[0], probe[1]);
                for (j, row) in packed.chunks_exact(2).take(count).enumerate() {
                    member_better |= (((row[0] < p0) | (row[1] < p1)) as u64) << j;
                    probe_better |= (((p0 < row[0]) | (p1 < row[1])) as u64) << j;
                }
            }
            _ => {
                for (j, row) in packed.chunks_exact(d).take(count).enumerate() {
                    let mut mb = false;
                    let mut pb = false;
                    for (x, pv) in row.iter().zip(&probe[..d]) {
                        mb |= x < pv;
                        pb |= pv < x;
                    }
                    member_better |= (mb as u64) << j;
                    probe_better |= (pb as u64) << j;
                }
            }
        }
        BlockVerdicts {
            member_better,
            probe_better,
        }
    }

    /// Gathers the kernel's subspace values of `p` into `out` (cleared
    /// first): the packing step for [`Self::relate_block_packed`].
    #[inline]
    pub fn pack_into(&self, p: &[Value], out: &mut Vec<Value>) {
        out.clear();
        out.extend(self.dims.iter().map(|&k| p[k as usize]));
    }

    /// Appends the kernel's subspace values of `p` to a packed window
    /// buffer (one more `d`-wide row).
    #[inline]
    pub fn pack_append(&self, p: &[Value], out: &mut Vec<Value>) {
        out.extend(self.dims.iter().map(|&k| p[k as usize]));
    }

    /// Packed region-dominance tests (Definition 8 case 1): bit `j` of the
    /// result is set iff member rectangle `j`'s *upper* corner weakly
    /// dominates `lo` on the kernel's subspace with strict improvement
    /// somewhere — i.e. every point of member `j` dominates every point of
    /// a region whose lower corner is `lo`. `his` is a flat row-major table
    /// of upper corners (`stride` values each) indexed by `members`.
    ///
    /// # Panics
    /// Panics in debug builds if `members.len() > 64`.
    pub fn dominate_block_corners(
        &self,
        his: &[Value],
        stride: usize,
        members: &[usize],
        lo: &[Value],
    ) -> u64 {
        let count = members.len();
        debug_assert!(count <= 64, "block limited to 64 lanes");
        let mut all_le = if count == 64 {
            u64::MAX
        } else {
            (1u64 << count) - 1
        };
        let mut any_lt = 0u64;
        for &k in &self.dims {
            let lv = lo[k as usize];
            for (j, &m) in members.iter().enumerate() {
                let h = his[m * stride + k as usize];
                all_le &= !(((h > lv) as u64) << j);
                any_lt |= ((h < lv) as u64) << j;
            }
        }
        all_le & any_lt
    }

    /// The SFS monotone sorting score: the sum of `p` over the subspace
    /// dimensions, without re-walking the bitmask.
    #[inline]
    pub fn score(&self, p: &[Value]) -> Value {
        // The straight-line sums start from 0.0 like `Iterator::sum`'s fold
        // so signed zeros come out bit-identical (total_cmp tells -0.0 and
        // +0.0 apart, and SFS sorts scores with total_cmp).
        match self.shape {
            Shape::Full(d) => p[..d].iter().sum(),
            Shape::Single(k) => 0.0 + p[k],
            Shape::Pair(i, j) => 0.0 + p[i] + p[j],
            Shape::General => self.dims.iter().map(|&k| p[k as usize]).sum(),
        }
    }
}

/// Packed verdicts for a block of up to 64 member points related against a
/// single probe point — the output of the `Shape::Block` kernels. Lane `j`
/// carries the two strict-improvement flags of member `j`, so
/// [`relation`](Self::relation) reconstructs the exact [`DomRelation`] the
/// scalar kernel would return.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockVerdicts {
    /// Bit `j`: member `j` is strictly better than the probe somewhere.
    member_better: u64,
    /// Bit `j`: the probe is strictly better than member `j` somewhere.
    probe_better: u64,
}

impl BlockVerdicts {
    /// The relation of member `i` to the probe — identical to
    /// `relate_in(member_i, probe, mask)`.
    #[inline]
    pub fn relation(&self, i: usize) -> DomRelation {
        verdict(
            (self.member_better >> i) & 1 == 1,
            (self.probe_better >> i) & 1 == 1,
        )
    }

    /// Lanes whose member *dominates* the probe. The lowest set bit is the
    /// first dominator in member order — what an early-exiting scalar scan
    /// would have stopped on.
    #[inline]
    pub fn dominators(&self) -> u64 {
        self.member_better & !self.probe_better
    }

    /// Lanes whose member is *dominated by* the probe.
    #[inline]
    pub fn dominated_members(&self) -> u64 {
        self.probe_better & !self.member_better
    }
}

/// Folds the two strict-improvement flags into a [`DomRelation`].
#[inline]
fn verdict(a_better: bool, b_better: bool) -> DomRelation {
    match (a_better, b_better) {
        (true, false) => DomRelation::Dominates,
        (false, true) => DomRelation::DominatedBy,
        (false, false) => DomRelation::Equal,
        (true, true) => DomRelation::Incomparable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Hotels from Example 3 of the paper: (price, rating, distance, wifi).
    // Smaller-is-better on every dimension; ratings are therefore stored
    // inverted in the example below (5 → 0, 2 → 3) to match the convention.
    const H1: [Value; 4] = [200.0, 0.0, 0.5, 20.0];
    const H2: [Value; 4] = [350.0, 0.0, 0.5, 20.0];
    const H3: [Value; 4] = [89.0, 3.0, 3.0, 0.0];

    #[test]
    fn example3_full_space_dominance() {
        // h1 dominates h2 (cheaper, otherwise equal).
        assert!(dominates(&H1, &H2));
        assert!(!dominates(&H2, &H1));
        // h1 and h3 are incomparable.
        assert_eq!(relate(&H1, &H3), DomRelation::Incomparable);
        assert_eq!(relate(&H3, &H1), DomRelation::Incomparable);
    }

    #[test]
    fn example4_subspace_dominance() {
        // In subspace {price, wifi}, h3 dominates both h1 and h2.
        let v = DimMask::from_dims([0, 3]);
        assert!(dominates_in(&H3, &H1, v));
        assert!(dominates_in(&H3, &H2, v));
        assert!(!dominates_in(&H1, &H3, v));
    }

    #[test]
    fn equal_points_do_not_dominate() {
        let a = [1.0, 2.0];
        assert_eq!(relate(&a, &a), DomRelation::Equal);
        assert!(!dominates(&a, &a));
    }

    #[test]
    fn relation_flip_is_involutive() {
        for r in [
            DomRelation::Dominates,
            DomRelation::DominatedBy,
            DomRelation::Equal,
            DomRelation::Incomparable,
        ] {
            assert_eq!(r.flip().flip(), r);
        }
    }

    #[test]
    fn subspace_dominance_ignores_other_dims() {
        // a is terrible on d2 but dominates on {d1}.
        let a = [1.0, 99.0];
        let b = [2.0, 1.0];
        assert!(dominates_in(&a, &b, DimMask::singleton(0)));
        assert!(!dominates_in(&a, &b, DimMask::full(2)));
    }

    #[test]
    fn weak_dominance_allows_equality() {
        let a = [1.0, 2.0];
        let b = [1.0, 2.0];
        assert!(weakly_dominates_in(&a, &b, DimMask::full(2)));
        assert!(!dominates_in(&a, &b, DimMask::full(2)));
    }

    #[test]
    fn dominance_is_a_strict_partial_order() {
        // Irreflexive + asymmetric spot checks.
        let pts: [[Value; 3]; 4] = [
            [1.0, 2.0, 3.0],
            [2.0, 1.0, 3.0],
            [1.0, 1.0, 1.0],
            [3.0, 3.0, 3.0],
        ];
        for p in &pts {
            assert!(!dominates(p, p));
        }
        for a in &pts {
            for b in &pts {
                if dominates(a, b) {
                    assert!(!dominates(b, a));
                }
            }
        }
        // Transitivity on this instance: [1,1,1] ≺ [1,2,3] ≺ [3,3,3] impl.
        assert!(dominates(&pts[2], &pts[0]));
        assert!(dominates(&pts[0], &pts[3]));
        assert!(dominates(&pts[2], &pts[3]));
    }
}
