//! Foundational types shared by every CAQE subsystem.
//!
//! This crate defines the vocabulary of the whole reproduction:
//!
//! * [`subspace::DimMask`] — a set of skyline dimensions (a *subspace* in the
//!   paper's terminology, §2.1).
//! * [`dominance`] — full-space and subspace dominance tests
//!   (Definitions 1 and 2 of the paper) with comparison counting.
//! * [`bounds::Rect`] — axis-aligned boxes used for quad-tree cells and
//!   output regions, with the region-dominance predicates of Definition 8.
//! * [`clock::SimClock`] / [`clock::CostModel`] — the deterministic virtual
//!   clock that substitutes for the paper's wall-clock measurements (see
//!   DESIGN.md §3 for the substitution rationale).
//! * [`stats::Stats`] — the operation counters reported in Figures 9–11.
//! * [`ids`] — strongly-typed identifiers for queries, regions and cells.
//! * [`store::PointStore`] — flat structure-of-arrays point arenas with
//!   copy-cheap handles, plus [`dominance::DomKernel`]s specialized per
//!   subspace (DESIGN.md §12).

// Library code must degrade, not abort (DESIGN.md §13): unwraps are banned
// outside tests; documented invariants use `expect`-free patterns or a
// scoped `#[allow]` with a justification.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod bounds;
pub mod clock;
pub mod dominance;
pub mod error;
pub mod ids;
pub mod persist;
pub mod sig;
pub mod stats;
pub mod store;
pub mod subspace;

pub use bounds::Rect;
pub use bounds::RegionRelation;
pub use clock::{CostModel, SimClock, Ticks, VirtualSeconds};
pub use dominance::{
    dominates, dominates_in, relate, relate_in, BlockVerdicts, DomKernel, DomRelation, BLOCK_MIN,
};
pub use error::EngineError;
pub use ids::{CellId, QueryId, QuerySet, RegionId};
pub use persist::{f64_hex, fnv1a, parse_f64_hex, Fnv1a};
pub use sig::{sig_relate, SigQuantizer, SigQuantizerParts, SigTable, SIG_MAX_DIMS, SIG_POISON};
pub use stats::{PerQueryStats, Stats};
pub use store::{PointId, PointStore, RankColumns, SwapStore};
pub use subspace::DimMask;

/// Attribute values throughout the system.
///
/// The paper assumes non-negative real-valued attributes where *smaller is
/// preferred* (§2.1). We follow that convention everywhere.
pub type Value = f64;
