//! Trace exporters: JSONL, satisfaction-timeline CSV, Chrome-trace JSON
//! and the estimator-accuracy summary.
//!
//! All serialization is hand-rolled (the workspace is offline) and
//! deterministic: floats are written with Rust's shortest-roundtrip
//! `Display`, which is a pure function of the bit pattern, so equal traces
//! serialize to equal bytes.

use crate::event::{SpanKind, TraceEvent};
use std::fmt::Write as _;
use std::path::Path;

/// JSON-safe float: shortest roundtrip for finite values, `null` otherwise.
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Serializes one event as a single JSON object (no trailing newline).
pub fn event_json(ev: &TraceEvent) -> String {
    match ev {
        TraceEvent::Meta {
            strategy,
            queries,
            ticks_per_second,
            start_tick,
        } => format!(
            "{{\"ev\":\"meta\",\"strategy\":{},\"queries\":{},\"ticks_per_second\":{},\"start_tick\":{}}}",
            json_str(strategy),
            queries,
            num(*ticks_per_second),
            start_tick
        ),
        TraceEvent::Span {
            kind,
            group,
            region,
            start_tick,
            end_tick,
        } => {
            let mut s = format!("{{\"ev\":\"span\",\"kind\":\"{}\"", kind.name());
            if let Some(g) = group {
                let _ = write!(s, ",\"group\":{g}");
            }
            if let Some(r) = region {
                let _ = write!(s, ",\"region\":{r}");
            }
            let _ = write!(s, ",\"start_tick\":{start_tick},\"end_tick\":{end_tick}}}");
            s
        }
        TraceEvent::Decision {
            tick,
            group,
            region,
            policy,
            root,
            score,
            csm,
            prog_est,
            est_ticks,
            weights,
        } => {
            let ws: Vec<String> = weights.iter().map(|w| num(*w)).collect();
            format!(
                "{{\"ev\":\"decision\",\"tick\":{},\"group\":{},\"region\":{},\"policy\":{},\"root\":{},\"score\":{},\"csm\":{},\"prog_est\":{},\"est_ticks\":{},\"weights\":[{}]}}",
                tick,
                group,
                region,
                json_str(policy),
                root,
                num(*score),
                num(*csm),
                num(*prog_est),
                est_ticks,
                ws.join(",")
            )
        }
        TraceEvent::Emission {
            tick,
            query,
            seq,
            rid,
            tid,
            utility,
            satisfaction,
        } => format!(
            "{{\"ev\":\"emit\",\"tick\":{},\"query\":{},\"seq\":{},\"rid\":{},\"tid\":{},\"utility\":{},\"satisfaction\":{}}}",
            tick,
            query,
            seq,
            rid,
            tid,
            num(*utility),
            num(*satisfaction)
        ),
        TraceEvent::EstimateAudit {
            scheduled_tick,
            completed_tick,
            group,
            region,
            estimate,
        } => format!(
            "{{\"ev\":\"estimate\",\"scheduled_tick\":{},\"completed_tick\":{},\"group\":{},\"region\":{},\"est_join\":{},\"est_skyline\":{},\"est_ticks\":{},\"actual_join\":{},\"actual_skyline\":{},\"actual_ticks\":{},\"join_err\":{},\"skyline_err\":{},\"ticks_err\":{}}}",
            scheduled_tick,
            completed_tick,
            group,
            region,
            num(estimate.est_join),
            num(estimate.est_skyline),
            estimate.est_ticks,
            estimate.actual_join,
            estimate.actual_skyline,
            estimate.actual_ticks,
            num(estimate.join_rel_error()),
            num(estimate.skyline_rel_error()),
            num(estimate.ticks_rel_error())
        ),
        TraceEvent::FaultInjected {
            tick,
            group,
            region,
            kind,
            factor,
        } => format!(
            "{{\"ev\":\"fault\",\"tick\":{},\"group\":{},\"region\":{},\"kind\":{},\"factor\":{}}}",
            tick,
            group,
            region,
            json_str(kind),
            num(*factor)
        ),
        TraceEvent::RegionRetry {
            tick,
            group,
            region,
            attempt,
            backoff_ticks,
        } => format!(
            "{{\"ev\":\"retry\",\"tick\":{tick},\"group\":{group},\"region\":{region},\"attempt\":{attempt},\"backoff_ticks\":{backoff_ticks}}}"
        ),
        TraceEvent::RegionQuarantined {
            tick,
            group,
            region,
            attempts,
        } => format!(
            "{{\"ev\":\"quarantine\",\"tick\":{tick},\"group\":{group},\"region\":{region},\"attempts\":{attempts}}}"
        ),
        TraceEvent::RegionShed {
            tick,
            group,
            region,
            satisfaction,
        } => format!(
            "{{\"ev\":\"shed\",\"tick\":{},\"group\":{},\"region\":{},\"satisfaction\":{}}}",
            tick,
            group,
            region,
            num(*satisfaction)
        ),
        TraceEvent::Admit {
            tick,
            query,
            contract,
            group,
            incremental,
        } => format!(
            "{{\"ev\":\"admit\",\"tick\":{},\"query\":{},\"contract\":{},\"group\":{},\"incremental\":{}}}",
            tick,
            query,
            json_str(contract),
            group,
            incremental
        ),
        TraceEvent::Depart {
            tick,
            query,
            regions_retired,
        } => format!(
            "{{\"ev\":\"depart\",\"tick\":{tick},\"query\":{query},\"regions_retired\":{regions_retired}}}"
        ),
        TraceEvent::AdmissionReject {
            tick,
            session,
            reason,
            depth,
            bound,
        } => format!(
            "{{\"ev\":\"reject\",\"tick\":{},\"session\":{},\"reason\":{},\"depth\":{},\"bound\":{}}}",
            tick,
            session,
            json_str(reason),
            depth,
            bound
        ),
        TraceEvent::ServerShutdown {
            tick,
            queued,
            drained,
            snapshot_version,
        } => format!(
            "{{\"ev\":\"shutdown\",\"tick\":{tick},\"queued\":{queued},\"drained\":{drained},\"snapshot_version\":{snapshot_version}}}"
        ),
        TraceEvent::ServerRestore {
            tick,
            snapshot_version,
            queued,
            completed,
        } => format!(
            "{{\"ev\":\"restore\",\"tick\":{tick},\"snapshot_version\":{snapshot_version},\"queued\":{queued},\"completed\":{completed}}}"
        ),
        TraceEvent::IngestAudit {
            tick,
            table,
            policy,
            quarantined,
            clamped,
        } => format!(
            "{{\"ev\":\"ingest\",\"tick\":{},\"table\":{},\"policy\":{},\"quarantined\":{},\"clamped\":{}}}",
            tick,
            json_str(table),
            json_str(policy),
            quarantined,
            clamped
        ),
    }
}

/// Full event stream as JSON Lines, one event per line.
pub fn to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&event_json(ev));
        out.push('\n');
    }
    out
}

/// Ticks-per-second calibration from the most recent `Meta` event, falling
/// back to 1.0 so tick values degrade to "seconds = ticks".
fn tps_at(events: &[TraceEvent], upto: usize) -> f64 {
    events[..upto]
        .iter()
        .rev()
        .find_map(|ev| match ev {
            TraceEvent::Meta {
                ticks_per_second, ..
            } if *ticks_per_second > 0.0 => Some(*ticks_per_second),
            _ => None,
        })
        .unwrap_or(1.0)
}

/// Per-query satisfaction timeline as CSV.
///
/// One row per emission, in trace order (which is virtual-time order per
/// query); `virtual_seconds` converts the emission tick through the run's
/// clock calibration.
pub fn satisfaction_csv(events: &[TraceEvent]) -> String {
    let mut out = String::from("virtual_seconds,query,seq,utility,satisfaction\n");
    for (i, ev) in events.iter().enumerate() {
        if let TraceEvent::Emission {
            tick,
            query,
            seq,
            utility,
            satisfaction,
            ..
        } = ev
        {
            let secs = *tick as f64 / tps_at(events, i + 1);
            let _ = writeln!(
                out,
                "{},{},{},{},{}",
                num(secs),
                query,
                seq,
                num(*utility),
                num(*satisfaction)
            );
        }
    }
    out
}

/// Phase spans as Chrome-trace ("Trace Event Format") complete events.
///
/// Virtual time maps to the trace's microsecond axis, so Perfetto or
/// `chrome://tracing` renders the engine's phases over *virtual* seconds.
/// Rows (`tid`) separate join groups; `tid 0` carries group-less phases.
pub fn chrome_trace(events: &[TraceEvent]) -> String {
    let mut parts: Vec<String> = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        if let TraceEvent::Span {
            kind,
            group,
            region,
            start_tick,
            end_tick,
        } = ev
        {
            let tps = tps_at(events, i + 1);
            let ts = *start_tick as f64 / tps * 1e6;
            let dur = end_tick.saturating_sub(*start_tick) as f64 / tps * 1e6;
            let name = match (kind, region) {
                (SpanKind::Region, Some(r)) => format!("region {r}"),
                _ => kind.name().to_string(),
            };
            let tid = group.map(|g| g + 1).unwrap_or(0);
            parts.push(format!(
                "{{\"name\":{},\"cat\":\"caqe\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{}}}",
                json_str(&name),
                tid,
                num(ts),
                num(dur)
            ));
        }
    }
    format!(
        "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[{}]}}\n",
        parts.join(",")
    )
}

/// Aggregate estimator accuracy over a trace's `EstimateAudit` events.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EstimatorSummary {
    pub audits: u64,
    pub mean_join_err: f64,
    pub max_join_err: f64,
    pub mean_skyline_err: f64,
    pub max_skyline_err: f64,
    pub mean_ticks_err: f64,
    pub max_ticks_err: f64,
}

impl EstimatorSummary {
    pub fn to_json(&self) -> String {
        format!(
            "{{\"audits\":{},\"join_rel_error\":{{\"mean\":{},\"max\":{}}},\"skyline_rel_error\":{{\"mean\":{},\"max\":{}}},\"ticks_rel_error\":{{\"mean\":{},\"max\":{}}}}}\n",
            self.audits,
            num(self.mean_join_err),
            num(self.max_join_err),
            num(self.mean_skyline_err),
            num(self.max_skyline_err),
            num(self.mean_ticks_err),
            num(self.max_ticks_err)
        )
    }
}

/// Folds every `EstimateAudit` event into mean/max relative errors.
pub fn estimator_summary(events: &[TraceEvent]) -> EstimatorSummary {
    let mut s = EstimatorSummary::default();
    for ev in events {
        if let TraceEvent::EstimateAudit { estimate, .. } = ev {
            s.audits += 1;
            let (j, k, t) = (
                estimate.join_rel_error(),
                estimate.skyline_rel_error(),
                estimate.ticks_rel_error(),
            );
            s.mean_join_err += j;
            s.mean_skyline_err += k;
            s.mean_ticks_err += t;
            s.max_join_err = s.max_join_err.max(j);
            s.max_skyline_err = s.max_skyline_err.max(k);
            s.max_ticks_err = s.max_ticks_err.max(t);
        }
    }
    if s.audits > 0 {
        let n = s.audits as f64;
        s.mean_join_err /= n;
        s.mean_skyline_err /= n;
        s.mean_ticks_err /= n;
    }
    s
}

/// Writes the full exporter set for one labelled run into `dir`:
///
/// * `<label>.jsonl` — the raw event stream;
/// * `<label>.satisfaction.csv` — per-query satisfaction timeline;
/// * `<label>.spans.json` — Chrome-trace/Perfetto phase spans;
/// * `<label>.estimator.json` — estimator-accuracy summary.
pub fn write_trace(dir: &Path, label: &str, events: &[TraceEvent]) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join(format!("{label}.jsonl")), to_jsonl(events))?;
    std::fs::write(
        dir.join(format!("{label}.satisfaction.csv")),
        satisfaction_csv(events),
    )?;
    std::fs::write(
        dir.join(format!("{label}.spans.json")),
        chrome_trace(events),
    )?;
    std::fs::write(
        dir.join(format!("{label}.estimator.json")),
        estimator_summary(events).to_json(),
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use caqe_regions::ReconciledEstimate;

    fn sample() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Meta {
                strategy: "CAQE".to_string(),
                queries: 2,
                ticks_per_second: 100.0,
                start_tick: 0,
            },
            TraceEvent::Span {
                kind: SpanKind::PartitionBuild,
                group: None,
                region: None,
                start_tick: 0,
                end_tick: 50,
            },
            TraceEvent::Decision {
                tick: 50,
                group: 0,
                region: 3,
                policy: "contract",
                root: true,
                score: 1.5,
                csm: 1.25,
                prog_est: 0.75,
                est_ticks: 40,
                weights: vec![1.0, 1.5],
            },
            TraceEvent::Emission {
                tick: 80,
                query: 1,
                seq: 1,
                rid: 3,
                tid: 0,
                utility: 1.0,
                satisfaction: 0.1,
            },
            TraceEvent::EstimateAudit {
                scheduled_tick: 50,
                completed_tick: 90,
                group: 0,
                region: 3,
                estimate: ReconciledEstimate {
                    est_join: 10.0,
                    est_skyline: 4.0,
                    est_ticks: 40,
                    actual_join: 8,
                    actual_skyline: 2,
                    actual_ticks: 40,
                },
            },
        ]
    }

    #[test]
    fn jsonl_is_one_object_per_line() {
        let text = to_jsonl(&sample());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        assert!(lines[0].contains("\"ev\":\"meta\""));
        assert!(lines[2].contains("\"policy\":\"contract\""));
        assert!(lines[3].contains("\"satisfaction\":0.1"));
        assert!(lines[4].contains("\"ticks_err\":0"));
    }

    #[test]
    fn jsonl_is_deterministic() {
        assert_eq!(to_jsonl(&sample()), to_jsonl(&sample()));
    }

    #[test]
    fn satisfaction_csv_uses_clock_calibration() {
        let csv = satisfaction_csv(&sample());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "virtual_seconds,query,seq,utility,satisfaction");
        // tick 80 at 100 ticks/s = 0.8 virtual seconds.
        assert_eq!(lines[1], "0.8,1,1,1,0.1");
    }

    #[test]
    fn chrome_trace_converts_to_microseconds() {
        let json = chrome_trace(&sample());
        // span [0, 50] at 100 ticks/s = 500000 µs duration.
        assert!(json.contains("\"dur\":500000"), "{json}");
        assert!(json.contains("\"name\":\"partition_build\""));
        assert!(json.starts_with('{') && json.ends_with("}\n"));
    }

    #[test]
    fn estimator_summary_aggregates() {
        let s = estimator_summary(&sample());
        assert_eq!(s.audits, 1);
        // est_join 10 vs actual 8 → |10-8|/8 = 0.25.
        assert!((s.mean_join_err - 0.25).abs() < 1e-12);
        assert!((s.max_skyline_err - 1.0).abs() < 1e-12);
        assert_eq!(s.mean_ticks_err, 0.0);
        assert!(s.to_json().contains("\"audits\":1"));
    }

    #[test]
    fn non_finite_floats_become_null() {
        let ev = TraceEvent::Emission {
            tick: 1,
            query: 0,
            seq: 1,
            rid: 0,
            tid: 0,
            utility: f64::NAN,
            satisfaction: f64::INFINITY,
        };
        let line = event_json(&ev);
        assert!(line.contains("\"utility\":null"));
        assert!(line.contains("\"satisfaction\":null"));
    }

    #[test]
    fn session_events_serialize_with_stable_kinds() {
        let admit = event_json(&TraceEvent::Admit {
            tick: 42,
            query: 3,
            contract: "deadline".to_string(),
            group: 1,
            incremental: true,
        });
        assert!(admit.contains("\"ev\":\"admit\""), "{admit}");
        assert!(admit.contains("\"query\":3"));
        assert!(admit.contains("\"incremental\":true"));
        let depart = event_json(&TraceEvent::Depart {
            tick: 99,
            query: 3,
            regions_retired: 2,
        });
        assert!(depart.contains("\"ev\":\"depart\""), "{depart}");
        assert!(depart.contains("\"regions_retired\":2"));
        let mut ev = TraceEvent::Admit {
            tick: 10,
            query: 0,
            contract: "log_decay".to_string(),
            group: 0,
            incremental: false,
        };
        ev.offset_ticks(5);
        assert_eq!(ev.tick(), 15);
    }

    #[test]
    fn serving_events_serialize_with_stable_kinds() {
        let reject = event_json(&TraceEvent::AdmissionReject {
            tick: 12,
            session: 7,
            reason: "full",
            depth: 8,
            bound: 8,
        });
        assert!(reject.contains("\"ev\":\"reject\""), "{reject}");
        assert!(reject.contains("\"reason\":\"full\""));
        assert!(reject.contains("\"depth\":8") && reject.contains("\"bound\":8"));
        let shutdown = event_json(&TraceEvent::ServerShutdown {
            tick: 90,
            queued: 2,
            drained: 5,
            snapshot_version: 1,
        });
        assert!(shutdown.contains("\"ev\":\"shutdown\""), "{shutdown}");
        assert!(shutdown.contains("\"snapshot_version\":1"));
        let restore = event_json(&TraceEvent::ServerRestore {
            tick: 0,
            snapshot_version: 1,
            queued: 2,
            completed: 5,
        });
        assert!(restore.contains("\"ev\":\"restore\""), "{restore}");
        assert!(restore.contains("\"queued\":2") && restore.contains("\"completed\":5"));
    }

    #[test]
    fn json_strings_are_escaped() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn fault_events_serialize_with_stable_kinds() {
        let lines = [
            (
                event_json(&TraceEvent::FaultInjected {
                    tick: 5,
                    group: 0,
                    region: 2,
                    kind: "cost_spike",
                    factor: 8.0,
                }),
                "\"ev\":\"fault\"",
            ),
            (
                event_json(&TraceEvent::RegionRetry {
                    tick: 6,
                    group: 0,
                    region: 2,
                    attempt: 1,
                    backoff_ticks: 64,
                }),
                "\"ev\":\"retry\"",
            ),
            (
                event_json(&TraceEvent::RegionQuarantined {
                    tick: 7,
                    group: 0,
                    region: 2,
                    attempts: 3,
                }),
                "\"ev\":\"quarantine\"",
            ),
            (
                event_json(&TraceEvent::RegionShed {
                    tick: 8,
                    group: 1,
                    region: 4,
                    satisfaction: 0.25,
                }),
                "\"ev\":\"shed\"",
            ),
            (
                event_json(&TraceEvent::IngestAudit {
                    tick: 0,
                    table: "R".to_string(),
                    policy: "clamp",
                    quarantined: 2,
                    clamped: 5,
                }),
                "\"ev\":\"ingest\"",
            ),
        ];
        for (line, kind) in &lines {
            assert!(line.contains(kind), "{line} should contain {kind}");
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        assert!(lines[0].0.contains("\"factor\":8"));
        assert!(lines[1].0.contains("\"backoff_ticks\":64"));
        assert!(lines[4].0.contains("\"policy\":\"clamp\""));
    }
}
