//! Trace sinks: where events go, and what tracing costs when it is off.

use crate::event::TraceEvent;
use caqe_types::Ticks;

/// Destination for trace events.
///
/// The associated `ENABLED` const is the whole cost story: engine code
/// wraps every recording site — including the *construction* of the event
/// and any recomputation feeding it — in `if S::ENABLED { … }`. With
/// [`NoopSink`] that condition is a compile-time `false`, so the tracing
/// layer monomorphizes to nothing and the untraced hot path is untouched.
///
/// Sinks must never consult the wall clock or any other nondeterministic
/// source; the determinism tests compare serialized traces byte-for-byte.
pub trait TraceSink {
    /// Whether this sink observes anything at all.
    const ENABLED: bool;

    /// Accepts one event. Called only under `if Self::ENABLED` guards.
    fn record(&mut self, ev: TraceEvent);
}

/// The default sink: compiles to nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    const ENABLED: bool = false;

    #[inline(always)]
    fn record(&mut self, _ev: TraceEvent) {}
}

/// In-memory sink that keeps every event in arrival order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecordingSink {
    events: Vec<TraceEvent>,
}

impl RecordingSink {
    pub fn new() -> Self {
        Self::default()
    }

    /// Events recorded so far, in arrival order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Consumes the sink, yielding the event stream.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }
}

impl TraceSink for RecordingSink {
    const ENABLED: bool = true;

    fn record(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }
}

/// Per-worker event buffer for parallel engine phases.
///
/// Workers run against a virtual clock rebased to zero, so they record
/// events with *relative* ticks into a private buffer. The caller then
/// merges buffers in the same fixed order as the `caqe-parallel` stat
/// deltas (via `fold_ordered`), passing each worker's absolute base tick to
/// [`merge_into`](TraceBuffer::merge_into) — the merged stream is identical
/// to what a serial run would have recorded, at any worker count.
///
/// Mirrors the sink cost model dynamically: a buffer built with
/// `enabled = false` drops events at the push site, so untraced parallel
/// phases pay one predictable branch per event *site* (which the `if
/// S::ENABLED` guard at the call site removes anyway when the sink is
/// [`NoopSink`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceBuffer {
    enabled: bool,
    events: Vec<TraceEvent>,
}

impl TraceBuffer {
    pub fn new(enabled: bool) -> Self {
        TraceBuffer {
            enabled,
            events: Vec::new(),
        }
    }

    /// Whether this buffer keeps events.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Records one relative-tick event (dropped when disabled).
    pub fn record(&mut self, ev: TraceEvent) {
        if self.enabled {
            self.events.push(ev);
        }
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Rebases buffered events by `base_tick` and appends them to `sink`.
    pub fn merge_into<S: TraceSink>(self, sink: &mut S, base_tick: Ticks) {
        if !S::ENABLED {
            return;
        }
        for mut ev in self.events {
            ev.offset_ticks(base_tick);
            sink.record(ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::SpanKind;

    fn span(start: Ticks, end: Ticks) -> TraceEvent {
        TraceEvent::Span {
            kind: SpanKind::LookAhead,
            group: Some(0),
            region: None,
            start_tick: start,
            end_tick: end,
        }
    }

    #[test]
    fn recording_sink_keeps_arrival_order() {
        let mut sink = RecordingSink::new();
        sink.record(span(5, 9));
        sink.record(span(1, 2));
        let evs = sink.into_events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].tick(), 5);
        assert_eq!(evs[1].tick(), 1);
    }

    #[test]
    fn buffer_merge_rebases_ticks() {
        let mut buf = TraceBuffer::new(true);
        buf.record(span(0, 4));
        buf.record(span(4, 6));
        let mut sink = RecordingSink::new();
        buf.merge_into(&mut sink, 100);
        let evs = sink.events();
        assert_eq!(evs[0], span(100, 104));
        assert_eq!(evs[1], span(104, 106));
    }

    #[test]
    fn disabled_buffer_drops_events() {
        let mut buf = TraceBuffer::new(false);
        buf.record(span(0, 4));
        assert!(buf.is_empty());
        let mut sink = RecordingSink::new();
        buf.merge_into(&mut sink, 10);
        assert!(sink.events().is_empty());
    }

    #[test]
    fn merge_into_noop_sink_is_inert() {
        let mut buf = TraceBuffer::new(true);
        buf.record(span(0, 1));
        assert_eq!(buf.len(), 1);
        buf.merge_into(&mut NoopSink, 50);
    }
}
