//! Deterministic event tracing and metrics for the CAQE engine.
//!
//! The paper's entire evaluation is observability: Figure 10 counts
//! operations, Figures 9 and 11 plot per-query satisfaction *over time*.
//! This crate captures the per-event data those figures need — and that the
//! flat end-of-run [`caqe_types::Stats`] throws away — as a structured
//! stream keyed on the virtual clock:
//!
//! * **scheduler decisions** — for every region the optimizer commits to:
//!   CSM score (Equation 8), `ProgEst` (Equation 10), projected ticks, the
//!   policy branch taken, and the live query weights (Equation 11);
//! * **emissions** — tuple provenance, owning query, virtual timestamp,
//!   utility awarded and the running satisfaction `v(Q_i, t)`;
//! * **estimator audits** — the Buchta estimate (Equation 9) and cost
//!   projection recorded at schedule time, reconciled against actual
//!   skyline output and actual ticks at completion
//!   ([`caqe_regions::ReconciledEstimate`]);
//! * **phase spans** — partition build, group build, look-ahead and
//!   per-region execution, with tick-weighted durations.
//!
//! # Determinism guarantee
//!
//! Every event field derives from the virtual clock and the engine's
//! deterministic state — never from wall time, host scheduling or memory
//! layout. Sequential code records straight into a [`TraceSink`]; worker
//! threads record into private [`TraceBuffer`]s (relative ticks) that are
//! merged in the same fixed chunk order as the `caqe-parallel` stat deltas.
//! The serialized trace is therefore **bit-identical at every
//! `parallelism` setting**, which `tests/determinism_parallel.rs` asserts.
//!
//! # Cost when disabled
//!
//! [`TraceSink::ENABLED`] is an associated `const`: engine code guards
//! every recording site with `if S::ENABLED { … }`, so with the default
//! [`NoopSink`] the whole layer monomorphizes away — no branch, no
//! allocation, no event construction in the hot path.

// Library code must degrade, not abort (DESIGN.md §13).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod event;
pub mod export;
pub mod sink;

pub use event::{SpanKind, TraceEvent};
pub use export::{
    chrome_trace, estimator_summary, satisfaction_csv, to_jsonl, write_trace, EstimatorSummary,
};
pub use sink::{NoopSink, RecordingSink, TraceBuffer, TraceSink};
