//! The trace event vocabulary.
//!
//! Every event carries virtual-clock ticks, never wall time: the trace is a
//! pure function of (workload, strategy, config-visible knobs), which is
//! what makes it diffable across runs and parallelism settings.

use caqe_regions::ReconciledEstimate;
use caqe_types::Ticks;

/// Which engine phase a [`TraceEvent::Span`] covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// Quad-tree partitioning of the base relations (§4).
    PartitionBuild,
    /// Building one join group: coarse join, coarse skyline, dependency
    /// graph (§5.1–§5.2). Carries the group index.
    GroupBuild,
    /// Multi-query look-ahead: region construction and pruning inside a
    /// group build.
    LookAhead,
    /// Fine-level execution of one scheduled region (§6).
    Region,
}

impl SpanKind {
    /// Stable lowercase name used in the JSONL and Chrome-trace output.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::PartitionBuild => "partition_build",
            SpanKind::GroupBuild => "group_build",
            SpanKind::LookAhead => "look_ahead",
            SpanKind::Region => "region",
        }
    }
}

/// One structured observation of engine behaviour.
///
/// Tick fields are absolute virtual-clock readings except inside a
/// [`TraceBuffer`](crate::TraceBuffer), where they are relative to the
/// buffer's base until [`offset_ticks`](TraceEvent::offset_ticks) rebases
/// them at merge time.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// Run header: identifies the strategy and clock calibration so a trace
    /// file is self-describing.
    Meta {
        strategy: String,
        queries: usize,
        ticks_per_second: f64,
        start_tick: Ticks,
    },
    /// A phase with tick-weighted duration `[start_tick, end_tick]`.
    Span {
        kind: SpanKind,
        /// Join-group index, when the phase belongs to one group.
        group: Option<u32>,
        /// Region id, for [`SpanKind::Region`] spans.
        region: Option<u32>,
        start_tick: Ticks,
        end_tick: Ticks,
    },
    /// The scheduler committed to a region: the full decision record.
    Decision {
        tick: Ticks,
        group: u32,
        region: u32,
        /// Policy branch taken: `"contract"`, `"count"` or `"fifo"`.
        policy: &'static str,
        /// Whether the region was a dependency-graph root at pick time.
        root: bool,
        /// The score the policy ranked candidates by.
        score: f64,
        /// Cumulative Satisfaction Metric, Equation 8.
        csm: f64,
        /// Progressiveness estimate, Equation 10.
        prog_est: f64,
        /// Projected fine-level cost of the region, in ticks.
        est_ticks: Ticks,
        /// Live per-query weights (Equation 11) at decision time.
        weights: Vec<f64>,
    },
    /// One result tuple crossed the emission boundary.
    Emission {
        tick: Ticks,
        /// Owning query index.
        query: u16,
        /// 1-based emission ordinal *within* the owning query.
        seq: u64,
        /// Region the tuple was produced in (`u32::MAX` when the strategy
        /// has no region notion, e.g. baselines).
        rid: u32,
        /// Join-result ordinal the tuple came from.
        tid: u64,
        /// Utility awarded by the contract's decay function.
        utility: f64,
        /// Running satisfaction `v(Q_i, t)` *after* this emission.
        satisfaction: f64,
    },
    /// Schedule-time estimates reconciled against region completion.
    EstimateAudit {
        scheduled_tick: Ticks,
        completed_tick: Ticks,
        group: u32,
        region: u32,
        estimate: ReconciledEstimate,
    },
    /// A deterministic fault fired at an injection point (DESIGN.md §13).
    /// Only emitted when a fault plan is active.
    FaultInjected {
        tick: Ticks,
        group: u32,
        region: u32,
        /// Which injection point fired: `"cost_spike"`, `"estimator"`,
        /// `"panic"` or `"corrupt"`.
        kind: &'static str,
        /// Spike/perturbation factor where applicable, else 1.0.
        factor: f64,
    },
    /// A region's processing unit panicked and was requeued with backoff.
    RegionRetry {
        tick: Ticks,
        group: u32,
        region: u32,
        /// 1-based attempt number that just failed.
        attempt: u32,
        /// Virtual ticks the region must wait before becoming eligible again.
        backoff_ticks: Ticks,
    },
    /// A region exhausted its retry budget and was removed from the
    /// schedule; its dependents were unblocked as if it had been pruned.
    RegionQuarantined {
        tick: Ticks,
        group: u32,
        region: u32,
        /// Total processing attempts made (all failed).
        attempts: u32,
    },
    /// The degradation policy shed a low-CSM root region because running
    /// satisfaction slipped below the configured floor.
    RegionShed {
        tick: Ticks,
        group: u32,
        region: u32,
        /// Mean running satisfaction that triggered the shed.
        satisfaction: f64,
    },
    /// A query joined the running workload through the online session layer
    /// (admission is processed on the main scheduling thread, so the tick is
    /// thread-invariant).
    Admit {
        tick: Ticks,
        /// Global query slot assigned to the arrival.
        query: u16,
        /// Contract class label (`Contract::label()`), for trace readers.
        contract: String,
        /// Join groups whose shared plan was patched for the arrival
        /// (`u32::MAX` when the arrival opened a brand-new group).
        group: u32,
        /// Whether the plan was patched incrementally (`true`) or rebuilt
        /// from scratch (`false`, the comparison path).
        incremental: bool,
    },
    /// A query left the running workload; its sole-provider regions were
    /// retired the same way shedding does.
    Depart {
        tick: Ticks,
        query: u16,
        /// Regions retired because the departing query was their only
        /// remaining consumer.
        regions_retired: u32,
    },
    /// The serving layer refused a submission: the admission queue was at
    /// its bound or the shed signal was active. Emitted by the wall-clock
    /// driver (`caqe-serve`), never by the deterministic core.
    AdmissionReject {
        tick: Ticks,
        /// Server-assigned session identifier of the rejected submission.
        session: u64,
        /// Why it was refused: `"full"` (queue at bound) or `"shed"`
        /// (degradation floor breached).
        reason: &'static str,
        /// Queue depth observed at rejection time.
        depth: u32,
        /// Configured queue bound.
        bound: u32,
    },
    /// The serving layer drained its queue into a snapshot and stopped.
    ServerShutdown {
        tick: Ticks,
        /// Sessions still queued (captured into the snapshot).
        queued: u32,
        /// Sessions completed before the shutdown.
        drained: u32,
        /// Snapshot format version written.
        snapshot_version: u32,
    },
    /// The serving layer restored queued sessions from a snapshot.
    ServerRestore {
        tick: Ticks,
        /// Snapshot format version read.
        snapshot_version: u32,
        /// Sessions re-queued from the snapshot.
        queued: u32,
        /// Sessions already recorded complete at snapshot time.
        completed: u32,
    },
    /// Ingestion validation summary for one input table. Only emitted when
    /// a fault plan is active or violations were found.
    IngestAudit {
        tick: Ticks,
        /// Table name ("R"/"T").
        table: String,
        /// Validation policy applied: `"reject"`, `"quarantine"`, `"clamp"`.
        policy: &'static str,
        /// Records dropped or quarantined.
        quarantined: u64,
        /// Non-finite values clamped in place.
        clamped: u64,
    },
}

impl TraceEvent {
    /// Rebases every tick field by `base` — used when merging a worker's
    /// relative-tick buffer into the absolute timeline.
    pub fn offset_ticks(&mut self, base: Ticks) {
        match self {
            TraceEvent::Meta { start_tick, .. } => *start_tick += base,
            TraceEvent::Span {
                start_tick,
                end_tick,
                ..
            } => {
                *start_tick += base;
                *end_tick += base;
            }
            TraceEvent::Decision { tick, .. } => *tick += base,
            TraceEvent::Emission { tick, .. } => *tick += base,
            TraceEvent::EstimateAudit {
                scheduled_tick,
                completed_tick,
                ..
            } => {
                *scheduled_tick += base;
                *completed_tick += base;
            }
            TraceEvent::FaultInjected { tick, .. } => *tick += base,
            TraceEvent::RegionRetry { tick, .. } => *tick += base,
            TraceEvent::RegionQuarantined { tick, .. } => *tick += base,
            TraceEvent::RegionShed { tick, .. } => *tick += base,
            TraceEvent::Admit { tick, .. } => *tick += base,
            TraceEvent::Depart { tick, .. } => *tick += base,
            TraceEvent::AdmissionReject { tick, .. } => *tick += base,
            TraceEvent::ServerShutdown { tick, .. } => *tick += base,
            TraceEvent::ServerRestore { tick, .. } => *tick += base,
            TraceEvent::IngestAudit { tick, .. } => *tick += base,
        }
    }

    /// The event's primary timestamp, for ordering checks.
    pub fn tick(&self) -> Ticks {
        match self {
            TraceEvent::Meta { start_tick, .. } => *start_tick,
            TraceEvent::Span { start_tick, .. } => *start_tick,
            TraceEvent::Decision { tick, .. } => *tick,
            TraceEvent::Emission { tick, .. } => *tick,
            TraceEvent::EstimateAudit { scheduled_tick, .. } => *scheduled_tick,
            TraceEvent::FaultInjected { tick, .. } => *tick,
            TraceEvent::RegionRetry { tick, .. } => *tick,
            TraceEvent::RegionQuarantined { tick, .. } => *tick,
            TraceEvent::RegionShed { tick, .. } => *tick,
            TraceEvent::Admit { tick, .. } => *tick,
            TraceEvent::Depart { tick, .. } => *tick,
            TraceEvent::AdmissionReject { tick, .. } => *tick,
            TraceEvent::ServerShutdown { tick, .. } => *tick,
            TraceEvent::ServerRestore { tick, .. } => *tick,
            TraceEvent::IngestAudit { tick, .. } => *tick,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offset_rebases_every_tick_field() {
        let mut ev = TraceEvent::Span {
            kind: SpanKind::GroupBuild,
            group: Some(2),
            region: None,
            start_tick: 10,
            end_tick: 25,
        };
        ev.offset_ticks(100);
        assert_eq!(
            ev,
            TraceEvent::Span {
                kind: SpanKind::GroupBuild,
                group: Some(2),
                region: None,
                start_tick: 110,
                end_tick: 125,
            }
        );

        let mut ev = TraceEvent::Emission {
            tick: 7,
            query: 1,
            seq: 3,
            rid: 9,
            tid: 40,
            utility: 0.5,
            satisfaction: 0.25,
        };
        ev.offset_ticks(13);
        assert_eq!(ev.tick(), 20);
    }

    #[test]
    fn serving_events_offset_and_tick() {
        let mut ev = TraceEvent::AdmissionReject {
            tick: 5,
            session: 9,
            reason: "full",
            depth: 8,
            bound: 8,
        };
        ev.offset_ticks(10);
        assert_eq!(ev.tick(), 15);
        let mut ev = TraceEvent::ServerShutdown {
            tick: 100,
            queued: 3,
            drained: 7,
            snapshot_version: 1,
        };
        ev.offset_ticks(1);
        assert_eq!(ev.tick(), 101);
        let ev = TraceEvent::ServerRestore {
            tick: 0,
            snapshot_version: 1,
            queued: 3,
            completed: 7,
        };
        assert_eq!(ev.tick(), 0);
    }

    #[test]
    fn span_kind_names_are_stable() {
        assert_eq!(SpanKind::PartitionBuild.name(), "partition_build");
        assert_eq!(SpanKind::GroupBuild.name(), "group_build");
        assert_eq!(SpanKind::LookAhead.name(), "look_ahead");
        assert_eq!(SpanKind::Region.name(), "region");
    }
}
