//! Deterministic parallel primitives for the CAQE engine.
//!
//! The engine's cost model runs on a *virtual* clock, so parallelism must
//! never change what is computed — only how fast the host computes it. Every
//! primitive here is therefore **order-preserving**: results come back
//! indexed exactly as the serial loop would have produced them, and workers
//! receive disjoint output slots so no synchronization order can leak into
//! the result. Built on `std::thread::scope`; no external runtime.
//!
//! Threading policy lives in [`Threads`], constructed from the engine's
//! `parallelism: Option<usize>` knob (`None` = serial, `Some(0)` = all host
//! cores, `Some(n)` = exactly `n` workers).

// Library code must degrade, not abort (DESIGN.md §13).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::num::NonZeroUsize;

/// Resolved worker-count policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Threads(NonZeroUsize);

impl Threads {
    /// Resolves the engine's `parallelism` knob.
    ///
    /// `None` → 1 worker (serial), `Some(0)` → host's available
    /// parallelism, `Some(n)` → exactly `n` workers.
    pub fn from_config(parallelism: Option<usize>) -> Self {
        let n = match parallelism {
            None => 1,
            Some(0) => std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1),
            Some(n) => n,
        };
        Threads(NonZeroUsize::new(n.max(1)).unwrap_or(NonZeroUsize::MIN))
    }

    /// Exactly `n` workers (saturating at 1).
    pub fn exact(n: usize) -> Self {
        Threads(NonZeroUsize::new(n.max(1)).unwrap_or(NonZeroUsize::MIN))
    }

    /// The worker count.
    pub fn get(self) -> usize {
        self.0.get()
    }

    /// Whether more than one worker is available.
    pub fn is_parallel(self) -> bool {
        self.0.get() > 1
    }
}

impl Default for Threads {
    fn default() -> Self {
        Threads::exact(1)
    }
}

/// Maps `f` over `0..n`, returning results in index order.
///
/// The index range is split into at most `threads` contiguous chunks; each
/// worker writes into its own disjoint slice of the output, so the result
/// is bit-identical to the serial loop regardless of scheduling. Panics in
/// workers propagate to the caller.
pub fn map_indexed<U, F>(threads: Threads, n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    if !threads.is_parallel() || n <= 1 {
        return (0..n).map(f).collect();
    }
    let chunk = n.div_ceil(threads.get().min(n));
    let mut out: Vec<Option<U>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        let mut chunks = out.chunks_mut(chunk).enumerate();
        // The first chunk runs on the calling thread: one fewer spawn per
        // call, and the common "barely parallel" case pays almost nothing.
        let first = chunks.next();
        for (ci, slots) in chunks {
            let f = &f;
            handles.push(s.spawn(move || {
                let base = ci * chunk;
                for (j, slot) in slots.iter_mut().enumerate() {
                    *slot = Some(f(base + j));
                }
            }));
        }
        if let Some((_, slots)) = first {
            for (j, slot) in slots.iter_mut().enumerate() {
                *slot = Some(f(j));
            }
        }
        for h in handles {
            if let Err(p) = h.join() {
                std::panic::resume_unwind(p);
            }
        }
    });
    // Allowed survivor: every slot was written by exactly one worker above,
    // and worker panics were already re-raised — a `None` here is
    // unreachable, not a recoverable condition.
    #[allow(clippy::expect_used)]
    out.into_iter()
        .map(|o| o.expect("worker filled every slot"))
        .collect()
}

/// Maps `f` over the items of a vector, preserving order.
pub fn map_ordered<T, U, F>(threads: Threads, items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(usize, T) -> U + Sync,
{
    if !threads.is_parallel() || items.len() <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, x)| f(i, x))
            .collect();
    }
    let slots: Vec<Option<T>> = items.into_iter().map(Some).collect();
    let cells: Vec<std::sync::Mutex<Option<T>>> =
        slots.into_iter().map(std::sync::Mutex::new).collect();
    map_indexed(threads, cells.len(), |i| {
        // Poisoning recovery: the value is still intact (the panic happened
        // in another cell's closure and is re-raised by map_indexed anyway).
        let mut guard = match cells[i].lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        // Allowed survivor: each index is visited exactly once by
        // construction, so the slot cannot already be empty.
        #[allow(clippy::expect_used)]
        let item = guard.take().expect("item taken once");
        drop(guard);
        f(i, item)
    })
}

/// Runs two independent closures, in parallel when allowed.
///
/// Returns `(a(), b())`; with one worker it simply runs them in sequence.
pub fn join2<A, B, FA, FB>(threads: Threads, a: FA, b: FB) -> (A, B)
where
    A: Send,
    B: Send,
    FA: FnOnce() -> A + Send,
    FB: FnOnce() -> B + Send,
{
    if !threads.is_parallel() {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        match hb.join() {
            Ok(rb) => (ra, rb),
            Err(p) => std::panic::resume_unwind(p),
        }
    })
}

/// Folds worker-produced deltas into a shared accumulator in index order.
///
/// This is the merge half of the determinism contract: workers compute
/// private deltas (ticks, stats, trace buffers) against zeroed accumulators,
/// and this fold applies them in the fixed order the serial loop would have
/// produced them — never in completion order — so the merged state is
/// bit-identical at every worker count. `f` receives the delta's index so
/// callers can reconstruct absolute positions (e.g. tick offsets) while
/// folding.
pub fn fold_ordered<T, A, F>(parts: Vec<T>, acc: &mut A, mut f: F)
where
    F: FnMut(&mut A, usize, T),
{
    for (i, part) in parts.into_iter().enumerate() {
        f(acc, i, part);
    }
}

/// Splits `0..n` into at most `min(threads, n / min_chunk)` balanced
/// contiguous `(start, end)` chunks.
///
/// Every chunk holds at least `min_chunk` items (except when `n` itself is
/// smaller, which yields a single chunk), so inputs too small to amortize a
/// thread spawn stay on one worker. Deterministic in `n`, `min_chunk`, and
/// the worker count alone — the host's scheduling never affects the split.
pub fn chunk_ranges(threads: Threads, n: usize, min_chunk: usize) -> Vec<(usize, usize)> {
    if n == 0 {
        return Vec::new();
    }
    let max_chunks = threads.get().min(n / min_chunk.max(1)).max(1);
    let chunk = n.div_ceil(max_chunks);
    (0..max_chunks)
        .map(|i| (i * chunk, ((i + 1) * chunk).min(n)))
        .filter(|(s, e)| s < e)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threads_resolution() {
        assert_eq!(Threads::from_config(None).get(), 1);
        assert_eq!(Threads::from_config(Some(3)).get(), 3);
        assert!(Threads::from_config(Some(0)).get() >= 1);
        assert!(!Threads::from_config(None).is_parallel());
        assert!(Threads::from_config(Some(2)).is_parallel());
    }

    #[test]
    fn map_indexed_preserves_order() {
        for t in [1, 2, 4, 7] {
            let got = map_indexed(Threads::exact(t), 100, |i| i * i);
            let want: Vec<usize> = (0..100).map(|i| i * i).collect();
            assert_eq!(got, want, "threads={t}");
        }
    }

    #[test]
    fn map_indexed_handles_edge_sizes() {
        assert!(map_indexed(Threads::exact(4), 0, |i| i).is_empty());
        assert_eq!(map_indexed(Threads::exact(4), 1, |i| i + 10), vec![10]);
        // More workers than items.
        assert_eq!(map_indexed(Threads::exact(8), 3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn map_ordered_moves_items() {
        let items: Vec<String> = (0..20).map(|i| format!("x{i}")).collect();
        let got = map_ordered(Threads::exact(3), items, |i, s| format!("{i}:{s}"));
        for (i, s) in got.iter().enumerate() {
            assert_eq!(s, &format!("{i}:x{i}"));
        }
    }

    #[test]
    fn join2_returns_both() {
        for t in [1, 2] {
            let (a, b) = join2(Threads::exact(t), || 1 + 1, || "b".to_string());
            assert_eq!(a, 2);
            assert_eq!(b, "b");
        }
    }

    #[test]
    fn chunk_ranges_cover_exactly() {
        for (t, n, m) in [(4, 100, 1), (4, 100, 64), (2, 7, 3), (8, 3, 1), (3, 0, 1)] {
            let ranges = chunk_ranges(Threads::exact(t), n, m);
            let mut cursor = 0;
            for (s, e) in &ranges {
                assert_eq!(*s, cursor, "gap in ranges for t={t} n={n} m={m}");
                assert!(e > s);
                cursor = *e;
            }
            assert_eq!(cursor, n);
            assert!(ranges.len() <= t.max(1));
        }
    }

    #[test]
    fn chunk_ranges_respect_min_chunk() {
        // 100 items, min chunk 64: a split would leave chunks under 64, so
        // everything stays on one worker even with 8 available.
        let ranges = chunk_ranges(Threads::exact(8), 100, 64);
        assert_eq!(ranges, vec![(0, 100)]);
        // 200 items afford three chunks, each still >= 64.
        let ranges = chunk_ranges(Threads::exact(8), 200, 64);
        assert_eq!(ranges, vec![(0, 67), (67, 134), (134, 200)]);
        // 300 items, 2 workers: the worker cap still binds.
        let ranges = chunk_ranges(Threads::exact(2), 300, 64);
        assert_eq!(ranges, vec![(0, 150), (150, 300)]);
    }

    #[test]
    fn fold_ordered_applies_in_index_order() {
        let parts: Vec<u64> = vec![5, 7, 11];
        let mut log: Vec<(usize, u64)> = Vec::new();
        let mut total = 0u64;
        fold_ordered(parts, &mut (), |_, i, p| {
            log.push((i, p));
            total += p;
        });
        assert_eq!(log, vec![(0, 5), (1, 7), (2, 11)]);
        assert_eq!(total, 23);
    }

    #[test]
    #[should_panic]
    fn worker_panic_propagates() {
        map_indexed(Threads::exact(2), 10, |i| {
            if i == 7 {
                panic!("boom");
            }
            i
        });
    }
}
