//! Skyline algorithms over a single point set (`SKY_P`, §2.2).
//!
//! Three implementations with different roles in the reproduction:
//!
//! * [`skyline_reference`] — the obviously correct O(n²) definition-checker,
//!   used as the oracle in property tests;
//! * [`skyline_bnl`] — Block-Nested-Loop [3], the classic in-memory
//!   algorithm the paper's JFSL baseline uses;
//! * [`skyline_sfs`] — Sort-Filter-Skyline [6]: presorting by a monotone
//!   score means a later point can never dominate an earlier survivor, which
//!   both prunes comparisons and makes every emitted survivor *final* — the
//!   progressiveness backbone of the SSMJ baseline;
//! * [`IncrementalSkyline`] — streaming skyline maintenance with removal
//!   notification, the workhorse of the shared min-max-cuboid plan.
//!
//! All of them count every pairwise dominance comparison (the paper's CPU
//! metric, Figure 10.b) through the supplied [`Stats`] and [`SimClock`].

use caqe_types::{relate_in, DimMask, DomRelation, SimClock, Stats, Value};

/// Naive O(n²) skyline straight from Definition 2. Returns the indices of
/// non-dominated points, preserving input order. Oracle for tests; not
/// instrumented.
///
/// ```
/// use caqe_operators::skyline_reference;
/// use caqe_types::DimMask;
///
/// let pts = vec![vec![1.0, 9.0], vec![9.0, 1.0], vec![5.0, 5.0], vec![6.0, 6.0]];
/// assert_eq!(skyline_reference(&pts, DimMask::full(2)), vec![0, 1, 2]);
/// ```
pub fn skyline_reference(points: &[Vec<Value>], mask: DimMask) -> Vec<usize> {
    (0..points.len())
        .filter(|&i| {
            !points
                .iter()
                .enumerate()
                .any(|(j, q)| j != i && relate_in(q, &points[i], mask) == DomRelation::Dominates)
        })
        .collect()
}

/// Block-Nested-Loop skyline [3]: maintains a window of current skyline
/// candidates and compares every incoming point against it.
///
/// Returns indices of skyline points in input order of survival.
pub fn skyline_bnl(
    points: &[Vec<Value>],
    mask: DimMask,
    clock: &mut SimClock,
    stats: &mut Stats,
) -> Vec<usize> {
    let mut window: Vec<usize> = Vec::new();
    'next: for (i, p) in points.iter().enumerate() {
        let mut k = 0;
        while k < window.len() {
            clock.charge_dom_cmps(1);
            stats.dom_comparisons += 1;
            match relate_in(&points[window[k]], p, mask) {
                DomRelation::Dominates => continue 'next,
                DomRelation::DominatedBy => {
                    window.swap_remove(k);
                }
                // Definition 1: equal points do not dominate — keep both.
                DomRelation::Equal | DomRelation::Incomparable => k += 1,
            }
        }
        window.push(i);
    }
    window.sort_unstable();
    window
}

/// The monotone sorting score used by SFS: the sum of the point's values on
/// the subspace dimensions. If `sum_V(a) < sum_V(b)` then `b` cannot
/// dominate `a`.
#[inline]
pub fn monotone_score(p: &[Value], mask: DimMask) -> Value {
    mask.iter().map(|k| p[k]).sum()
}

/// Sort-Filter-Skyline [6]: sorts by [`monotone_score`], then filters.
/// Survivors are final the moment they are admitted, which is what makes
/// SFS-style processing *progressive*.
pub fn skyline_sfs(
    points: &[Vec<Value>],
    mask: DimMask,
    clock: &mut SimClock,
    stats: &mut Stats,
) -> Vec<usize> {
    let mut order: Vec<usize> = (0..points.len()).collect();
    order.sort_by(|&a, &b| {
        monotone_score(&points[a], mask).total_cmp(&monotone_score(&points[b], mask))
    });
    let mut sky: Vec<usize> = Vec::new();
    'next: for i in order {
        for &s in &sky {
            clock.charge_dom_cmps(1);
            stats.dom_comparisons += 1;
            match relate_in(&points[s], &points[i], mask) {
                DomRelation::Dominates => continue 'next,
                // After monotone presorting an incoming point can never
                // dominate an admitted survivor.
                DomRelation::DominatedBy => unreachable!("SFS invariant violated"),
                // Definition 1: equal points do not dominate — keep both.
                DomRelation::Equal | DomRelation::Incomparable => {}
            }
        }
        sky.push(i);
    }
    sky.sort_unstable();
    sky
}

/// Outcome of inserting one point into an [`IncrementalSkyline`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The point was dominated by an existing skyline member and rejected.
    /// (Points *equal* on the subspace are both kept: Definition 1 requires
    /// strict improvement somewhere for dominance.)
    Dominated,
    /// The point joined the skyline; `removed` lists the tags of previous
    /// members it knocked out — the non-monotonic deletions that §1.4 of the
    /// paper highlights as the key difficulty of skyline-over-join sharing.
    Added {
        /// Tags of evicted former skyline members.
        removed: Vec<u64>,
    },
}

/// Streaming skyline maintenance over one subspace.
///
/// Each member carries an opaque `tag` so executors can correlate skyline
/// membership with their own tuple arenas.
#[derive(Debug, Clone)]
pub struct IncrementalSkyline {
    mask: DimMask,
    entries: Vec<(u64, Vec<Value>)>,
}

impl IncrementalSkyline {
    /// An empty skyline over subspace `mask`.
    pub fn new(mask: DimMask) -> Self {
        IncrementalSkyline {
            mask,
            entries: Vec::new(),
        }
    }

    /// The subspace this skyline is maintained over.
    pub fn mask(&self) -> DimMask {
        self.mask
    }

    /// Current number of skyline members.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the skyline is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Tags of the current members, in insertion order.
    pub fn tags(&self) -> impl Iterator<Item = u64> + '_ {
        self.entries.iter().map(|(t, _)| *t)
    }

    /// Whether the given tag is currently a member.
    pub fn contains_tag(&self, tag: u64) -> bool {
        self.entries.iter().any(|(t, _)| *t == tag)
    }

    /// Inserts a point, maintaining the skyline invariant. Counts one
    /// dominance comparison per member examined.
    pub fn insert(
        &mut self,
        tag: u64,
        point: &[Value],
        clock: &mut SimClock,
        stats: &mut Stats,
    ) -> InsertOutcome {
        let mut removed = Vec::new();
        let mut k = 0;
        while k < self.entries.len() {
            clock.charge_dom_cmps(1);
            stats.dom_comparisons += 1;
            match relate_in(&self.entries[k].1, point, self.mask) {
                DomRelation::Dominates => {
                    debug_assert!(removed.is_empty(), "partial order violated");
                    return InsertOutcome::Dominated;
                }
                DomRelation::DominatedBy => {
                    removed.push(self.entries.swap_remove(k).0);
                }
                // Definition 1: equal points do not dominate — keep both.
                DomRelation::Equal | DomRelation::Incomparable => k += 1,
            }
        }
        self.entries.push((tag, point.to_vec()));
        InsertOutcome::Added { removed }
    }

    /// Like [`insert`](Self::insert) but without mutating: returns whether
    /// the point *would* survive. Still counts the comparisons performed.
    pub fn would_survive(&self, point: &[Value], clock: &mut SimClock, stats: &mut Stats) -> bool {
        for (_, q) in &self.entries {
            clock.charge_dom_cmps(1);
            stats.dom_comparisons += 1;
            if relate_in(q, point, self.mask) == DomRelation::Dominates {
                return false;
            }
        }
        true
    }

    /// Current members as `(tag, point)` pairs.
    pub fn entries(&self) -> &[(u64, Vec<Value>)] {
        &self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(raw: &[&[Value]]) -> Vec<Vec<Value>> {
        raw.iter().map(|p| p.to_vec()).collect()
    }

    fn run_all(points: &[Vec<Value>], mask: DimMask) -> (Vec<usize>, Vec<usize>, Vec<usize>) {
        let reference = skyline_reference(points, mask);
        let mut c = SimClock::default();
        let mut s = Stats::new();
        let bnl = skyline_bnl(points, mask, &mut c, &mut s);
        let sfs = skyline_sfs(points, mask, &mut c, &mut s);
        (reference, bnl, sfs)
    }

    #[test]
    fn all_algorithms_agree_small() {
        let points = pts(&[
            &[1.0, 9.0],
            &[9.0, 1.0],
            &[5.0, 5.0],
            &[6.0, 6.0], // dominated by [5,5]
            &[1.0, 9.5], // dominated by [1,9]
        ]);
        let (r, b, s) = run_all(&points, DimMask::full(2));
        assert_eq!(r, vec![0, 1, 2]);
        assert_eq!(b, r);
        assert_eq!(s, r);
    }

    #[test]
    fn subspace_changes_skyline() {
        let points = pts(&[&[1.0, 9.0], &[2.0, 1.0]]);
        // Full space: both survive.
        assert_eq!(skyline_reference(&points, DimMask::full(2)).len(), 2);
        // On {d1} only the first survives.
        assert_eq!(skyline_reference(&points, DimMask::singleton(0)), vec![0]);
        // On {d2} only the second survives.
        assert_eq!(skyline_reference(&points, DimMask::singleton(1)), vec![1]);
    }

    #[test]
    fn sfs_uses_fewer_or_equal_comparisons_than_bnl() {
        // Descending-quality input is BNL's bad case.
        let points: Vec<Vec<Value>> = (0..200)
            .map(|i| vec![(200 - i) as Value, (200 - i) as Value])
            .collect();
        let mask = DimMask::full(2);
        let mut c1 = SimClock::default();
        let mut s1 = Stats::new();
        skyline_bnl(&points, mask, &mut c1, &mut s1);
        let mut c2 = SimClock::default();
        let mut s2 = Stats::new();
        skyline_sfs(&points, mask, &mut c2, &mut s2);
        assert!(s2.dom_comparisons <= s1.dom_comparisons);
    }

    #[test]
    fn incremental_matches_batch() {
        let points = pts(&[
            &[3.0, 3.0],
            &[1.0, 5.0],
            &[5.0, 1.0],
            &[2.0, 2.0], // evicts [3,3]
            &[9.0, 9.0], // dominated
        ]);
        let mask = DimMask::full(2);
        let mut sky = IncrementalSkyline::new(mask);
        let mut c = SimClock::default();
        let mut s = Stats::new();
        let mut outcomes = Vec::new();
        for (i, p) in points.iter().enumerate() {
            outcomes.push(sky.insert(i as u64, p, &mut c, &mut s));
        }
        assert_eq!(outcomes[4], InsertOutcome::Dominated);
        assert_eq!(outcomes[3], InsertOutcome::Added { removed: vec![0] });
        let mut tags: Vec<u64> = sky.tags().collect();
        tags.sort_unstable();
        let mut expect: Vec<u64> = skyline_reference(&points, mask)
            .into_iter()
            .map(|i| i as u64)
            .collect();
        expect.sort_unstable();
        assert_eq!(tags, expect);
        assert!(sky.contains_tag(1));
        assert!(!sky.contains_tag(0));
    }

    #[test]
    fn would_survive_is_consistent_with_insert() {
        let mask = DimMask::full(2);
        let mut sky = IncrementalSkyline::new(mask);
        let mut c = SimClock::default();
        let mut s = Stats::new();
        sky.insert(0, &[2.0, 2.0], &mut c, &mut s);
        assert!(!sky.would_survive(&[3.0, 3.0], &mut c, &mut s));
        assert!(sky.would_survive(&[1.0, 5.0], &mut c, &mut s));
        assert_eq!(sky.len(), 1);
    }

    #[test]
    fn equal_points_are_both_kept() {
        // Definition 1: dominance needs strict improvement somewhere, so
        // tied points are all part of the skyline.
        let mask = DimMask::full(2);
        let mut sky = IncrementalSkyline::new(mask);
        let mut c = SimClock::default();
        let mut s = Stats::new();
        assert!(matches!(
            sky.insert(0, &[1.0, 1.0], &mut c, &mut s),
            InsertOutcome::Added { .. }
        ));
        assert!(matches!(
            sky.insert(1, &[1.0, 1.0], &mut c, &mut s),
            InsertOutcome::Added { .. }
        ));
        assert_eq!(sky.len(), 2);
        // A dominator evicts every tied copy at once.
        let out = sky.insert(2, &[0.5, 0.5], &mut c, &mut s);
        match out {
            InsertOutcome::Added { mut removed } => {
                removed.sort_unstable();
                assert_eq!(removed, vec![0, 1]);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn monotone_score_respects_mask() {
        let p = [1.0, 10.0, 100.0];
        assert_eq!(monotone_score(&p, DimMask::from_dims([0, 2])), 101.0);
        assert_eq!(monotone_score(&p, DimMask::full(3)), 111.0);
    }

    #[test]
    fn empty_input() {
        let (r, b, s) = run_all(&[], DimMask::full(2));
        assert!(r.is_empty() && b.is_empty() && s.is_empty());
    }

    #[test]
    fn single_point_survives() {
        let points = pts(&[&[5.0, 5.0]]);
        let (r, b, s) = run_all(&points, DimMask::full(2));
        assert_eq!(r, vec![0]);
        assert_eq!(b, vec![0]);
        assert_eq!(s, vec![0]);
    }
}
