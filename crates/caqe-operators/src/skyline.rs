//! Skyline algorithms over a single point set (`SKY_P`, §2.2).
//!
//! Three implementations with different roles in the reproduction:
//!
//! * [`skyline_reference`] — the obviously correct O(n²) definition-checker,
//!   used as the oracle in property tests;
//! * [`skyline_bnl`] — Block-Nested-Loop [3], the classic in-memory
//!   algorithm the paper's JFSL baseline uses;
//! * [`skyline_sfs`] — Sort-Filter-Skyline [6]: presorting by a monotone
//!   score means a later point can never dominate an earlier survivor, which
//!   both prunes comparisons and makes every emitted survivor *final* — the
//!   progressiveness backbone of the SSMJ baseline;
//! * [`IncrementalSkyline`] — streaming skyline maintenance with removal
//!   notification, the workhorse of the shared min-max-cuboid plan.
//!
//! All of them count every pairwise dominance comparison (the paper's CPU
//! metric, Figure 10.b) through the supplied [`Stats`] and [`SimClock`].
//!
//! The algorithms run over the flat [`PointStore`] layout with a
//! per-subspace [`DomKernel`] (DESIGN.md §12); the `&[Vec<Value>]` entry
//! points are thin adapters kept for oracles and call-site compatibility.
//! Both layouts perform the *same comparisons in the same order*, so stats,
//! ticks and traces are identical whichever entry point is used.

use caqe_types::{
    relate, relate_in, DimMask, DomKernel, DomRelation, PointStore, SimClock, Stats, Value,
    BLOCK_MIN,
};

/// Interns a `Vec<Vec<f64>>` point set into a flat store (adapter path).
fn intern(points: &[Vec<Value>], mask: DimMask) -> PointStore {
    let stride = points
        .first()
        .map_or_else(|| mask.iter().last().map_or(0, |k| k + 1), Vec::len);
    let mut store = PointStore::with_capacity(stride, points.len());
    for p in points {
        store.push(p);
    }
    store
}

/// Naive O(n²) skyline straight from Definition 2. Returns the indices of
/// non-dominated points, preserving input order. Oracle for tests; not
/// instrumented.
///
/// ```
/// use caqe_operators::skyline_reference;
/// use caqe_types::DimMask;
///
/// let pts = vec![vec![1.0, 9.0], vec![9.0, 1.0], vec![5.0, 5.0], vec![6.0, 6.0]];
/// assert_eq!(skyline_reference(&pts, DimMask::full(2)), vec![0, 1, 2]);
/// ```
pub fn skyline_reference(points: &[Vec<Value>], mask: DimMask) -> Vec<usize> {
    (0..points.len())
        .filter(|&i| {
            !points
                .iter()
                .enumerate()
                .any(|(j, q)| j != i && relate_in(q, &points[i], mask) == DomRelation::Dominates)
        })
        .collect()
}

/// Block-Nested-Loop skyline [3] over a flat point store: maintains a window
/// of current skyline candidates and compares every incoming point against
/// it through the specialized kernel.
///
/// Dispatches to the rank-packed block path (DESIGN.md §15) when the input
/// is large enough and NaN-free; both paths are observationally identical —
/// same survivors, same charged comparisons, same ticks.
///
/// Returns indices of skyline points in input order of survival.
pub fn skyline_bnl_store(
    points: &PointStore,
    kernel: &DomKernel,
    clock: &mut SimClock,
    stats: &mut Stats,
) -> Vec<usize> {
    if points.len() >= BLOCK_MIN && !kernel.is_empty() {
        stats.block_kernel_ops += 1;
        return skyline_bnl_block(points, kernel, clock, stats);
    }
    stats.scalar_kernel_ops += 1;
    skyline_bnl_store_scalar(points, kernel, clock, stats)
}

/// The reference scalar BNL loop: one kernel relate per examined window
/// member, early exit on a dominator, `swap_remove` on an eviction. Kept
/// public as the equivalence oracle and the scalar arm of `bench_pr6`.
pub fn skyline_bnl_store_scalar(
    points: &PointStore,
    kernel: &DomKernel,
    clock: &mut SimClock,
    stats: &mut Stats,
) -> Vec<usize> {
    let mut window: Vec<usize> = Vec::new();
    'next: for i in 0..points.len() {
        let p = points.at(i);
        let mut k = 0;
        while k < window.len() {
            clock.charge_dom_cmps(1);
            stats.dom_comparisons += 1;
            match kernel.relate(points.at(window[k]), p) {
                DomRelation::Dominates => continue 'next,
                DomRelation::DominatedBy => {
                    window.swap_remove(k);
                }
                // Definition 1: equal points do not dominate — keep both.
                DomRelation::Equal | DomRelation::Incomparable => k += 1,
            }
        }
        window.push(i);
    }
    window.sort_unstable();
    window
}

/// Block-bitset BNL: candidates are screened 64 at a time against the
/// *first* window member in one branch-free transposed pass over the
/// store's contiguous rows ([`DomKernel::relate_block_rows`] with the
/// candidates as lanes and `window[0]` as the probe). BNL examines
/// `window[0]` first for every candidate, so a set reject bit means the
/// scalar loop would have charged exactly one comparison and rejected —
/// the overwhelming majority of candidates on skyline-sized windows.
///
/// Unresolved lanes fall back to the exact scalar walk over a *packed*
/// copy of the window (subspace values gathered on admission, so the walk
/// touches a few dense cache lines instead of scattered store rows).
/// The walk is the only place the window mutates; an eviction of
/// `window[0]` (`swap_remove(0)`) invalidates the precomputed screen, so
/// the rest of that chunk is walked scalar too. Charges one comparison
/// per examined member everywhere — the bulk screen is uncharged physical
/// work, like the SFS presort.
fn skyline_bnl_block(
    points: &PointStore,
    kernel: &DomKernel,
    clock: &mut SimClock,
    stats: &mut Stats,
) -> Vec<usize> {
    let d = kernel.len();
    let stride = points.stride();
    let flat = points.as_flat();
    let n = points.len();
    let mut window: Vec<usize> = Vec::new();
    // Window members' subspace values, `d` per member, in window order.
    let mut wvals: Vec<Value> = Vec::new();
    let mut probe: Vec<Value> = Vec::with_capacity(d);
    // The first point is admitted against an empty window, uncompared.
    window.push(0);
    kernel.pack_append(points.at(0), &mut wvals);
    let mut i = 1;
    while i < n {
        let count = (n - i).min(64);
        let all = if count == 64 {
            u64::MAX
        } else {
            (1u64 << count) - 1
        };
        let m0 = points.at(window[0]);
        let bv = kernel.relate_block_rows(flat, stride, i, count, m0);
        // Lane j set: `window[0]` dominates candidate `i + j` — an exact
        // one-comparison reject, bulk-charged below. Only the unresolved
        // lanes are walked, in ascending order (bit iteration).
        let mut rejects = bv.dominated_members() & all;
        let mut fast = u64::from(rejects.count_ones());
        let mut todo = all & !rejects;
        while todo != 0 {
            let j = todo.trailing_zeros() as usize;
            todo &= todo - 1;
            let p = points.at(i + j);
            kernel.pack_into(p, &mut probe);
            let mut k = 0;
            let mut dominated = false;
            let mut m0_evicted = false;
            while k < window.len() {
                clock.charge_dom_cmps(1);
                stats.dom_comparisons += 1;
                // Packed rows hold exactly the kernel's subspace values in
                // ascending dimension order, so full-slice `relate` returns
                // the verdict `kernel.relate` gives on the original rows.
                match relate(&wvals[k * d..(k + 1) * d], &probe) {
                    DomRelation::Dominates => {
                        dominated = true;
                        break;
                    }
                    DomRelation::DominatedBy => {
                        if k == 0 {
                            m0_evicted = true;
                        }
                        window.swap_remove(k);
                        swap_remove_row(&mut wvals, k, d);
                    }
                    DomRelation::Equal | DomRelation::Incomparable => k += 1,
                }
            }
            if !dominated {
                window.push(i + j);
                kernel.pack_append(p, &mut wvals);
            }
            if m0_evicted {
                // `window[0]` changed: the screen is stale for every later
                // lane — demote its remaining rejects to the scalar walk.
                let later = (u64::MAX << j) << 1;
                let stale = rejects & later;
                fast -= u64::from(stale.count_ones());
                todo |= stale;
                rejects &= !stale;
            }
        }
        clock.charge_dom_cmps(fast);
        stats.dom_comparisons += fast;
        i += count;
    }
    window.sort_unstable();
    window
}

/// `Vec::swap_remove` on row `k` of a flat buffer of `d`-wide rows.
#[inline]
fn swap_remove_row(rows: &mut Vec<Value>, k: usize, d: usize) {
    let last = rows.len() / d - 1;
    if k != last {
        let (head, tail) = rows.split_at_mut(last * d);
        head[k * d..(k + 1) * d].copy_from_slice(&tail[..d]);
    }
    rows.truncate(last * d);
}

/// Block-Nested-Loop skyline over `Vec<Vec<f64>>` points — thin adapter
/// over [`skyline_bnl_store`] (identical comparisons, counts and order).
pub fn skyline_bnl(
    points: &[Vec<Value>],
    mask: DimMask,
    clock: &mut SimClock,
    stats: &mut Stats,
) -> Vec<usize> {
    let store = intern(points, mask);
    let kernel = DomKernel::new(mask, store.stride());
    skyline_bnl_store(&store, &kernel, clock, stats)
}

/// The monotone sorting score used by SFS: the sum of the point's values on
/// the subspace dimensions. If `sum_V(a) < sum_V(b)` then `b` cannot
/// dominate `a`.
#[inline]
pub fn monotone_score(p: &[Value], mask: DimMask) -> Value {
    mask.iter().map(|k| p[k]).sum()
}

/// Sorts `0..n` by ascending precomputed score (stable on ties, matching a
/// comparator-based `sort_by` over the same scores).
pub fn sorted_by_score(scores: &[Value]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
    order
}

/// Sort-Filter-Skyline [6] over a flat point store: sorts by the kernel's
/// monotone score, then filters. Survivors are final the moment they are
/// admitted, which is what makes SFS-style processing *progressive*.
///
/// Dispatches to the rank-packed block path (DESIGN.md §15) when the input
/// is large enough and NaN-free; both paths are observationally identical.
///
/// Scores are computed once per point (O(n·d)), not inside the sort
/// comparator (O(n log n · d)).
pub fn skyline_sfs_store(
    points: &PointStore,
    kernel: &DomKernel,
    clock: &mut SimClock,
    stats: &mut Stats,
) -> Vec<usize> {
    let order = sfs_order(points, kernel);
    skyline_sfs_presorted(points, kernel, &order, clock, stats)
}

/// The reference scalar SFS path. Kept public as the equivalence oracle and
/// the scalar arm of `bench_pr6`.
pub fn skyline_sfs_store_scalar(
    points: &PointStore,
    kernel: &DomKernel,
    clock: &mut SimClock,
    stats: &mut Stats,
) -> Vec<usize> {
    let order = sfs_order(points, kernel);
    skyline_sfs_presorted_scalar(points, kernel, &order, clock, stats)
}

/// The SFS presort: scores every point with the kernel's monotone score and
/// returns the filter order (ascending score, stable on ties). Uncharged
/// physical preprocessing, identical whichever filter scan consumes it —
/// split out so kernel benchmarks can time the dominance scans alone.
pub fn sfs_order(points: &PointStore, kernel: &DomKernel) -> Vec<usize> {
    let scores: Vec<Value> = (0..points.len())
        .map(|i| kernel.score(points.at(i)))
        .collect();
    sorted_by_score(&scores)
}

/// The SFS filter scan over a precomputed [`sfs_order`]. Dispatches to the
/// packed block path when the input is large enough; both paths are
/// observationally identical.
pub fn skyline_sfs_presorted(
    points: &PointStore,
    kernel: &DomKernel,
    order: &[usize],
    clock: &mut SimClock,
    stats: &mut Stats,
) -> Vec<usize> {
    if points.len() >= BLOCK_MIN && !kernel.is_empty() {
        stats.block_kernel_ops += 1;
        return skyline_sfs_presorted_block(points, kernel, order, clock, stats);
    }
    stats.scalar_kernel_ops += 1;
    skyline_sfs_presorted_scalar(points, kernel, order, clock, stats)
}

/// The reference scalar SFS filter scan over a precomputed [`sfs_order`].
pub fn skyline_sfs_presorted_scalar(
    points: &PointStore,
    kernel: &DomKernel,
    order: &[usize],
    clock: &mut SimClock,
    stats: &mut Stats,
) -> Vec<usize> {
    let mut sky: Vec<usize> = Vec::new();
    'next: for &i in order {
        let p = points.at(i);
        for &s in &sky {
            clock.charge_dom_cmps(1);
            stats.dom_comparisons += 1;
            match kernel.relate(points.at(s), p) {
                DomRelation::Dominates => continue 'next,
                // After monotone presorting an incoming point can never
                // dominate an admitted survivor.
                DomRelation::DominatedBy => unreachable!("SFS invariant violated"),
                // Definition 1: equal points do not dominate — keep both.
                DomRelation::Equal | DomRelation::Incomparable => {}
            }
        }
        sky.push(i);
    }
    sky.sort_unstable();
    sky
}

/// Block-bitset SFS filter: candidates are gathered 64 at a time and
/// screened in one branch-free transposed pass against the *first*
/// survivor (the probe). The scalar scan examines `sky[0]` first for every
/// candidate, so a set reject bit is an exact one-comparison reject; and
/// since the survivor set only grows, `sky[0]` never goes stale — no
/// stability bookkeeping at all. Unresolved lanes finish with a
/// first-dominator block scan over the remaining gathered survivors
/// (chunk sizes grow geometrically: dominators cluster at the front of
/// the window, so small leading chunks avoid wasted whole-window
/// verdicts). The examined-member count is bulk-charged, tick- and
/// stats-identical to the scalar per-member charge since nothing reads
/// the clock mid-scan.
fn skyline_sfs_presorted_block(
    points: &PointStore,
    kernel: &DomKernel,
    order: &[usize],
    clock: &mut SimClock,
    stats: &mut Stats,
) -> Vec<usize> {
    let d = kernel.len();
    let mut sky: Vec<usize> = Vec::new();
    // Survivors' subspace values, `d` per member, in admission order.
    let mut svals: Vec<Value> = Vec::new();
    // Gathered subspace values of the current candidate chunk.
    let mut cbuf: Vec<Value> = Vec::with_capacity(64 * d);
    let mut pos = 0;
    if let Some(&first) = order.first() {
        // The first candidate is admitted against an empty window.
        sky.push(first);
        kernel.pack_append(points.at(first), &mut svals);
        pos = 1;
    }
    while pos < order.len() {
        let count = (order.len() - pos).min(64);
        cbuf.clear();
        for &i in &order[pos..pos + count] {
            kernel.pack_append(points.at(i), &mut cbuf);
        }
        let all = if count == 64 {
            u64::MAX
        } else {
            (1u64 << count) - 1
        };
        // Transposed screen: candidate lanes against survivor 0. A set
        // reject bit is an exact one-comparison reject; only unresolved
        // lanes are scanned further, in ascending order (bit iteration).
        let bv = kernel.relate_block_packed(&cbuf, count, &svals[..d]);
        debug_assert_eq!(bv.dominators(), 0, "SFS invariant violated");
        let rejects = bv.dominated_members() & all;
        let fast = u64::from(rejects.count_ones());
        let mut todo = all & !rejects;
        while todo != 0 {
            let j = todo.trailing_zeros() as usize;
            todo &= todo - 1;
            let pr = &cbuf[j * d..(j + 1) * d];
            // `sky[0]` was examined by the screen and did not dominate.
            let mut examined = 1u64;
            let mut dominated = false;
            let mut base = 1;
            let mut step = 2;
            while base < sky.len() {
                let c = (sky.len() - base).min(step);
                let bv = kernel.relate_block_packed(&svals[base * d..], c, pr);
                let dom = bv.dominators();
                // The SFS invariant (an incoming point never dominates an
                // admitted survivor) must hold on the examined prefix.
                debug_assert_eq!(
                    bv.dominated_members()
                        & if dom == 0 {
                            u64::MAX
                        } else {
                            (1u64 << dom.trailing_zeros()) - 1
                        },
                    0,
                    "SFS invariant violated"
                );
                if dom != 0 {
                    examined += u64::from(dom.trailing_zeros()) + 1;
                    dominated = true;
                    break;
                }
                examined += c as u64;
                base += c;
                step = (step * 2).min(64);
            }
            clock.charge_dom_cmps(examined);
            stats.dom_comparisons += examined;
            if !dominated {
                sky.push(order[pos + j]);
                kernel.pack_append(points.at(order[pos + j]), &mut svals);
            }
        }
        clock.charge_dom_cmps(fast);
        stats.dom_comparisons += fast;
        pos += count;
    }
    sky.sort_unstable();
    sky
}

/// Sort-Filter-Skyline over `Vec<Vec<f64>>` points — thin adapter over
/// [`skyline_sfs_store`] (identical comparisons, counts and order).
pub fn skyline_sfs(
    points: &[Vec<Value>],
    mask: DimMask,
    clock: &mut SimClock,
    stats: &mut Stats,
) -> Vec<usize> {
    let store = intern(points, mask);
    let kernel = DomKernel::new(mask, store.stride());
    skyline_sfs_store(&store, &kernel, clock, stats)
}

/// Outcome of inserting one point into an [`IncrementalSkyline`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The point was dominated by an existing skyline member and rejected.
    /// (Points *equal* on the subspace are both kept: Definition 1 requires
    /// strict improvement somewhere for dominance.)
    Dominated,
    /// The point joined the skyline; `removed` lists the tags of previous
    /// members it knocked out — the non-monotonic deletions that §1.4 of the
    /// paper highlights as the key difficulty of skyline-over-join sharing.
    Added {
        /// Tags of evicted former skyline members.
        removed: Vec<u64>,
    },
}

/// Streaming skyline maintenance over one subspace.
///
/// Each member carries an opaque `tag` so executors can correlate skyline
/// membership with their own tuple arenas. Member points live in one flat
/// value buffer (no per-member allocation); removal swaps the last member
/// into the hole, mirroring the original `Vec::swap_remove` order exactly.
#[derive(Debug, Clone)]
pub struct IncrementalSkyline {
    mask: DimMask,
    kernel: Option<DomKernel>,
    tags: Vec<u64>,
    /// Flat member points; member `i` is `data[i*stride..(i+1)*stride]`.
    data: Vec<Value>,
    stride: usize,
    /// Reusable verdict buffer for the block insert path (never observable;
    /// cleared on every use).
    scratch: Vec<DomRelation>,
}

impl IncrementalSkyline {
    /// An empty skyline over subspace `mask`. The point stride is learned
    /// from the first insertion.
    pub fn new(mask: DimMask) -> Self {
        IncrementalSkyline {
            mask,
            kernel: None,
            tags: Vec::new(),
            data: Vec::new(),
            stride: 0,
            scratch: Vec::new(),
        }
    }

    /// The subspace this skyline is maintained over.
    pub fn mask(&self) -> DimMask {
        self.mask
    }

    /// Current number of skyline members.
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// Whether the skyline is empty.
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }

    /// Tags of the current members, in insertion order.
    pub fn tags(&self) -> impl Iterator<Item = u64> + '_ {
        self.tags.iter().copied()
    }

    /// Whether the given tag is currently a member.
    pub fn contains_tag(&self, tag: u64) -> bool {
        self.tags.contains(&tag)
    }

    /// The point of member `i`.
    #[inline]
    fn member(&self, i: usize) -> &[Value] {
        &self.data[i * self.stride..(i + 1) * self.stride]
    }

    #[inline]
    fn ensure_kernel(&mut self, stride: usize) {
        if self.kernel.is_none() {
            self.stride = stride;
            self.kernel = Some(DomKernel::new(self.mask, stride));
        }
    }

    /// Inserts a point, maintaining the skyline invariant. Counts one
    /// dominance comparison per member examined.
    ///
    /// Dispatches to the value-packed block path (DESIGN.md §15) once the
    /// member table is large enough; the member rows mutate in place, so
    /// this path packs raw value comparisons rather than precomputed ranks.
    /// Both paths are observationally identical.
    pub fn insert(
        &mut self,
        tag: u64,
        point: &[Value],
        clock: &mut SimClock,
        stats: &mut Stats,
    ) -> InsertOutcome {
        if self.tags.len() >= BLOCK_MIN {
            stats.block_kernel_ops += 1;
            self.insert_block(tag, point, clock, stats)
        } else {
            stats.scalar_kernel_ops += 1;
            self.insert_scalar(tag, point, clock, stats)
        }
    }

    /// The reference scalar insert loop. Kept public as the equivalence
    /// oracle and the scalar arm of `bench_pr6`.
    pub fn insert_scalar(
        &mut self,
        tag: u64,
        point: &[Value],
        clock: &mut SimClock,
        stats: &mut Stats,
    ) -> InsertOutcome {
        self.ensure_kernel(point.len());
        debug_assert_eq!(point.len(), self.stride, "stride mismatch");
        // Split field borrows: the kernel stays immutably borrowed while the
        // member table is edited (no per-insert kernel clone).
        let stride = self.stride;
        // Allowed survivor: `ensure_kernel` on the line above guarantees the
        // kernel is populated — this cannot fire.
        #[allow(clippy::expect_used)]
        let (kernel, tags, data) = (
            self.kernel.as_ref().expect("just initialized"),
            &mut self.tags,
            &mut self.data,
        );
        let mut removed = Vec::new();
        let mut k = 0;
        while k < tags.len() {
            clock.charge_dom_cmps(1);
            stats.dom_comparisons += 1;
            match kernel.relate(&data[k * stride..(k + 1) * stride], point) {
                DomRelation::Dominates => {
                    debug_assert!(removed.is_empty(), "partial order violated");
                    return InsertOutcome::Dominated;
                }
                DomRelation::DominatedBy => {
                    removed.push(tags.swap_remove(k));
                    let last = tags.len();
                    if k != last {
                        let (head, tail) = data.split_at_mut(last * stride);
                        head[k * stride..(k + 1) * stride].copy_from_slice(&tail[..stride]);
                    }
                    data.truncate(last * stride);
                }
                // Definition 1: equal points do not dominate — keep both.
                DomRelation::Equal | DomRelation::Incomparable => k += 1,
            }
        }
        tags.push(tag);
        data.extend_from_slice(point);
        InsertOutcome::Added { removed }
    }

    /// Value-packed block insert. Like the packed BNL loop, almost every
    /// point resolves from the 64-lane verdict bits alone: a first
    /// dominator with no eviction lane before it is an exact-count reject,
    /// an all-clear member table is a clean append. Only when an eviction
    /// precedes the first dominator (rare) are full verdicts materialized
    /// and an integer replay walks the exact serial examination order with
    /// the verdict list `swap_remove`d in lockstep with the member table.
    /// Charges one comparison per examined member, identical to the scalar
    /// loop.
    fn insert_block(
        &mut self,
        tag: u64,
        point: &[Value],
        clock: &mut SimClock,
        stats: &mut Stats,
    ) -> InsertOutcome {
        self.ensure_kernel(point.len());
        debug_assert_eq!(point.len(), self.stride, "stride mismatch");
        let stride = self.stride;
        // Allowed survivor: `ensure_kernel` on the line above guarantees the
        // kernel is populated — this cannot fire.
        #[allow(clippy::expect_used)]
        let kernel = self.kernel.as_ref().expect("just initialized");
        let n = self.tags.len();
        let mut examined = 0u64;
        let mut rejected = false;
        let mut slow = false;
        // Scalar head: the first member alone rejects most points, and a
        // one-lane block call costs more than the comparison it packs.
        match kernel.relate(&self.data[..stride], point) {
            DomRelation::Dominates => {
                examined = 1;
                rejected = true;
            }
            DomRelation::DominatedBy => slow = true,
            DomRelation::Equal | DomRelation::Incomparable => {
                examined = 1;
                let mut row = 1;
                // Chunks grow geometrically: later dominators cluster near
                // the front, so leading whole-window verdicts are wasted.
                let mut step = 2;
                while row < n {
                    let count = (n - row).min(step);
                    step = (step * 2).min(64);
                    let bv = kernel.relate_block_rows(&self.data, stride, row, count, point);
                    let dom = bv.dominators();
                    let below = if dom == 0 {
                        u64::MAX
                    } else {
                        (1u64 << dom.trailing_zeros()) - 1
                    };
                    if bv.dominated_members() & below != 0 {
                        slow = true;
                        break;
                    }
                    if dom != 0 {
                        examined += u64::from(dom.trailing_zeros()) + 1;
                        rejected = true;
                        break;
                    }
                    examined += count as u64;
                    row += count;
                }
            }
        }
        if !slow {
            clock.charge_dom_cmps(examined);
            stats.dom_comparisons += examined;
            if rejected {
                return InsertOutcome::Dominated;
            }
            self.tags.push(tag);
            self.data.extend_from_slice(point);
            return InsertOutcome::Added {
                removed: Vec::new(),
            };
        }
        // Eviction before the first dominator: exact serial replay.
        let mut rels = std::mem::take(&mut self.scratch);
        rels.clear();
        let mut first = 0;
        while first < n {
            let count = (n - first).min(64);
            let bv = kernel.relate_block_rows(&self.data, stride, first, count, point);
            rels.extend((0..count).map(|j| bv.relation(j)));
            first += count;
        }
        let (tags, data) = (&mut self.tags, &mut self.data);
        let mut removed = Vec::new();
        let mut dominated = false;
        let mut k = 0;
        while k < tags.len() {
            clock.charge_dom_cmps(1);
            stats.dom_comparisons += 1;
            match rels[k] {
                DomRelation::Dominates => {
                    debug_assert!(removed.is_empty(), "partial order violated");
                    dominated = true;
                    break;
                }
                DomRelation::DominatedBy => {
                    removed.push(tags.swap_remove(k));
                    rels.swap_remove(k);
                    let last = tags.len();
                    if k != last {
                        let (head, tail) = data.split_at_mut(last * stride);
                        head[k * stride..(k + 1) * stride].copy_from_slice(&tail[..stride]);
                    }
                    data.truncate(last * stride);
                }
                DomRelation::Equal | DomRelation::Incomparable => k += 1,
            }
        }
        self.scratch = rels;
        if dominated {
            return InsertOutcome::Dominated;
        }
        self.tags.push(tag);
        self.data.extend_from_slice(point);
        InsertOutcome::Added { removed }
    }

    /// Like [`insert`](Self::insert) but without mutating: returns whether
    /// the point *would* survive. Still counts the comparisons performed.
    pub fn would_survive(&self, point: &[Value], clock: &mut SimClock, stats: &mut Stats) -> bool {
        for k in 0..self.tags.len() {
            clock.charge_dom_cmps(1);
            stats.dom_comparisons += 1;
            let rel = match &self.kernel {
                Some(kernel) => kernel.relate(self.member(k), point),
                None => relate_in(self.member(k), point, self.mask),
            };
            if rel == DomRelation::Dominates {
                return false;
            }
        }
        true
    }

    /// Current members as `(tag, point)` pairs in insertion order.
    pub fn entries(&self) -> impl ExactSizeIterator<Item = (u64, &[Value])> + '_ {
        self.tags
            .iter()
            .enumerate()
            .map(|(i, &t)| (t, &self.data[i * self.stride..(i + 1) * self.stride]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(raw: &[&[Value]]) -> Vec<Vec<Value>> {
        raw.iter().map(|p| p.to_vec()).collect()
    }

    fn run_all(points: &[Vec<Value>], mask: DimMask) -> (Vec<usize>, Vec<usize>, Vec<usize>) {
        let reference = skyline_reference(points, mask);
        let mut c = SimClock::default();
        let mut s = Stats::new();
        let bnl = skyline_bnl(points, mask, &mut c, &mut s);
        let sfs = skyline_sfs(points, mask, &mut c, &mut s);
        (reference, bnl, sfs)
    }

    #[test]
    fn all_algorithms_agree_small() {
        let points = pts(&[
            &[1.0, 9.0],
            &[9.0, 1.0],
            &[5.0, 5.0],
            &[6.0, 6.0], // dominated by [5,5]
            &[1.0, 9.5], // dominated by [1,9]
        ]);
        let (r, b, s) = run_all(&points, DimMask::full(2));
        assert_eq!(r, vec![0, 1, 2]);
        assert_eq!(b, r);
        assert_eq!(s, r);
    }

    #[test]
    fn subspace_changes_skyline() {
        let points = pts(&[&[1.0, 9.0], &[2.0, 1.0]]);
        // Full space: both survive.
        assert_eq!(skyline_reference(&points, DimMask::full(2)).len(), 2);
        // On {d1} only the first survives.
        assert_eq!(skyline_reference(&points, DimMask::singleton(0)), vec![0]);
        // On {d2} only the second survives.
        assert_eq!(skyline_reference(&points, DimMask::singleton(1)), vec![1]);
    }

    #[test]
    fn sfs_uses_fewer_or_equal_comparisons_than_bnl() {
        // Descending-quality input is BNL's bad case.
        let points: Vec<Vec<Value>> = (0..200)
            .map(|i| vec![(200 - i) as Value, (200 - i) as Value])
            .collect();
        let mask = DimMask::full(2);
        let mut c1 = SimClock::default();
        let mut s1 = Stats::new();
        skyline_bnl(&points, mask, &mut c1, &mut s1);
        let mut c2 = SimClock::default();
        let mut s2 = Stats::new();
        skyline_sfs(&points, mask, &mut c2, &mut s2);
        assert!(s2.dom_comparisons <= s1.dom_comparisons);
    }

    #[test]
    fn store_entry_points_match_adapters_exactly() {
        // The flat-layout entry points and the Vec<Vec<f64>> adapters must
        // agree on results, comparison counts AND virtual ticks.
        let points: Vec<Vec<Value>> = (0..120)
            .map(|i| {
                let x = (i * 37 % 100) as Value;
                vec![x, 100.0 - x, (i % 9) as Value]
            })
            .collect();
        let mask = DimMask::from_dims([0, 2]);
        let mut store = PointStore::new(3);
        for p in &points {
            store.push(p);
        }
        let kernel = DomKernel::new(mask, 3);
        for which in ["bnl", "sfs"] {
            let mut c1 = SimClock::default();
            let mut s1 = Stats::new();
            let mut c2 = SimClock::default();
            let mut s2 = Stats::new();
            let (a, b) = match which {
                "bnl" => (
                    skyline_bnl(&points, mask, &mut c1, &mut s1),
                    skyline_bnl_store(&store, &kernel, &mut c2, &mut s2),
                ),
                _ => (
                    skyline_sfs(&points, mask, &mut c1, &mut s1),
                    skyline_sfs_store(&store, &kernel, &mut c2, &mut s2),
                ),
            };
            assert_eq!(a, b, "{which}: results diverged");
            assert_eq!(s1, s2, "{which}: stats diverged");
            assert_eq!(c1.ticks(), c2.ticks(), "{which}: ticks diverged");
        }
    }

    #[test]
    fn incremental_matches_batch() {
        let points = pts(&[
            &[3.0, 3.0],
            &[1.0, 5.0],
            &[5.0, 1.0],
            &[2.0, 2.0], // evicts [3,3]
            &[9.0, 9.0], // dominated
        ]);
        let mask = DimMask::full(2);
        let mut sky = IncrementalSkyline::new(mask);
        let mut c = SimClock::default();
        let mut s = Stats::new();
        let mut outcomes = Vec::new();
        for (i, p) in points.iter().enumerate() {
            outcomes.push(sky.insert(i as u64, p, &mut c, &mut s));
        }
        assert_eq!(outcomes[4], InsertOutcome::Dominated);
        assert_eq!(outcomes[3], InsertOutcome::Added { removed: vec![0] });
        let mut tags: Vec<u64> = sky.tags().collect();
        tags.sort_unstable();
        let mut expect: Vec<u64> = skyline_reference(&points, mask)
            .into_iter()
            .map(|i| i as u64)
            .collect();
        expect.sort_unstable();
        assert_eq!(tags, expect);
        assert!(sky.contains_tag(1));
        assert!(!sky.contains_tag(0));
        // Flat entries expose the surviving points.
        for (tag, p) in sky.entries() {
            assert_eq!(p, points[tag as usize].as_slice());
        }
    }

    #[test]
    fn would_survive_is_consistent_with_insert() {
        let mask = DimMask::full(2);
        let mut sky = IncrementalSkyline::new(mask);
        let mut c = SimClock::default();
        let mut s = Stats::new();
        sky.insert(0, &[2.0, 2.0], &mut c, &mut s);
        assert!(!sky.would_survive(&[3.0, 3.0], &mut c, &mut s));
        assert!(sky.would_survive(&[1.0, 5.0], &mut c, &mut s));
        assert_eq!(sky.len(), 1);
    }

    #[test]
    fn equal_points_are_both_kept() {
        // Definition 1: dominance needs strict improvement somewhere, so
        // tied points are all part of the skyline.
        let mask = DimMask::full(2);
        let mut sky = IncrementalSkyline::new(mask);
        let mut c = SimClock::default();
        let mut s = Stats::new();
        assert!(matches!(
            sky.insert(0, &[1.0, 1.0], &mut c, &mut s),
            InsertOutcome::Added { .. }
        ));
        assert!(matches!(
            sky.insert(1, &[1.0, 1.0], &mut c, &mut s),
            InsertOutcome::Added { .. }
        ));
        assert_eq!(sky.len(), 2);
        // A dominator evicts every tied copy at once.
        let out = sky.insert(2, &[0.5, 0.5], &mut c, &mut s);
        match out {
            InsertOutcome::Added { mut removed } => {
                removed.sort_unstable();
                assert_eq!(removed, vec![0, 1]);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn monotone_score_respects_mask() {
        let p = [1.0, 10.0, 100.0];
        assert_eq!(monotone_score(&p, DimMask::from_dims([0, 2])), 101.0);
        assert_eq!(monotone_score(&p, DimMask::full(3)), 111.0);
        // The kernel's precomputed score agrees.
        assert_eq!(
            DomKernel::new(DimMask::from_dims([0, 2]), 3).score(&p),
            101.0
        );
        assert_eq!(DomKernel::new(DimMask::full(3), 3).score(&p), 111.0);
    }

    #[test]
    fn empty_input() {
        let (r, b, s) = run_all(&[], DimMask::full(2));
        assert!(r.is_empty() && b.is_empty() && s.is_empty());
    }

    #[test]
    fn single_point_survives() {
        let points = pts(&[&[5.0, 5.0]]);
        let (r, b, s) = run_all(&points, DimMask::full(2));
        assert_eq!(r, vec![0]);
        assert_eq!(b, vec![0]);
        assert_eq!(s, vec![0]);
    }
}
