//! Skyline algorithms over a single point set (`SKY_P`, §2.2).
//!
//! Three implementations with different roles in the reproduction:
//!
//! * [`skyline_reference`] — the obviously correct O(n²) definition-checker,
//!   used as the oracle in property tests;
//! * [`skyline_bnl`] — Block-Nested-Loop [3], the classic in-memory
//!   algorithm the paper's JFSL baseline uses;
//! * [`skyline_sfs`] — Sort-Filter-Skyline [6]: presorting by a monotone
//!   score means a later point can never dominate an earlier survivor, which
//!   both prunes comparisons and makes every emitted survivor *final* — the
//!   progressiveness backbone of the SSMJ baseline;
//! * [`IncrementalSkyline`] — streaming skyline maintenance with removal
//!   notification, the workhorse of the shared min-max-cuboid plan.
//!
//! All of them count every pairwise dominance comparison (the paper's CPU
//! metric, Figure 10.b) through the supplied [`Stats`] and [`SimClock`].
//!
//! The algorithms run over the flat [`PointStore`] layout with a
//! per-subspace [`DomKernel`] (DESIGN.md §12); the `&[Vec<Value>]` entry
//! points are thin adapters kept for oracles and call-site compatibility.
//! Both layouts perform the *same comparisons in the same order*, so stats,
//! ticks and traces are identical whichever entry point is used.

use caqe_types::{relate_in, DimMask, DomKernel, DomRelation, PointStore, SimClock, Stats, Value};

/// Interns a `Vec<Vec<f64>>` point set into a flat store (adapter path).
fn intern(points: &[Vec<Value>], mask: DimMask) -> PointStore {
    let stride = points
        .first()
        .map_or_else(|| mask.iter().last().map_or(0, |k| k + 1), Vec::len);
    let mut store = PointStore::with_capacity(stride, points.len());
    for p in points {
        store.push(p);
    }
    store
}

/// Naive O(n²) skyline straight from Definition 2. Returns the indices of
/// non-dominated points, preserving input order. Oracle for tests; not
/// instrumented.
///
/// ```
/// use caqe_operators::skyline_reference;
/// use caqe_types::DimMask;
///
/// let pts = vec![vec![1.0, 9.0], vec![9.0, 1.0], vec![5.0, 5.0], vec![6.0, 6.0]];
/// assert_eq!(skyline_reference(&pts, DimMask::full(2)), vec![0, 1, 2]);
/// ```
pub fn skyline_reference(points: &[Vec<Value>], mask: DimMask) -> Vec<usize> {
    (0..points.len())
        .filter(|&i| {
            !points
                .iter()
                .enumerate()
                .any(|(j, q)| j != i && relate_in(q, &points[i], mask) == DomRelation::Dominates)
        })
        .collect()
}

/// Block-Nested-Loop skyline [3] over a flat point store: maintains a window
/// of current skyline candidates and compares every incoming point against
/// it through the specialized kernel.
///
/// Returns indices of skyline points in input order of survival.
pub fn skyline_bnl_store(
    points: &PointStore,
    kernel: &DomKernel,
    clock: &mut SimClock,
    stats: &mut Stats,
) -> Vec<usize> {
    let mut window: Vec<usize> = Vec::new();
    'next: for i in 0..points.len() {
        let p = points.at(i);
        let mut k = 0;
        while k < window.len() {
            clock.charge_dom_cmps(1);
            stats.dom_comparisons += 1;
            match kernel.relate(points.at(window[k]), p) {
                DomRelation::Dominates => continue 'next,
                DomRelation::DominatedBy => {
                    window.swap_remove(k);
                }
                // Definition 1: equal points do not dominate — keep both.
                DomRelation::Equal | DomRelation::Incomparable => k += 1,
            }
        }
        window.push(i);
    }
    window.sort_unstable();
    window
}

/// Block-Nested-Loop skyline over `Vec<Vec<f64>>` points — thin adapter
/// over [`skyline_bnl_store`] (identical comparisons, counts and order).
pub fn skyline_bnl(
    points: &[Vec<Value>],
    mask: DimMask,
    clock: &mut SimClock,
    stats: &mut Stats,
) -> Vec<usize> {
    let store = intern(points, mask);
    let kernel = DomKernel::new(mask, store.stride());
    skyline_bnl_store(&store, &kernel, clock, stats)
}

/// The monotone sorting score used by SFS: the sum of the point's values on
/// the subspace dimensions. If `sum_V(a) < sum_V(b)` then `b` cannot
/// dominate `a`.
#[inline]
pub fn monotone_score(p: &[Value], mask: DimMask) -> Value {
    mask.iter().map(|k| p[k]).sum()
}

/// Sorts `0..n` by ascending precomputed score (stable on ties, matching a
/// comparator-based `sort_by` over the same scores).
pub fn sorted_by_score(scores: &[Value]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
    order
}

/// Sort-Filter-Skyline [6] over a flat point store: sorts by the kernel's
/// monotone score, then filters. Survivors are final the moment they are
/// admitted, which is what makes SFS-style processing *progressive*.
///
/// Scores are computed once per point (O(n·d)), not inside the sort
/// comparator (O(n log n · d)).
pub fn skyline_sfs_store(
    points: &PointStore,
    kernel: &DomKernel,
    clock: &mut SimClock,
    stats: &mut Stats,
) -> Vec<usize> {
    let scores: Vec<Value> = (0..points.len())
        .map(|i| kernel.score(points.at(i)))
        .collect();
    let order = sorted_by_score(&scores);
    let mut sky: Vec<usize> = Vec::new();
    'next: for i in order {
        let p = points.at(i);
        for &s in &sky {
            clock.charge_dom_cmps(1);
            stats.dom_comparisons += 1;
            match kernel.relate(points.at(s), p) {
                DomRelation::Dominates => continue 'next,
                // After monotone presorting an incoming point can never
                // dominate an admitted survivor.
                DomRelation::DominatedBy => unreachable!("SFS invariant violated"),
                // Definition 1: equal points do not dominate — keep both.
                DomRelation::Equal | DomRelation::Incomparable => {}
            }
        }
        sky.push(i);
    }
    sky.sort_unstable();
    sky
}

/// Sort-Filter-Skyline over `Vec<Vec<f64>>` points — thin adapter over
/// [`skyline_sfs_store`] (identical comparisons, counts and order).
pub fn skyline_sfs(
    points: &[Vec<Value>],
    mask: DimMask,
    clock: &mut SimClock,
    stats: &mut Stats,
) -> Vec<usize> {
    let store = intern(points, mask);
    let kernel = DomKernel::new(mask, store.stride());
    skyline_sfs_store(&store, &kernel, clock, stats)
}

/// Outcome of inserting one point into an [`IncrementalSkyline`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The point was dominated by an existing skyline member and rejected.
    /// (Points *equal* on the subspace are both kept: Definition 1 requires
    /// strict improvement somewhere for dominance.)
    Dominated,
    /// The point joined the skyline; `removed` lists the tags of previous
    /// members it knocked out — the non-monotonic deletions that §1.4 of the
    /// paper highlights as the key difficulty of skyline-over-join sharing.
    Added {
        /// Tags of evicted former skyline members.
        removed: Vec<u64>,
    },
}

/// Streaming skyline maintenance over one subspace.
///
/// Each member carries an opaque `tag` so executors can correlate skyline
/// membership with their own tuple arenas. Member points live in one flat
/// value buffer (no per-member allocation); removal swaps the last member
/// into the hole, mirroring the original `Vec::swap_remove` order exactly.
#[derive(Debug, Clone)]
pub struct IncrementalSkyline {
    mask: DimMask,
    kernel: Option<DomKernel>,
    tags: Vec<u64>,
    /// Flat member points; member `i` is `data[i*stride..(i+1)*stride]`.
    data: Vec<Value>,
    stride: usize,
}

impl IncrementalSkyline {
    /// An empty skyline over subspace `mask`. The point stride is learned
    /// from the first insertion.
    pub fn new(mask: DimMask) -> Self {
        IncrementalSkyline {
            mask,
            kernel: None,
            tags: Vec::new(),
            data: Vec::new(),
            stride: 0,
        }
    }

    /// The subspace this skyline is maintained over.
    pub fn mask(&self) -> DimMask {
        self.mask
    }

    /// Current number of skyline members.
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// Whether the skyline is empty.
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }

    /// Tags of the current members, in insertion order.
    pub fn tags(&self) -> impl Iterator<Item = u64> + '_ {
        self.tags.iter().copied()
    }

    /// Whether the given tag is currently a member.
    pub fn contains_tag(&self, tag: u64) -> bool {
        self.tags.contains(&tag)
    }

    /// The point of member `i`.
    #[inline]
    fn member(&self, i: usize) -> &[Value] {
        &self.data[i * self.stride..(i + 1) * self.stride]
    }

    #[inline]
    fn ensure_kernel(&mut self, stride: usize) {
        if self.kernel.is_none() {
            self.stride = stride;
            self.kernel = Some(DomKernel::new(self.mask, stride));
        }
    }

    /// Inserts a point, maintaining the skyline invariant. Counts one
    /// dominance comparison per member examined.
    pub fn insert(
        &mut self,
        tag: u64,
        point: &[Value],
        clock: &mut SimClock,
        stats: &mut Stats,
    ) -> InsertOutcome {
        self.ensure_kernel(point.len());
        debug_assert_eq!(point.len(), self.stride, "stride mismatch");
        // Split field borrows: the kernel stays immutably borrowed while the
        // member table is edited (no per-insert kernel clone).
        let stride = self.stride;
        // Allowed survivor: `ensure_kernel` on the line above guarantees the
        // kernel is populated — this cannot fire.
        #[allow(clippy::expect_used)]
        let (kernel, tags, data) = (
            self.kernel.as_ref().expect("just initialized"),
            &mut self.tags,
            &mut self.data,
        );
        let mut removed = Vec::new();
        let mut k = 0;
        while k < tags.len() {
            clock.charge_dom_cmps(1);
            stats.dom_comparisons += 1;
            match kernel.relate(&data[k * stride..(k + 1) * stride], point) {
                DomRelation::Dominates => {
                    debug_assert!(removed.is_empty(), "partial order violated");
                    return InsertOutcome::Dominated;
                }
                DomRelation::DominatedBy => {
                    removed.push(tags.swap_remove(k));
                    let last = tags.len();
                    if k != last {
                        let (head, tail) = data.split_at_mut(last * stride);
                        head[k * stride..(k + 1) * stride].copy_from_slice(&tail[..stride]);
                    }
                    data.truncate(last * stride);
                }
                // Definition 1: equal points do not dominate — keep both.
                DomRelation::Equal | DomRelation::Incomparable => k += 1,
            }
        }
        tags.push(tag);
        data.extend_from_slice(point);
        InsertOutcome::Added { removed }
    }

    /// Like [`insert`](Self::insert) but without mutating: returns whether
    /// the point *would* survive. Still counts the comparisons performed.
    pub fn would_survive(&self, point: &[Value], clock: &mut SimClock, stats: &mut Stats) -> bool {
        for k in 0..self.tags.len() {
            clock.charge_dom_cmps(1);
            stats.dom_comparisons += 1;
            let rel = match &self.kernel {
                Some(kernel) => kernel.relate(self.member(k), point),
                None => relate_in(self.member(k), point, self.mask),
            };
            if rel == DomRelation::Dominates {
                return false;
            }
        }
        true
    }

    /// Current members as `(tag, point)` pairs in insertion order.
    pub fn entries(&self) -> impl ExactSizeIterator<Item = (u64, &[Value])> + '_ {
        self.tags
            .iter()
            .enumerate()
            .map(|(i, &t)| (t, &self.data[i * self.stride..(i + 1) * self.stride]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(raw: &[&[Value]]) -> Vec<Vec<Value>> {
        raw.iter().map(|p| p.to_vec()).collect()
    }

    fn run_all(points: &[Vec<Value>], mask: DimMask) -> (Vec<usize>, Vec<usize>, Vec<usize>) {
        let reference = skyline_reference(points, mask);
        let mut c = SimClock::default();
        let mut s = Stats::new();
        let bnl = skyline_bnl(points, mask, &mut c, &mut s);
        let sfs = skyline_sfs(points, mask, &mut c, &mut s);
        (reference, bnl, sfs)
    }

    #[test]
    fn all_algorithms_agree_small() {
        let points = pts(&[
            &[1.0, 9.0],
            &[9.0, 1.0],
            &[5.0, 5.0],
            &[6.0, 6.0], // dominated by [5,5]
            &[1.0, 9.5], // dominated by [1,9]
        ]);
        let (r, b, s) = run_all(&points, DimMask::full(2));
        assert_eq!(r, vec![0, 1, 2]);
        assert_eq!(b, r);
        assert_eq!(s, r);
    }

    #[test]
    fn subspace_changes_skyline() {
        let points = pts(&[&[1.0, 9.0], &[2.0, 1.0]]);
        // Full space: both survive.
        assert_eq!(skyline_reference(&points, DimMask::full(2)).len(), 2);
        // On {d1} only the first survives.
        assert_eq!(skyline_reference(&points, DimMask::singleton(0)), vec![0]);
        // On {d2} only the second survives.
        assert_eq!(skyline_reference(&points, DimMask::singleton(1)), vec![1]);
    }

    #[test]
    fn sfs_uses_fewer_or_equal_comparisons_than_bnl() {
        // Descending-quality input is BNL's bad case.
        let points: Vec<Vec<Value>> = (0..200)
            .map(|i| vec![(200 - i) as Value, (200 - i) as Value])
            .collect();
        let mask = DimMask::full(2);
        let mut c1 = SimClock::default();
        let mut s1 = Stats::new();
        skyline_bnl(&points, mask, &mut c1, &mut s1);
        let mut c2 = SimClock::default();
        let mut s2 = Stats::new();
        skyline_sfs(&points, mask, &mut c2, &mut s2);
        assert!(s2.dom_comparisons <= s1.dom_comparisons);
    }

    #[test]
    fn store_entry_points_match_adapters_exactly() {
        // The flat-layout entry points and the Vec<Vec<f64>> adapters must
        // agree on results, comparison counts AND virtual ticks.
        let points: Vec<Vec<Value>> = (0..120)
            .map(|i| {
                let x = (i * 37 % 100) as Value;
                vec![x, 100.0 - x, (i % 9) as Value]
            })
            .collect();
        let mask = DimMask::from_dims([0, 2]);
        let mut store = PointStore::new(3);
        for p in &points {
            store.push(p);
        }
        let kernel = DomKernel::new(mask, 3);
        for which in ["bnl", "sfs"] {
            let mut c1 = SimClock::default();
            let mut s1 = Stats::new();
            let mut c2 = SimClock::default();
            let mut s2 = Stats::new();
            let (a, b) = match which {
                "bnl" => (
                    skyline_bnl(&points, mask, &mut c1, &mut s1),
                    skyline_bnl_store(&store, &kernel, &mut c2, &mut s2),
                ),
                _ => (
                    skyline_sfs(&points, mask, &mut c1, &mut s1),
                    skyline_sfs_store(&store, &kernel, &mut c2, &mut s2),
                ),
            };
            assert_eq!(a, b, "{which}: results diverged");
            assert_eq!(s1, s2, "{which}: stats diverged");
            assert_eq!(c1.ticks(), c2.ticks(), "{which}: ticks diverged");
        }
    }

    #[test]
    fn incremental_matches_batch() {
        let points = pts(&[
            &[3.0, 3.0],
            &[1.0, 5.0],
            &[5.0, 1.0],
            &[2.0, 2.0], // evicts [3,3]
            &[9.0, 9.0], // dominated
        ]);
        let mask = DimMask::full(2);
        let mut sky = IncrementalSkyline::new(mask);
        let mut c = SimClock::default();
        let mut s = Stats::new();
        let mut outcomes = Vec::new();
        for (i, p) in points.iter().enumerate() {
            outcomes.push(sky.insert(i as u64, p, &mut c, &mut s));
        }
        assert_eq!(outcomes[4], InsertOutcome::Dominated);
        assert_eq!(outcomes[3], InsertOutcome::Added { removed: vec![0] });
        let mut tags: Vec<u64> = sky.tags().collect();
        tags.sort_unstable();
        let mut expect: Vec<u64> = skyline_reference(&points, mask)
            .into_iter()
            .map(|i| i as u64)
            .collect();
        expect.sort_unstable();
        assert_eq!(tags, expect);
        assert!(sky.contains_tag(1));
        assert!(!sky.contains_tag(0));
        // Flat entries expose the surviving points.
        for (tag, p) in sky.entries() {
            assert_eq!(p, points[tag as usize].as_slice());
        }
    }

    #[test]
    fn would_survive_is_consistent_with_insert() {
        let mask = DimMask::full(2);
        let mut sky = IncrementalSkyline::new(mask);
        let mut c = SimClock::default();
        let mut s = Stats::new();
        sky.insert(0, &[2.0, 2.0], &mut c, &mut s);
        assert!(!sky.would_survive(&[3.0, 3.0], &mut c, &mut s));
        assert!(sky.would_survive(&[1.0, 5.0], &mut c, &mut s));
        assert_eq!(sky.len(), 1);
    }

    #[test]
    fn equal_points_are_both_kept() {
        // Definition 1: dominance needs strict improvement somewhere, so
        // tied points are all part of the skyline.
        let mask = DimMask::full(2);
        let mut sky = IncrementalSkyline::new(mask);
        let mut c = SimClock::default();
        let mut s = Stats::new();
        assert!(matches!(
            sky.insert(0, &[1.0, 1.0], &mut c, &mut s),
            InsertOutcome::Added { .. }
        ));
        assert!(matches!(
            sky.insert(1, &[1.0, 1.0], &mut c, &mut s),
            InsertOutcome::Added { .. }
        ));
        assert_eq!(sky.len(), 2);
        // A dominator evicts every tied copy at once.
        let out = sky.insert(2, &[0.5, 0.5], &mut c, &mut s);
        match out {
            InsertOutcome::Added { mut removed } => {
                removed.sort_unstable();
                assert_eq!(removed, vec![0, 1]);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn monotone_score_respects_mask() {
        let p = [1.0, 10.0, 100.0];
        assert_eq!(monotone_score(&p, DimMask::from_dims([0, 2])), 101.0);
        assert_eq!(monotone_score(&p, DimMask::full(3)), 111.0);
        // The kernel's precomputed score agrees.
        assert_eq!(
            DomKernel::new(DimMask::from_dims([0, 2]), 3).score(&p),
            101.0
        );
        assert_eq!(DomKernel::new(DimMask::full(3), 3).score(&p), 111.0);
    }

    #[test]
    fn empty_input() {
        let (r, b, s) = run_all(&[], DimMask::full(2));
        assert!(r.is_empty() && b.is_empty() && s.is_empty());
    }

    #[test]
    fn single_point_survives() {
        let points = pts(&[&[5.0, 5.0]]);
        let (r, b, s) = run_all(&points, DimMask::full(2));
        assert_eq!(r, vec![0]);
        assert_eq!(b, vec![0]);
        assert_eq!(s, vec![0]);
    }
}
