//! Equi-join operators fused with projection.
//!
//! The paper's queries join two base tables on a categorical join condition
//! (`JC_1`, `JC_2`, … — e.g. `r_country = t_country`, Example 14) and then
//! project each join result into the output space via the mapping functions.
//! Both steps are fused here so intermediate join tuples never need a second
//! pass, and so the virtual clock charges probes and mapping evaluations at
//! the moment they happen.

use crate::mapping::MappingSet;
use caqe_data::Record;
use caqe_types::{SimClock, Stats, Value};
use std::collections::HashMap;

/// A join condition: equality on join column `column` of both tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JoinSpec {
    /// Index of the join column (the paper's `JC_i`).
    pub column: usize,
}

impl JoinSpec {
    /// Join condition over column `column`.
    pub fn on_column(column: usize) -> Self {
        JoinSpec { column }
    }

    /// Whether the pair satisfies the join predicate.
    #[inline]
    pub fn matches(&self, r: &Record, t: &Record) -> bool {
        r.key(self.column) == t.key(self.column)
    }
}

/// A projected join result: provenance ids plus the output-space point.
#[derive(Debug, Clone, PartialEq)]
pub struct OutTuple {
    /// Id of the contributing R record.
    pub rid: u64,
    /// Id of the contributing T record.
    pub tid: u64,
    /// The output-space attribute vector `X`.
    pub vals: Vec<Value>,
}

/// Nested-loop equi-join fused with projection.
///
/// Charges one `join_probe` per candidate pair and one `map_eval` per output
/// attribute of each match; counts mirror the charges in `stats`.
pub fn nested_loop_join_project(
    left: &[Record],
    right: &[Record],
    spec: JoinSpec,
    mapping: &MappingSet,
    clock: &mut SimClock,
    stats: &mut Stats,
) -> Vec<OutTuple> {
    let mut out = Vec::new();
    for r in left {
        for t in right {
            clock.charge_join_probes(1);
            stats.join_probes += 1;
            if spec.matches(r, t) {
                let k = mapping.output_dims() as u64;
                clock.charge_map_evals(k);
                stats.map_evals += k;
                stats.join_results += 1;
                out.push(OutTuple {
                    rid: r.id,
                    tid: t.id,
                    vals: mapping.apply(&r.vals, &t.vals),
                });
            }
        }
    }
    out
}

/// Hash equi-join fused with projection. Builds on the smaller side.
///
/// Probe cost: one `join_probe` per (probe tuple × matching build tuple),
/// plus one per probe tuple for the hash lookup itself — a deliberately
/// cheaper profile than the nested-loop join, reflecting the paper's
/// assumption that join computation is shared efficiently.
pub fn hash_join_project(
    left: &[Record],
    right: &[Record],
    spec: JoinSpec,
    mapping: &MappingSet,
    clock: &mut SimClock,
    stats: &mut Stats,
) -> Vec<OutTuple> {
    let (build, probe, build_is_left) = if left.len() <= right.len() {
        (left, right, true)
    } else {
        (right, left, false)
    };
    let mut index: HashMap<u32, Vec<&Record>> = HashMap::new();
    for b in build {
        index.entry(b.key(spec.column)).or_default().push(b);
    }
    let mut out = Vec::new();
    for p in probe {
        clock.charge_join_probes(1);
        stats.join_probes += 1;
        if let Some(matches) = index.get(&p.key(spec.column)) {
            for b in matches {
                clock.charge_join_probes(1);
                stats.join_probes += 1;
                let (r, t) = if build_is_left { (*b, p) } else { (p, *b) };
                let k = mapping.output_dims() as u64;
                clock.charge_map_evals(k);
                stats.map_evals += k;
                stats.join_results += 1;
                out.push(OutTuple {
                    rid: r.id,
                    tid: t.id,
                    vals: mapping.apply(&r.vals, &t.vals),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::MappingSet;

    fn rec(id: u64, vals: &[Value], key: u32) -> Record {
        Record::new(id, vals.to_vec(), vec![key])
    }

    fn setup() -> (Vec<Record>, Vec<Record>, MappingSet) {
        let left = vec![
            rec(0, &[1.0, 2.0], 7),
            rec(1, &[3.0, 4.0], 8),
            rec(2, &[5.0, 6.0], 7),
        ];
        let right = vec![rec(10, &[9.0], 7), rec(11, &[8.0], 9)];
        (left, right, MappingSet::concat(2, 1))
    }

    #[test]
    fn nested_loop_finds_all_matches() {
        let (l, r, m) = setup();
        let mut clock = SimClock::default();
        let mut stats = Stats::new();
        let out =
            nested_loop_join_project(&l, &r, JoinSpec::on_column(0), &m, &mut clock, &mut stats);
        assert_eq!(out.len(), 2);
        assert_eq!(stats.join_results, 2);
        assert_eq!(stats.join_probes, 6);
        assert!(out.iter().any(|o| o.rid == 0 && o.tid == 10));
        assert!(out.iter().any(|o| o.rid == 2 && o.tid == 10));
        assert_eq!(
            out.iter().find(|o| o.rid == 0).unwrap().vals,
            vec![1.0, 2.0, 9.0]
        );
        assert!(clock.ticks() > 0);
    }

    #[test]
    fn hash_join_agrees_with_nested_loop() {
        let (l, r, m) = setup();
        let spec = JoinSpec::on_column(0);
        let mut c1 = SimClock::default();
        let mut s1 = Stats::new();
        let mut a = nested_loop_join_project(&l, &r, spec, &m, &mut c1, &mut s1);
        let mut c2 = SimClock::default();
        let mut s2 = Stats::new();
        let mut b = hash_join_project(&l, &r, spec, &m, &mut c2, &mut s2);
        let key = |o: &OutTuple| (o.rid, o.tid);
        a.sort_by_key(key);
        b.sort_by_key(key);
        assert_eq!(a, b);
        assert_eq!(s1.join_results, s2.join_results);
        // Hash join probes fewer candidate pairs.
        assert!(s2.join_probes <= s1.join_probes);
    }

    #[test]
    fn empty_inputs() {
        let (_, r, m) = setup();
        let mut clock = SimClock::default();
        let mut stats = Stats::new();
        let out =
            nested_loop_join_project(&[], &r, JoinSpec::on_column(0), &m, &mut clock, &mut stats);
        assert!(out.is_empty());
        assert_eq!(stats.join_probes, 0);
        let out2 = hash_join_project(&[], &r, JoinSpec::on_column(0), &m, &mut clock, &mut stats);
        assert!(out2.is_empty());
    }

    #[test]
    fn no_matches_yields_empty() {
        let l = vec![rec(0, &[1.0], 1)];
        let r = vec![rec(1, &[2.0], 2)];
        let m = MappingSet::concat(1, 1);
        let mut clock = SimClock::default();
        let mut stats = Stats::new();
        let out = hash_join_project(&l, &r, JoinSpec::on_column(0), &m, &mut clock, &mut stats);
        assert!(out.is_empty());
        assert_eq!(stats.join_results, 0);
    }
}
