//! Equi-join operators fused with projection.
//!
//! The paper's queries join two base tables on a categorical join condition
//! (`JC_1`, `JC_2`, … — e.g. `r_country = t_country`, Example 14) and then
//! project each join result into the output space via the mapping functions.
//! Both steps are fused here so intermediate join tuples never need a second
//! pass, and so the virtual clock charges probes and mapping evaluations at
//! the moment they happen.
//!
//! The build side is indexed with a [`SortedJoinIndex`] — stable-sorted
//! `(key, row)` runs probed by binary search — rather than a hash map:
//! iteration order is then a pure function of the input (build order within
//! each key), which the determinism contract requires on traced paths, and
//! probing allocates nothing. Output points go straight into a flat
//! [`PointStore`] ([`hash_join_project_store`]); the [`OutTuple`]-returning
//! entry points are thin adapters with identical charges and output order.

use crate::mapping::MappingSet;
use caqe_data::Record;
use caqe_types::{PointStore, SimClock, Stats, Value};

/// A join condition: equality on join column `column` of both tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JoinSpec {
    /// Index of the join column (the paper's `JC_i`).
    pub column: usize,
}

impl JoinSpec {
    /// Join condition over column `column`.
    pub fn on_column(column: usize) -> Self {
        JoinSpec { column }
    }

    /// Whether the pair satisfies the join predicate.
    #[inline]
    pub fn matches(&self, r: &Record, t: &Record) -> bool {
        r.key(self.column) == t.key(self.column)
    }
}

/// A projected join result: provenance ids plus the output-space point.
#[derive(Debug, Clone, PartialEq)]
pub struct OutTuple {
    /// Id of the contributing R record.
    pub rid: u64,
    /// Id of the contributing T record.
    pub tid: u64,
    /// The output-space attribute vector `X`.
    pub vals: Vec<Value>,
}

/// Join output in flat layout: one provenance pair per point, with the
/// output-space points interned in a [`PointStore`] (pair `i` ↔ point `i`).
#[derive(Debug, Clone, Default)]
pub struct JoinOutput {
    /// `(rid, tid)` provenance per join result, in production order.
    pub pairs: Vec<(u64, u64)>,
    /// The projected output-space points, same order as `pairs`.
    pub store: PointStore,
}

impl JoinOutput {
    /// Number of join results.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the join produced nothing.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

/// An equi-join build index with *deterministic* probe order: rows are
/// stable-sorted by key, so the rows matching any key come back in build
/// order — exactly the order a `HashMap<key, Vec<row>>` built by appending
/// would yield, but with no hashing, no per-key allocation and no
/// iteration-order hazard. Probes are two binary searches (equal range).
#[derive(Debug, Clone)]
pub struct SortedJoinIndex {
    /// `(key, row)` pairs sorted by key; ties keep build order.
    entries: Vec<(u32, u32)>,
}

impl SortedJoinIndex {
    /// Indexes `rows.len()` rows by the key extracted from each.
    pub fn build(n: usize, key_of: impl Fn(usize) -> u32) -> Self {
        let mut entries: Vec<(u32, u32)> = (0..n).map(|i| (key_of(i), i as u32)).collect();
        entries.sort_by_key(|&(k, _)| k);
        SortedJoinIndex { entries }
    }

    /// The build rows matching `key`, in build order.
    #[inline]
    pub fn matches(&self, key: u32) -> impl Iterator<Item = usize> + '_ {
        let lo = self.entries.partition_point(|&(k, _)| k < key);
        let hi = self.entries.partition_point(|&(k, _)| k <= key);
        self.entries[lo..hi].iter().map(|&(_, row)| row as usize)
    }

    /// Number of indexed rows.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Nested-loop equi-join fused with projection.
///
/// Charges one `join_probe` per candidate pair and one `map_eval` per output
/// attribute of each match; counts mirror the charges in `stats`.
pub fn nested_loop_join_project(
    left: &[Record],
    right: &[Record],
    spec: JoinSpec,
    mapping: &MappingSet,
    clock: &mut SimClock,
    stats: &mut Stats,
) -> Vec<OutTuple> {
    let mut out = Vec::new();
    for r in left {
        for t in right {
            clock.charge_join_probes(1);
            stats.join_probes += 1;
            if spec.matches(r, t) {
                let k = mapping.output_dims() as u64;
                clock.charge_map_evals(k);
                stats.map_evals += k;
                stats.join_results += 1;
                out.push(OutTuple {
                    rid: r.id,
                    tid: t.id,
                    vals: mapping.apply(&r.vals, &t.vals),
                });
            }
        }
    }
    out
}

/// Hash equi-join fused with projection, flat output. Builds on the smaller
/// side.
///
/// Probe cost: one `join_probe` per (probe tuple × matching build tuple),
/// plus one per probe tuple for the index lookup itself — a deliberately
/// cheaper profile than the nested-loop join, reflecting the paper's
/// assumption that join computation is shared efficiently.
pub fn hash_join_project_store(
    left: &[Record],
    right: &[Record],
    spec: JoinSpec,
    mapping: &MappingSet,
    clock: &mut SimClock,
    stats: &mut Stats,
) -> JoinOutput {
    let (build, probe, build_is_left) = if left.len() <= right.len() {
        (left, right, true)
    } else {
        (right, left, false)
    };
    let index = SortedJoinIndex::build(build.len(), |i| build[i].key(spec.column));
    let k = mapping.output_dims() as u64;
    let mut out = JoinOutput {
        pairs: Vec::new(),
        store: PointStore::new(k as usize),
    };
    for p in probe {
        clock.charge_join_probes(1);
        stats.join_probes += 1;
        for row in index.matches(p.key(spec.column)) {
            clock.charge_join_probes(1);
            stats.join_probes += 1;
            let b = &build[row];
            let (r, t) = if build_is_left { (b, p) } else { (p, b) };
            clock.charge_map_evals(k);
            stats.map_evals += k;
            stats.join_results += 1;
            out.pairs.push((r.id, t.id));
            out.store
                .push_with(|dst| mapping.apply_into(&r.vals, &t.vals, dst));
        }
    }
    out
}

/// Hash equi-join fused with projection — thin adapter over
/// [`hash_join_project_store`] (identical charges and output order).
pub fn hash_join_project(
    left: &[Record],
    right: &[Record],
    spec: JoinSpec,
    mapping: &MappingSet,
    clock: &mut SimClock,
    stats: &mut Stats,
) -> Vec<OutTuple> {
    let out = hash_join_project_store(left, right, spec, mapping, clock, stats);
    out.pairs
        .iter()
        .zip(out.store.iter())
        .map(|(&(rid, tid), vals)| OutTuple {
            rid,
            tid,
            vals: vals.to_vec(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::MappingSet;

    fn rec(id: u64, vals: &[Value], key: u32) -> Record {
        Record::new(id, vals.to_vec(), vec![key])
    }

    fn setup() -> (Vec<Record>, Vec<Record>, MappingSet) {
        let left = vec![
            rec(0, &[1.0, 2.0], 7),
            rec(1, &[3.0, 4.0], 8),
            rec(2, &[5.0, 6.0], 7),
        ];
        let right = vec![rec(10, &[9.0], 7), rec(11, &[8.0], 9)];
        (left, right, MappingSet::concat(2, 1))
    }

    #[test]
    fn nested_loop_finds_all_matches() {
        let (l, r, m) = setup();
        let mut clock = SimClock::default();
        let mut stats = Stats::new();
        let out =
            nested_loop_join_project(&l, &r, JoinSpec::on_column(0), &m, &mut clock, &mut stats);
        assert_eq!(out.len(), 2);
        assert_eq!(stats.join_results, 2);
        assert_eq!(stats.join_probes, 6);
        assert!(out.iter().any(|o| o.rid == 0 && o.tid == 10));
        assert!(out.iter().any(|o| o.rid == 2 && o.tid == 10));
        assert_eq!(
            out.iter().find(|o| o.rid == 0).unwrap().vals,
            vec![1.0, 2.0, 9.0]
        );
        assert!(clock.ticks() > 0);
    }

    #[test]
    fn hash_join_agrees_with_nested_loop() {
        let (l, r, m) = setup();
        let spec = JoinSpec::on_column(0);
        let mut c1 = SimClock::default();
        let mut s1 = Stats::new();
        let mut a = nested_loop_join_project(&l, &r, spec, &m, &mut c1, &mut s1);
        let mut c2 = SimClock::default();
        let mut s2 = Stats::new();
        let mut b = hash_join_project(&l, &r, spec, &m, &mut c2, &mut s2);
        let key = |o: &OutTuple| (o.rid, o.tid);
        a.sort_by_key(key);
        b.sort_by_key(key);
        assert_eq!(a, b);
        assert_eq!(s1.join_results, s2.join_results);
        // Hash join probes fewer candidate pairs.
        assert!(s2.join_probes <= s1.join_probes);
    }

    #[test]
    fn store_output_matches_adapter() {
        let (l, r, m) = setup();
        let spec = JoinSpec::on_column(0);
        let mut c1 = SimClock::default();
        let mut s1 = Stats::new();
        let flat = hash_join_project_store(&l, &r, spec, &m, &mut c1, &mut s1);
        let mut c2 = SimClock::default();
        let mut s2 = Stats::new();
        let tuples = hash_join_project(&l, &r, spec, &m, &mut c2, &mut s2);
        assert_eq!(flat.len(), tuples.len());
        assert!(!flat.is_empty());
        for (i, o) in tuples.iter().enumerate() {
            assert_eq!(flat.pairs[i], (o.rid, o.tid), "pair order diverged");
            assert_eq!(flat.store.at(i), o.vals.as_slice(), "point diverged");
        }
        assert_eq!(s1, s2);
        assert_eq!(c1.ticks(), c2.ticks());
    }

    #[test]
    fn sorted_index_preserves_build_order_within_key() {
        let keys = [5u32, 3, 5, 5, 3, 9];
        let idx = SortedJoinIndex::build(keys.len(), |i| keys[i]);
        assert_eq!(idx.len(), 6);
        assert!(!idx.is_empty());
        assert_eq!(idx.matches(5).collect::<Vec<_>>(), vec![0, 2, 3]);
        assert_eq!(idx.matches(3).collect::<Vec<_>>(), vec![1, 4]);
        assert_eq!(idx.matches(9).collect::<Vec<_>>(), vec![5]);
        assert_eq!(idx.matches(7).count(), 0);
    }

    #[test]
    fn empty_inputs() {
        let (_, r, m) = setup();
        let mut clock = SimClock::default();
        let mut stats = Stats::new();
        let out =
            nested_loop_join_project(&[], &r, JoinSpec::on_column(0), &m, &mut clock, &mut stats);
        assert!(out.is_empty());
        assert_eq!(stats.join_probes, 0);
        let out2 = hash_join_project(&[], &r, JoinSpec::on_column(0), &m, &mut clock, &mut stats);
        assert!(out2.is_empty());
    }

    #[test]
    fn no_matches_yields_empty() {
        let l = vec![rec(0, &[1.0], 1)];
        let r = vec![rec(1, &[2.0], 2)];
        let m = MappingSet::concat(1, 1);
        let mut clock = SimClock::default();
        let mut stats = Stats::new();
        let out = hash_join_project(&l, &r, JoinSpec::on_column(0), &m, &mut clock, &mut stats);
        assert!(out.is_empty());
        assert_eq!(stats.join_results, 0);
    }
}
