//! Scalar mapping functions — the `PROJECT_[F, X]` operator of §2.2.
//!
//! Each mapping function `f_j` consumes the attribute vectors of a joined
//! pair `(r, t)` and produces one output attribute `x_j` (Example 5: *total
//! price = (price + WiFi) · 10 + air fare*). We model the mapping functions
//! the paper's workloads need — non-negative affine combinations of input
//! attributes — which are monotone, so a quad-tree cell's bounds map
//! *exactly* to output-region bounds via interval arithmetic (§5.1).

use caqe_types::{Rect, Value};

/// One scalar mapping function: an affine combination
/// `x = Σ_k wr[k]·r[k] + Σ_k wt[k]·t[k] + offset` with non-negative weights.
#[derive(Debug, Clone, PartialEq)]
pub struct MappingFn {
    /// Weights over the left (R) table's preference attributes.
    pub weights_r: Vec<Value>,
    /// Weights over the right (T) table's preference attributes.
    pub weights_t: Vec<Value>,
    /// Constant offset.
    pub offset: Value,
}

impl MappingFn {
    /// Creates a mapping function.
    ///
    /// # Panics
    /// Panics if any weight is negative (monotonicity requirement).
    pub fn new(weights_r: Vec<Value>, weights_t: Vec<Value>, offset: Value) -> Self {
        assert!(
            weights_r.iter().chain(weights_t.iter()).all(|&w| w >= 0.0),
            "mapping weights must be non-negative for monotone projection"
        );
        MappingFn {
            weights_r,
            weights_t,
            offset,
        }
    }

    /// The identity-style mapping that forwards attribute `k` of the R side.
    pub fn passthrough_r(dims_r: usize, dims_t: usize, k: usize) -> Self {
        let mut wr = vec![0.0; dims_r];
        wr[k] = 1.0;
        MappingFn::new(wr, vec![0.0; dims_t], 0.0)
    }

    /// The identity-style mapping that forwards attribute `k` of the T side.
    pub fn passthrough_t(dims_r: usize, dims_t: usize, k: usize) -> Self {
        let mut wt = vec![0.0; dims_t];
        wt[k] = 1.0;
        MappingFn::new(vec![0.0; dims_r], wt, 0.0)
    }

    /// Evaluates the mapping for one joined pair.
    #[inline]
    pub fn apply(&self, r_vals: &[Value], t_vals: &[Value]) -> Value {
        debug_assert_eq!(r_vals.len(), self.weights_r.len());
        debug_assert_eq!(t_vals.len(), self.weights_t.len());
        let mut acc = self.offset;
        for (w, v) in self.weights_r.iter().zip(r_vals) {
            acc += w * v;
        }
        for (w, v) in self.weights_t.iter().zip(t_vals) {
            acc += w * v;
        }
        acc
    }

    /// Evaluates the mapping over cell bounds: because weights are
    /// non-negative the image of the box `[r.lo, r.hi] × [t.lo, t.hi]` is
    /// exactly `[apply(r.lo, t.lo), apply(r.hi, t.hi)]`.
    #[inline]
    pub fn apply_bounds(&self, r_cell: &Rect, t_cell: &Rect) -> (Value, Value) {
        (
            self.apply(r_cell.lo(), t_cell.lo()),
            self.apply(r_cell.hi(), t_cell.hi()),
        )
    }
}

/// An ordered set of mapping functions `F = {f_1, …, f_k}` producing the
/// output attribute vector `X = {x_1, …, x_k}` — the multi-query output
/// space of §5.
#[derive(Debug, Clone, PartialEq)]
pub struct MappingSet {
    fns: Vec<MappingFn>,
}

impl MappingSet {
    /// Creates a mapping set; all members must agree on input arities.
    ///
    /// # Panics
    /// Panics if the set is empty or the members disagree on arity.
    pub fn new(fns: Vec<MappingFn>) -> Self {
        assert!(!fns.is_empty(), "mapping set must produce at least one dim");
        let (ar, at) = (fns[0].weights_r.len(), fns[0].weights_t.len());
        for f in &fns {
            assert_eq!(f.weights_r.len(), ar, "inconsistent R arity");
            assert_eq!(f.weights_t.len(), at, "inconsistent T arity");
        }
        MappingSet { fns }
    }

    /// A mapping set that forwards all R attributes then all T attributes —
    /// the "skyline over the concatenated join tuple" used when queries do
    /// no arithmetic.
    pub fn concat(dims_r: usize, dims_t: usize) -> Self {
        let mut fns = Vec::with_capacity(dims_r + dims_t);
        for k in 0..dims_r {
            fns.push(MappingFn::passthrough_r(dims_r, dims_t, k));
        }
        for k in 0..dims_t {
            fns.push(MappingFn::passthrough_t(dims_r, dims_t, k));
        }
        MappingSet::new(fns)
    }

    /// A mapping set in the style of Example 5: every output dimension is a
    /// weighted sum of one R attribute and one T attribute, with pairings
    /// and weights varied so the `k` outputs are linearly independent.
    ///
    /// Because every output mixes both sides, two distinct join results
    /// almost surely differ on every output dimension — the Distinct Value
    /// Attributes (DVA) assumption the paper's Theorem 1 relies on holds for
    /// real-valued inputs.
    pub fn mixed(dims_r: usize, dims_t: usize, k: usize) -> Self {
        assert!(dims_r >= 1 && dims_t >= 1 && k >= 1);
        let fns = (0..k)
            .map(|j| {
                let mut wr = vec![0.0; dims_r];
                let mut wt = vec![0.0; dims_t];
                wr[j % dims_r] = 1.0;
                wt[(j + j / dims_r) % dims_t] = 1.0 + 0.1 * j as Value;
                MappingFn::new(wr, wt, 0.0)
            })
            .collect();
        MappingSet::new(fns)
    }

    /// Number of output dimensions `|X|`.
    #[inline]
    pub fn output_dims(&self) -> usize {
        self.fns.len()
    }

    /// The member functions.
    pub fn fns(&self) -> &[MappingFn] {
        &self.fns
    }

    /// Maps one joined pair to its output-space point.
    pub fn apply(&self, r_vals: &[Value], t_vals: &[Value]) -> Vec<Value> {
        self.fns.iter().map(|f| f.apply(r_vals, t_vals)).collect()
    }

    /// Maps one joined pair, appending the output point to `out` — the
    /// allocation-free form used with `PointStore::push_with`.
    #[inline]
    pub fn apply_into(&self, r_vals: &[Value], t_vals: &[Value], out: &mut Vec<Value>) {
        for f in &self.fns {
            out.push(f.apply(r_vals, t_vals));
        }
    }

    /// Maps a pair of input cells to the exact output-space box.
    pub fn apply_bounds(&self, r_cell: &Rect, t_cell: &Rect) -> Rect {
        let mut lo = Vec::with_capacity(self.fns.len());
        let mut hi = Vec::with_capacity(self.fns.len());
        for f in &self.fns {
            let (l, h) = f.apply_bounds(r_cell, t_cell);
            lo.push(l);
            hi.push(h);
        }
        Rect::new(lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example5_total_price() {
        // total_price = (price + WiFi)·10 + air_fare.
        // R = hotel (price, rating, distance, WiFi); T = flight (air_fare,).
        let f = MappingFn::new(vec![10.0, 0.0, 0.0, 10.0], vec![1.0], 0.0);
        let hotel = [200.0, 5.0, 0.5, 20.0];
        let flight = [450.0];
        assert_eq!(f.apply(&hotel, &flight), (200.0 + 20.0) * 10.0 + 450.0);
    }

    #[test]
    fn bounds_are_exact_for_corners() {
        let f = MappingFn::new(vec![2.0, 1.0], vec![3.0], 5.0);
        let rc = Rect::new(vec![1.0, 2.0], vec![3.0, 4.0]);
        let tc = Rect::new(vec![0.0], vec![10.0]);
        let (lo, hi) = f.apply_bounds(&rc, &tc);
        assert_eq!(lo, f.apply(rc.lo(), tc.lo()));
        assert_eq!(hi, f.apply(rc.hi(), tc.hi()));
        assert!(lo <= hi);
    }

    #[test]
    fn bounds_contain_interior_points() {
        let f = MappingFn::new(vec![1.5, 0.5], vec![2.0, 0.0], 1.0);
        let rc = Rect::new(vec![1.0, 1.0], vec![5.0, 5.0]);
        let tc = Rect::new(vec![2.0, 2.0], vec![6.0, 6.0]);
        let (lo, hi) = f.apply_bounds(&rc, &tc);
        // Sample a few interior corners.
        for r in [[1.0, 5.0], [5.0, 1.0], [3.0, 3.0]] {
            for t in [[2.0, 6.0], [6.0, 2.0], [4.0, 4.0]] {
                let v = f.apply(&r, &t);
                assert!(lo <= v && v <= hi);
            }
        }
    }

    #[test]
    fn concat_mapping_forwards_attributes() {
        let m = MappingSet::concat(2, 2);
        assert_eq!(m.output_dims(), 4);
        let out = m.apply(&[1.0, 2.0], &[3.0, 4.0]);
        assert_eq!(out, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn mapping_set_bounds() {
        let m = MappingSet::concat(1, 1);
        let rc = Rect::new(vec![1.0], vec![2.0]);
        let tc = Rect::new(vec![5.0], vec![7.0]);
        let b = m.apply_bounds(&rc, &tc);
        assert_eq!(b.lo(), &[1.0, 5.0]);
        assert_eq!(b.hi(), &[2.0, 7.0]);
    }

    #[test]
    fn mixed_mapping_is_dva_safe() {
        let m = MappingSet::mixed(2, 2, 4);
        assert_eq!(m.output_dims(), 4);
        // Two join results sharing the R tuple still differ everywhere.
        let r = [3.0, 7.0];
        let a = m.apply(&r, &[1.0, 2.0]);
        let b = m.apply(&r, &[1.5, 2.5]);
        for k in 0..4 {
            assert_ne!(a[k], b[k], "tie on output dim {k}");
        }
        // Every output dimension draws from both sides.
        for f in m.fns() {
            assert!(f.weights_r.iter().any(|&w| w > 0.0));
            assert!(f.weights_t.iter().any(|&w| w > 0.0));
        }
    }

    #[test]
    fn mixed_mapping_output_dims_are_distinct() {
        // No two output dims may be identical functions.
        let m = MappingSet::mixed(2, 2, 5);
        for i in 0..5 {
            for j in (i + 1)..5 {
                assert_ne!(m.fns()[i], m.fns()[j], "dims {i} and {j} identical");
            }
        }
    }

    #[test]
    #[should_panic]
    fn negative_weight_rejected() {
        let _ = MappingFn::new(vec![-1.0], vec![], 0.0);
    }

    #[test]
    #[should_panic]
    fn empty_mapping_set_rejected() {
        let _ = MappingSet::new(vec![]);
    }
}
