//! Single-query relational and skyline operators (§2.2 of the paper),
//! implemented from scratch and instrumented with the operation counters
//! and virtual clock that the evaluation metrics rely on.
//!
//! * [`mapping`] — the `PROJECT_[F, X]` operator: scalar mapping functions
//!   transforming join results into the multi-query output space, with
//!   exact interval arithmetic for coarse (cell-level) evaluation.
//! * [`join`] — equi-joins (`R ⋈_{JC} T`): an instrumented nested-loop join
//!   and a hash join, both fused with projection.
//! * [`skyline`] — `SKY_P`: block-nested-loop (BNL [3]), sort-filter-skyline
//!   (SFS [6]) and an incremental skyline maintenance structure used by the
//!   progressive executors.

// Library code must degrade, not abort (DESIGN.md §13).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod join;
pub mod mapping;
pub mod prune;
pub mod skyline;

pub use join::{
    hash_join_project, hash_join_project_store, nested_loop_join_project, JoinOutput, JoinSpec,
    OutTuple, SortedJoinIndex,
};
pub use mapping::{MappingFn, MappingSet};
pub use prune::{
    skyline_bnl_pruned, skyline_sfs_presorted_pruned, CachedPresort, PresortCache, SigSkyline,
};
pub use skyline::{
    monotone_score, sfs_order, skyline_bnl, skyline_bnl_store, skyline_bnl_store_scalar,
    skyline_reference, skyline_sfs, skyline_sfs_presorted, skyline_sfs_presorted_scalar,
    skyline_sfs_store, skyline_sfs_store_scalar, sorted_by_score, IncrementalSkyline,
    InsertOutcome,
};
