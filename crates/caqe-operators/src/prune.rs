//! Partition-signature pruning over the skyline kernels (DESIGN.md §17).
//!
//! The scalar/block paths of `skyline.rs` resolve a candidate by *touching*
//! window members — float loads, compares, gathers. This layer resolves
//! most of that work on packed integer signatures instead:
//!
//! * [`SigSkyline`] — a streaming skyline (the pruned twin of
//!   [`IncrementalSkyline`](crate::IncrementalSkyline)) whose members are
//!   grouped into BSkyTree-style partition buckets keyed by the coarse
//!   lattice key of their signature. A candidate is first screened against
//!   the pivot (member 0 — the member the scalar loop examines first),
//!   then against whole buckets: a key-incomparable bucket is skipped in
//!   O(1), a key-dominating bucket rejects the candidate without touching
//!   any member point, and only ambiguous buckets fall through to
//!   per-member signature and (last) exact float tests.
//! * [`skyline_bnl_pruned`] / [`skyline_sfs_presorted_pruned`] — batch
//!   entry points feeding a [`SigSkyline`] from a precomputed
//!   [`SigTable`], observationally identical to their scalar twins.
//! * [`PresortCache`] — an interned per-(region, subspace) store of the
//!   `sfs_order` presort and the signature table, so concurrent queries
//!   probing the same candidate set reuse one of each.
//!
//! **Charge parity.** Every path charges the virtual clock and
//! `stats.dom_comparisons` exactly what [`IncrementalSkyline::insert_scalar`]
//! (equivalently the scalar BNL/SFS loops) would: a rejected candidate
//! charges `first-dominator-position + 1`, an admitted candidate charges
//! the pre-insert window size — both derivable from positions alone, since
//! a valid skyline never presents a dominator *and* an eviction for the
//! same candidate (transitivity; the scalar loop debug-asserts this).
//! Evictions replay the scalar `swap_remove` walk on integer indices so
//! the member (and removed-tag) order stays bit-identical. The bucket
//! directory, signatures and screening are uncharged physical work, like
//! the SFS presort and the PR 6 bulk screens.

use crate::skyline::{sfs_order, InsertOutcome};
use caqe_types::sig::{sig_relate, SigQuantizer, SigTable, SIG_POISON};
use caqe_types::{DimMask, DomKernel, DomRelation, PointStore, SimClock, Stats, Value};

/// Streaming skyline maintenance with partition-signature pruning: the
/// observationally-identical pruned twin of
/// [`IncrementalSkyline`](crate::IncrementalSkyline).
#[derive(Debug, Clone)]
pub struct SigSkyline {
    mask: DimMask,
    quant: SigQuantizer,
    kernel: Option<DomKernel>,
    stride: usize,
    tags: Vec<u64>,
    /// Flat member points; member `i` is `data[i*stride..(i+1)*stride]`.
    data: Vec<Value>,
    /// Full signature per member, in window order (poisoned members carry
    /// [`SIG_POISON`] and always resolve through the float path).
    sigs: Vec<u64>,
    /// Partition directory in flat pivot order: bucket `b` has coarse key
    /// `keys[b]`, earliest window position `minpos[b]`, and members
    /// `mpos[starts[b]..starts[b+1]]`. Buckets ascend by `minpos` — the
    /// order the scalar loop would first touch them — which is what makes
    /// the probe's early exit exact (see [`SigSkyline::insert_sig`]).
    /// Poisoned members pool under [`SIG_POISON`], whose set spare bits
    /// make every key test ambiguous. Rebuilt wholesale on admission;
    /// admissions are rare next to probes, so probe layout wins.
    keys: Vec<u64>,
    minpos: Vec<u32>,
    starts: Vec<u32>,
    mpos: Vec<u32>,
}

impl SigSkyline {
    /// An empty pruned skyline over `mask`, quantizing with `quant`. The
    /// point stride is learned from the first insertion.
    pub fn new(mask: DimMask, quant: SigQuantizer) -> Self {
        SigSkyline {
            mask,
            quant,
            kernel: None,
            stride: 0,
            tags: Vec::new(),
            data: Vec::new(),
            sigs: Vec::new(),
            keys: Vec::new(),
            minpos: Vec::new(),
            starts: Vec::new(),
            mpos: Vec::new(),
        }
    }

    /// The subspace this skyline is maintained over.
    pub fn mask(&self) -> DimMask {
        self.mask
    }

    /// Current number of skyline members.
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// Whether the skyline is empty.
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }

    /// Tags of the current members, in insertion order (bit-identical to
    /// the scalar twin's order).
    pub fn tags(&self) -> impl Iterator<Item = u64> + '_ {
        self.tags.iter().copied()
    }

    /// `(tag, point)` of every current member, in insertion order.
    pub fn entries(&self) -> impl ExactSizeIterator<Item = (u64, &[Value])> + '_ {
        let stride = self.stride;
        self.tags
            .iter()
            .enumerate()
            .map(move |(i, &t)| (t, &self.data[i * stride..(i + 1) * stride]))
    }

    /// The pivot's signature (member 0 — the member the scalar loop
    /// examines first), if the window is non-empty. A candidate whose
    /// signature this provably dominates is rejected with charge 1,
    /// exactly the scalar outcome — the batch entry points use it to
    /// resolve runs of such candidates without entering the insert path.
    #[inline]
    pub fn pivot_sig(&self) -> Option<u64> {
        self.sigs.first().copied()
    }

    /// The quantizer's spare-bit mask, for [`sig_relate`] against
    /// signatures produced by this skyline's quantizer.
    #[inline]
    pub fn high(&self) -> u64 {
        self.quant.high_mask()
    }

    #[inline]
    fn ensure_kernel(&mut self, stride: usize) {
        if self.kernel.is_none() {
            self.stride = stride;
            self.kernel = Some(DomKernel::new(self.mask, stride));
        }
    }

    /// The bucket key of a member signature (poison stays poison so the
    /// member lands in the always-ambiguous pool).
    #[inline]
    fn key_of(&self, sig: u64) -> u64 {
        if sig & self.quant.high_mask() != 0 {
            SIG_POISON
        } else {
            self.quant.bucket_key(sig)
        }
    }

    /// Rebuilds the flat partition directory from scratch: group window
    /// positions by coarse key, then lay the buckets out ascending by their
    /// earliest position (pivot order). Only needed after evictions shift
    /// positions; plain admissions use [`SigSkyline::admit_to_bucket`].
    fn rebuild_buckets(&mut self) {
        let mut pairs: Vec<(u64, u32)> = (0..self.sigs.len() as u32)
            .map(|i| (self.key_of(self.sigs[i as usize]), i))
            .collect();
        pairs.sort_unstable();
        // (minpos, key, range into `pairs`) per bucket; `pairs` is sorted
        // by (key, pos), so the first position of each run is its minimum.
        let mut groups: Vec<(u32, u64, usize, usize)> = Vec::new();
        for (i, &(k, p)) in pairs.iter().enumerate() {
            match groups.last_mut() {
                Some(g) if g.1 == k => g.3 = i + 1,
                _ => groups.push((p, k, i, i + 1)),
            }
        }
        groups.sort_unstable_by_key(|g| g.0);
        self.keys.clear();
        self.minpos.clear();
        self.starts.clear();
        self.mpos.clear();
        self.starts.push(0);
        for (mp, k, lo, hi) in groups {
            self.keys.push(k);
            self.minpos.push(mp);
            self.mpos.extend(pairs[lo..hi].iter().map(|&(_, p)| p));
            self.starts.push(self.mpos.len() as u32);
        }
    }

    /// Files freshly-admitted position `pos` (the current window maximum)
    /// under `key` without disturbing pivot order: joining an existing
    /// bucket leaves its minimum unchanged, and a brand-new bucket's
    /// minimum *is* `pos`, the largest so far — it belongs at the end.
    /// Allocation-free on the hot path (amortized `Vec` growth only).
    fn admit_to_bucket(&mut self, key: u64, pos: u32) {
        if let Some(b) = self.keys.iter().position(|&k| k == key) {
            self.mpos.insert(self.starts[b + 1] as usize, pos);
            for s in &mut self.starts[b + 1..] {
                *s += 1;
            }
        } else {
            if self.starts.is_empty() {
                self.starts.push(0);
            }
            self.keys.push(key);
            self.minpos.push(pos);
            self.mpos.push(pos);
            self.starts.push(self.mpos.len() as u32);
        }
    }

    /// Inserts a point, quantizing its signature here (counted in
    /// `stats.sig_builds`). See [`SigSkyline::insert_sig`].
    pub fn insert(
        &mut self,
        tag: u64,
        point: &[Value],
        clock: &mut SimClock,
        stats: &mut Stats,
    ) -> InsertOutcome {
        stats.sig_builds += 1;
        let sig = self.quant.sig(point);
        self.insert_sig(tag, point, sig, clock, stats)
    }

    /// Inserts a point whose signature was precomputed (e.g. read from a
    /// shared [`SigTable`]), maintaining the skyline invariant. Charges one
    /// dominance comparison per member the scalar loop would examine.
    #[inline]
    pub fn insert_sig(
        &mut self,
        tag: u64,
        point: &[Value],
        sig: u64,
        clock: &mut SimClock,
        stats: &mut Stats,
    ) -> InsertOutcome {
        // Pivot screen: the scalar loop examines member 0 first, and on
        // skyline-sized windows that is where the overwhelming majority of
        // rejects happen — one SWAR test, charge exactly 1. Kept in an
        // inlinable wrapper so streaming callers resolve the common case
        // without a call into the full probe below.
        if let Some(&p0) = self.sigs.first() {
            if sig_relate(p0, sig, self.quant.high_mask()) == Some(DomRelation::Dominates) {
                clock.charge_dom_cmps(1);
                stats.dom_comparisons += 1;
                return InsertOutcome::Dominated;
            }
        }
        self.insert_sig_probe(tag, point, sig, clock, stats)
    }

    /// The full partition probe behind [`SigSkyline::insert_sig`], for
    /// candidates the pivot screen could not reject.
    fn insert_sig_probe(
        &mut self,
        tag: u64,
        point: &[Value],
        sig: u64,
        clock: &mut SimClock,
        stats: &mut Stats,
    ) -> InsertOutcome {
        self.ensure_kernel(point.len());
        debug_assert_eq!(point.len(), self.stride, "stride mismatch");
        let h = self.quant.high_mask();
        let w = self.tags.len();

        // Partition pass: classify whole buckets by coarse key, resolving
        // members only inside ambiguous buckets. Buckets are walked in
        // pivot order (ascending earliest position), so once a dominator at
        // position `f` is known, every remaining bucket's members sit at
        // positions >= `minpos[b]` >= `f` — no later dominator can lower
        // the scalar loop's stop position, and the walk exits early.
        // (Transitivity also rules out evictions once a dominator exists,
        // so nothing the skipped tail could contribute is observable.)
        let ck = self.key_of(sig);
        let mut first_dom: Option<u32> = None;
        let mut bucket_rejected = false;
        let mut evict: Vec<u32> = Vec::new();
        // Allowed survivor: `ensure_kernel` above guarantees the kernel is
        // populated — this cannot fire.
        #[allow(clippy::expect_used)]
        let kernel = self.kernel.as_ref().expect("just initialized");
        for b in 0..self.keys.len() {
            if let Some(f) = first_dom {
                if self.minpos[b] >= f {
                    break;
                }
            }
            match sig_relate(self.keys[b], ck, h) {
                Some(DomRelation::Incomparable) => {
                    // Key-exact: every member of the bucket is incomparable
                    // to the candidate. O(1) skip, no member touched.
                    stats.sig_partitions_skipped += 1;
                }
                Some(DomRelation::Dominates) => {
                    // Key-exact: every member strictly improves on the
                    // candidate in every dimension. Reject without touching
                    // member points — the charge needs only the earliest
                    // (scalar-first) position in the bucket.
                    bucket_rejected = true;
                    let mp = self.minpos[b];
                    first_dom = Some(first_dom.map_or(mp, |f| f.min(mp)));
                }
                Some(DomRelation::DominatedBy) => {
                    // Key-exact: the candidate strictly improves on every
                    // member — whole-bucket eviction.
                    evict.extend_from_slice(
                        &self.mpos[self.starts[b] as usize..self.starts[b + 1] as usize],
                    );
                }
                // Ambiguous bucket (ties or a poisoned key): resolve each
                // member, full signature first, exact float test last.
                _ => {
                    for &m in &self.mpos[self.starts[b] as usize..self.starts[b + 1] as usize] {
                        let mi = m as usize;
                        let verdict = match sig_relate(self.sigs[mi], sig, h) {
                            Some(v) => v,
                            None => kernel.relate(
                                &self.data[mi * self.stride..(mi + 1) * self.stride],
                                point,
                            ),
                        };
                        match verdict {
                            DomRelation::Dominates => {
                                first_dom = Some(first_dom.map_or(m, |f| f.min(m)));
                            }
                            DomRelation::DominatedBy => evict.push(m),
                            DomRelation::Equal | DomRelation::Incomparable => {}
                        }
                    }
                }
            }
        }
        if bucket_rejected {
            stats.sig_partitions_rejected += 1;
        }

        match first_dom {
            Some(p) => {
                // The scalar loop walks positions in order and stops at the
                // first dominator; no eviction can precede it (transitivity
                // — a candidate dominating member X while member Y
                // dominates the candidate would mean Y dominates X).
                debug_assert!(evict.is_empty(), "partial order violated");
                clock.charge_dom_cmps(u64::from(p) + 1);
                stats.dom_comparisons += u64::from(p) + 1;
                InsertOutcome::Dominated
            }
            None => {
                // The scalar loop examines every member exactly once
                // (evicted slots are backfilled by `swap_remove` with
                // not-yet-examined members), then appends.
                clock.charge_dom_cmps(w as u64);
                stats.dom_comparisons += w as u64;
                let removed = if evict.is_empty() {
                    Vec::new()
                } else {
                    self.apply_evictions(&mut evict)
                };
                let pos = self.tags.len() as u32;
                self.tags.push(tag);
                self.data.extend_from_slice(point);
                self.sigs.push(sig);
                if removed.is_empty() {
                    self.admit_to_bucket(self.key_of(sig), pos);
                } else {
                    // Eviction shifted positions under the directory; a
                    // wholesale rebuild restores pivot order. Evictions are
                    // orders of magnitude rarer than probes.
                    self.rebuild_buckets();
                }
                InsertOutcome::Added { removed }
            }
        }
    }

    /// Replays the scalar eviction walk on integer indices: `evict` holds
    /// the *pre-insert* positions the candidate dominates; the walk
    /// `swap_remove`s them in the exact order `insert_scalar` would,
    /// keeping member order — and the removed-tag order — bit-identical.
    fn apply_evictions(&mut self, evict: &mut [u32]) -> Vec<u64> {
        evict.sort_unstable();
        let stride = self.stride;
        // orig[j] = pre-insert position of the member currently at slot j.
        let mut orig: Vec<u32> = (0..self.tags.len() as u32).collect();
        let mut removed = Vec::with_capacity(evict.len());
        let mut k = 0;
        while k < orig.len() {
            if evict.binary_search(&orig[k]).is_ok() {
                orig.swap_remove(k);
                removed.push(self.tags.swap_remove(k));
                self.sigs.swap_remove(k);
                let last = self.tags.len();
                if k != last {
                    let (head, tail) = self.data.split_at_mut(last * stride);
                    head[k * stride..(k + 1) * stride].copy_from_slice(&tail[..stride]);
                }
                self.data.truncate(last * stride);
            } else {
                k += 1;
            }
        }
        // Positions shifted under the walk; the caller (always the admit
        // branch) rebuilds the directory right after appending.
        removed
    }
}

/// Partition-signature BNL: observationally identical to
/// [`skyline_bnl_store_scalar`](crate::skyline_bnl_store_scalar) (same
/// result set, charges, and Stats observables), resolving candidates on
/// the shared signature `table` instead of member point rows.
pub fn skyline_bnl_pruned(
    points: &PointStore,
    kernel: &DomKernel,
    table: &SigTable,
    clock: &mut SimClock,
    stats: &mut Stats,
) -> Vec<usize> {
    debug_assert_eq!(table.len(), points.len(), "signature table mismatch");
    let mut sky = SigSkyline::new(kernel.mask(), table.quantizer().clone());
    let h = table.quantizer().high_mask();
    let n = points.len();
    let mut i = 0;
    while i < n {
        // Pivot-run: consecutive candidates the pivot signature provably
        // dominates are each a scalar charge-1 reject with no state change
        // — resolve the whole run in one tight signature scan.
        if let Some(p0) = sky.pivot_sig() {
            let start = i;
            while i < n && sig_relate(p0, table.sig(i), h) == Some(DomRelation::Dominates) {
                i += 1;
            }
            let run = (i - start) as u64;
            clock.charge_dom_cmps(run);
            stats.dom_comparisons += run;
        }
        if i < n {
            sky.insert_sig(i as u64, points.at(i), table.sig(i), clock, stats);
            i += 1;
        }
    }
    let mut out: Vec<usize> = sky.tags().map(|t| t as usize).collect();
    out.sort_unstable();
    out
}

/// Partition-signature SFS filter over a precomputed
/// [`sfs_order`]: observationally identical to
/// [`skyline_sfs_presorted_scalar`](crate::skyline_sfs_presorted_scalar).
pub fn skyline_sfs_presorted_pruned(
    points: &PointStore,
    kernel: &DomKernel,
    order: &[usize],
    table: &SigTable,
    clock: &mut SimClock,
    stats: &mut Stats,
) -> Vec<usize> {
    debug_assert_eq!(table.len(), points.len(), "signature table mismatch");
    let mut sky = SigSkyline::new(kernel.mask(), table.quantizer().clone());
    let h = table.quantizer().high_mask();
    let n = order.len();
    let mut k = 0;
    while k < n {
        // Pivot-run, as in [`skyline_bnl_pruned`] but walking the presort.
        if let Some(p0) = sky.pivot_sig() {
            let start = k;
            while k < n && sig_relate(p0, table.sig(order[k]), h) == Some(DomRelation::Dominates) {
                k += 1;
            }
            let run = (k - start) as u64;
            clock.charge_dom_cmps(run);
            stats.dom_comparisons += run;
        }
        if k < n {
            let i = order[k];
            let out = sky.insert_sig(i as u64, points.at(i), table.sig(i), clock, stats);
            // After a monotone presort an incoming point never dominates an
            // admitted survivor.
            debug_assert!(
                !matches!(out, InsertOutcome::Added { ref removed } if !removed.is_empty())
            );
            k += 1;
        }
    }
    let mut out: Vec<usize> = sky.tags().map(|t| t as usize).collect();
    out.sort_unstable();
    out
}

/// One interned presort/signature bundle: everything the pruned skyline
/// paths derive from a candidate store, built once and shared.
#[derive(Debug, Clone)]
pub struct CachedPresort {
    /// Monotone-score presort of the store ([`sfs_order`]).
    pub order: Vec<usize>,
    /// Per-point signatures over the cached subspace.
    pub table: SigTable,
}

/// A deterministic interning cache of [`CachedPresort`] bundles keyed by
/// `(region key, subspace mask)` — the shared structure that lets
/// concurrent queries probing the same candidate set reuse one presort and
/// one signature table instead of re-deriving them per query. Lookups are
/// a linear scan over a small `Vec` (no hash state, insertion order is the
/// build order), so behavior is identical across thread counts.
#[derive(Debug, Clone, Default)]
pub struct PresortCache {
    entries: Vec<(u64, DimMask, Option<CachedPresort>)>,
}

impl PresortCache {
    /// An empty cache.
    pub fn new() -> Self {
        PresortCache::default()
    }

    /// Number of interned entries (negative entries included).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns the interned presort/signature bundle for `(key, mask)`,
    /// building it on first use. `None` means the subspace does not
    /// support signatures (too wide, or NaN bounds) — that outcome is
    /// interned too, so repeated lookups stay O(1). Hits and misses are
    /// counted in `stats.presort_cache_{hits,misses}`.
    pub fn get_or_build(
        &mut self,
        key: u64,
        mask: DimMask,
        points: &PointStore,
        kernel: &DomKernel,
        stats: &mut Stats,
    ) -> Option<&CachedPresort> {
        if let Some(i) = self
            .entries
            .iter()
            .position(|(k, m, _)| *k == key && *m == mask)
        {
            stats.presort_cache_hits += 1;
            return self.entries[i].2.as_ref();
        }
        stats.presort_cache_misses += 1;
        let built = SigTable::try_build(points, mask, stats).map(|table| CachedPresort {
            order: sfs_order(points, kernel),
            table,
        });
        self.entries.push((key, mask, built));
        self.entries[self.entries.len() - 1].2.as_ref()
    }

    /// The interned entries in build order (for persistence).
    pub fn entries(&self) -> &[(u64, DimMask, Option<CachedPresort>)] {
        &self.entries
    }

    /// Serializes the cache in the line-oriented plan-snapshot form
    /// (DESIGN.md §19): one `entry` line per interned key, followed by the
    /// presort order, quantizer parts and signature column of positive
    /// entries. All floats travel as IEEE-754 bit hex, so a restored cache
    /// is bit-identical — including interned *negative* entries, which are
    /// as much a deterministic observable as positive ones (they keep
    /// repeat lookups from re-probing an unsupported subspace).
    pub fn to_text(&self) -> String {
        use caqe_types::persist::f64_hex;
        use std::fmt::Write as _;
        let mut out = format!("presortcache {}\n", self.entries.len());
        for (key, mask, entry) in &self.entries {
            let tag = if entry.is_some() { "some" } else { "none" };
            let _ = writeln!(out, "entry {key:016x} {} {tag}", mask.0);
            if let Some(cached) = entry {
                out.push_str("order");
                for &i in &cached.order {
                    let _ = write!(out, " {i}");
                }
                out.push('\n');
                let q = cached.table.quantizer().to_parts();
                out.push_str("quant");
                let _ = write!(out, " {}", q.dims.len());
                for &d in &q.dims {
                    let _ = write!(out, " {d}");
                }
                for v in q.lo.iter().chain(q.scale.iter()) {
                    let _ = write!(out, " {}", f64_hex(*v));
                }
                let _ = writeln!(
                    out,
                    " {} {} {:016x} {:016x}",
                    q.field_width, q.levels, q.high_mask, q.coarse_mask
                );
                out.push_str("sigs");
                for s in cached.table.sigs() {
                    let _ = write!(out, " {s:016x}");
                }
                out.push('\n');
            }
        }
        out
    }

    /// Parses the form produced by [`PresortCache::to_text`], returning a
    /// reason on any structural mismatch — corrupt snapshot input must
    /// never produce a cache that panics later.
    pub fn from_text(text: &str) -> Result<PresortCache, String> {
        use caqe_types::persist::{parse_f64_hex, parse_usize};
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty presort cache text")?;
        let mut f = header.split_whitespace();
        if f.next() != Some("presortcache") {
            return Err("missing `presortcache` header".to_string());
        }
        let count = f.next().and_then(parse_usize).ok_or("bad entry count")?;
        let mut entries = Vec::with_capacity(count);
        for e in 0..count {
            let line = lines.next().ok_or_else(|| format!("missing entry {e}"))?;
            let mut f = line.split_whitespace();
            if f.next() != Some("entry") {
                return Err(format!("entry {e}: missing `entry` tag"));
            }
            let key = f
                .next()
                .and_then(|s| u64::from_str_radix(s, 16).ok())
                .ok_or_else(|| format!("entry {e}: bad key"))?;
            let mask = f
                .next()
                .and_then(|s| s.parse::<u32>().ok())
                .map(DimMask)
                .ok_or_else(|| format!("entry {e}: bad mask"))?;
            let cached = match f.next() {
                Some("none") => None,
                Some("some") => {
                    let order_line = lines.next().ok_or_else(|| format!("entry {e}: no order"))?;
                    let mut o = order_line.split_whitespace();
                    if o.next() != Some("order") {
                        return Err(format!("entry {e}: missing `order` tag"));
                    }
                    let order: Vec<usize> = o
                        .map(|s| parse_usize(s).ok_or_else(|| format!("entry {e}: bad order")))
                        .collect::<Result<_, _>>()?;
                    let quant_line = lines.next().ok_or_else(|| format!("entry {e}: no quant"))?;
                    let mut q = quant_line.split_whitespace();
                    if q.next() != Some("quant") {
                        return Err(format!("entry {e}: missing `quant` tag"));
                    }
                    let d = q
                        .next()
                        .and_then(parse_usize)
                        .ok_or_else(|| format!("entry {e}: bad quant width"))?;
                    let mut take_usize = |what: &str| {
                        q.next()
                            .and_then(parse_usize)
                            .ok_or_else(|| format!("entry {e}: bad quant {what}"))
                    };
                    let dims: Vec<usize> = (0..d)
                        .map(|_| take_usize("dim"))
                        .collect::<Result<_, _>>()?;
                    let mut take_f64 = |what: &str| {
                        q.next()
                            .and_then(parse_f64_hex)
                            .ok_or_else(|| format!("entry {e}: bad quant {what}"))
                    };
                    let lo: Vec<Value> =
                        (0..d).map(|_| take_f64("lo")).collect::<Result<_, _>>()?;
                    let scale: Vec<Value> = (0..d)
                        .map(|_| take_f64("scale"))
                        .collect::<Result<_, _>>()?;
                    let field_width = q
                        .next()
                        .and_then(|s| s.parse::<u32>().ok())
                        .ok_or_else(|| format!("entry {e}: bad field width"))?;
                    let levels = q
                        .next()
                        .and_then(|s| s.parse::<u64>().ok())
                        .ok_or_else(|| format!("entry {e}: bad levels"))?;
                    let high_mask = q
                        .next()
                        .and_then(|s| u64::from_str_radix(s, 16).ok())
                        .ok_or_else(|| format!("entry {e}: bad high mask"))?;
                    let coarse_mask = q
                        .next()
                        .and_then(|s| u64::from_str_radix(s, 16).ok())
                        .ok_or_else(|| format!("entry {e}: bad coarse mask"))?;
                    if q.next().is_some() {
                        return Err(format!("entry {e}: trailing quant fields"));
                    }
                    let quant = SigQuantizer::from_parts(caqe_types::SigQuantizerParts {
                        dims,
                        lo,
                        scale,
                        field_width,
                        levels,
                        high_mask,
                        coarse_mask,
                    })
                    .ok_or_else(|| format!("entry {e}: inconsistent quantizer"))?;
                    let sigs_line = lines.next().ok_or_else(|| format!("entry {e}: no sigs"))?;
                    let mut s = sigs_line.split_whitespace();
                    if s.next() != Some("sigs") {
                        return Err(format!("entry {e}: missing `sigs` tag"));
                    }
                    let sigs: Vec<u64> = s
                        .map(|v| {
                            u64::from_str_radix(v, 16).map_err(|_| format!("entry {e}: bad sig"))
                        })
                        .collect::<Result<_, _>>()?;
                    if sigs.len() != order.len() {
                        return Err(format!(
                            "entry {e}: {} sigs for {} ordered points",
                            sigs.len(),
                            order.len()
                        ));
                    }
                    Some(CachedPresort {
                        order,
                        table: SigTable::from_parts(quant, sigs),
                    })
                }
                _ => return Err(format!("entry {e}: bad some/none tag")),
            };
            entries.push((key, mask, cached));
        }
        if lines.next().is_some() {
            return Err("trailing lines after last entry".to_string());
        }
        Ok(PresortCache { entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skyline::{
        skyline_bnl_store_scalar, skyline_sfs_presorted_scalar, IncrementalSkyline,
    };
    use caqe_types::Value;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Coarse-grid random rows (forcing duplicates and ties). `with_nan`
    /// poisons dimension 0 of *every* row: dominance degenerates to the
    /// remaining dimensions (still a strict partial order, so the scalar
    /// reference stays sound) while every signature poisons, driving the
    /// pruned path through its float-fallback lane end to end. NaN in only
    /// *some* rows would let a NaN candidate break dominance transitivity —
    /// the invariant the scalar loop debug-asserts and ingestion validation
    /// upholds — so the reference itself would panic.
    fn random_store(n: usize, d: usize, seed: u64, with_nan: bool) -> PointStore {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut s = PointStore::new(d);
        let mut row = vec![0.0; d];
        for _ in 0..n {
            for v in row.iter_mut() {
                *v = (rng.gen_range(0..12) as Value) / 4.0;
            }
            if with_nan {
                row[0] = Value::NAN;
            }
            s.push(&row);
        }
        s
    }

    fn assert_obs_equal(a: (&[usize], &SimClock, &Stats), b: (&[usize], &SimClock, &Stats)) {
        assert_eq!(a.0, b.0, "result sets differ");
        assert_eq!(a.1.ticks(), b.1.ticks(), "tick charges differ");
        assert_eq!(a.2.observable(), b.2.observable(), "observables differ");
    }

    #[test]
    fn pruned_bnl_matches_scalar_exactly() {
        for seed in 0..12u64 {
            for d in [2usize, 3, 4] {
                let store = random_store(160, d, 0xC0FFEE + seed, seed % 3 == 0);
                let mask = DimMask::full(d);
                let kernel = DomKernel::new(mask, d);
                let mut c1 = SimClock::default();
                let mut s1 = Stats::new();
                let scalar = skyline_bnl_store_scalar(&store, &kernel, &mut c1, &mut s1);
                let mut s0 = Stats::new();
                let table = SigTable::try_build(&store, mask, &mut s0).unwrap();
                let mut c2 = SimClock::default();
                let mut s2 = Stats::new();
                let pruned = skyline_bnl_pruned(&store, &kernel, &table, &mut c2, &mut s2);
                assert_obs_equal((&scalar, &c1, &s1), (&pruned, &c2, &s2));
            }
        }
    }

    #[test]
    fn pruned_sfs_matches_scalar_exactly() {
        for seed in 0..12u64 {
            let d = 2 + (seed as usize % 3);
            // No NaN variant here: a NaN score column voids the monotone
            // presort that SFS's no-eviction invariant rests on.
            let store = random_store(200, d, 0xBEEF + seed, false);
            let mask = DimMask::full(d);
            let kernel = DomKernel::new(mask, d);
            let order = sfs_order(&store, &kernel);
            let mut c1 = SimClock::default();
            let mut s1 = Stats::new();
            let scalar = skyline_sfs_presorted_scalar(&store, &kernel, &order, &mut c1, &mut s1);
            let mut s0 = Stats::new();
            let table = SigTable::try_build(&store, mask, &mut s0).unwrap();
            let mut c2 = SimClock::default();
            let mut s2 = Stats::new();
            let pruned =
                skyline_sfs_presorted_pruned(&store, &kernel, &order, &table, &mut c2, &mut s2);
            assert_obs_equal((&scalar, &c1, &s1), (&pruned, &c2, &s2));
        }
    }

    #[test]
    fn sig_skyline_streams_identically_to_incremental() {
        for seed in 0..10u64 {
            let d = 2 + (seed as usize % 3);
            let store = random_store(180, d, 0xFACE + seed, seed % 3 == 1);
            let mask = DimMask::from_dims(0..d.min(2));
            let quant = SigQuantizer::from_store(&store, mask).unwrap();
            let mut inc = IncrementalSkyline::new(mask);
            let mut c1 = SimClock::default();
            let mut s1 = Stats::new();
            let mut sig = SigSkyline::new(mask, quant);
            let mut c2 = SimClock::default();
            let mut s2 = Stats::new();
            for i in 0..store.len() {
                let a = inc.insert_scalar(i as u64, store.at(i), &mut c1, &mut s1);
                let b = sig.insert(i as u64, store.at(i), &mut c2, &mut s2);
                assert_eq!(a, b, "outcome diverged at point {i} (seed {seed})");
            }
            assert_eq!(
                inc.tags().collect::<Vec<_>>(),
                sig.tags().collect::<Vec<_>>(),
                "member order diverged"
            );
            assert_eq!(c1.ticks(), c2.ticks());
            assert_eq!(s1.observable(), s2.observable());
        }
    }

    #[test]
    fn presort_cache_interns_and_counts() {
        let store = random_store(64, 3, 7, false);
        let mask = DimMask::full(3);
        let kernel = DomKernel::new(mask, 3);
        let mut cache = PresortCache::new();
        let mut stats = Stats::new();
        let first = cache
            .get_or_build(42, mask, &store, &kernel, &mut stats)
            .unwrap()
            .order
            .clone();
        assert_eq!(stats.presort_cache_misses, 1);
        assert_eq!(stats.presort_cache_hits, 0);
        let again = cache
            .get_or_build(42, mask, &store, &kernel, &mut stats)
            .unwrap()
            .order
            .clone();
        assert_eq!(stats.presort_cache_hits, 1);
        assert_eq!(first, again);
        // A different subspace under the same key is a distinct entry.
        cache.get_or_build(42, DimMask::from_dims([0, 1]), &store, &kernel, &mut stats);
        assert_eq!(stats.presort_cache_misses, 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn presort_cache_text_round_trips_bit_exactly() {
        let store = random_store(48, 3, 11, false);
        let mask = DimMask::full(3);
        let kernel = DomKernel::new(mask, 3);
        let mut cache = PresortCache::new();
        let mut stats = Stats::new();
        cache.get_or_build(7, mask, &store, &kernel, &mut stats);
        cache.get_or_build(9, DimMask::from_dims([0, 2]), &store, &kernel, &mut stats);
        // Interned negative entry: a NaN store refuses a signature table.
        let poisoned = random_store(16, 3, 11, true);
        let wide = SigQuantizer::from_store(&poisoned, mask);
        assert!(wide.is_some(), "NaN rows poison sigs, not the quantizer");
        let empty = PointStore::new(3);
        cache.get_or_build(13, mask, &empty, &kernel, &mut stats);
        assert!(cache.entries()[2].2.is_none(), "expected a negative entry");

        let back = PresortCache::from_text(&cache.to_text()).unwrap();
        assert_eq!(back.len(), cache.len());
        for (a, b) in back.entries().iter().zip(cache.entries()) {
            assert_eq!((a.0, a.1), (b.0, b.1));
            match (&a.2, &b.2) {
                (None, None) => {}
                (Some(x), Some(y)) => {
                    assert_eq!(x.order, y.order);
                    assert_eq!(x.table.sigs(), y.table.sigs());
                    assert_eq!(x.table.quantizer(), y.table.quantizer());
                }
                _ => panic!("entry polarity diverged"),
            }
        }
        // A restored positive entry answers lookups without rebuilding.
        let mut restored = back;
        let before = stats.presort_cache_misses;
        restored
            .get_or_build(7, mask, &store, &kernel, &mut stats)
            .unwrap();
        assert_eq!(stats.presort_cache_misses, before);

        // Corruption is refused with a reason, never a panic.
        let text = cache.to_text();
        assert!(PresortCache::from_text("").is_err());
        assert!(PresortCache::from_text("presortcache forty").is_err());
        let truncated = &text[..text.len() / 2];
        assert!(PresortCache::from_text(truncated).is_err());
        assert!(PresortCache::from_text(&format!("{text}junk\n")).is_err());
    }
}
