//! The session front door and the wall-clock epoch driver.
//!
//! # Core/driver split
//!
//! The server never touches the engine's virtual clock. Queued submissions
//! are drained in fixed-size FIFO batches ("epochs"); each epoch is one
//! deterministic [`try_run_engine_online_traced`] run over a workload
//! built from the batch — the first session seeds the initial workload,
//! the rest arrive through the engine's own `EventStream` admission
//! machinery. Given the same submission order, the epoch partition and
//! therefore every per-session outcome is bit-identical, whether or not
//! the server was killed and restored in between — that is the whole
//! restore-equivalence argument, and `tests/serve_robustness.rs` checks it
//! digest-by-digest.
//!
//! # Robustness
//!
//! * Backpressure: the queue is a [`BoundedQueue`]; overflow and
//!   shed-mode submissions get a typed [`RejectReason`] and an
//!   `AdmissionReject` trace event.
//! * Watchdogs: queued sessions carry wall-clock deadlines; stale ones
//!   expire before each epoch instead of wasting engine time.
//! * Isolation: every engine run goes through [`with_retry`] —
//!   `catch_unwind` plus exponential backoff on transient failures.
//!   Panics become typed [`SessionFailure`]s; none escape the driver.

use crate::negotiate::NegotiationPolicy;
use crate::queue::{BoundedQueue, RejectReason};
use crate::snapshot::{
    load_snapshot, write_snapshot, CompletedRecord, ContractSpec, SessionRecord, Snapshot,
    SnapshotError, SNAPSHOT_VERSION,
};
use caqe_contract::Contract;
use caqe_core::{
    try_run_engine_online_prepared, EngineConfig, EventStream, ExecConfig, PlanError, PreparedPlan,
    QueryOutcome, QuerySpec, RunOutcome, SchedulingPolicy, SessionEvent, Workload,
};
use caqe_data::Table;
use caqe_faults::WallRetryPolicy;
use caqe_obs::{names, MetricsRegistry, ObsCollector, ObsConfig};
use caqe_trace::{NoopSink, RecordingSink, TraceEvent};
use caqe_types::EngineError;
use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Strategy name stamped into epoch traces.
const STRATEGY: &str = "CAQE-SERVE";

/// Serving-layer knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Admission-queue bound; submissions past it are rejected with
    /// [`RejectReason::QueueFull`].
    pub queue_bound: usize,
    /// Maximum sessions drained into one epoch (one deterministic engine
    /// run). The FIFO quantization this imposes is what makes the restore
    /// proof work — do not vary it across a snapshot boundary.
    pub epoch_batch: usize,
    /// Wall-clock deadline applied to submissions that do not carry one,
    /// in milliseconds.
    pub default_deadline_ms: u64,
    /// Retry/backoff for transient epoch failures and caught panics.
    pub retry: WallRetryPolicy,
    /// Contract negotiation limits.
    pub negotiation: NegotiationPolicy,
    /// Mean-satisfaction floor under which new submissions are shed
    /// (0 disables, mirroring the engine's `DegradationPolicy`).
    pub shed_floor: f64,
    /// Virtual-tick spacing between in-epoch admissions (0 admits the
    /// whole batch at tick 0).
    pub admit_spacing_ticks: u64,
    /// Record per-epoch engine traces (costs memory; for tests and trace
    /// dumps).
    pub keep_epoch_traces: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_bound: 8,
            epoch_batch: 4,
            default_deadline_ms: 300_000,
            retry: WallRetryPolicy::default(),
            negotiation: NegotiationPolicy::default(),
            shed_floor: 0.0,
            admit_spacing_ticks: 0,
            keep_epoch_traces: false,
        }
    }
}

/// One client submission.
#[derive(Debug, Clone)]
pub struct SubmitRequest {
    /// Index into the server's prepared-statement catalog.
    pub catalog: usize,
    /// Query priority `pr_i ∈ [0, 1]`.
    pub priority: f64,
    /// The contract the client asks for (negotiation may relax it).
    pub contract: Contract,
    /// Wall-clock deadline override in milliseconds.
    pub deadline_ms: Option<u64>,
}

/// What a completed session looks like to `attach`/`status`.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionResult {
    /// Final satisfaction `v(Q_i)`.
    pub satisfaction: f64,
    /// Results emitted.
    pub results: u64,
    /// Deterministic digest of the session's emissions + results.
    pub digest: u64,
    /// Whether negotiation changed the requested contract.
    pub contract_adjusted: bool,
    /// Whether the epoch finished after the session's wall-clock deadline.
    pub deadline_missed: bool,
}

/// Typed terminal failure — the driver's promise that no panic and no raw
/// error string ever reaches a client.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionFailure {
    /// The engine returned a non-transient error, or a transient one
    /// survived every retry.
    Engine {
        /// The underlying typed error.
        error: EngineError,
        /// Attempts made (1 = no retry).
        attempts: u32,
    },
    /// The engine panicked on every attempt; the payload was caught and
    /// stringified.
    Panicked {
        /// Panic payload rendering.
        message: String,
        /// Attempts made.
        attempts: u32,
    },
}

impl fmt::Display for SessionFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionFailure::Engine { error, attempts } => {
                write!(f, "engine error after {attempts} attempt(s): {error}")
            }
            SessionFailure::Panicked { message, attempts } => {
                write!(f, "engine panicked on all {attempts} attempt(s): {message}")
            }
        }
    }
}

/// Lifecycle of one session.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionState {
    /// Waiting in the admission queue at `position` (0 = next to run).
    Queued {
        /// Distance from the queue front.
        position: usize,
    },
    /// Part of the epoch currently executing.
    Running,
    /// Completed.
    Done(SessionResult),
    /// Terminally failed.
    Failed(SessionFailure),
    /// Cancelled while queued.
    Cancelled,
    /// Expired by the wall-clock deadline watchdog while queued.
    DeadlineExpired,
}

impl SessionState {
    /// Whether the session will never change state again.
    pub fn is_terminal(&self) -> bool {
        !matches!(self, SessionState::Queued { .. } | SessionState::Running)
    }
}

/// Reply to [`CaqeServer::submit`].
#[derive(Debug, Clone, PartialEq)]
pub enum SubmitResponse {
    /// Admitted at `position` in the queue.
    Accepted {
        /// Session handle for `attach`/`status`/`cancel`.
        session: u64,
        /// Queue position at admission time.
        position: usize,
    },
    /// Refused, with the reason — explicit backpressure, never silence.
    Rejected {
        /// Session id burned on the rejected submission (trace key).
        session: u64,
        /// Why.
        reason: RejectReason,
    },
}

/// Summary of one completed epoch (one deterministic engine run).
#[derive(Debug, Clone, PartialEq)]
pub struct EpochReport {
    /// 0-based epoch ordinal.
    pub epoch: u64,
    /// Sessions served, batch order (= engine query-id order).
    pub sessions: Vec<u64>,
    /// [`RunOutcome::digest`] of the epoch, when it succeeded.
    pub outcome_digest: Option<u64>,
    /// Engine attempts spent (1 = first try).
    pub attempts: u32,
    /// Whether every session in the batch completed.
    pub succeeded: bool,
}

struct QueuedSession {
    id: u64,
    catalog: usize,
    priority: f64,
    contract: Contract,
    adjusted: bool,
    deadline: Instant,
}

struct Inner {
    queue: BoundedQueue<QueuedSession>,
    states: BTreeMap<u64, SessionState>,
    completed: Vec<CompletedRecord>,
    next_session: u64,
    epochs: u64,
    server_tick: u64,
    server_events: Vec<TraceEvent>,
    epoch_traces: Vec<(u64, Vec<TraceEvent>)>,
    reg: MetricsRegistry,
    sat_sum: f64,
    sat_count: u64,
    shutting_down: bool,
    running_epoch: bool,
}

impl Inner {
    fn mean_satisfaction(&self) -> f64 {
        if self.sat_count == 0 {
            1.0
        } else {
            self.sat_sum / self.sat_count as f64
        }
    }

    fn push_event(&mut self, make: impl FnOnce(u64) -> TraceEvent) {
        let ev = make(self.server_tick);
        self.server_tick += 1;
        self.server_events.push(ev);
    }

    fn label(state: &SessionState) -> &'static str {
        match state {
            SessionState::Done(_) => "done",
            SessionState::Failed(_) => "failed",
            SessionState::Cancelled => "cancelled",
            SessionState::DeadlineExpired => "expired",
            SessionState::Queued { .. } | SessionState::Running => "live",
        }
    }

    fn finish(&mut self, id: u64, state: SessionState) {
        self.reg.inc(
            &caqe_obs::key(names::SERVE_SESSIONS, &[("state", Inner::label(&state))]),
            1,
        );
        self.states.insert(id, state);
    }

    fn depth_gauges(&mut self) {
        self.reg
            .set_gauge(names::SERVE_QUEUE_DEPTH, self.queue.len() as f64);
        self.reg
            .set_gauge(names::SERVE_QUEUE_DEPTH_PEAK, self.queue.peak() as f64);
    }
}

/// Where the shared plan a restored server runs on came from — the
/// warm-start observability hook: callers learn whether the persisted
/// plan was consumed or why it was discarded.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanProvenance {
    /// The persisted plan passed every integrity check and was installed.
    Warm,
    /// The persisted plan was rejected (typed reason) and the server
    /// rebuilt the plan cold. Never a partial apply: rejection discards
    /// the whole file.
    Rebuilt(PlanError),
}

/// The wall-clock serving front door around the deterministic core.
pub struct CaqeServer {
    tables: (Table, Table),
    catalog: Vec<QuerySpec>,
    exec: ExecConfig,
    engine: EngineConfig,
    cfg: ServeConfig,
    plan: Option<PreparedPlan>,
    inner: Mutex<Inner>,
    cv: Condvar,
}

/// Renders a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `attempt_fn` under `catch_unwind` with the policy's backoff:
/// transient [`EngineError`]s and panics are retried up to
/// `policy.max_attempts` times; everything else (and exhaustion) becomes a
/// typed [`SessionFailure`]. Returns the result and the attempts spent.
pub fn with_retry<T>(
    policy: &WallRetryPolicy,
    mut attempt_fn: impl FnMut(u32) -> Result<T, EngineError>,
) -> (Result<T, SessionFailure>, u32) {
    let max = policy.max_attempts.max(1);
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| attempt_fn(attempt))) {
            Ok(Ok(v)) => return (Ok(v), attempt),
            Ok(Err(e)) => {
                if e.is_transient() && attempt < max {
                    std::thread::sleep(policy.backoff(attempt));
                } else {
                    return (
                        Err(SessionFailure::Engine {
                            error: e,
                            attempts: attempt,
                        }),
                        attempt,
                    );
                }
            }
            Err(payload) => {
                if attempt < max {
                    std::thread::sleep(policy.backoff(attempt));
                } else {
                    return (
                        Err(SessionFailure::Panicked {
                            message: panic_message(payload.as_ref()),
                            attempts: attempt,
                        }),
                        attempt,
                    );
                }
            }
        }
    }
}

/// Per-session digest, field-compatible with the per-query slice of
/// [`RunOutcome::digest`].
fn query_digest(q: &QueryOutcome) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    mix(q.emissions.len() as u64);
    for (ts, util) in &q.emissions {
        mix(ts.to_bits());
        mix(util.to_bits());
    }
    for (rid, tid) in &q.results {
        mix(*rid);
        mix(*tid);
    }
    mix(q.p_score.to_bits());
    mix(q.satisfaction.to_bits());
    h
}

impl CaqeServer {
    /// A fresh server over `tables`, serving the prepared-statement
    /// `catalog` with the engine configuration given.
    ///
    /// # Panics
    /// Panics if the catalog is empty (there would be nothing to serve).
    pub fn new(
        tables: (Table, Table),
        catalog: Vec<QuerySpec>,
        exec: ExecConfig,
        engine: EngineConfig,
        cfg: ServeConfig,
    ) -> Self {
        assert!(!catalog.is_empty(), "catalog must contain a query spec");
        CaqeServer {
            tables,
            catalog,
            exec,
            engine,
            plan: None,
            inner: Mutex::new(Inner {
                queue: BoundedQueue::new(cfg.queue_bound),
                states: BTreeMap::new(),
                completed: Vec::new(),
                next_session: 0,
                epochs: 0,
                server_tick: 0,
                server_events: Vec::new(),
                epoch_traces: Vec::new(),
                reg: MetricsRegistry::new(),
                sat_sum: 0.0,
                sat_count: 0,
                shutting_down: false,
                running_epoch: false,
            }),
            cfg,
            cv: Condvar::new(),
        }
    }

    /// Restores a server from a snapshot written by
    /// [`shutdown_to_snapshot`](CaqeServer::shutdown_to_snapshot).
    ///
    /// Queued sessions resume at their captured queue positions with their
    /// negotiated contracts; completed sessions keep answering `status`
    /// with their snapshot observables. Queued sessions get a fresh
    /// default deadline (wall clocks do not survive restarts). A snapshot
    /// failing any integrity check is never partially applied.
    pub fn restore(
        tables: (Table, Table),
        catalog: Vec<QuerySpec>,
        exec: ExecConfig,
        engine: EngineConfig,
        cfg: ServeConfig,
        path: &Path,
    ) -> Result<(CaqeServer, Snapshot), SnapshotError> {
        let started = Instant::now();
        let snap = load_snapshot(path)?;
        for s in &snap.queued {
            if s.catalog >= catalog.len() {
                return Err(SnapshotError::Corrupt {
                    reason: format!(
                        "queued session {} references catalog entry {} of {}",
                        s.id,
                        s.catalog,
                        catalog.len()
                    ),
                });
            }
        }
        let server = CaqeServer::new(tables, catalog, exec, engine, cfg);
        {
            let mut g = server.lock();
            g.next_session = snap.next_session;
            g.epochs = snap.epochs;
            for c in &snap.completed {
                g.completed.push(*c);
                g.sat_sum += c.satisfaction;
                g.sat_count += 1;
                g.states.insert(
                    c.id,
                    SessionState::Done(SessionResult {
                        satisfaction: c.satisfaction,
                        results: c.results,
                        digest: c.digest,
                        contract_adjusted: false,
                        deadline_missed: false,
                    }),
                );
            }
            let deadline = Instant::now() + Duration::from_millis(cfg.default_deadline_ms);
            for (pos, s) in snap.queued.iter().enumerate() {
                let qs = QueuedSession {
                    id: s.id,
                    catalog: s.catalog,
                    priority: s.priority,
                    contract: s.contract.to_contract(),
                    adjusted: false,
                    deadline,
                };
                if g.queue.try_push(qs).is_err() {
                    return Err(SnapshotError::Corrupt {
                        reason: format!(
                            "snapshot queue ({} sessions) exceeds the configured bound {}",
                            snap.queued.len(),
                            cfg.queue_bound
                        ),
                    });
                }
                g.states
                    .insert(s.id, SessionState::Queued { position: pos });
            }
            let queued = snap.queued.len() as u32;
            let completed = snap.completed.len() as u32;
            g.push_event(|tick| TraceEvent::ServerRestore {
                tick,
                snapshot_version: snap.version,
                queued,
                completed,
            });
            g.reg.set_gauge(
                names::SERVE_RECOVERY_MS,
                started.elapsed().as_secs_f64() * 1e3,
            );
            let mean = g.mean_satisfaction();
            g.reg.set_gauge(names::SERVE_MEAN_SATISFACTION, mean);
            g.depth_gauges();
        }
        Ok((server, snap))
    }

    /// Restores a server from `snap_path` (exactly like
    /// [`restore`](CaqeServer::restore)) and *warm-starts* it from the
    /// plan snapshot at `plan_path`: if the persisted plan passes every
    /// integrity check against the given tables and config it is
    /// installed and the first epoch skips the whole shared-plan build;
    /// on any typed [`PlanError`] — corrupt, stale, future version, I/O —
    /// the plan is rebuilt cold and the error is reported in the returned
    /// [`PlanProvenance`]. Either way the server serves: plan trouble
    /// never blocks a restore, and a rejected plan is never partially
    /// applied.
    #[allow(clippy::too_many_arguments)] // restore() plus the plan path
    pub fn restore_with_plan(
        tables: (Table, Table),
        catalog: Vec<QuerySpec>,
        exec: ExecConfig,
        engine: EngineConfig,
        cfg: ServeConfig,
        snap_path: &Path,
        plan_path: &Path,
    ) -> Result<(CaqeServer, Snapshot, PlanProvenance), SnapshotError> {
        let (mut server, snap) =
            CaqeServer::restore(tables, catalog, exec, engine, cfg, snap_path)?;
        let provenance =
            match PreparedPlan::load(plan_path, &server.tables.0, &server.tables.1, &server.exec) {
                Ok(plan) => {
                    server.plan = Some(plan);
                    PlanProvenance::Warm
                }
                Err(e) => {
                    server.plan = Some(server.build_plan());
                    PlanProvenance::Rebuilt(e)
                }
            };
        Ok((server, snap, provenance))
    }

    /// Builds the shared plan for every catalog entry: partitionings plus
    /// one group memo per `(catalog entry, session mode)` — epochs run a
    /// singleton initial workload with the rest of the batch admitted
    /// through the event stream, so both the single-session
    /// (`keep_empty = false`) and session-mode (`keep_empty = true`)
    /// variants are memoized. Priorities and contracts do not shape the
    /// plan, so the memos cover every future submission mix.
    pub fn build_plan(&self) -> PreparedPlan {
        let mut plan = PreparedPlan::build(&self.tables.0, &self.tables.1, &self.exec);
        let needs_dg = self.engine.progressive_emission
            || self.engine.dominance_discard
            || self.engine.policy != SchedulingPolicy::Fifo;
        for spec in &self.catalog {
            let w = Workload::new(vec![spec.clone()]);
            for keep_empty in [false, true] {
                plan.memoize(
                    &w,
                    &self.exec,
                    self.engine.coarse_pruning,
                    needs_dg,
                    keep_empty,
                );
            }
        }
        plan
    }

    /// Installs a prepared plan (builder form); epochs consult it through
    /// the engine's warm-start gate, so an ill-matched plan is ignored,
    /// never wrong.
    #[must_use]
    pub fn with_plan(mut self, plan: PreparedPlan) -> Self {
        self.plan = Some(plan);
        self
    }

    /// Whether a prepared plan is installed.
    pub fn has_plan(&self) -> bool {
        self.plan.is_some()
    }

    /// Persists the installed plan (building it first if absent) to
    /// `path` with the crash-safe snapshot write discipline.
    pub fn write_plan(&self, path: &Path) -> Result<(), PlanError> {
        match &self.plan {
            Some(plan) => plan.save(path),
            None => self.build_plan().save(path),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        // A poisoning panic can only have come from a caller thread dying
        // outside the engine (engine panics are caught); the inner state
        // is guarded by short critical sections and stays consistent.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The serving configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Submits a query session. Never blocks on the engine: the reply is
    /// immediate admission (with a session handle) or typed backpressure.
    pub fn submit(&self, req: SubmitRequest) -> SubmitResponse {
        let mut g = self.lock();
        let session = g.next_session;
        g.next_session += 1;
        g.reg.inc(names::SERVE_SUBMITS, 1);

        let reason = if g.shutting_down {
            Some(RejectReason::Invalid {
                reason: "server is shutting down".to_string(),
            })
        } else if req.catalog >= self.catalog.len() {
            Some(RejectReason::Invalid {
                reason: format!(
                    "catalog index {} out of range ({} entries)",
                    req.catalog,
                    self.catalog.len()
                ),
            })
        } else if !(0.0..=1.0).contains(&req.priority) {
            Some(RejectReason::Invalid {
                reason: format!("priority {} outside [0, 1]", req.priority),
            })
        } else if self.cfg.shed_floor > 0.0
            && g.sat_count > 0
            && g.mean_satisfaction() < self.cfg.shed_floor
        {
            Some(RejectReason::Shedding {
                satisfaction: g.mean_satisfaction(),
                floor: self.cfg.shed_floor,
            })
        } else {
            None
        };
        if let Some(reason) = reason {
            return self.reject(&mut g, session, reason);
        }

        let negotiated = self.cfg.negotiation.negotiate(&req.contract);
        let deadline_ms = req.deadline_ms.unwrap_or(self.cfg.default_deadline_ms);
        let qs = QueuedSession {
            id: session,
            catalog: req.catalog,
            priority: req.priority,
            contract: negotiated.granted,
            adjusted: negotiated.adjusted,
            deadline: Instant::now() + Duration::from_millis(deadline_ms),
        };
        match g.queue.try_push(qs) {
            Ok(()) => {
                let position = g.queue.len() - 1;
                g.states.insert(session, SessionState::Queued { position });
                g.depth_gauges();
                self.cv.notify_all();
                SubmitResponse::Accepted { session, position }
            }
            Err(_) => {
                let reason = RejectReason::QueueFull {
                    depth: g.queue.len() as u32,
                    bound: g.queue.bound() as u32,
                };
                self.reject(&mut g, session, reason)
            }
        }
    }

    fn reject(
        &self,
        g: &mut MutexGuard<'_, Inner>,
        session: u64,
        reason: RejectReason,
    ) -> SubmitResponse {
        let depth = g.queue.len() as u32;
        let bound = g.queue.bound() as u32;
        let kind = reason.as_str();
        g.push_event(|tick| TraceEvent::AdmissionReject {
            tick,
            session,
            reason: kind,
            depth,
            bound,
        });
        SubmitResponse::Rejected { session, reason }
    }

    /// Current state of a session, with a live queue position.
    pub fn status(&self, session: u64) -> Option<SessionState> {
        let g = self.lock();
        let state = g.states.get(&session)?.clone();
        if matches!(state, SessionState::Queued { .. }) {
            let position = g.queue.iter().position(|qs| qs.id == session)?;
            return Some(SessionState::Queued { position });
        }
        Some(state)
    }

    /// Blocks until the session reaches a terminal state or `timeout`
    /// elapses; returns the last observed state (or `None` for an unknown
    /// session).
    pub fn attach(&self, session: u64, timeout: Duration) -> Option<SessionState> {
        let deadline = Instant::now() + timeout;
        let mut g = self.lock();
        loop {
            let state = g.states.get(&session)?.clone();
            if state.is_terminal() {
                return Some(state);
            }
            let now = Instant::now();
            if now >= deadline {
                return Some(state);
            }
            let (guard, _) = self
                .cv
                .wait_timeout(g, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            g = guard;
        }
    }

    /// Cancels a queued session. Running and terminal sessions are not
    /// cancellable; returns whether the cancel took effect.
    pub fn cancel(&self, session: u64) -> bool {
        let mut g = self.lock();
        if !matches!(g.states.get(&session), Some(SessionState::Queued { .. })) {
            return false;
        }
        g.queue.retain(|qs| qs.id != session);
        g.finish(session, SessionState::Cancelled);
        g.depth_gauges();
        self.cv.notify_all();
        true
    }

    /// Expires queued sessions whose wall-clock deadline has passed.
    /// Called automatically before each epoch; public for watchdog ticks.
    pub fn expire_overdue(&self) -> usize {
        let mut g = self.lock();
        let n = Self::expire_locked(&mut g, Instant::now());
        if n > 0 {
            g.depth_gauges();
            self.cv.notify_all();
        }
        n
    }

    fn expire_locked(g: &mut MutexGuard<'_, Inner>, now: Instant) -> usize {
        let mut expired = Vec::new();
        g.queue.retain(|qs| {
            if qs.deadline <= now {
                expired.push(qs.id);
                false
            } else {
                true
            }
        });
        for id in &expired {
            g.finish(*id, SessionState::DeadlineExpired);
            g.reg.inc(names::SERVE_DEADLINE_EXPIRED, 1);
        }
        expired.len()
    }

    /// Runs one epoch: drains up to `epoch_batch` sessions and executes
    /// them as one deterministic engine run (retrying under the
    /// wall-clock policy). Returns `None` when the queue was empty.
    pub fn run_epoch(&self) -> Option<EpochReport> {
        let batch: Vec<QueuedSession> = {
            let mut g = self.lock();
            Self::expire_locked(&mut g, Instant::now());
            let mut batch = Vec::new();
            while batch.len() < self.cfg.epoch_batch.max(1) {
                match g.queue.pop_front() {
                    Some(qs) => batch.push(qs),
                    None => break,
                }
            }
            if batch.is_empty() {
                g.depth_gauges();
                return None;
            }
            for qs in &batch {
                g.states.insert(qs.id, SessionState::Running);
            }
            g.running_epoch = true;
            g.depth_gauges();
            batch
        };

        // Build the epoch workload outside the lock: the first session
        // seeds the initial workload, the rest are EventStream admissions
        // in batch order. Every epoch restarts the virtual clock at tick
        // 0, so contract decay never leaks across epochs and each epoch
        // is a pure function of its batch.
        let specs: Vec<QuerySpec> = batch
            .iter()
            .map(|qs| {
                let mut spec = self.catalog[qs.catalog].clone();
                spec.priority = qs.priority;
                spec.contract = qs.contract.clone();
                spec
            })
            .collect();
        let workload = Workload::new(vec![specs[0].clone()]);
        let events = EventStream::new(
            specs[1..]
                .iter()
                .enumerate()
                .map(|(i, spec)| SessionEvent::Admit {
                    at: (i as u64 + 1) * self.cfg.admit_spacing_ticks,
                    spec: spec.clone(),
                })
                .collect(),
        );

        let (result, attempts) = with_retry(&self.cfg.retry, |_| self.run_once(&workload, &events));

        let mut g = self.lock();
        let epoch = g.epochs;
        g.epochs += 1;
        g.reg.inc(names::SERVE_EPOCHS, 1);
        g.reg.inc(
            names::SERVE_EPOCH_RETRIES,
            u64::from(attempts.saturating_sub(1)),
        );
        let sessions: Vec<u64> = batch.iter().map(|qs| qs.id).collect();
        let report = match result {
            Ok((outcome, trace)) => {
                let now = Instant::now();
                for (i, qs) in batch.iter().enumerate() {
                    let q = &outcome.per_query[i];
                    let record = CompletedRecord {
                        id: qs.id,
                        digest: query_digest(q),
                        satisfaction: q.satisfaction,
                        results: q.results.len() as u64,
                    };
                    g.completed.push(record);
                    g.sat_sum += q.satisfaction;
                    g.sat_count += 1;
                    g.finish(
                        qs.id,
                        SessionState::Done(SessionResult {
                            satisfaction: q.satisfaction,
                            results: record.results,
                            digest: record.digest,
                            contract_adjusted: qs.adjusted,
                            deadline_missed: now > qs.deadline,
                        }),
                    );
                }
                if self.cfg.keep_epoch_traces {
                    g.epoch_traces.push((epoch, trace));
                }
                EpochReport {
                    epoch,
                    sessions,
                    outcome_digest: Some(outcome.digest()),
                    attempts,
                    succeeded: true,
                }
            }
            Err(failure) => {
                for qs in &batch {
                    g.finish(qs.id, SessionState::Failed(failure.clone()));
                }
                EpochReport {
                    epoch,
                    sessions,
                    outcome_digest: None,
                    attempts,
                    succeeded: false,
                }
            }
        };
        let mean = g.mean_satisfaction();
        g.reg.set_gauge(names::SERVE_MEAN_SATISFACTION, mean);
        g.running_epoch = false;
        self.cv.notify_all();
        Some(report)
    }

    fn run_once(
        &self,
        workload: &Workload,
        events: &EventStream,
    ) -> Result<(RunOutcome, Vec<TraceEvent>), EngineError> {
        if self.cfg.keep_epoch_traces {
            let mut sink = RecordingSink::new();
            let o = try_run_engine_online_prepared(
                STRATEGY,
                &self.tables.0,
                &self.tables.1,
                workload,
                events,
                &self.exec,
                &self.engine,
                0,
                self.plan.as_ref(),
                &mut sink,
            )?;
            Ok((o, sink.into_events()))
        } else {
            let mut sink = NoopSink;
            let o = try_run_engine_online_prepared(
                STRATEGY,
                &self.tables.0,
                &self.tables.1,
                workload,
                events,
                &self.exec,
                &self.engine,
                0,
                self.plan.as_ref(),
                &mut sink,
            )?;
            Ok((o, Vec::new()))
        }
    }

    /// Runs epochs until the queue is empty (the direct-driven mode used
    /// by deterministic tests and the restore drain).
    pub fn drain(&self) -> Vec<EpochReport> {
        let mut reports = Vec::new();
        while let Some(r) = self.run_epoch() {
            reports.push(r);
        }
        reports
    }

    /// Worker loop for threaded serving: runs epochs as work arrives.
    /// On [`begin_shutdown`](CaqeServer::begin_shutdown), drains the queue
    /// first when `drain_on_shutdown`, else exits at the next epoch
    /// boundary (leaving the queue for a snapshot).
    pub fn run_worker(&self, drain_on_shutdown: bool) {
        loop {
            let should_run = {
                let mut g = self.lock();
                while g.queue.is_empty() && !g.shutting_down {
                    g = self
                        .cv
                        .wait_timeout(g, Duration::from_millis(50))
                        .unwrap_or_else(PoisonError::into_inner)
                        .0;
                }
                if g.shutting_down && (g.queue.is_empty() || !drain_on_shutdown) {
                    false
                } else {
                    !g.queue.is_empty()
                }
            };
            if !should_run {
                return;
            }
            self.run_epoch();
        }
    }

    /// Flags the server as shutting down: new submissions are rejected
    /// and workers stop at the next epoch boundary.
    pub fn begin_shutdown(&self) {
        let mut g = self.lock();
        g.shutting_down = true;
        self.cv.notify_all();
        drop(g);
    }

    /// Graceful shutdown: stops admissions, waits for the in-flight epoch
    /// to finish, and drains the remaining queue into a crash-safely
    /// written snapshot at `path`.
    pub fn shutdown_to_snapshot(&self, path: &Path) -> Result<Snapshot, SnapshotError> {
        self.begin_shutdown();
        let snap = {
            let mut g = self.lock();
            while g.running_epoch {
                g = self
                    .cv
                    .wait_timeout(g, Duration::from_millis(50))
                    .unwrap_or_else(PoisonError::into_inner)
                    .0;
            }
            let queued: Result<Vec<SessionRecord>, SnapshotError> = g
                .queue
                .iter()
                .map(|qs| {
                    ContractSpec::from_contract(&qs.contract)
                        .map(|contract| SessionRecord {
                            id: qs.id,
                            catalog: qs.catalog,
                            priority: qs.priority,
                            contract,
                        })
                        .ok_or_else(|| SnapshotError::Corrupt {
                            reason: format!(
                                "session {} holds an unserializable contract — negotiation must \
                                 prevent this",
                                qs.id
                            ),
                        })
                })
                .collect();
            Snapshot {
                version: SNAPSHOT_VERSION,
                next_session: g.next_session,
                epochs: g.epochs,
                completed: g.completed.clone(),
                queued: queued?,
            }
        };
        write_snapshot(path, &snap)?;
        let mut g = self.lock();
        let queued = snap.queued.len() as u32;
        let drained = snap.completed.len() as u32;
        g.push_event(|tick| TraceEvent::ServerShutdown {
            tick,
            queued,
            drained,
            snapshot_version: SNAPSHOT_VERSION,
        });
        self.cv.notify_all();
        Ok(snap)
    }

    /// Completed sessions as `(session id, digest)` in session-id order —
    /// the equivalence witnesses the restore tests compare.
    pub fn session_digests(&self) -> Vec<(u64, u64)> {
        let g = self.lock();
        let mut v: Vec<(u64, u64)> = g.completed.iter().map(|c| (c.id, c.digest)).collect();
        v.sort_unstable();
        v
    }

    /// Serve-level trace events (rejects, shutdown, restore) recorded so
    /// far, in logical-tick order.
    pub fn server_events(&self) -> Vec<TraceEvent> {
        self.lock().server_events.clone()
    }

    /// Per-epoch engine traces, when `keep_epoch_traces` is set.
    pub fn take_epoch_traces(&self) -> Vec<(u64, Vec<TraceEvent>)> {
        std::mem::take(&mut self.lock().epoch_traces)
    }

    /// Metrics snapshot: serve-level counters/gauges merged with the
    /// counts derived from the serve-level trace events (so `obs_report
    /// --reconcile` closes over the server's own trace).
    pub fn metrics(&self) -> MetricsRegistry {
        let g = self.lock();
        let mut collector = ObsCollector::new(ObsConfig::default());
        collector.ingest_events(&g.server_events);
        let mut out = collector.into_registry();
        out.merge(&g.reg);
        out
    }

    /// Current queue depth.
    pub fn queue_depth(&self) -> usize {
        self.lock().queue.len()
    }

    /// High-water queue depth.
    pub fn queue_peak(&self) -> usize {
        self.lock().queue.peak()
    }

    /// Mean final satisfaction over completed sessions (1.0 when none).
    pub fn mean_satisfaction(&self) -> f64 {
        self.lock().mean_satisfaction()
    }

    /// Epochs completed.
    pub fn epochs(&self) -> u64 {
        self.lock().epochs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_succeeds_after_transient_failures() {
        let policy = WallRetryPolicy {
            max_attempts: 3,
            backoff_base_ms: 0,
            backoff_cap_ms: 0,
        };
        let mut calls = 0;
        let (r, attempts) = with_retry(&policy, |_| {
            calls += 1;
            if calls < 3 {
                Err(EngineError::RegionFailed {
                    group: 0,
                    region: 1,
                    attempts: 3,
                })
            } else {
                Ok(42)
            }
        });
        assert_eq!(r.unwrap(), 42);
        assert_eq!(attempts, 3);
    }

    #[test]
    fn retry_catches_panics_and_types_the_failure() {
        let policy = WallRetryPolicy {
            max_attempts: 2,
            backoff_base_ms: 0,
            backoff_cap_ms: 0,
        };
        let (r, attempts) = with_retry::<()>(&policy, |_| panic!("boom {}", 7));
        match r.unwrap_err() {
            SessionFailure::Panicked { message, attempts } => {
                assert!(message.contains("boom 7"), "{message}");
                assert_eq!(attempts, 2);
            }
            other => panic!("expected Panicked, got {other}"),
        }
        assert_eq!(attempts, 2);
    }

    #[test]
    fn retry_does_not_retry_permanent_errors() {
        let policy = WallRetryPolicy {
            max_attempts: 5,
            backoff_base_ms: 0,
            backoff_cap_ms: 0,
        };
        let mut calls = 0;
        let (r, attempts) = with_retry::<()>(&policy, |_| {
            calls += 1;
            Err(EngineError::InvalidWorkload {
                reason: "empty".into(),
            })
        });
        assert_eq!(calls, 1, "permanent errors must not be retried");
        assert_eq!(attempts, 1);
        match r.unwrap_err() {
            SessionFailure::Engine { error, attempts } => {
                assert!(!error.is_transient());
                assert_eq!(attempts, 1);
            }
            other => panic!("expected Engine, got {other}"),
        }
    }

    #[test]
    fn retry_panic_then_success_recovers() {
        let policy = WallRetryPolicy {
            max_attempts: 3,
            backoff_base_ms: 0,
            backoff_cap_ms: 0,
        };
        let mut calls = 0;
        let (r, attempts) = with_retry(&policy, |_| {
            calls += 1;
            if calls == 1 {
                panic!("transient worker crash");
            }
            Ok("ok")
        });
        assert_eq!(r.unwrap(), "ok");
        assert_eq!(attempts, 2);
    }
}
