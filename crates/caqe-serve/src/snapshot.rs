//! Versioned, checksummed, crash-safe server snapshots.
//!
//! A snapshot captures everything the serving layer needs to resume after
//! a restart: the session counter, completed-session digests (the
//! equivalence witnesses) and the queued sessions in FIFO order with their
//! negotiated contracts. Plan/region state is deliberately *not*
//! serialized — the deterministic core rebuilds it bit-identically from
//! the workload, which is what makes the restore trace-equivalence proof
//! possible at all.
//!
//! The format is a line-oriented text file: a header naming the version, a
//! body of `key value...` lines, and an FNV-1a checksum footer over the
//! body bytes. Floats are serialized as `to_bits` hex so a round trip is
//! exact. Writes go through temp file + `fsync` + atomic rename (+ parent
//! directory fsync), so a crash at any point leaves either the old
//! snapshot or the new one — never a torn file; and a torn or tampered
//! file never loads, because the header, version and checksum are all
//! verified first.

use caqe_contract::Contract;
use std::fmt;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;

const HEADER: &str = "caqe-serve-snapshot";

/// Serializable mirror of the Table 2 contract classes.
///
/// `Piecewise`/`Product` contracts never reach a snapshot: negotiation
/// downgrades them at admission
/// ([`NegotiationPolicy`](crate::NegotiationPolicy)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ContractSpec {
    /// C1 — hard deadline.
    Deadline {
        /// Hard deadline in virtual seconds.
        t_hard: f64,
    },
    /// C2 — logarithmic decay.
    LogDecay,
    /// C3 — soft deadline.
    SoftDeadline {
        /// Decay start in virtual seconds.
        t_soft: f64,
    },
    /// C4 — cardinality quota.
    Quota {
        /// Fraction due per interval.
        frac: f64,
        /// Interval in virtual seconds.
        interval: f64,
    },
    /// C5 — quota × time hybrid.
    Hybrid {
        /// Fraction due per interval.
        frac: f64,
        /// Interval in virtual seconds.
        interval: f64,
    },
}

impl ContractSpec {
    /// Captures a granted contract, or `None` for the classes negotiation
    /// is required to have eliminated.
    pub fn from_contract(c: &Contract) -> Option<ContractSpec> {
        match c {
            Contract::Deadline { t_hard } => Some(ContractSpec::Deadline { t_hard: *t_hard }),
            Contract::LogDecay => Some(ContractSpec::LogDecay),
            Contract::SoftDeadline { t_soft } => {
                Some(ContractSpec::SoftDeadline { t_soft: *t_soft })
            }
            Contract::Quota { frac, interval } => Some(ContractSpec::Quota {
                frac: *frac,
                interval: *interval,
            }),
            Contract::Hybrid { frac, interval } => Some(ContractSpec::Hybrid {
                frac: *frac,
                interval: *interval,
            }),
            Contract::Piecewise { .. } | Contract::Product(..) => None,
        }
    }

    /// Reconstructs the engine contract, exactly.
    pub fn to_contract(&self) -> Contract {
        match self {
            ContractSpec::Deadline { t_hard } => Contract::Deadline { t_hard: *t_hard },
            ContractSpec::LogDecay => Contract::LogDecay,
            ContractSpec::SoftDeadline { t_soft } => Contract::SoftDeadline { t_soft: *t_soft },
            ContractSpec::Quota { frac, interval } => Contract::Quota {
                frac: *frac,
                interval: *interval,
            },
            ContractSpec::Hybrid { frac, interval } => Contract::Hybrid {
                frac: *frac,
                interval: *interval,
            },
        }
    }

    fn write_into(&self, out: &mut String) {
        match self {
            ContractSpec::Deadline { t_hard } => {
                let _ = write!(out, "deadline {:016x}", t_hard.to_bits());
            }
            ContractSpec::LogDecay => out.push_str("log_decay"),
            ContractSpec::SoftDeadline { t_soft } => {
                let _ = write!(out, "soft_deadline {:016x}", t_soft.to_bits());
            }
            ContractSpec::Quota { frac, interval } => {
                let _ = write!(
                    out,
                    "quota {:016x} {:016x}",
                    frac.to_bits(),
                    interval.to_bits()
                );
            }
            ContractSpec::Hybrid { frac, interval } => {
                let _ = write!(
                    out,
                    "hybrid {:016x} {:016x}",
                    frac.to_bits(),
                    interval.to_bits()
                );
            }
        }
    }

    fn parse(tokens: &[&str]) -> Result<ContractSpec, SnapshotError> {
        let f = |t: &str| -> Result<f64, SnapshotError> {
            u64::from_str_radix(t, 16)
                .map(f64::from_bits)
                .map_err(|_| corrupt(format!("bad float bits {t:?}")))
        };
        match tokens {
            ["deadline", b] => Ok(ContractSpec::Deadline { t_hard: f(b)? }),
            ["log_decay"] => Ok(ContractSpec::LogDecay),
            ["soft_deadline", b] => Ok(ContractSpec::SoftDeadline { t_soft: f(b)? }),
            ["quota", a, b] => Ok(ContractSpec::Quota {
                frac: f(a)?,
                interval: f(b)?,
            }),
            ["hybrid", a, b] => Ok(ContractSpec::Hybrid {
                frac: f(a)?,
                interval: f(b)?,
            }),
            other => Err(corrupt(format!("bad contract spec {other:?}"))),
        }
    }
}

/// One queued session as captured at shutdown.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionRecord {
    /// Server-assigned session id.
    pub id: u64,
    /// Index into the server's prepared-statement catalog.
    pub catalog: usize,
    /// Query priority `pr_i ∈ [0, 1]`.
    pub priority: f64,
    /// The *negotiated* contract (what the server granted, not what the
    /// client asked for).
    pub contract: ContractSpec,
}

/// One completed session's observables, carried across restarts so
/// `attach` keeps answering and equivalence stays checkable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompletedRecord {
    /// Server-assigned session id.
    pub id: u64,
    /// [`RunOutcome`-style](caqe_core::RunOutcome::digest) per-session
    /// digest of emissions + results.
    pub digest: u64,
    /// Final satisfaction.
    pub satisfaction: f64,
    /// Results emitted.
    pub results: u64,
}

/// Everything a restarted server needs to continue the workload.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Format version (readers reject anything but [`SNAPSHOT_VERSION`]).
    pub version: u32,
    /// Next session id to assign.
    pub next_session: u64,
    /// Serving epochs completed before the shutdown.
    pub epochs: u64,
    /// Completed sessions, in completion order.
    pub completed: Vec<CompletedRecord>,
    /// Queued sessions, front of the queue first.
    pub queued: Vec<SessionRecord>,
}

/// Why a snapshot failed to write or load.
#[derive(Debug)]
pub enum SnapshotError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The file exists but is not a valid snapshot (torn write, bad
    /// checksum, malformed body).
    Corrupt {
        /// What was wrong.
        reason: String,
    },
    /// A valid snapshot of a version this build does not speak.
    Version {
        /// Version found in the header.
        found: u32,
    },
    /// The test-only crash hook fired before the atomic rename — the
    /// snapshot at the target path is untouched.
    SimulatedCrash,
}

fn corrupt(reason: String) -> SnapshotError {
    SnapshotError::Corrupt { reason }
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot io error: {e}"),
            SnapshotError::Corrupt { reason } => write!(f, "corrupt snapshot: {reason}"),
            SnapshotError::Version { found } => write!(
                f,
                "unsupported snapshot version {found} (this build speaks {SNAPSHOT_VERSION})"
            ),
            SnapshotError::SimulatedCrash => {
                write!(f, "simulated crash before rename (test hook)")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// Where the test-only crash hook interrupts
/// [`write_snapshot_with_crash`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// No crash: the full temp-write → fsync → rename path runs.
    None,
    /// Crash after the temp file is written (and synced) but before the
    /// atomic rename: simulates power loss at the worst moment. The
    /// target path must be left untouched.
    BeforeRename,
    /// Crash mid-write: the temp file holds a truncated body. The target
    /// path must be left untouched and the torn temp file must never
    /// parse as a snapshot.
    MidWrite,
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl Snapshot {
    /// Serializes to the versioned text format (body + checksum footer).
    pub fn to_text(&self) -> String {
        let mut body = String::new();
        let _ = writeln!(body, "{HEADER} v{}", self.version);
        let _ = writeln!(body, "next_session {}", self.next_session);
        let _ = writeln!(body, "epochs {}", self.epochs);
        for c in &self.completed {
            let _ = writeln!(
                body,
                "completed {} {:016x} {:016x} {}",
                c.id,
                c.digest,
                c.satisfaction.to_bits(),
                c.results
            );
        }
        for s in &self.queued {
            let mut line = format!(
                "queued {} {} {:016x} ",
                s.id,
                s.catalog,
                s.priority.to_bits()
            );
            s.contract.write_into(&mut line);
            body.push_str(&line);
            body.push('\n');
        }
        let checksum = fnv1a(body.as_bytes());
        let _ = writeln!(body, "checksum {checksum:016x}");
        body
    }

    /// Parses and verifies the text format (header, version, checksum,
    /// body) — any deviation is a typed [`SnapshotError`], never a panic
    /// and never a half-loaded snapshot.
    pub fn from_text(text: &str) -> Result<Snapshot, SnapshotError> {
        // The header version gates everything else: a snapshot written by
        // a *newer* build may have changed the body grammar or even the
        // checksum scheme, so it must be reported as a version mismatch —
        // checking the checksum first would misreport it as corruption.
        let header = text
            .lines()
            .next()
            .ok_or_else(|| corrupt("empty snapshot".to_string()))?;
        let version = header
            .strip_prefix(HEADER)
            .map(str::trim)
            .and_then(|v| v.strip_prefix('v'))
            .and_then(|v| v.parse::<u32>().ok())
            .ok_or_else(|| corrupt(format!("bad header {header:?}")))?;
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::Version { found: version });
        }
        let body_end = text
            .rfind("checksum ")
            .ok_or_else(|| corrupt("missing checksum footer".to_string()))?;
        let (body, footer) = text.split_at(body_end);
        let footer = footer.trim_end();
        let stated = footer
            .strip_prefix("checksum ")
            .and_then(|h| u64::from_str_radix(h, 16).ok())
            .ok_or_else(|| corrupt(format!("bad checksum footer {footer:?}")))?;
        let actual = fnv1a(body.as_bytes());
        if stated != actual {
            return Err(corrupt(format!(
                "checksum mismatch: stated {stated:016x}, computed {actual:016x}"
            )));
        }
        let mut lines = body.lines();
        // Consume the already-validated header line.
        let _ = lines.next();
        let mut snap = Snapshot {
            version,
            next_session: 0,
            epochs: 0,
            completed: Vec::new(),
            queued: Vec::new(),
        };
        for line in lines {
            let tokens: Vec<&str> = line.split_whitespace().collect();
            match tokens.as_slice() {
                ["next_session", v] => {
                    snap.next_session = v
                        .parse()
                        .map_err(|_| corrupt(format!("bad line {line:?}")))?;
                }
                ["epochs", v] => {
                    snap.epochs = v
                        .parse()
                        .map_err(|_| corrupt(format!("bad line {line:?}")))?;
                }
                ["completed", id, digest, sat, results] => {
                    snap.completed.push(CompletedRecord {
                        id: id
                            .parse()
                            .map_err(|_| corrupt(format!("bad line {line:?}")))?,
                        digest: u64::from_str_radix(digest, 16)
                            .map_err(|_| corrupt(format!("bad line {line:?}")))?,
                        satisfaction: u64::from_str_radix(sat, 16)
                            .map(f64::from_bits)
                            .map_err(|_| corrupt(format!("bad line {line:?}")))?,
                        results: results
                            .parse()
                            .map_err(|_| corrupt(format!("bad line {line:?}")))?,
                    });
                }
                ["queued", id, catalog, priority, rest @ ..] => {
                    snap.queued.push(SessionRecord {
                        id: id
                            .parse()
                            .map_err(|_| corrupt(format!("bad line {line:?}")))?,
                        catalog: catalog
                            .parse()
                            .map_err(|_| corrupt(format!("bad line {line:?}")))?,
                        priority: u64::from_str_radix(priority, 16)
                            .map(f64::from_bits)
                            .map_err(|_| corrupt(format!("bad line {line:?}")))?,
                        contract: ContractSpec::parse(rest)?,
                    });
                }
                [] => {}
                _ => return Err(corrupt(format!("unknown line {line:?}"))),
            }
        }
        Ok(snap)
    }
}

/// Crash-safely writes `snap` to `path`: temp file in the same directory,
/// `write_all` + `sync_all`, atomic rename, parent-directory fsync.
pub fn write_snapshot(path: &Path, snap: &Snapshot) -> Result<(), SnapshotError> {
    write_snapshot_with_crash(path, snap, CrashPoint::None)
}

/// [`write_snapshot`] with a test hook that aborts at a chosen point, for
/// proving that a crash mid-write never corrupts the snapshot at `path`.
pub fn write_snapshot_with_crash(
    path: &Path,
    snap: &Snapshot,
    crash: CrashPoint,
) -> Result<(), SnapshotError> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = path
        .file_name()
        .ok_or_else(|| corrupt("snapshot path has no file name".to_string()))?;
    let tmp = path.with_file_name(format!("{}.tmp", file_name.to_string_lossy()));
    let text = snap.to_text();
    {
        let mut f = std::fs::File::create(&tmp)?;
        if crash == CrashPoint::MidWrite {
            // Torn write: half the body, no checksum, then "power loss".
            f.write_all(&text.as_bytes()[..text.len() / 2])?;
            f.sync_all()?;
            return Err(SnapshotError::SimulatedCrash);
        }
        f.write_all(text.as_bytes())?;
        f.sync_all()?;
    }
    if crash == CrashPoint::BeforeRename {
        return Err(SnapshotError::SimulatedCrash);
    }
    std::fs::rename(&tmp, path)?;
    if let Some(dir) = dir {
        // Persist the rename itself: fsync the directory entry. Best
        // effort — some filesystems refuse directory handles.
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Loads and fully verifies a snapshot; a file that fails *any* check
/// (header, version, checksum, body grammar) yields a typed error and is
/// never partially applied.
pub fn load_snapshot(path: &Path) -> Result<Snapshot, SnapshotError> {
    let text = std::fs::read_to_string(path)?;
    Snapshot::from_text(&text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            version: SNAPSHOT_VERSION,
            next_session: 7,
            epochs: 2,
            completed: vec![
                CompletedRecord {
                    id: 0,
                    digest: 0xdead_beef,
                    satisfaction: 0.875,
                    results: 41,
                },
                CompletedRecord {
                    id: 1,
                    digest: 0x1234,
                    satisfaction: 1.0,
                    results: 3,
                },
            ],
            queued: vec![
                SessionRecord {
                    id: 5,
                    catalog: 2,
                    priority: 0.7,
                    contract: ContractSpec::Deadline { t_hard: 30.0 },
                },
                SessionRecord {
                    id: 6,
                    catalog: 0,
                    priority: 0.4,
                    contract: ContractSpec::Hybrid {
                        frac: 0.1,
                        interval: 12.5,
                    },
                },
            ],
        }
    }

    #[test]
    fn round_trip_is_exact() {
        let s = sample();
        let parsed = Snapshot::from_text(&s.to_text()).unwrap();
        assert_eq!(parsed, s);
    }

    #[test]
    fn every_contract_class_round_trips() {
        for spec in [
            ContractSpec::Deadline { t_hard: 0.1 + 0.2 },
            ContractSpec::LogDecay,
            ContractSpec::SoftDeadline { t_soft: 1e-300 },
            ContractSpec::Quota {
                frac: 0.1,
                interval: 3.3,
            },
            ContractSpec::Hybrid {
                frac: 0.1,
                interval: 7.7,
            },
        ] {
            let mut s = sample();
            s.queued[0].contract = spec;
            let parsed = Snapshot::from_text(&s.to_text()).unwrap();
            assert_eq!(parsed.queued[0].contract, spec);
            // And through the engine type and back, bit-exactly.
            let c = spec.to_contract();
            assert_eq!(ContractSpec::from_contract(&c), Some(spec));
        }
    }

    #[test]
    fn piecewise_and_product_are_not_serializable() {
        use caqe_contract::Contract;
        assert_eq!(
            ContractSpec::from_contract(&Contract::Piecewise {
                steps: vec![(1.0, 1.0)],
                tail: 0.0,
            }),
            None
        );
        assert_eq!(
            ContractSpec::from_contract(&Contract::Product(
                Box::new(Contract::LogDecay),
                Box::new(Contract::LogDecay),
            )),
            None
        );
    }

    #[test]
    fn corruption_is_always_detected() {
        let text = sample().to_text();
        // Flip one character anywhere in the body → checksum mismatch.
        let mut flipped = text.clone().into_bytes();
        flipped[HEADER.len() + 5] ^= 1;
        let e = Snapshot::from_text(&String::from_utf8(flipped).unwrap()).unwrap_err();
        assert!(matches!(e, SnapshotError::Corrupt { .. }), "{e}");
        // Truncation → missing/invalid footer.
        let e = Snapshot::from_text(&text[..text.len() / 2]).unwrap_err();
        assert!(matches!(e, SnapshotError::Corrupt { .. }), "{e}");
        // Empty file.
        let e = Snapshot::from_text("").unwrap_err();
        assert!(matches!(e, SnapshotError::Corrupt { .. }), "{e}");
    }

    #[test]
    fn future_versions_are_rejected_with_a_typed_error() {
        let text = sample().to_text().replace(
            &format!("{HEADER} v{SNAPSHOT_VERSION}"),
            &format!("{HEADER} v99"),
        );
        // Re-seal the tampered body so only the version check can fail.
        let body_end = text.rfind("checksum ").unwrap();
        let body = &text[..body_end];
        let resealed = format!("{body}checksum {:016x}\n", fnv1a(body.as_bytes()));
        match Snapshot::from_text(&resealed).unwrap_err() {
            SnapshotError::Version { found } => assert_eq!(found, 99),
            other => panic!("expected Version error, got {other}"),
        }
    }

    #[test]
    fn future_version_wins_even_with_a_stale_checksum() {
        // A snapshot from a newer build may have changed the body grammar
        // or checksum scheme, so its footer will not verify under ours.
        // The version gate must fire first: reporting Corrupt here would
        // send operators chasing disk errors instead of a rollback.
        let text = sample().to_text().replace(
            &format!("{HEADER} v{SNAPSHOT_VERSION}"),
            &format!("{HEADER} v99"),
        );
        // Deliberately NOT resealed — the checksum is stale.
        match Snapshot::from_text(&text).unwrap_err() {
            SnapshotError::Version { found } => assert_eq!(found, 99),
            other => panic!("expected Version error, got {other}"),
        }
    }

    #[test]
    fn truncation_before_the_checksum_line_is_typed_corruption() {
        let text = sample().to_text();
        let footer = text.rfind("checksum ").unwrap();
        // Cut exactly at the footer boundary and at a few points inside
        // the body: every prefix must parse to a typed error, never a
        // panic and never a silently half-loaded snapshot.
        for cut in [footer, footer - 1, footer / 2, HEADER.len() + 4] {
            let e = Snapshot::from_text(&text[..cut]).unwrap_err();
            assert!(matches!(e, SnapshotError::Corrupt { .. }), "cut {cut}: {e}");
        }
    }

    #[test]
    fn write_is_atomic_and_crash_leaves_old_snapshot_intact() {
        let dir = std::env::temp_dir().join(format!("caqe_snap_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("server.snapshot");

        // First write succeeds and loads back.
        let old = sample();
        write_snapshot(&path, &old).unwrap();
        assert_eq!(load_snapshot(&path).unwrap(), old);

        // A crash before rename leaves the old snapshot untouched.
        let mut new = sample();
        new.next_session = 99;
        let e = write_snapshot_with_crash(&path, &new, CrashPoint::BeforeRename).unwrap_err();
        assert!(matches!(e, SnapshotError::SimulatedCrash));
        assert_eq!(load_snapshot(&path).unwrap(), old, "old snapshot survives");

        // A torn mid-write crash also leaves the old snapshot untouched,
        // and the torn temp file never parses as a snapshot.
        let e = write_snapshot_with_crash(&path, &new, CrashPoint::MidWrite).unwrap_err();
        assert!(matches!(e, SnapshotError::SimulatedCrash));
        assert_eq!(load_snapshot(&path).unwrap(), old);
        let tmp = dir.join("server.snapshot.tmp");
        assert!(load_snapshot(&tmp).is_err(), "torn temp file must not load");

        // A clean retry completes the update.
        write_snapshot(&path, &new).unwrap();
        assert_eq!(load_snapshot(&path).unwrap().next_session, 99);
        std::fs::remove_dir_all(&dir).ok();
    }
}
