//! Bounded admission queue and typed backpressure.
//!
//! The serving layer never grows its queue past the configured bound and
//! never drops a submission silently: overflow produces an explicit
//! [`RejectReason`] the client can act on (and the trace records as an
//! `AdmissionReject` event).

use std::collections::VecDeque;
use std::fmt;

/// Why a submission was refused.
#[derive(Debug, Clone, PartialEq)]
pub enum RejectReason {
    /// The admission queue is at its bound — back off and resubmit.
    QueueFull {
        /// Depth observed at rejection time.
        depth: u32,
        /// The configured bound.
        bound: u32,
    },
    /// The degradation signal is active: mean satisfaction over completed
    /// sessions slipped below the configured floor, so the server sheds
    /// new load instead of admitting work it would serve badly (the
    /// wall-clock mirror of the engine's `DegradationPolicy`).
    Shedding {
        /// Mean satisfaction that tripped the signal.
        satisfaction: f64,
        /// The configured floor.
        floor: f64,
    },
    /// The submission itself is unservable (bad catalog index, invalid
    /// priority, server shutting down).
    Invalid {
        /// What was wrong.
        reason: String,
    },
}

impl RejectReason {
    /// Stable short name used in trace events and metric labels.
    pub fn as_str(&self) -> &'static str {
        match self {
            RejectReason::QueueFull { .. } => "full",
            RejectReason::Shedding { .. } => "shed",
            RejectReason::Invalid { .. } => "invalid",
        }
    }
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::QueueFull { depth, bound } => {
                write!(f, "admission queue full ({depth}/{bound})")
            }
            RejectReason::Shedding {
                satisfaction,
                floor,
            } => write!(
                f,
                "shedding load: mean satisfaction {satisfaction:.3} below floor {floor:.3}"
            ),
            RejectReason::Invalid { reason } => write!(f, "invalid submission: {reason}"),
        }
    }
}

/// A FIFO queue that refuses to grow past its bound and tracks its
/// high-water mark.
#[derive(Debug, Clone)]
pub struct BoundedQueue<T> {
    items: VecDeque<T>,
    bound: usize,
    peak: usize,
}

impl<T> BoundedQueue<T> {
    /// An empty queue admitting at most `bound` items (`bound >= 1`).
    pub fn new(bound: usize) -> Self {
        BoundedQueue {
            items: VecDeque::new(),
            bound: bound.max(1),
            peak: 0,
        }
    }

    /// The configured bound.
    pub fn bound(&self) -> usize {
        self.bound
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// High-water depth since construction.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Enqueues `item`, or returns it to the caller when at the bound.
    pub fn try_push(&mut self, item: T) -> Result<(), T> {
        if self.items.len() >= self.bound {
            return Err(item);
        }
        self.items.push_back(item);
        self.peak = self.peak.max(self.items.len());
        Ok(())
    }

    /// Dequeues the oldest item.
    pub fn pop_front(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Keeps only the items satisfying `keep`, preserving order.
    pub fn retain(&mut self, keep: impl FnMut(&T) -> bool) {
        self.items.retain(keep);
    }

    /// Iterates the queued items front to back.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_is_enforced_and_peak_tracked() {
        let mut q = BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(3));
        assert_eq!(q.len(), 2);
        assert_eq!(q.peak(), 2);
        assert_eq!(q.pop_front(), Some(1));
        assert!(q.try_push(4).is_ok());
        assert_eq!(q.peak(), 2);
        assert_eq!(q.pop_front(), Some(2));
        assert_eq!(q.pop_front(), Some(4));
        assert!(q.is_empty());
    }

    #[test]
    fn zero_bound_is_clamped_to_one() {
        let mut q = BoundedQueue::new(0);
        assert_eq!(q.bound(), 1);
        assert!(q.try_push(1).is_ok());
        assert_eq!(q.try_push(2), Err(2));
    }

    #[test]
    fn retain_preserves_fifo_order() {
        let mut q = BoundedQueue::new(8);
        for i in 0..6 {
            assert!(q.try_push(i).is_ok());
        }
        q.retain(|i| i % 2 == 0);
        let left: Vec<i32> = q.iter().copied().collect();
        assert_eq!(left, vec![0, 2, 4]);
    }

    #[test]
    fn reject_reasons_render_and_label() {
        let r = RejectReason::QueueFull { depth: 8, bound: 8 };
        assert_eq!(r.as_str(), "full");
        assert!(r.to_string().contains("8/8"));
        let r = RejectReason::Shedding {
            satisfaction: 0.31,
            floor: 0.5,
        };
        assert_eq!(r.as_str(), "shed");
        assert!(r.to_string().contains("0.310"));
        let r = RejectReason::Invalid {
            reason: "catalog index 9 out of range".into(),
        };
        assert_eq!(r.as_str(), "invalid");
        assert!(r.to_string().contains("catalog index 9"));
    }
}
