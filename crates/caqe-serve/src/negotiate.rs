//! Per-client contract negotiation.
//!
//! A submission carries the contract the client *wants*; the server grants
//! the closest contract it is willing to serve. Negotiation is a pure
//! function of (requested contract, policy) so the same submission stream
//! always produces the same granted workload — a precondition for the
//! snapshot/restore equivalence proof.

use caqe_contract::Contract;

/// Server-side limits a granted contract must respect.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NegotiationPolicy {
    /// Tightest hard/soft deadline the server grants, in virtual seconds.
    /// Requests below this are relaxed up to it.
    pub min_deadline_secs: f64,
    /// Shortest quota/hybrid interval the server grants, in virtual
    /// seconds. Requests below this are stretched up to it.
    pub min_interval_secs: f64,
}

impl Default for NegotiationPolicy {
    fn default() -> Self {
        NegotiationPolicy {
            min_deadline_secs: 0.0,
            min_interval_secs: 0.0,
        }
    }
}

/// Outcome of negotiating one submission.
#[derive(Debug, Clone, PartialEq)]
pub struct Negotiated {
    /// The contract the server will actually hold itself to.
    pub granted: Contract,
    /// Whether `granted` differs from what the client asked for.
    pub adjusted: bool,
}

impl NegotiationPolicy {
    /// Grants the closest servable contract.
    ///
    /// Table 2 classes (C1–C5) are granted as requested, except that
    /// deadlines and intervals tighter than the policy floors are relaxed
    /// to the floor. `Piecewise` and `Product` contracts are not
    /// snapshot-serializable, so the serving layer downgrades them to the
    /// parameter-free `LogDecay` (C2) — always flagged as adjusted.
    pub fn negotiate(&self, requested: &Contract) -> Negotiated {
        let relax = |v: f64, floor: f64| if v < floor { floor } else { v };
        match requested {
            Contract::Deadline { t_hard } => {
                let granted = relax(*t_hard, self.min_deadline_secs);
                Negotiated {
                    granted: Contract::Deadline { t_hard: granted },
                    adjusted: granted != *t_hard,
                }
            }
            Contract::SoftDeadline { t_soft } => {
                let granted = relax(*t_soft, self.min_deadline_secs);
                Negotiated {
                    granted: Contract::SoftDeadline { t_soft: granted },
                    adjusted: granted != *t_soft,
                }
            }
            Contract::Quota { frac, interval } => {
                let granted = relax(*interval, self.min_interval_secs);
                Negotiated {
                    granted: Contract::Quota {
                        frac: *frac,
                        interval: granted,
                    },
                    adjusted: granted != *interval,
                }
            }
            Contract::Hybrid { frac, interval } => {
                let granted = relax(*interval, self.min_interval_secs);
                Negotiated {
                    granted: Contract::Hybrid {
                        frac: *frac,
                        interval: granted,
                    },
                    adjusted: granted != *interval,
                }
            }
            Contract::LogDecay => Negotiated {
                granted: Contract::LogDecay,
                adjusted: false,
            },
            Contract::Piecewise { .. } | Contract::Product(..) => Negotiated {
                granted: Contract::LogDecay,
                adjusted: true,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> NegotiationPolicy {
        NegotiationPolicy {
            min_deadline_secs: 10.0,
            min_interval_secs: 5.0,
        }
    }

    #[test]
    fn servable_contracts_pass_through_unchanged() {
        let n = policy().negotiate(&Contract::Deadline { t_hard: 30.0 });
        assert_eq!(n.granted, Contract::Deadline { t_hard: 30.0 });
        assert!(!n.adjusted);
        let n = policy().negotiate(&Contract::LogDecay);
        assert!(!n.adjusted);
    }

    #[test]
    fn too_tight_deadlines_are_relaxed_to_the_floor() {
        let n = policy().negotiate(&Contract::Deadline { t_hard: 1.0 });
        assert_eq!(n.granted, Contract::Deadline { t_hard: 10.0 });
        assert!(n.adjusted);
        let n = policy().negotiate(&Contract::SoftDeadline { t_soft: 2.0 });
        assert_eq!(n.granted, Contract::SoftDeadline { t_soft: 10.0 });
        assert!(n.adjusted);
    }

    #[test]
    fn short_intervals_are_stretched() {
        let n = policy().negotiate(&Contract::Quota {
            frac: 0.1,
            interval: 1.0,
        });
        assert_eq!(
            n.granted,
            Contract::Quota {
                frac: 0.1,
                interval: 5.0,
            }
        );
        assert!(n.adjusted);
        let n = policy().negotiate(&Contract::Hybrid {
            frac: 0.1,
            interval: 9.0,
        });
        assert_eq!(
            n.granted,
            Contract::Hybrid {
                frac: 0.1,
                interval: 9.0,
            }
        );
        assert!(!n.adjusted);
    }

    #[test]
    fn unserializable_contracts_downgrade_to_log_decay() {
        let n = policy().negotiate(&Contract::Piecewise {
            steps: vec![(5.0, 1.0)],
            tail: 0.0,
        });
        assert_eq!(n.granted, Contract::LogDecay);
        assert!(n.adjusted);
        let n = policy().negotiate(&Contract::Product(
            Box::new(Contract::LogDecay),
            Box::new(Contract::LogDecay),
        ));
        assert_eq!(n.granted, Contract::LogDecay);
        assert!(n.adjusted);
    }

    #[test]
    fn negotiation_is_deterministic() {
        let req = Contract::Deadline { t_hard: 0.5 };
        assert_eq!(policy().negotiate(&req), policy().negotiate(&req));
    }
}
