//! Wall-clock serving layer for the CAQE engine (DESIGN.md §18).
//!
//! Everything under `caqe-core` is a *pure function* of (workload, events,
//! config) on a virtual clock. This crate is the thin impure shell around
//! it — the only place in the workspace where wall time, threads-as-actors
//! and the filesystem meet query processing:
//!
//! * [`CaqeServer`] — the session front door: `submit` / `attach` /
//!   `status` / `cancel`, with per-client contract negotiation
//!   ([`NegotiationPolicy`]) mapped onto the engine's `EventStream`
//!   admission machinery.
//! * Admission control — a bounded queue with explicit backpressure:
//!   overflow and shed-mode submissions get a typed [`RejectReason`], never
//!   silence ([`SubmitResponse`]).
//! * Deadline watchdogs — per-session wall-clock deadlines expire stale
//!   queued work; transient `EngineError`s and caught panics are retried
//!   under a [`WallRetryPolicy`](caqe_faults::WallRetryPolicy) before
//!   becoming typed terminal failures. No panic escapes the driver.
//! * Crash-safe snapshot/restore ([`snapshot`]) — graceful shutdown drains
//!   the queue into a versioned, checksummed snapshot written via temp
//!   file + fsync + atomic rename; restore is provably trace-equivalent to
//!   an uninterrupted run because epochs are deterministic and the queue
//!   is drained in fixed FIFO batches.
//! * A soak harness ([`soak`]) driving the server under `caqe-faults`
//!   chaos plans, asserting liveness, bounded queue depth and
//!   contract-SLO retention through `caqe-obs` gauges.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod negotiate;
pub mod queue;
pub mod server;
pub mod snapshot;
pub mod soak;

pub use negotiate::{Negotiated, NegotiationPolicy};
pub use queue::{BoundedQueue, RejectReason};
pub use server::{
    with_retry, CaqeServer, EpochReport, PlanProvenance, ServeConfig, SessionFailure,
    SessionResult, SessionState, SubmitRequest, SubmitResponse,
};
pub use snapshot::{
    load_snapshot, write_snapshot, write_snapshot_with_crash, CompletedRecord, ContractSpec,
    CrashPoint, SessionRecord, Snapshot, SnapshotError, SNAPSHOT_VERSION,
};
pub use soak::{mix_request, run_soak, SoakConfig, SoakReport};
