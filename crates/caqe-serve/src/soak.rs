//! Wall-clock soak harness: concurrent clients hammering a [`CaqeServer`]
//! under a `caqe-faults` chaos plan.
//!
//! The harness asserts the robustness properties the serving layer
//! promises — every accepted session reaches a terminal state (liveness),
//! the queue never exceeds its bound (backpressure works), and mean
//! satisfaction under chaos stays close to a clean baseline run over the
//! same submission mix (contract-SLO retention).

use crate::server::{CaqeServer, ServeConfig, SessionState, SubmitRequest, SubmitResponse};
use caqe_contract::Contract;
use caqe_core::{EngineConfig, ExecConfig, QuerySpec};
use caqe_data::Table;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Soak-run shape.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// Concurrent client threads.
    pub clients: usize,
    /// Submissions per client.
    pub submits_per_client: usize,
    /// Serving-layer knobs shared by the chaos run and the clean baseline.
    pub serve: ServeConfig,
    /// How long each client waits for a session to reach a terminal state
    /// before giving up (counted as `unresolved` — a liveness violation).
    pub attach_timeout_ms: u64,
    /// Retries a client spends on a `QueueFull` reject before dropping the
    /// submission (each retry backs off briefly).
    pub full_retries: u32,
}

impl Default for SoakConfig {
    fn default() -> Self {
        SoakConfig {
            clients: 4,
            submits_per_client: 8,
            serve: ServeConfig::default(),
            attach_timeout_ms: 60_000,
            full_retries: 200,
        }
    }
}

/// What the soak observed.
#[derive(Debug, Clone, PartialEq)]
pub struct SoakReport {
    /// Submissions attempted (including resubmits after `QueueFull`).
    pub submitted: u64,
    /// Sessions admitted.
    pub accepted: u64,
    /// Rejections observed (explicit backpressure, not drops).
    pub rejected: u64,
    /// Accepted sessions that completed.
    pub completed: u64,
    /// Accepted sessions that terminally failed.
    pub failed: u64,
    /// Accepted sessions expired by the deadline watchdog.
    pub expired: u64,
    /// Accepted sessions still non-terminal when their client gave up —
    /// any non-zero value is a liveness violation.
    pub unresolved: u64,
    /// High-water admission-queue depth (must stay `<= queue_bound`).
    pub peak_depth: u64,
    /// The configured queue bound, echoed for assertions.
    pub queue_bound: u64,
    /// Epochs the chaos run executed.
    pub epochs: u64,
    /// Mean satisfaction over completed chaos sessions.
    pub mean_satisfaction: f64,
    /// Mean satisfaction of the clean (fault-free) baseline over the same
    /// submission mix.
    pub clean_mean_satisfaction: f64,
    /// `mean_satisfaction / clean_mean_satisfaction` (1.0 when the
    /// baseline is zero).
    pub retention: f64,
    /// Wall-clock duration of the chaos run.
    pub wall_seconds: f64,
}

/// The deterministic submission mix: client `c`'s `i`-th request. Rotates
/// through the Table 2 contract classes so every class is exercised.
/// Public so the `serve_soak` driver submits the exact same mix — the
/// kill-and-restore equivalence check depends on it.
pub fn mix_request(catalog_len: usize, c: usize, i: usize) -> SubmitRequest {
    let k = c * 31 + i;
    let contract = match k % 5 {
        0 => Contract::Deadline { t_hard: 40.0 },
        1 => Contract::LogDecay,
        2 => Contract::SoftDeadline { t_soft: 25.0 },
        3 => Contract::Quota {
            frac: 0.25,
            interval: 10.0,
        },
        _ => Contract::Hybrid {
            frac: 0.2,
            interval: 12.0,
        },
    };
    SubmitRequest {
        catalog: k % catalog_len,
        priority: 0.25 + 0.5 * ((k % 4) as f64 / 3.0),
        contract,
        deadline_ms: None,
    }
}

/// Clean baseline: same submission mix, fault-free exec, single-threaded
/// FIFO drain. Returns the mean satisfaction over completed sessions.
fn clean_baseline(
    tables: &(Table, Table),
    catalog: &[QuerySpec],
    clean_exec: &ExecConfig,
    engine: &EngineConfig,
    cfg: &SoakConfig,
) -> f64 {
    let mut serve = cfg.serve;
    // The baseline is not exercising backpressure; give it room so the
    // whole mix is admitted.
    serve.queue_bound = (cfg.clients * cfg.submits_per_client).max(1);
    let server = CaqeServer::new(
        tables.clone(),
        catalog.to_vec(),
        *clean_exec,
        *engine,
        serve,
    );
    // Round-robin over clients approximates the interleaving concurrent
    // clients produce.
    for i in 0..cfg.submits_per_client {
        for c in 0..cfg.clients {
            let resp = server.submit(mix_request(catalog.len(), c, i));
            debug_assert!(matches!(resp, SubmitResponse::Accepted { .. }));
        }
        server.drain();
    }
    server.drain();
    server.mean_satisfaction()
}

/// Runs the soak: `cfg.clients` threads submit, back off on rejects and
/// attach to their sessions while a worker thread drives epochs, with
/// `chaos_exec` carrying the fault plan. A clean baseline over the same
/// submission mix anchors the `retention` figure.
pub fn run_soak(
    tables: &(Table, Table),
    catalog: &[QuerySpec],
    clean_exec: &ExecConfig,
    chaos_exec: &ExecConfig,
    engine: &EngineConfig,
    cfg: &SoakConfig,
) -> SoakReport {
    assert!(!catalog.is_empty(), "soak needs a catalog");
    let clean_mean = clean_baseline(tables, catalog, clean_exec, engine, cfg);

    let server = CaqeServer::new(
        tables.clone(),
        catalog.to_vec(),
        *chaos_exec,
        *engine,
        cfg.serve,
    );
    let submitted = AtomicU64::new(0);
    let accepted = AtomicU64::new(0);
    let rejected = AtomicU64::new(0);
    let completed = AtomicU64::new(0);
    let failed = AtomicU64::new(0);
    let expired = AtomicU64::new(0);
    let unresolved = AtomicU64::new(0);

    let started = Instant::now();
    std::thread::scope(|scope| {
        let worker = scope.spawn(|| server.run_worker(true));
        let mut clients = Vec::new();
        for c in 0..cfg.clients {
            let server = &server;
            let submitted = &submitted;
            let accepted = &accepted;
            let rejected = &rejected;
            let completed = &completed;
            let failed = &failed;
            let expired = &expired;
            let unresolved = &unresolved;
            clients.push(scope.spawn(move || {
                let mut sessions = Vec::new();
                for i in 0..cfg.submits_per_client {
                    let req = mix_request(catalog.len(), c, i);
                    let mut tries = 0u32;
                    loop {
                        submitted.fetch_add(1, Ordering::Relaxed);
                        match server.submit(req.clone()) {
                            SubmitResponse::Accepted { session, .. } => {
                                accepted.fetch_add(1, Ordering::Relaxed);
                                sessions.push(session);
                                break;
                            }
                            SubmitResponse::Rejected { reason, .. } => {
                                rejected.fetch_add(1, Ordering::Relaxed);
                                if reason.as_str() == "full" && tries < cfg.full_retries {
                                    tries += 1;
                                    std::thread::sleep(Duration::from_millis(2));
                                    continue;
                                }
                                break;
                            }
                        }
                    }
                }
                for session in sessions {
                    match server.attach(session, Duration::from_millis(cfg.attach_timeout_ms)) {
                        Some(SessionState::Done(_)) => {
                            completed.fetch_add(1, Ordering::Relaxed);
                        }
                        Some(SessionState::Failed(_)) => {
                            failed.fetch_add(1, Ordering::Relaxed);
                        }
                        Some(SessionState::DeadlineExpired) => {
                            expired.fetch_add(1, Ordering::Relaxed);
                        }
                        Some(SessionState::Cancelled) => {}
                        _ => {
                            unresolved.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            }));
        }
        for client in clients {
            let _ = client.join();
        }
        server.begin_shutdown();
        let _ = worker.join();
    });
    let wall_seconds = started.elapsed().as_secs_f64();

    let mean_satisfaction = server.mean_satisfaction();
    let retention = if clean_mean > 0.0 {
        mean_satisfaction / clean_mean
    } else {
        1.0
    };
    SoakReport {
        submitted: submitted.into_inner(),
        accepted: accepted.into_inner(),
        rejected: rejected.into_inner(),
        completed: completed.into_inner(),
        failed: failed.into_inner(),
        expired: expired.into_inner(),
        unresolved: unresolved.into_inner(),
        peak_depth: server.queue_peak() as u64,
        queue_bound: cfg.serve.queue_bound as u64,
        epochs: server.epochs(),
        mean_satisfaction,
        clean_mean_satisfaction: clean_mean,
        retention,
        wall_seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submission_mix_is_deterministic_and_in_range() {
        for c in 0..4 {
            for i in 0..8 {
                let a = mix_request(3, c, i);
                let b = mix_request(3, c, i);
                assert!(a.catalog < 3);
                assert!((0.0..=1.0).contains(&a.priority));
                assert_eq!(a.catalog, b.catalog);
                assert_eq!(a.priority, b.priority);
            }
        }
    }
}
