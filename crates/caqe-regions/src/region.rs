//! Output regions (`R_i` of Table 1) and their lifecycle.

use caqe_types::ids::QuerySet;
use caqe_types::{CellId, DimMask, QueryId, Rect, RegionId, Value};

/// Number of grid subdivisions per dimension used for output cells inside a
/// region (the paper's 2-d illustrations use small regular grids; 2 per
/// dimension keeps the cell count at `2^d ≤ 32` for `d ≤ 5`).
pub const GRID_PARTS: usize = 2;

/// A region of the multi-query output space: the image of one pair of input
/// cells under the shared mapping functions.
#[derive(Debug, Clone, PartialEq)]
pub struct OutputRegion {
    /// Region identifier within its [`RegionSet`].
    pub id: RegionId,
    /// Source cell in the R-table partitioning.
    pub r_cell: CellId,
    /// Source cell in the T-table partitioning.
    pub t_cell: CellId,
    /// Output-space bounds (exact under monotone mappings).
    pub bounds: Rect,
    /// Member count of the R-side cell (`n_a^R` in Equation 9).
    pub n_r: usize,
    /// Member count of the T-side cell (`n_b^T` in Equation 9).
    pub n_t: usize,
    /// Estimated number of join results the cell pair will produce.
    pub est_join: f64,
    /// Queries this region can still contribute to (the mutable
    /// *region query lineage*, `RQL`).
    pub serving: QuerySet,
    /// The region's output cells (regular grid over `bounds`).
    grid: Vec<Rect>,
    /// Per output cell: queries for which the cell is still alive (the
    /// *cell query lineage*, `CQL`).
    cell_alive: Vec<QuerySet>,
    /// Whether tuple-level processing has completed for this region.
    pub processed: bool,
}

impl OutputRegion {
    /// Creates a region; the output-cell grid is derived from `bounds`.
    #[allow(clippy::too_many_arguments)] // mirrors Table 1's region attributes
    pub fn new(
        id: RegionId,
        r_cell: CellId,
        t_cell: CellId,
        bounds: Rect,
        n_r: usize,
        n_t: usize,
        est_join: f64,
        serving: QuerySet,
    ) -> Self {
        let grid = bounds.grid(GRID_PARTS);
        let cell_alive = vec![serving; grid.len()];
        OutputRegion {
            id,
            r_cell,
            t_cell,
            bounds,
            n_r,
            n_t,
            est_join,
            serving,
            grid,
            cell_alive,
            processed: false,
        }
    }

    /// Whether the region still serves at least one query and has not been
    /// processed.
    #[inline]
    pub fn is_alive(&self) -> bool {
        !self.processed && !self.serving.is_empty()
    }

    /// The output cells (grid boxes) of the region.
    pub fn grid(&self) -> &[Rect] {
        &self.grid
    }

    /// The queries for which output cell `c` is still alive.
    pub fn cell_lineage(&self, c: usize) -> QuerySet {
        self.cell_alive[c]
    }

    /// Total number of output cells (the `CellCount` of Equation 10).
    pub fn cell_count(&self) -> usize {
        self.grid.len()
    }

    /// Number of output cells still alive for query `q`.
    pub fn alive_cell_count(&self, q: QueryId) -> usize {
        self.cell_alive.iter().filter(|s| s.contains(q)).count()
    }

    /// Index of the output cell a generated tuple falls into, or `None` if
    /// the point lies outside the region (never happens for exact bounds).
    #[allow(clippy::needless_range_loop)] // strided per-dimension arithmetic
    pub fn locate(&self, point: &[Value]) -> Option<usize> {
        // The grid is regular; compute the index directly per dimension.
        let d = self.bounds.dims();
        debug_assert_eq!(point.len(), d);
        let mut idx = 0usize;
        let mut stride = 1usize;
        for k in 0..d {
            let lo = self.bounds.lo()[k];
            let w = self.bounds.extent(k) / GRID_PARTS as Value;
            let cell_k = if w <= 0.0 {
                0
            } else {
                let c = ((point[k] - lo) / w).floor() as isize;
                if c < 0 || point[k] > self.bounds.hi()[k] {
                    return None;
                }
                (c as usize).min(GRID_PARTS - 1)
            };
            idx += cell_k * stride;
            stride *= GRID_PARTS;
        }
        Some(idx)
    }

    /// Kills output cell `c` for the given queries. Returns the queries for
    /// which the *whole region* consequently died (no alive cell left).
    pub fn kill_cell(&mut self, c: usize, queries: QuerySet) -> QuerySet {
        let before = self.cell_alive[c];
        self.cell_alive[c] = before.intersect(QuerySet(!queries.0));
        let mut region_dead = QuerySet::EMPTY;
        for q in before.intersect(queries).iter() {
            if !self.serving.contains(q) {
                continue;
            }
            if self.cell_alive.iter().all(|s| !s.contains(q)) {
                self.serving.remove(q);
                region_dead.insert(q);
            }
        }
        region_dead
    }

    /// Kills the region for a query outright (used when a coarse or actual
    /// dominator covers all of it).
    pub fn kill_query(&mut self, q: QueryId) {
        self.serving.remove(q);
        for s in &mut self.cell_alive {
            s.remove(q);
        }
    }

    /// Adds a newly admitted query to the region's lineage with *every*
    /// output cell alive: no coarse information about the late arrival
    /// exists yet, so the conservative lineage is "everything may still
    /// matter". Extra materialized tuples this causes are dominated
    /// transitively and never reach a final skyline, so results stay exact.
    pub fn admit_query(&mut self, q: QueryId) {
        self.serving.insert(q);
        for s in &mut self.cell_alive {
            s.insert(q);
        }
    }
}

/// A collection of output regions for one join group, with shared workload
/// metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionSet {
    regions: Vec<OutputRegion>,
    /// `(global query id, preference subspace)` of every query served by
    /// this region set's join group.
    queries: Vec<(QueryId, DimMask)>,
}

impl RegionSet {
    /// Creates a region set.
    pub fn new(regions: Vec<OutputRegion>, queries: Vec<(QueryId, DimMask)>) -> Self {
        RegionSet { regions, queries }
    }

    /// All regions (including dead/processed ones; check
    /// [`OutputRegion::is_alive`]).
    pub fn regions(&self) -> &[OutputRegion] {
        &self.regions
    }

    /// Mutable access to a region.
    pub fn region_mut(&mut self, id: RegionId) -> &mut OutputRegion {
        &mut self.regions[id.index()]
    }

    /// Shared access to a region.
    pub fn region(&self, id: RegionId) -> &OutputRegion {
        &self.regions[id.index()]
    }

    /// Number of regions.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// Whether there are no regions.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// The join group's queries as `(global id, preference)` pairs.
    pub fn queries(&self) -> &[(QueryId, DimMask)] {
        &self.queries
    }

    /// The preference subspace of a (global) query id.
    ///
    /// # Panics
    /// Panics if the query is not part of this region set's group.
    #[allow(clippy::expect_used)] // documented panic contract above
    pub fn pref(&self, q: QueryId) -> DimMask {
        self.queries
            .iter()
            .find(|(id, _)| *id == q)
            .map(|(_, m)| *m)
            .expect("query not in this join group")
    }

    /// Ids of regions still alive.
    pub fn alive_ids(&self) -> Vec<RegionId> {
        self.regions
            .iter()
            .filter(|r| r.is_alive())
            .map(|r| r.id)
            .collect()
    }

    /// Registers a newly admitted query (global id `q`, preference `pref`)
    /// with this set and revives every *unprocessed* region for it (see
    /// [`OutputRegion::admit_query`]). Processed regions stay retired: their
    /// already-materialized tuples reach the late arrival through the shared
    /// plan's backfill instead.
    pub fn admit_query(&mut self, q: QueryId, pref: DimMask) {
        self.queries.push((q, pref));
        for r in &mut self.regions {
            if !r.processed {
                r.admit_query(q);
            }
        }
    }

    /// The per-dimension envelope of all region bounds: `(lo, hi)` where
    /// `lo[k]`/`hi[k]` are the min/max corner values over every region
    /// (dead or alive — the envelope feeds signature quantization, where a
    /// wider range costs precision but never correctness, and dead regions'
    /// tuples may already sit in downstream skylines). `None` when the set
    /// is empty or any corner is NaN (no sound quantizer exists then).
    pub fn mapped_bounds(&self) -> Option<(Vec<Value>, Vec<Value>)> {
        let first = self.regions.first()?;
        let d = first.bounds.dims();
        let mut lo = vec![Value::INFINITY; d];
        let mut hi = vec![Value::NEG_INFINITY; d];
        for r in &self.regions {
            for k in 0..d {
                let (l, h) = (r.bounds.lo()[k], r.bounds.hi()[k]);
                if l.is_nan() || h.is_nan() {
                    return None;
                }
                lo[k] = lo[k].min(l);
                hi[k] = hi[k].max(h);
            }
        }
        Some((lo, hi))
    }

    /// Retires query `q` from every region, returning the ids of regions
    /// that *died* as a result (the departing query was their sole remaining
    /// consumer) — the caller retires those the same way shedding does.
    pub fn depart_query(&mut self, q: QueryId) -> Vec<RegionId> {
        let mut died = Vec::new();
        for r in &mut self.regions {
            let was_alive = r.is_alive();
            r.kill_query(q);
            if was_alive && !r.is_alive() {
                died.push(r.id);
            }
        }
        died
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region2d(serving: QuerySet) -> OutputRegion {
        OutputRegion::new(
            RegionId(0),
            CellId(0),
            CellId(0),
            Rect::new(vec![0.0, 0.0], vec![4.0, 4.0]),
            10,
            10,
            5.0,
            serving,
        )
    }

    #[test]
    fn grid_has_2_pow_d_cells() {
        let r = region2d(QuerySet::all(2));
        assert_eq!(r.cell_count(), 4);
        assert_eq!(r.alive_cell_count(QueryId(0)), 4);
    }

    #[test]
    fn locate_maps_points_to_cells() {
        let r = region2d(QuerySet::all(1));
        // Cells: [0,2]x[0,2] -> 0, [2,4]x[0,2] -> 1, [0,2]x[2,4] -> 2, ...
        assert_eq!(r.locate(&[1.0, 1.0]), Some(0));
        assert_eq!(r.locate(&[3.0, 1.0]), Some(1));
        assert_eq!(r.locate(&[1.0, 3.0]), Some(2));
        assert_eq!(r.locate(&[3.0, 3.0]), Some(3));
        // Boundary points land in the last cell, not outside.
        assert_eq!(r.locate(&[4.0, 4.0]), Some(3));
        assert_eq!(r.locate(&[5.0, 1.0]), None);
    }

    #[test]
    fn locate_in_grid_box_agrees_with_grid_rects() {
        let r = region2d(QuerySet::all(1));
        for (i, cell) in r.grid().iter().enumerate() {
            let c = cell.center();
            assert_eq!(r.locate(&c), Some(i));
        }
    }

    #[test]
    fn kill_cell_cascades_to_region() {
        let mut r = region2d(QuerySet::all(2));
        let q0 = QueryId(0);
        let one = QuerySet::singleton(q0);
        for c in 0..3 {
            assert!(r.kill_cell(c, one).is_empty());
            assert!(r.serving.contains(q0));
        }
        let dead = r.kill_cell(3, one);
        assert!(dead.contains(q0));
        assert!(!r.serving.contains(q0));
        // Query 1 untouched.
        assert!(r.serving.contains(QueryId(1)));
        assert!(r.is_alive());
    }

    #[test]
    fn kill_query_kills_everything_for_it() {
        let mut r = region2d(QuerySet::all(1));
        r.kill_query(QueryId(0));
        assert!(!r.is_alive());
        assert_eq!(r.alive_cell_count(QueryId(0)), 0);
    }

    #[test]
    fn degenerate_region_locates_to_cell_zero() {
        let r = OutputRegion::new(
            RegionId(0),
            CellId(0),
            CellId(0),
            Rect::new(vec![2.0, 2.0], vec![2.0, 2.0]),
            1,
            1,
            1.0,
            QuerySet::all(1),
        );
        assert_eq!(r.locate(&[2.0, 2.0]), Some(0));
    }

    #[test]
    fn admit_revives_dead_region_with_all_cells() {
        let mut r = region2d(QuerySet::all(1));
        r.kill_query(QueryId(0));
        assert!(!r.is_alive());
        r.admit_query(QueryId(1));
        assert!(r.is_alive());
        assert_eq!(r.alive_cell_count(QueryId(1)), 4);
    }

    #[test]
    fn set_admit_and_depart_round_trip() {
        let qs = vec![(QueryId(0), DimMask::full(2))];
        let mut set = RegionSet::new(vec![region2d(QuerySet::all(1))], qs);
        set.admit_query(QueryId(1), DimMask::singleton(0));
        assert_eq!(set.pref(QueryId(1)), DimMask::singleton(0));
        assert!(set.region(RegionId(0)).serving.contains(QueryId(1)));
        // Query 0 departs: the region survives on query 1.
        assert!(set.depart_query(QueryId(0)).is_empty());
        // Query 1 departs: the region was its sole remaining provider.
        assert_eq!(set.depart_query(QueryId(1)), vec![RegionId(0)]);
    }

    #[test]
    fn admit_skips_processed_regions() {
        let mut region = region2d(QuerySet::all(1));
        region.processed = true;
        let mut set = RegionSet::new(vec![region], vec![(QueryId(0), DimMask::full(2))]);
        set.admit_query(QueryId(1), DimMask::full(2));
        assert!(!set.region(RegionId(0)).serving.contains(QueryId(1)));
        assert_eq!(set.pref(QueryId(1)), DimMask::full(2));
    }

    #[test]
    fn mapped_bounds_envelope_all_regions() {
        let mut far = region2d(QuerySet::all(1));
        far.bounds = Rect::new(vec![-1.0, 3.0], vec![2.0, 9.0]);
        far.processed = true; // dead regions still count toward the envelope
        let set = RegionSet::new(
            vec![region2d(QuerySet::all(1)), far],
            vec![(QueryId(0), DimMask::full(2))],
        );
        let (lo, hi) = set.mapped_bounds().unwrap();
        assert_eq!(lo, vec![-1.0, 0.0]);
        assert_eq!(hi, vec![4.0, 9.0]);
        let empty = RegionSet::new(Vec::new(), Vec::new());
        assert!(empty.mapped_bounds().is_none());
    }

    #[test]
    fn region_set_accessors() {
        let qs = vec![(QueryId(0), DimMask::full(2))];
        let set = RegionSet::new(vec![region2d(QuerySet::all(1))], qs);
        assert_eq!(set.len(), 1);
        assert!(!set.is_empty());
        assert_eq!(set.pref(QueryId(0)), DimMask::full(2));
        assert_eq!(set.alive_ids(), vec![RegionId(0)]);
    }
}
