//! The progressiveness-based benefit model (§5.3 of the paper).
//!
//! * [`buchta_estimate`] — Equation 9: the expected skyline size of `m`
//!   uniformly distributed `d`-dimensional points, `ln(m)^{d−1} / (d−1)!`
//!   (Buchta [4]);
//! * [`prog_count`] — Definition 11: how many of a region's output cells
//!   cannot be dominated by any *alive* threatening region;
//! * [`prog_est`] — Equation 10: the fraction of the region's estimated
//!   skyline output that is guaranteed progressive;
//! * [`estimate_ticks`] — the cost model: projected virtual ticks to
//!   process the region at tuple level;
//! * [`region_csm`] — Equation 8: the Cumulative Satisfaction Metric that
//!   ranks candidate regions.

use crate::depgraph::DependencyGraph;
use crate::region::{OutputRegion, RegionSet};
use caqe_contract::QueryScore;
use caqe_types::{CostModel, QueryId, SimClock};

/// Equation 9: Buchta's estimate of the number of skyline points among `m`
/// independently distributed points in `d` dimensions. Clamped to `[1, m]`
/// for `m ≥ 1`.
pub fn buchta_estimate(m: f64, d: usize) -> f64 {
    if m <= 1.0 {
        return m.max(0.0);
    }
    let d = d.max(1);
    let mut fact = 1.0f64;
    for k in 2..d {
        fact *= k as f64;
    }
    (m.ln().powi(d as i32 - 1) / fact).clamp(1.0, m)
}

/// Definition 11: the number of output cells of `region` that are still
/// alive for `q` and cannot be dominated by any alive threatening region.
pub fn prog_count(
    set: &RegionSet,
    dg: &DependencyGraph,
    region: &OutputRegion,
    q: QueryId,
) -> usize {
    let mask = set.pref(q);
    let threats: Vec<&OutputRegion> = dg
        .threats_in(region.id)
        .iter()
        .filter(|e| e.queries.contains(q))
        .map(|e| set.region(e.peer))
        .filter(|r| r.is_alive() && r.serving.contains(q))
        .collect();
    region
        .grid()
        .iter()
        .enumerate()
        .filter(|(c, cell)| {
            region.cell_lineage(*c).contains(q)
                && !threats
                    .iter()
                    .any(|t| t.bounds.may_dominate_region(cell, mask))
        })
        .count()
}

/// Equation 10: the progressiveness estimate of a region for one query —
/// the guaranteed-progressive fraction of its estimated skyline output.
pub fn prog_est(set: &RegionSet, dg: &DependencyGraph, region: &OutputRegion, q: QueryId) -> f64 {
    if !region.serving.contains(q) {
        return 0.0;
    }
    let cells = region.cell_count();
    if cells == 0 {
        return 0.0;
    }
    let frac = prog_count(set, dg, region, q) as f64 / cells as f64;
    let d = set.pref(q).len();
    frac * buchta_estimate(region.est_join, d)
}

/// Expected-value relaxation of Definition 11: each alive cell contributes
/// `1 / (1 + #alive threats that may dominate it)` instead of the
/// all-or-nothing guarantee of [`prog_count`].
///
/// Under heavy mutual overlap — e.g. subspace queries projecting many cell
/// pairs onto identical boxes — *every* cell of *every* region has at least
/// one potential dominator, so the guaranteed count collapses to zero for
/// all candidates at once and Equation 8 loses its contract signal entirely.
/// The soft count degrades smoothly: a cell with no threats still counts
/// 1.0 (agreeing with [`prog_count`]), a contested cell counts its survival
/// odds under the uniform-threat approximation.
pub fn soft_prog_count(
    set: &RegionSet,
    dg: &DependencyGraph,
    region: &OutputRegion,
    q: QueryId,
) -> f64 {
    let mask = set.pref(q);
    let threats: Vec<&OutputRegion> = dg
        .threats_in(region.id)
        .iter()
        .filter(|e| e.queries.contains(q))
        .map(|e| set.region(e.peer))
        .filter(|r| r.is_alive() && r.serving.contains(q))
        .collect();
    region
        .grid()
        .iter()
        .enumerate()
        .filter(|(c, _)| region.cell_lineage(*c).contains(q))
        .map(|(_, cell)| {
            let n_threats = threats
                .iter()
                .filter(|t| t.bounds.may_dominate_region(cell, mask))
                .count();
            1.0 / (1.0 + n_threats as f64)
        })
        .sum()
}

/// Expected-value counterpart of [`prog_est`], used by the CSM benefit
/// model (Equation 8) so that candidate ranking keeps a contract-weighted
/// signal even when no region's output is *guaranteed* progressive.
pub fn soft_prog_est(
    set: &RegionSet,
    dg: &DependencyGraph,
    region: &OutputRegion,
    q: QueryId,
) -> f64 {
    if !region.serving.contains(q) {
        return 0.0;
    }
    let cells = region.cell_count();
    if cells == 0 {
        return 0.0;
    }
    let frac = soft_prog_count(set, dg, region, q) / cells as f64;
    let d = set.pref(q).len();
    frac * buchta_estimate(region.est_join, d)
}

/// The optimizer's cost model: projected virtual ticks to process `region`
/// at tuple level — a hash join over the cell pair plus projection and
/// skyline insertion for the expected matches. `avg_sky` approximates the
/// dominance comparisons per insertion with the square root of the expected
/// match count (sub-linear window growth).
pub fn estimate_ticks(region: &OutputRegion, model: &CostModel, output_dims: usize) -> u64 {
    let probes = (region.n_r + region.n_t) as f64 + region.est_join;
    let avg_sky = region.est_join.sqrt().max(1.0);
    let ticks = model.region_overhead as f64
        + probes * model.join_probe as f64
        + region.est_join
            * (output_dims as f64 * model.map_eval as f64 + avg_sky * model.dom_cmp as f64);
    ticks.ceil() as u64
}

/// One region's benefit-model predictions reconciled against what actually
/// happened when the region was processed.
///
/// The scheduler commits to a region on the strength of three estimates —
/// the expected join size, the Buchta skyline estimate (Equation 9) behind
/// `ProgEst` (Equation 10), and the projected processing ticks behind
/// Equation 8's completion time. The trace layer records all three at
/// schedule time and the matching actuals at completion; the relative
/// errors below are the estimator-accuracy audit the adaptive-lattice
/// ROADMAP items depend on.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ReconciledEstimate {
    /// Expected join results of the cell pair (`est_join` of the region).
    pub est_join: f64,
    /// Buchta skyline estimate summed over the queries the region served.
    pub est_skyline: f64,
    /// Projected processing ticks ([`estimate_ticks`]).
    pub est_ticks: u64,
    /// Join results the region actually materialized.
    pub actual_join: u64,
    /// Tuples the region actually admitted to a query skyline (summed over
    /// served queries, counted at insertion time).
    pub actual_skyline: u64,
    /// Ticks the region's tuple-level processing actually charged.
    pub actual_ticks: u64,
}

/// Relative error `|est − actual| / max(actual, 1)`: the floor keeps
/// zero-actual regions (fully discarded output) from dividing by zero while
/// still penalizing estimates that promised output.
fn relative_error(est: f64, actual: f64) -> f64 {
    (est - actual).abs() / actual.max(1.0)
}

impl ReconciledEstimate {
    /// Relative error of the join-size estimate.
    pub fn join_rel_error(&self) -> f64 {
        relative_error(self.est_join, self.actual_join as f64)
    }

    /// Relative error of the Buchta skyline estimate (Equation 9).
    pub fn skyline_rel_error(&self) -> f64 {
        relative_error(self.est_skyline, self.actual_skyline as f64)
    }

    /// Relative error of the tick (cost) estimate.
    pub fn ticks_rel_error(&self) -> f64 {
        relative_error(self.est_ticks as f64, self.actual_ticks as f64)
    }
}

/// Equation 8: the Cumulative Satisfaction Metric of a candidate region at
/// the current virtual time.
///
/// For each query the region still serves, the expected progressive output
/// `N^i_est = ProgEst(R_c, Q_i)` is scored with the query's utility function
/// at the *projected completion time* `t_curr + t_c`, weighted by the
/// query's run-time weight `w_i`.
pub fn region_csm(
    set: &RegionSet,
    dg: &DependencyGraph,
    region: &OutputRegion,
    scores: &[QueryScore],
    weights: &[f64],
    clock: &SimClock,
    output_dims: usize,
) -> f64 {
    let t_c = estimate_ticks(region, clock.model(), output_dims);
    let t_done = clock.projected(t_c);
    let mut csm = 0.0;
    for (q, _) in set.queries() {
        if !region.serving.contains(*q) {
            continue;
        }
        let est = soft_prog_est(set, dg, region, *q);
        if est <= 0.0 {
            continue;
        }
        // Utility of the batch, approximated at its median sequence number.
        let ahead = (est / 2.0).ceil() as u64;
        let u = scores[q.index()].hypothetical_utility(t_done, ahead.max(1));
        csm += weights[q.index()] * est * u;
    }
    csm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::OutputRegion;
    use caqe_contract::Contract;
    use caqe_types::ids::QuerySet;
    use caqe_types::{CellId, DimMask, Rect, RegionId, Stats};

    #[test]
    fn buchta_known_values() {
        // d = 1: skyline of distinct values has exactly 1 point.
        assert_eq!(buchta_estimate(1000.0, 1), 1.0);
        // d = 2: ln(m).
        assert!((buchta_estimate(1000.0, 2) - 1000.0f64.ln()).abs() < 1e-9);
        // d = 3: ln(m)^2 / 2.
        assert!((buchta_estimate(1000.0, 3) - 1000.0f64.ln().powi(2) / 2.0).abs() < 1e-9);
        // Monotone in d for large m.
        assert!(buchta_estimate(1e5, 4) > buchta_estimate(1e5, 3));
        // Degenerate inputs.
        assert_eq!(buchta_estimate(0.0, 3), 0.0);
        assert_eq!(buchta_estimate(1.0, 3), 1.0);
        // Never exceeds m.
        assert!(buchta_estimate(2.0, 5) <= 2.0);
    }

    fn two_region_set() -> (RegionSet, DependencyGraph) {
        let queries = vec![(QueryId(0), DimMask::full(2))];
        let all: QuerySet = queries.iter().map(|(q, _)| *q).collect();
        let r0 = OutputRegion::new(
            RegionId(0),
            CellId(0),
            CellId(0),
            Rect::new(vec![0.0, 0.0], vec![4.0, 4.0]),
            8,
            8,
            16.0,
            all,
        );
        // r1 sits up-and-right of r0's lower half: partially dominated.
        let r1 = OutputRegion::new(
            RegionId(1),
            CellId(1),
            CellId(1),
            Rect::new(vec![2.0, 2.0], vec![6.0, 6.0]),
            8,
            8,
            16.0,
            all,
        );
        let set = RegionSet::new(vec![r0, r1], queries);
        let mut clock = SimClock::default();
        let mut stats = Stats::new();
        let dg = DependencyGraph::build(&set, &mut clock, &mut stats);
        (set, dg)
    }

    #[test]
    fn prog_count_sees_threats() {
        let (set, dg) = two_region_set();
        let q = QueryId(0);
        // r0's cells can be dominated by r1's best corner (2,2)? Only cells
        // whose worst corner is strictly worse than (2,2): the top-right
        // cell [2,4]x[2,4] is at risk; the bottom-left [0,2]x[0,2] is safe.
        let c0 = prog_count(&set, &dg, set.region(RegionId(0)), q);
        assert!((1..4).contains(&c0), "prog_count(r0) = {c0}");
        // r1 is heavily threatened by r0 (lower corner (0,0) dominates all).
        let c1 = prog_count(&set, &dg, set.region(RegionId(1)), q);
        assert_eq!(c1, 0);
    }

    #[test]
    fn prog_est_scales_with_prog_count() {
        let (set, dg) = two_region_set();
        let q = QueryId(0);
        let e0 = prog_est(&set, &dg, set.region(RegionId(0)), q);
        let e1 = prog_est(&set, &dg, set.region(RegionId(1)), q);
        assert!(e0 > e1);
        assert_eq!(e1, 0.0);
        // Non-serving query returns 0.
        assert_eq!(
            prog_est(&set, &dg, set.region(RegionId(0)), QueryId(3)),
            0.0
        );
    }

    #[test]
    fn estimate_ticks_grows_with_work() {
        let model = CostModel::default();
        let queries = [(QueryId(0), DimMask::full(2))];
        let all: QuerySet = queries.iter().map(|(q, _)| *q).collect();
        let small = OutputRegion::new(
            RegionId(0),
            CellId(0),
            CellId(0),
            Rect::new(vec![0.0, 0.0], vec![1.0, 1.0]),
            4,
            4,
            2.0,
            all,
        );
        let big = OutputRegion::new(
            RegionId(1),
            CellId(0),
            CellId(0),
            Rect::new(vec![0.0, 0.0], vec![1.0, 1.0]),
            400,
            400,
            2000.0,
            all,
        );
        assert!(estimate_ticks(&big, &model, 2) > estimate_ticks(&small, &model, 2));
        assert!(estimate_ticks(&small, &model, 2) >= model.region_overhead);
    }

    #[test]
    fn csm_prefers_unthreatened_region() {
        let (set, dg) = two_region_set();
        let scores = vec![QueryScore::new(Contract::Deadline { t_hard: 100.0 }, 50.0)];
        let weights = vec![1.0];
        let clock = SimClock::default();
        let c0 = region_csm(
            &set,
            &dg,
            set.region(RegionId(0)),
            &scores,
            &weights,
            &clock,
            2,
        );
        let c1 = region_csm(
            &set,
            &dg,
            set.region(RegionId(1)),
            &scores,
            &weights,
            &clock,
            2,
        );
        assert!(
            c0 > c1,
            "CSM should favour the progressive region: {c0} vs {c1}"
        );
    }

    #[test]
    fn csm_scales_with_weight() {
        let (set, dg) = two_region_set();
        let scores = vec![QueryScore::new(Contract::Deadline { t_hard: 100.0 }, 50.0)];
        let clock = SimClock::default();
        let w1 = region_csm(
            &set,
            &dg,
            set.region(RegionId(0)),
            &scores,
            &[1.0],
            &clock,
            2,
        );
        let w2 = region_csm(
            &set,
            &dg,
            set.region(RegionId(0)),
            &scores,
            &[2.0],
            &clock,
            2,
        );
        assert!((w2 - 2.0 * w1).abs() < 1e-9);
    }

    #[test]
    fn reconciled_estimate_relative_errors() {
        let rec = ReconciledEstimate {
            est_join: 150.0,
            est_skyline: 12.0,
            est_ticks: 2000,
            actual_join: 100,
            actual_skyline: 10,
            actual_ticks: 1000,
        };
        assert!((rec.join_rel_error() - 0.5).abs() < 1e-12);
        assert!((rec.skyline_rel_error() - 0.2).abs() < 1e-12);
        assert!((rec.ticks_rel_error() - 1.0).abs() < 1e-12);
        // Perfect estimates read zero error.
        let exact = ReconciledEstimate {
            est_join: 100.0,
            est_skyline: 10.0,
            est_ticks: 1000,
            actual_join: 100,
            actual_skyline: 10,
            actual_ticks: 1000,
        };
        assert_eq!(exact.join_rel_error(), 0.0);
        assert_eq!(exact.skyline_rel_error(), 0.0);
        assert_eq!(exact.ticks_rel_error(), 0.0);
        // Zero actuals: the unit floor keeps the error finite and equal to
        // the unfulfilled estimate itself.
        let empty = ReconciledEstimate {
            est_join: 3.0,
            est_skyline: 2.0,
            est_ticks: 5,
            actual_join: 0,
            actual_skyline: 0,
            actual_ticks: 0,
        };
        assert!((empty.join_rel_error() - 3.0).abs() < 1e-12);
        assert!((empty.skyline_rel_error() - 2.0).abs() < 1e-12);
        assert!((empty.ticks_rel_error() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn csm_zero_after_deadline() {
        let (set, dg) = two_region_set();
        let scores = vec![QueryScore::new(Contract::Deadline { t_hard: 0.0001 }, 50.0)];
        let weights = vec![1.0];
        let clock = SimClock::default();
        // Any region completes after the (absurd) deadline: CSM = 0.
        let c = region_csm(
            &set,
            &dg,
            set.region(RegionId(0)),
            &scores,
            &weights,
            &clock,
            2,
        );
        assert_eq!(c, 0.0);
    }
}
