//! The dependency graph between output regions (Definition 9, Figure 7).
//!
//! A directed edge `R_i → R_j` annotated with query set `W_{i,j}` records
//! that tuples materializing in `R_i` can dominate output cells of `R_j`
//! for the queries in `W_{i,j}`. The graph serves three masters:
//!
//! * **scheduling** — regions with no (non-mutual) incoming edges are the
//!   *roots* that Algorithm 1 ranks by CSM;
//! * **the benefit model** — the progressive cell count of `R_j` only needs
//!   to examine `R_j`'s in-neighbors ("threats");
//! * **safe emission** — a tuple of `R_j` can be progressively output once
//!   no alive in-neighbor can still dominate it (§6, Example 19).
//!
//! Mutual partial domination (`R_i` ⇄ `R_j`) is possible with overlapping
//! boxes; such pairs carry threat edges in both directions but neither
//! blocks the other's root status, so scheduling cannot deadlock.

use crate::region::RegionSet;
use caqe_types::ids::QuerySet;
use caqe_types::{RegionId, SimClock, Stats};

/// One directed threat edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// The other endpoint.
    pub peer: RegionId,
    /// Queries for which the source can dominate cells of the target.
    pub queries: QuerySet,
}

/// Inserts `q` into the edge toward `peer`, creating the edge if absent.
fn add_query_to_edge(edges: &mut Vec<Edge>, peer: RegionId, q: caqe_types::QueryId) {
    if let Some(e) = edges.iter_mut().find(|e| e.peer == peer) {
        e.queries.insert(q);
    } else {
        edges.push(Edge {
            peer,
            queries: QuerySet::singleton(q),
        });
    }
}

/// The dependency graph over a region set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DependencyGraph {
    /// `threats_in[j]` — edges `i → j`: regions that can dominate cells of
    /// `j`.
    threats_in: Vec<Vec<Edge>>,
    /// `threats_out[i]` — edges `i → j`: regions whose cells `i` can
    /// dominate.
    threats_out: Vec<Vec<Edge>>,
    /// `blockers[j]` — count of alive in-neighbors whose edge is *not*
    /// mutual; a region is a scheduling root when this reaches zero.
    blockers: Vec<usize>,
}

impl DependencyGraph {
    /// An edgeless graph over `n` regions — used by strategies that skip
    /// the look-ahead entirely (blind pipelining); every region is a root.
    pub fn empty(n: usize) -> Self {
        DependencyGraph {
            threats_in: vec![Vec::new(); n],
            threats_out: vec![Vec::new(); n],
            blockers: vec![0; n],
        }
    }

    /// Builds the graph by relating every alive region pair in every query
    /// subspace both serve.
    ///
    /// The `d` per-dimension corner comparisons of a pair are performed
    /// *once* and every query's subspace relation is then derived by
    /// bit-masking — so one region-level comparison is charged per ordered
    /// pair, not per (pair × query).
    #[allow(clippy::needless_range_loop)] // symmetric (i, j) iteration
    pub fn build(set: &RegionSet, clock: &mut SimClock, stats: &mut Stats) -> Self {
        let n = set.len();
        let mut threats_in: Vec<Vec<Edge>> = vec![Vec::new(); n];
        let mut threats_out: Vec<Vec<Edge>> = vec![Vec::new(); n];

        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let (ri, rj) = (&set.regions()[i], &set.regions()[j]);
                let shared = ri.serving.intersect(rj.serving);
                if shared.is_empty() {
                    continue;
                }
                clock.charge_dom_cmps(1);
                stats.region_comparisons += 1;
                // Per-dimension bits for "i's best corner vs j's worst
                // corner": `weak` where lo_i ≤ hi_j, `strict` where <.
                let d = ri.bounds.dims();
                let (mut weak, mut strict) = (0u32, 0u32);
                for k in 0..d {
                    let (a, b) = (ri.bounds.lo()[k], rj.bounds.hi()[k]);
                    if a <= b {
                        weak |= 1 << k;
                    }
                    if a < b {
                        strict |= 1 << k;
                    }
                }
                let mut w = QuerySet::EMPTY;
                for q in shared.iter() {
                    let m = set.pref(q).0;
                    // may_dominate in subspace m: weak on all of m, strict
                    // somewhere in m.
                    if weak & m == m && strict & m != 0 {
                        w.insert(q);
                    }
                }
                if !w.is_empty() {
                    threats_out[i].push(Edge {
                        peer: RegionId(j as u32),
                        queries: w,
                    });
                    threats_in[j].push(Edge {
                        peer: RegionId(i as u32),
                        queries: w,
                    });
                }
            }
        }

        let mut blockers = vec![0usize; n];
        for (j, edges) in threats_in.iter().enumerate() {
            for e in edges {
                let mutual = threats_in[e.peer.index()]
                    .iter()
                    .any(|back| back.peer.index() == j);
                if !mutual {
                    blockers[j] += 1;
                }
            }
        }

        DependencyGraph {
            threats_in,
            threats_out,
            blockers,
        }
    }

    /// Reconstructs a graph from persisted in-edge lists (DESIGN.md §19):
    /// `threats_out` is the exact transpose of `threats_in` (iterating
    /// targets in ascending order reproduces `build`'s inner-loop push
    /// order, so edge *ordering* — which downstream iteration observes —
    /// is restored bit-for-bit, not just edge membership), and blocker
    /// counts are recomputed with the same non-mutual-in-edge rule `build`
    /// uses. Charges nothing: a restored graph must not re-pay the
    /// comparisons the cold build already charged.
    pub fn from_threats_in(threats_in: Vec<Vec<Edge>>) -> Self {
        let n = threats_in.len();
        let mut threats_out: Vec<Vec<Edge>> = vec![Vec::new(); n];
        for (j, edges) in threats_in.iter().enumerate() {
            for e in edges {
                threats_out[e.peer.index()].push(Edge {
                    peer: RegionId(j as u32),
                    queries: e.queries,
                });
            }
        }
        let mut dg = DependencyGraph {
            threats_in,
            threats_out,
            blockers: vec![0; n],
        };
        dg.recompute_blockers();
        dg
    }

    /// In-edges of a region: the regions that can dominate its cells.
    pub fn threats_in(&self, r: RegionId) -> &[Edge] {
        &self.threats_in[r.index()]
    }

    /// Out-edges of a region: the regions whose cells it can dominate.
    pub fn threats_out(&self, r: RegionId) -> &[Edge] {
        &self.threats_out[r.index()]
    }

    /// Whether a region currently has no non-mutual alive blockers — a
    /// scheduling root in Algorithm 1's sense.
    pub fn is_root(&self, r: RegionId) -> bool {
        self.blockers[r.index()] == 0
    }

    /// Patches the graph for a newly admitted query `q`: re-relates every
    /// ordered pair of alive regions serving `q` in the query's subspace and
    /// inserts `q` into the matching edges (creating edges where none
    /// existed). Blocker counts are then recomputed wholesale — the alive
    /// graph is small by the time churn happens, and a wholesale recompute
    /// cannot drift from the `build` semantics. One region comparison is
    /// charged per ordered alive pair, mirroring `build`.
    pub fn admit_query(
        &mut self,
        set: &RegionSet,
        q: caqe_types::QueryId,
        clock: &mut SimClock,
        stats: &mut Stats,
    ) {
        let m = set.pref(q).0;
        let alive: Vec<usize> = set
            .regions()
            .iter()
            .enumerate()
            .filter(|(_, r)| r.is_alive() && r.serving.contains(q))
            .map(|(i, _)| i)
            .collect();
        for &i in &alive {
            for &j in &alive {
                if i == j {
                    continue;
                }
                let (ri, rj) = (&set.regions()[i], &set.regions()[j]);
                clock.charge_dom_cmps(1);
                stats.region_comparisons += 1;
                let d = ri.bounds.dims();
                let (mut weak, mut strict) = (0u32, 0u32);
                for k in 0..d {
                    let (a, b) = (ri.bounds.lo()[k], rj.bounds.hi()[k]);
                    if a <= b {
                        weak |= 1 << k;
                    }
                    if a < b {
                        strict |= 1 << k;
                    }
                }
                if weak & m == m && strict & m != 0 {
                    add_query_to_edge(&mut self.threats_out[i], RegionId(j as u32), q);
                    add_query_to_edge(&mut self.threats_in[j], RegionId(i as u32), q);
                }
            }
        }
        self.recompute_blockers();
    }

    /// Removes a departing query's bit from every edge, dropping edges whose
    /// query annotation becomes empty, and recomputes blocker counts. A
    /// region whose only threats were on behalf of `q` becomes a root.
    pub fn depart_query(&mut self, q: caqe_types::QueryId) {
        for edges in self
            .threats_in
            .iter_mut()
            .chain(self.threats_out.iter_mut())
        {
            for e in edges.iter_mut() {
                e.queries.remove(q);
            }
            edges.retain(|e| !e.queries.is_empty());
        }
        self.recompute_blockers();
    }

    /// Recomputes `blockers` from scratch with the same non-mutual-in-edge
    /// rule `build` uses.
    fn recompute_blockers(&mut self) {
        for j in 0..self.threats_in.len() {
            let mut b = 0usize;
            for e in &self.threats_in[j] {
                let mutual = self.threats_in[e.peer.index()]
                    .iter()
                    .any(|back| back.peer.index() == j);
                if !mutual {
                    b += 1;
                }
            }
            self.blockers[j] = b;
        }
    }

    /// Removes a region from the graph (processed or discarded), returning
    /// the regions that *became* roots as a result (the `DG_root'` of
    /// Algorithm 1).
    pub fn remove(&mut self, r: RegionId) -> Vec<RegionId> {
        let out = std::mem::take(&mut self.threats_out[r.index()]);
        let mut new_roots = Vec::new();
        for e in &out {
            let j = e.peer.index();
            // Was this edge counted as a blocker of j (non-mutual)?
            let mutual = self.threats_out[j].iter().any(|back| back.peer == r);
            self.threats_in[j].retain(|back| back.peer != r);
            if !mutual && self.blockers[j] > 0 {
                self.blockers[j] -= 1;
                if self.blockers[j] == 0 {
                    new_roots.push(e.peer);
                }
            }
        }
        // Drop the reverse sides of r's in-edges.
        let inn = std::mem::take(&mut self.threats_in[r.index()]);
        for e in &inn {
            self.threats_out[e.peer.index()].retain(|f| f.peer != r);
        }
        self.blockers[r.index()] = 0;
        new_roots
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::OutputRegion;
    use caqe_types::{CellId, DimMask, QueryId, Rect};

    /// Builds a 2-query, 2-dim region set from explicit boxes.
    fn set_from_boxes(boxes: &[([f64; 2], [f64; 2])]) -> RegionSet {
        let queries = vec![
            (QueryId(0), DimMask::full(2)),
            (QueryId(1), DimMask::singleton(0)),
        ];
        let all: QuerySet = queries.iter().map(|(q, _)| *q).collect();
        let regions = boxes
            .iter()
            .enumerate()
            .map(|(i, (lo, hi))| {
                OutputRegion::new(
                    RegionId(i as u32),
                    CellId(0),
                    CellId(0),
                    Rect::new(lo.to_vec(), hi.to_vec()),
                    4,
                    4,
                    4.0,
                    all,
                )
            })
            .collect();
        RegionSet::new(regions, queries)
    }

    #[test]
    fn strict_dominator_blocks_target() {
        // R0 strictly better than R1: edge R0 → R1, no back edge.
        let set = set_from_boxes(&[([0.0, 0.0], [1.0, 1.0]), ([5.0, 5.0], [6.0, 6.0])]);
        let mut clock = SimClock::default();
        let mut stats = Stats::new();
        let dg = DependencyGraph::build(&set, &mut clock, &mut stats);
        assert!(dg.is_root(RegionId(0)));
        assert!(!dg.is_root(RegionId(1)));
        assert_eq!(dg.threats_in(RegionId(1)).len(), 1);
        assert_eq!(dg.threats_out(RegionId(0)).len(), 1);
        // The edge covers both queries.
        assert_eq!(dg.threats_in(RegionId(1))[0].queries.len(), 2);
    }

    #[test]
    fn removal_promotes_new_roots() {
        let set = set_from_boxes(&[([0.0, 0.0], [1.0, 1.0]), ([5.0, 5.0], [6.0, 6.0])]);
        let mut clock = SimClock::default();
        let mut stats = Stats::new();
        let mut dg = DependencyGraph::build(&set, &mut clock, &mut stats);
        let roots = dg.remove(RegionId(0));
        assert_eq!(roots, vec![RegionId(1)]);
        assert!(dg.is_root(RegionId(1)));
        assert!(dg.threats_in(RegionId(1)).is_empty());
    }

    #[test]
    fn mutual_partial_domination_does_not_deadlock() {
        // Overlapping boxes: each can partially dominate the other.
        let set = set_from_boxes(&[([0.0, 0.0], [5.0, 5.0]), ([2.0, 2.0], [7.0, 7.0])]);
        let mut clock = SimClock::default();
        let mut stats = Stats::new();
        let dg = DependencyGraph::build(&set, &mut clock, &mut stats);
        // Threat edges exist in both directions…
        assert!(!dg.threats_in(RegionId(0)).is_empty());
        assert!(!dg.threats_in(RegionId(1)).is_empty());
        // …but neither blocks the other's scheduling.
        assert!(dg.is_root(RegionId(0)));
        assert!(dg.is_root(RegionId(1)));
    }

    #[test]
    fn incomparable_regions_are_unlinked() {
        // R0 better on d1, R1 better on d2 — on the full space incomparable,
        // but on {d1} (query 1) R0 can dominate R1.
        let set = set_from_boxes(&[([0.0, 8.0], [1.0, 9.0]), ([5.0, 0.0], [6.0, 1.0])]);
        let mut clock = SimClock::default();
        let mut stats = Stats::new();
        let dg = DependencyGraph::build(&set, &mut clock, &mut stats);
        let e = dg.threats_in(RegionId(1));
        assert_eq!(e.len(), 1);
        assert!(e[0].queries.contains(QueryId(1)));
        assert!(!e[0].queries.contains(QueryId(0)));
    }

    #[test]
    fn admit_patch_matches_rebuild() {
        // Two incomparable-on-full-space regions, initially serving only
        // query 0; admit query 1 over {d0} (where R0 can dominate R1) and
        // check the patched graph agrees edge-for-edge with a from-scratch
        // build over the grown query set.
        let boxes = [([0.0, 8.0], [1.0, 9.0]), ([5.0, 0.0], [6.0, 1.0])];
        let mk = |queries: Vec<(QueryId, DimMask)>, serving: QuerySet| {
            let regions = boxes
                .iter()
                .enumerate()
                .map(|(i, (lo, hi))| {
                    OutputRegion::new(
                        RegionId(i as u32),
                        CellId(0),
                        CellId(0),
                        Rect::new(lo.to_vec(), hi.to_vec()),
                        4,
                        4,
                        4.0,
                        serving,
                    )
                })
                .collect();
            RegionSet::new(regions, queries)
        };
        let q0 = (QueryId(0), DimMask::full(2));
        let q1 = (QueryId(1), DimMask::singleton(0));
        let mut set = mk(vec![q0], QuerySet::all(1));
        let mut clock = SimClock::default();
        let mut stats = Stats::new();
        let mut dg = DependencyGraph::build(&set, &mut clock, &mut stats);
        assert!(dg.threats_in(RegionId(1)).is_empty());
        assert!(dg.is_root(RegionId(1)));

        set.admit_query(QueryId(1), DimMask::singleton(0));
        let cmp_before = stats.region_comparisons;
        dg.admit_query(&set, QueryId(1), &mut clock, &mut stats);
        assert!(stats.region_comparisons > cmp_before, "patch must pay");

        let reference = DependencyGraph::build(
            &mk(vec![q0, q1], QuerySet::all(2)),
            &mut SimClock::default(),
            &mut Stats::new(),
        );
        for r in [RegionId(0), RegionId(1)] {
            let mut a = dg.threats_in(r).to_vec();
            a.sort_by_key(|e| e.peer.0);
            let mut b = reference.threats_in(r).to_vec();
            b.sort_by_key(|e| e.peer.0);
            assert_eq!(a, b, "in-edges of {r:?} diverge from rebuild");
            assert_eq!(dg.is_root(r), reference.is_root(r));
        }
    }

    #[test]
    fn threats_in_round_trip_reconstructs_exactly() {
        // Mix of strict chains, mutual overlaps and unlinked pairs, so the
        // transpose has to restore non-trivial edge orderings and both
        // mutual and non-mutual blocker contributions.
        let set = set_from_boxes(&[
            ([0.0, 0.0], [1.0, 1.0]),
            ([2.0, 2.0], [7.0, 7.0]),
            ([5.0, 5.0], [9.0, 9.0]),
            ([0.0, 8.0], [1.0, 9.0]),
            ([8.0, 0.0], [9.0, 1.0]),
        ]);
        let mut clock = SimClock::default();
        let mut stats = Stats::new();
        let dg = DependencyGraph::build(&set, &mut clock, &mut stats);
        let persisted: Vec<Vec<Edge>> = (0..set.len())
            .map(|j| dg.threats_in(RegionId(j as u32)).to_vec())
            .collect();
        let back = DependencyGraph::from_threats_in(persisted);
        // Bit-for-bit: same in-edges, same out-edge *order*, same blockers.
        assert_eq!(back, dg);
    }

    #[test]
    fn depart_drops_query_bits_and_unblocks() {
        // In `incomparable_regions_are_unlinked` the only edge R0 → R1 is on
        // behalf of query 1; its departure must erase the edge and promote
        // R1 to root.
        let set = set_from_boxes(&[([0.0, 8.0], [1.0, 9.0]), ([5.0, 0.0], [6.0, 1.0])]);
        let mut clock = SimClock::default();
        let mut stats = Stats::new();
        let mut dg = DependencyGraph::build(&set, &mut clock, &mut stats);
        assert!(!dg.is_root(RegionId(1)));
        dg.depart_query(QueryId(1));
        assert!(dg.threats_in(RegionId(1)).is_empty());
        assert!(dg.threats_out(RegionId(0)).is_empty());
        assert!(dg.is_root(RegionId(1)));
    }

    #[test]
    fn depart_keeps_shared_edges() {
        // A strict dominator threatens both queries; one departing must keep
        // the edge alive for the other.
        let set = set_from_boxes(&[([0.0, 0.0], [1.0, 1.0]), ([5.0, 5.0], [6.0, 6.0])]);
        let mut clock = SimClock::default();
        let mut stats = Stats::new();
        let mut dg = DependencyGraph::build(&set, &mut clock, &mut stats);
        dg.depart_query(QueryId(1));
        let e = dg.threats_in(RegionId(1));
        assert_eq!(e.len(), 1);
        assert!(e[0].queries.contains(QueryId(0)));
        assert!(!e[0].queries.contains(QueryId(1)));
        assert!(!dg.is_root(RegionId(1)));
    }

    #[test]
    fn chain_removal_cascades() {
        // R0 ≺ R1 ≺ R2 strictly.
        let set = set_from_boxes(&[
            ([0.0, 0.0], [1.0, 1.0]),
            ([2.0, 2.0], [3.0, 3.0]),
            ([4.0, 4.0], [5.0, 5.0]),
        ]);
        let mut clock = SimClock::default();
        let mut stats = Stats::new();
        let mut dg = DependencyGraph::build(&set, &mut clock, &mut stats);
        assert!(dg.is_root(RegionId(0)));
        assert!(!dg.is_root(RegionId(1)));
        assert!(!dg.is_root(RegionId(2)));
        let r1 = dg.remove(RegionId(0));
        assert_eq!(r1, vec![RegionId(1)]);
        // R2 is still blocked by R1.
        assert!(!dg.is_root(RegionId(2)));
        let r2 = dg.remove(RegionId(1));
        assert_eq!(r2, vec![RegionId(2)]);
    }
}
