//! Coarse-level join and skyline: building the region collection (§5.1–5.2).

use crate::region::{OutputRegion, RegionSet};
use caqe_cuboid::MinMaxCuboid;
use caqe_operators::MappingSet;
use caqe_partition::Partitioning;
use caqe_types::ids::QuerySet;
use caqe_types::{DimMask, DomKernel, QueryId, RegionId, SimClock, Stats, BLOCK_MIN};

/// Inputs for region construction for one join group: queries that share a
/// join condition and mapping functions but differ in skyline dimensions.
pub struct RegionBuildInput<'a> {
    /// Quad-tree partitioning of the R table.
    pub part_r: &'a Partitioning,
    /// Quad-tree partitioning of the T table.
    pub part_t: &'a Partitioning,
    /// Join column shared by the group's queries.
    pub join_col: usize,
    /// Mapping functions shared by the group's queries.
    pub mapping: &'a MappingSet,
    /// `(global query id, preference subspace)` of the group's queries.
    pub queries: &'a [(QueryId, DimMask)],
    /// Whether to run the coarse-level skyline (§5.2). CAQE and ProgXe+
    /// prune; the blind-pipelining S-JFSL baseline does not.
    pub coarse_pruning: bool,
    /// Keep regions whose serving set becomes empty instead of dropping
    /// them. Online sessions need this: a region pruned for today's queries
    /// may serve a query admitted tomorrow, and stable region ids let the
    /// session layer revive it in place.
    pub keep_empty: bool,
}

/// Builds the output regions of one join group.
///
/// 1. **Coarse join** (Example 15): a cell pair becomes a region iff its
///    signatures for the group's join column intersect — which guarantees
///    at least one real join result.
/// 2. **Coarse skyline** (§5.2, Example 16): bottom-up over the group's
///    min-max cuboid, a region fully dominated by another region in a
///    query's preference subspace is removed from that query's lineage;
///    Theorem 1 skips re-checking regions already known non-dominated from
///    a child subspace. Regions left serving no query are pruned and
///    counted in `stats.regions_pruned`.
///
/// Every region-level dominance test charges one comparison: CAQE pays for
/// its look-ahead in the same currency as everyone else.
pub fn build_regions(
    input: &RegionBuildInput<'_>,
    clock: &mut SimClock,
    stats: &mut Stats,
) -> RegionSet {
    let RegionBuildInput {
        part_r,
        part_t,
        join_col,
        mapping,
        queries,
        coarse_pruning,
        keep_empty,
    } = input;

    let all_queries: QuerySet = queries.iter().map(|(q, _)| *q).collect();

    // Coarse-level join: enumerate feasible cell pairs.
    let mut regions: Vec<OutputRegion> = Vec::new();
    for rc in part_r.cells() {
        for tc in part_t.cells() {
            let common = rc
                .signature(*join_col)
                .intersection_size(tc.signature(*join_col));
            if common == 0 {
                continue;
            }
            let bounds = mapping.apply_bounds(&rc.bounds, &tc.bounds);
            // Expected matches assuming keys spread uniformly inside cells.
            let da = rc.signature(*join_col).len().max(1) as f64;
            let db = tc.signature(*join_col).len().max(1) as f64;
            let est_join = (common as f64) * (rc.len() as f64 / da) * (tc.len() as f64 / db);
            regions.push(OutputRegion::new(
                RegionId(regions.len() as u32),
                rc.id,
                tc.id,
                bounds,
                rc.len(),
                tc.len(),
                est_join.max(1.0),
                all_queries,
            ));
        }
    }

    if *coarse_pruning {
        coarse_skyline(&mut regions, queries, clock, stats);
    }

    // Drop regions serving nobody; reassign dense ids. Online sessions keep
    // the empty husks instead (`keep_empty`) — ids are already dense and a
    // later admission may revive them.
    if !*keep_empty {
        let before = regions.len();
        regions.retain(|r| !r.serving.is_empty());
        stats.regions_pruned += (before - regions.len()) as u64;
        for (i, r) in regions.iter_mut().enumerate() {
            r.id = RegionId(i as u32);
        }
    }

    RegionSet::new(regions, queries.to_vec())
}

/// Bottom-up coarse skyline over the group's min-max cuboid.
///
/// Per subspace the regions are processed in ascending monotone score of
/// their lower corner: a region can only be fully dominated by a region
/// that sorts earlier, and a region dominated by `j` is also dominated by
/// whatever dominates `j` — so each region need only be compared against
/// the current *window* of non-dominated regions (SFS-style).
fn coarse_skyline(
    regions: &mut [OutputRegion],
    queries: &[(QueryId, DimMask)],
    clock: &mut SimClock,
    stats: &mut Stats,
) {
    if regions.is_empty() {
        return;
    }
    // Build a *local* cuboid over the group's preferences.
    let prefs: Vec<DimMask> = queries.iter().map(|(_, m)| *m).collect();
    let cuboid = MinMaxCuboid::build(&prefs);
    let n = regions.len();
    // Flat row-major table of region upper corners for the packed block
    // path (DESIGN.md §15) — uncharged preprocessing, like the score
    // precompute below. A NaN anywhere in the bounds disables the block
    // path: its branch-free compares cannot represent an unordered value.
    let stride = regions[0].bounds.lo().len();
    let mut his: Vec<f64> = Vec::with_capacity(n * stride);
    for r in regions.iter() {
        his.extend_from_slice(r.bounds.hi());
    }
    let blockable = !his.iter().any(|v| v.is_nan())
        && !regions
            .iter()
            .any(|r| r.bounds.lo().iter().any(|v| v.is_nan()));
    // survivors[s] = bitvec over regions: non-dominated in subspace s.
    let mut survivors: Vec<Vec<bool>> = Vec::with_capacity(cuboid.len());

    for s in 0..cuboid.len() {
        let mask = cuboid.subspaces()[s];
        let children = cuboid.children(s);
        let kernel = DomKernel::new(mask, stride);
        let mut surv = vec![true; n];
        let mut order: Vec<usize> = (0..n).collect();
        // Precompute each region's lower-corner monotone score once —
        // O(n·d) instead of O(n log n · d) inside the sort comparator. The
        // dimension list is walked once per subspace, not once per access.
        let dims: Vec<usize> = mask.iter().collect();
        let scores: Vec<f64> = regions
            .iter()
            .map(|r| dims.iter().map(|&k| r.bounds.lo()[k]).sum())
            .collect();
        order.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
        let mut window: Vec<usize> = Vec::new();
        for &i in &order {
            // Theorem 1 (region form): non-dominated in a kept child
            // subspace ⇒ non-dominated here.
            let skip_check = children.iter().any(|&c| survivors[c][i]);
            let mut dominated = false;
            if !skip_check && blockable && window.len() >= BLOCK_MIN {
                // Packed path: the window only grows, so the scan needs
                // nothing but the first dominator position per 64-lane
                // block. Bulk-charging the examined count is tick- and
                // stats-identical to the per-member charge below.
                stats.block_kernel_ops += 1;
                let lo = regions[i].bounds.lo();
                let mut examined = 0u64;
                for chunk in window.chunks(64) {
                    let dom = kernel.dominate_block_corners(&his, stride, chunk, lo);
                    if dom != 0 {
                        examined += u64::from(dom.trailing_zeros()) + 1;
                        dominated = true;
                        break;
                    }
                    examined += chunk.len() as u64;
                }
                clock.charge_dom_cmps(examined);
                stats.region_comparisons += examined;
            } else if !skip_check {
                stats.scalar_kernel_ops += 1;
                for &j in &window {
                    clock.charge_dom_cmps(1);
                    stats.region_comparisons += 1;
                    if regions[j].bounds.dominates_region(&regions[i].bounds, mask) {
                        dominated = true;
                        break;
                    }
                }
            }
            if dominated {
                surv[i] = false;
            } else {
                window.push(i);
            }
        }
        survivors.push(surv);
    }

    // A region serves query q only if it survives in subspace P_q.
    for (local, &(q, _)) in queries.iter().enumerate() {
        let s = cuboid.query_subspace(QueryId(local as u16));
        for (i, region) in regions.iter_mut().enumerate() {
            if !survivors[s][i] {
                region.kill_query(q);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caqe_data::{Distribution, TableGenerator};
    use caqe_operators::MappingSet;
    use caqe_partition::{Partitioning, QuadTreeConfig};

    fn setup(n: usize, dist: Distribution) -> (Partitioning, Partitioning, MappingSet) {
        let r = TableGenerator::new(n, 2, dist)
            .with_selectivities(&[0.05])
            .generate("R");
        let t = TableGenerator::new(n, 2, dist)
            .with_selectivities(&[0.05])
            .generate("T");
        let cfg = QuadTreeConfig {
            max_leaf_size: n / 8,
            max_depth: 6,
            max_cells: usize::MAX,
        };
        (
            Partitioning::build(&r, cfg),
            Partitioning::build(&t, cfg),
            MappingSet::concat(2, 2),
        )
    }

    fn queries4() -> Vec<(QueryId, DimMask)> {
        vec![
            (QueryId(0), DimMask::from_dims([0, 1])),
            (QueryId(1), DimMask::from_dims([0, 1, 2])),
            (QueryId(2), DimMask::from_dims([1, 2])),
            (QueryId(3), DimMask::from_dims([1, 2, 3])),
        ]
    }

    #[test]
    fn feasible_pairs_become_regions() {
        let (pr, pt, m) = setup(400, Distribution::Independent);
        let qs = queries4();
        let input = RegionBuildInput {
            part_r: &pr,
            part_t: &pt,
            join_col: 0,
            mapping: &m,
            queries: &qs,
            coarse_pruning: true,
            keep_empty: false,
        };
        let mut clock = SimClock::default();
        let mut stats = Stats::new();
        let set = build_regions(&input, &mut clock, &mut stats);
        assert!(!set.is_empty());
        // Dense ids.
        for (i, r) in set.regions().iter().enumerate() {
            assert_eq!(r.id.index(), i);
            assert!(!r.serving.is_empty());
            assert!(r.est_join >= 1.0);
        }
        // Look-ahead work was charged.
        assert!(stats.region_comparisons > 0);
        assert!(clock.ticks() > 0);
    }

    #[test]
    fn coarse_skyline_prunes_on_correlated_data() {
        // Correlated data: many regions fully dominated → heavy pruning.
        let (pr, pt, m) = setup(800, Distribution::Correlated);
        let qs = queries4();
        let input = RegionBuildInput {
            part_r: &pr,
            part_t: &pt,
            join_col: 0,
            mapping: &m,
            queries: &qs,
            coarse_pruning: true,
            keep_empty: false,
        };
        let mut clock = SimClock::default();
        let mut stats = Stats::new();
        let set = build_regions(&input, &mut clock, &mut stats);
        let feasible_pairs = pr
            .cells()
            .iter()
            .flat_map(|a| pt.cells().iter().map(move |b| (a, b)))
            .filter(|(a, b)| a.join_feasible(b, 0))
            .count();
        assert!(
            set.len() < feasible_pairs,
            "no pruning happened: {} regions from {} feasible pairs",
            set.len(),
            feasible_pairs
        );
        assert!(stats.regions_pruned > 0);
    }

    #[test]
    fn pruned_regions_cannot_contain_skyline_results() {
        // Soundness of the coarse skyline: for every query, the true
        // skyline of all join results must fall inside surviving regions.
        use caqe_operators::{hash_join_project, skyline_reference, JoinSpec};
        let n = 300;
        let r = TableGenerator::new(n, 2, Distribution::Independent)
            .with_selectivities(&[0.1])
            .generate("R");
        let t = TableGenerator::new(n, 2, Distribution::Independent)
            .with_selectivities(&[0.1])
            .generate("T");
        let cfg = QuadTreeConfig {
            max_leaf_size: n / 4,
            max_depth: 6,
            max_cells: usize::MAX,
        };
        let pr = Partitioning::build(&r, cfg);
        let pt = Partitioning::build(&t, cfg);
        let m = MappingSet::concat(2, 2);
        let qs = queries4();
        let input = RegionBuildInput {
            part_r: &pr,
            part_t: &pt,
            join_col: 0,
            mapping: &m,
            queries: &qs,
            coarse_pruning: true,
            keep_empty: false,
        };
        let mut clock = SimClock::default();
        let mut stats = Stats::new();
        let set = build_regions(&input, &mut clock, &mut stats);

        let join = hash_join_project(
            r.records(),
            t.records(),
            JoinSpec::on_column(0),
            &m,
            &mut clock,
            &mut stats,
        );
        let points: Vec<Vec<f64>> = join.iter().map(|o| o.vals.clone()).collect();
        for (q, p) in &qs {
            let sky = skyline_reference(&points, *p);
            for &i in &sky {
                let covered = set
                    .regions()
                    .iter()
                    .any(|reg| reg.serving.contains(*q) && reg.bounds.contains_point(&points[i]));
                assert!(
                    covered,
                    "skyline point of {q} at {:?} not covered by any surviving region",
                    points[i]
                );
            }
        }
    }

    #[test]
    fn keep_empty_retains_fully_pruned_regions() {
        // Session mode keeps the empty husks so a later admission can
        // revive them; ids and ordering must match the pruned build's
        // survivors when filtered.
        let (pr, pt, m) = setup(800, Distribution::Correlated);
        let qs = queries4();
        let mut clock = SimClock::default();
        let mut stats = Stats::new();
        let kept = build_regions(
            &RegionBuildInput {
                part_r: &pr,
                part_t: &pt,
                join_col: 0,
                mapping: &m,
                queries: &qs,
                coarse_pruning: true,
                keep_empty: true,
            },
            &mut clock,
            &mut stats,
        );
        let pruned = build_regions(
            &RegionBuildInput {
                part_r: &pr,
                part_t: &pt,
                join_col: 0,
                mapping: &m,
                queries: &qs,
                coarse_pruning: true,
                keep_empty: false,
            },
            &mut SimClock::default(),
            &mut Stats::new(),
        );
        assert!(kept.len() > pruned.len(), "expected empty husks retained");
        // Ids stay dense in both modes.
        for (i, r) in kept.regions().iter().enumerate() {
            assert_eq!(r.id.index(), i);
        }
        let survivors: Vec<_> = kept
            .regions()
            .iter()
            .filter(|r| !r.serving.is_empty())
            .map(|r| (r.r_cell, r.t_cell, r.serving))
            .collect();
        let reference: Vec<_> = pruned
            .regions()
            .iter()
            .map(|r| (r.r_cell, r.t_cell, r.serving))
            .collect();
        assert_eq!(survivors, reference);
    }

    #[test]
    fn empty_partitionings_yield_empty_set() {
        let t = caqe_data::Table::new("E", 2, 1, vec![]);
        let p = Partitioning::build(&t, QuadTreeConfig::default());
        let m = MappingSet::concat(2, 2);
        let qs = queries4();
        let input = RegionBuildInput {
            part_r: &p,
            part_t: &p,
            join_col: 0,
            mapping: &m,
            queries: &qs,
            coarse_pruning: true,
            keep_empty: false,
        };
        let mut clock = SimClock::default();
        let mut stats = Stats::new();
        let set = build_regions(&input, &mut clock, &mut stats);
        assert!(set.is_empty());
    }
}
