//! Multi-Query output Look-Ahead (MQLA, §5 of the paper) and the
//! contract-driven benefit model (§5.3).
//!
//! This crate performs query evaluation *at the granularity of cells and
//! regions* before any tuple is touched:
//!
//! * [`build::build_regions`] — the coarse-level join (§5.1): pairs of
//!   quad-tree leaf cells whose signatures intersect become candidate
//!   **output regions**, whose bounds are the exact image of the cell pair
//!   under the monotone mapping functions;
//! * [`build`] also runs the coarse-level skyline (§5.2): bottom-up over
//!   the min-max cuboid, regions that are fully dominated for every query
//!   they could serve are pruned before any join work is spent on them;
//! * [`depgraph::DependencyGraph`] — Definition 9: which regions can
//!   (partially) dominate which, per query; drives both scheduling order
//!   and safe progressive emission;
//! * [`estimate`] — the progressiveness-based benefit model: Buchta's
//!   skyline cardinality estimate (Equation 9), the progressive cell count
//!   (Definition 11), `ProgEst` (Equation 10) and the Cumulative
//!   Satisfaction Metric (Equation 8).

// Library code must degrade, not abort (DESIGN.md §13).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod build;
pub mod depgraph;
pub mod estimate;
pub mod region;

pub use build::{build_regions, RegionBuildInput};
pub use depgraph::DependencyGraph;
pub use estimate::{
    buchta_estimate, estimate_ticks, prog_count, prog_est, region_csm, soft_prog_count,
    soft_prog_est, ReconciledEstimate,
};
pub use region::{OutputRegion, RegionSet};
