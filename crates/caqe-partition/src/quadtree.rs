//! d-dimensional quad-tree partitioning of a base table (§5.1).
//!
//! The tree splits a node's value space at the midpoint of every dimension
//! simultaneously (so an internal node has up to `2^d` children). Splitting
//! proceeds *largest cell first* and stops when
//!
//! * every cell holds at most `max_leaf_size` tuples,
//! * `max_depth` is reached, or
//! * the total number of cells would exceed `max_cells` — the knob that
//!   keeps the look-ahead's (quadratic-in-cells) cost proportional to the
//!   tuple-level work it saves.
//!
//! Empty children are discarded; only non-empty leaves are materialized as
//! [`LeafCell`]s.

use crate::cell::LeafCell;
use caqe_data::Table;
use caqe_types::{CellId, Rect, Value};
use std::collections::BinaryHeap;

/// Tuning knobs for quad-tree construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuadTreeConfig {
    /// Maximum number of tuples per leaf before a split is attempted.
    pub max_leaf_size: usize,
    /// Maximum recursion depth (guards against degenerate distributions).
    pub max_depth: usize,
    /// Upper bound on the number of leaf cells. Splitting is largest-first,
    /// so the budget is spent where it buys the most resolution.
    pub max_cells: usize,
}

impl Default for QuadTreeConfig {
    fn default() -> Self {
        QuadTreeConfig {
            max_leaf_size: 256,
            max_depth: 8,
            max_cells: usize::MAX,
        }
    }
}

impl QuadTreeConfig {
    /// A configuration that targets roughly `cells` leaves regardless of
    /// table size or dimensionality: split largest-first under a hard cell
    /// budget.
    pub fn with_cell_budget(cells: usize) -> Self {
        QuadTreeConfig {
            max_leaf_size: 4,
            max_depth: 16,
            max_cells: cells.max(1),
        }
    }
}

/// A node awaiting a split decision, ordered by population so the heap
/// yields the largest cell first. Equal populations tie-break on the
/// explicit creation sequence number (earlier-created pops first): a
/// `BinaryHeap` gives no ordering guarantee between equal keys, so without
/// the tie-break the final cell-id assignment would hinge on heap
/// internals — a latent determinism hazard for everything keyed by
/// [`CellId`] (traces, region ids, sharded-insert ownership).
struct PendingNode {
    bounds: Rect,
    rows: Vec<usize>,
    depth: usize,
    /// Creation sequence number; total order with `rows.len()`.
    seq: u64,
}

impl PartialEq for PendingNode {
    fn eq(&self, other: &Self) -> bool {
        self.rows.len() == other.rows.len() && self.seq == other.seq
    }
}
impl Eq for PendingNode {}
impl PartialOrd for PendingNode {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PendingNode {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap: larger population first, then *smaller* seq first.
        self.rows
            .len()
            .cmp(&other.rows.len())
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The quad-tree partitioning of one table: its non-empty leaf cells.
#[derive(Debug, Clone, PartialEq)]
pub struct Partitioning {
    cells: Vec<LeafCell>,
    table_len: usize,
}

impl Partitioning {
    /// Partitions `table` under `config`.
    ///
    /// An empty table yields an empty partitioning.
    pub fn build(table: &Table, config: QuadTreeConfig) -> Self {
        assert!(config.max_leaf_size >= 1);
        assert!(config.max_cells >= 1);
        let mut finals: Vec<(Rect, Vec<usize>)> = Vec::new();
        let mut heap: BinaryHeap<PendingNode> = BinaryHeap::new();

        let mut next_seq = 0u64;
        if !table.is_empty() {
            // Allowed survivor: guarded by the emptiness check one line up.
            #[allow(clippy::expect_used)]
            heap.push(PendingNode {
                bounds: table.value_bounds().expect("non-empty table"),
                rows: (0..table.len()).collect(),
                depth: 0,
                seq: next_seq,
            });
            next_seq += 1;
        }

        while let Some(node) = heap.pop() {
            let splittable = node.rows.len() > config.max_leaf_size
                && node.depth < config.max_depth
                && (0..table.dims()).any(|k| node.bounds.extent(k) > 0.0);
            if !splittable {
                finals.push((node.bounds, node.rows));
                continue;
            }
            let children = split(table, &node);
            match children {
                None => finals.push((node.bounds, node.rows)),
                Some(kids) => {
                    // Enforce the cell budget: the split replaces one cell
                    // with `kids.len()`.
                    let total = finals.len() + heap.len() + kids.len();
                    if total > config.max_cells {
                        finals.push((node.bounds, node.rows));
                        // Budget exhausted: nothing further may split either.
                        while let Some(rest) = heap.pop() {
                            finals.push((rest.bounds, rest.rows));
                        }
                        break;
                    }
                    let depth = node.depth + 1;
                    for (bounds, rows) in kids {
                        heap.push(PendingNode {
                            bounds,
                            rows,
                            depth,
                            seq: next_seq,
                        });
                        next_seq += 1;
                    }
                }
            }
        }

        let cells = finals
            .into_iter()
            .enumerate()
            .map(|(i, (_bounds, rows))| LeafCell::build(CellId(i as u32), table, rows))
            .collect();
        Partitioning {
            cells,
            table_len: table.len(),
        }
    }

    /// Reconstructs a partitioning from persisted per-cell row lists
    /// (DESIGN.md §19). [`LeafCell::build`] re-derives tight bounds and
    /// join-column signatures from the live `table`, so the row lists are
    /// the *only* state a plan snapshot needs to store — and a restored
    /// partitioning is structurally identical to the one
    /// [`Partitioning::build`] produced, provided the table is unchanged
    /// (the caller verifies that via the table fingerprint).
    ///
    /// Returns a reason instead of constructing when the lists are not an
    /// exact disjoint cover of the table's rows — corrupt snapshot input
    /// must never yield a partitioning that violates the build invariants.
    pub fn from_cell_rows(table: &Table, cell_rows: Vec<Vec<usize>>) -> Result<Self, String> {
        let n = table.len();
        let mut seen = vec![false; n];
        let mut covered = 0usize;
        for (c, rows) in cell_rows.iter().enumerate() {
            if rows.is_empty() {
                return Err(format!("cell {c} has no rows"));
            }
            for &i in rows {
                if i >= n {
                    return Err(format!("cell {c} references row {i} >= table len {n}"));
                }
                if seen[i] {
                    return Err(format!("row {i} appears in more than one cell"));
                }
                seen[i] = true;
                covered += 1;
            }
        }
        if covered != n {
            return Err(format!("cells cover {covered} of {n} rows"));
        }
        let cells = cell_rows
            .into_iter()
            .enumerate()
            .map(|(i, rows)| LeafCell::build(CellId(i as u32), table, rows))
            .collect();
        Ok(Partitioning {
            cells,
            table_len: n,
        })
    }

    /// The leaf cells.
    pub fn cells(&self) -> &[LeafCell] {
        &self.cells
    }

    /// Number of leaf cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether there are no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The cell with the given id.
    pub fn cell(&self, id: CellId) -> &LeafCell {
        &self.cells[id.index()]
    }

    /// Total number of tuples across all cells (== source table size).
    pub fn total_rows(&self) -> usize {
        self.table_len
    }
}

/// Splits a node at its midpoint into up to `2^d` non-empty children.
/// Returns `None` for a degenerate split (everything lands in one child).
#[allow(clippy::needless_range_loop)] // per-dimension bit tests read best indexed
fn split(table: &Table, node: &PendingNode) -> Option<Vec<(Rect, Vec<usize>)>> {
    let d = table.dims();
    let mid: Vec<Value> = node.bounds.center();
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); 1 << d];
    for &i in &node.rows {
        let vals = &table.record(i).vals;
        let mut code = 0usize;
        for k in 0..d {
            if vals[k] > mid[k] {
                code |= 1 << k;
            }
        }
        buckets[code].push(i);
    }
    if buckets.iter().filter(|b| !b.is_empty()).count() <= 1 {
        return None;
    }
    let mut kids = Vec::new();
    for (code, bucket) in buckets.into_iter().enumerate() {
        if bucket.is_empty() {
            continue;
        }
        let mut lo = Vec::with_capacity(d);
        let mut hi = Vec::with_capacity(d);
        for k in 0..d {
            if (code >> k) & 1 == 1 {
                lo.push(mid[k]);
                hi.push(node.bounds.hi()[k]);
            } else {
                lo.push(node.bounds.lo()[k]);
                hi.push(mid[k]);
            }
        }
        kids.push((Rect::new(lo, hi), bucket));
    }
    Some(kids)
}

#[cfg(test)]
mod tests {
    use super::*;
    use caqe_data::{Distribution, Record, TableGenerator};

    #[test]
    fn all_rows_covered_exactly_once() {
        let t = TableGenerator::new(2000, 3, Distribution::Independent).generate("R");
        let p = Partitioning::build(&t, QuadTreeConfig::default());
        let mut seen = vec![false; t.len()];
        for cell in p.cells() {
            for &r in &cell.rows {
                assert!(!seen[r], "row {r} in two cells");
                seen[r] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
        assert_eq!(p.total_rows(), t.len());
    }

    #[test]
    fn leaf_size_respected_where_splittable() {
        let cfg = QuadTreeConfig {
            max_leaf_size: 64,
            max_depth: 16,
            max_cells: usize::MAX,
        };
        let t = TableGenerator::new(4000, 2, Distribution::Independent).generate("R");
        let p = Partitioning::build(&t, cfg);
        for cell in p.cells() {
            assert!(cell.len() <= 64, "cell of size {}", cell.len());
        }
        assert!(p.len() >= 4000 / 64);
    }

    #[test]
    fn cell_budget_is_respected() {
        let t = TableGenerator::new(5000, 3, Distribution::Independent).generate("R");
        for budget in [1, 8, 12, 40, 100] {
            let p = Partitioning::build(&t, QuadTreeConfig::with_cell_budget(budget));
            assert!(
                p.len() <= budget,
                "budget {budget} exceeded: {} cells",
                p.len()
            );
            // The budget should be mostly used (within one 2^d fan-out).
            if budget >= 8 {
                assert!(
                    p.len() * 8 >= budget,
                    "budget {budget} underused: {} cells",
                    p.len()
                );
            }
            // Coverage is preserved.
            let covered: usize = p.cells().iter().map(|c| c.len()).sum();
            assert_eq!(covered, t.len());
        }
    }

    #[test]
    fn cell_rows_round_trip_reconstructs_identically() {
        let t = TableGenerator::new(900, 3, Distribution::Correlated).generate("R");
        let p = Partitioning::build(&t, QuadTreeConfig::with_cell_budget(24));
        let rows: Vec<Vec<usize>> = p.cells().iter().map(|c| c.rows.clone()).collect();
        let back = Partitioning::from_cell_rows(&t, rows).unwrap();
        assert_eq!(back, p);

        // Corrupt row lists are refused, never constructed.
        let rows = |p: &Partitioning| -> Vec<Vec<usize>> {
            p.cells().iter().map(|c| c.rows.clone()).collect()
        };
        let mut missing = rows(&p);
        missing[0].pop();
        assert!(Partitioning::from_cell_rows(&t, missing).is_err());
        let mut dup = rows(&p);
        let stolen = dup[1][0];
        dup[0].push(stolen);
        assert!(Partitioning::from_cell_rows(&t, dup).is_err());
        let mut oob = rows(&p);
        oob[0][0] = t.len();
        assert!(Partitioning::from_cell_rows(&t, oob).is_err());
        let mut empty_cell = rows(&p);
        empty_cell.push(Vec::new());
        assert!(Partitioning::from_cell_rows(&t, empty_cell).is_err());
    }

    #[test]
    fn largest_first_balances_cell_sizes() {
        let t = TableGenerator::new(4000, 2, Distribution::Independent).generate("R");
        let p = Partitioning::build(&t, QuadTreeConfig::with_cell_budget(32));
        let max = p.cells().iter().map(|c| c.len()).max().unwrap();
        let avg = t.len() / p.len();
        // No cell should dwarf the average after largest-first splitting.
        assert!(max <= avg * 8, "max {max} vs avg {avg}");
    }

    #[test]
    fn bounds_contain_members() {
        let t = TableGenerator::new(1000, 4, Distribution::Anticorrelated).generate("R");
        let p = Partitioning::build(&t, QuadTreeConfig::default());
        for cell in p.cells() {
            for &r in &cell.rows {
                assert!(cell.bounds.contains_point(&t.record(r).vals));
            }
        }
    }

    #[test]
    fn ids_are_dense() {
        let t = TableGenerator::new(500, 2, Distribution::Correlated).generate("R");
        let p = Partitioning::build(&t, QuadTreeConfig::default());
        for (i, cell) in p.cells().iter().enumerate() {
            assert_eq!(cell.id.index(), i);
            assert!(!p.cell(cell.id).is_empty());
        }
    }

    #[test]
    fn duplicate_points_terminate_via_degenerate_split_guard() {
        let recs = (0..100)
            .map(|i| Record::new(i, vec![5.0, 5.0], vec![0]))
            .collect();
        let t = Table::new("D", 2, 1, recs);
        let cfg = QuadTreeConfig {
            max_leaf_size: 10,
            max_depth: 30,
            max_cells: usize::MAX,
        };
        let p = Partitioning::build(&t, cfg);
        assert_eq!(p.len(), 1);
        assert_eq!(p.cells()[0].len(), 100);
    }

    #[test]
    fn equal_population_ties_pop_in_creation_order() {
        // Four clusters of identical size at the quadrant corners: the
        // first split creates four equal-population children, none of
        // which can split further (duplicate points → degenerate split),
        // so every pending node finalizes through an equal-population
        // heap pop. The explicit seq tie-break pins the pop order to
        // creation order — the child bucket-code order of `split` — no
        // matter how `BinaryHeap` arbitrates equal keys internally.
        let centers = [(1.0, 1.0), (9.0, 1.0), (1.0, 9.0), (9.0, 9.0)];
        let mut recs = Vec::new();
        for &(x, y) in &centers {
            for _ in 0..25 {
                recs.push(Record::new(recs.len() as u64, vec![x, y], vec![0]));
            }
        }
        let t = Table::new("Q", 2, 1, recs);
        let cfg = QuadTreeConfig {
            max_leaf_size: 10,
            max_depth: 8,
            max_cells: usize::MAX,
        };
        let p = Partitioning::build(&t, cfg);
        assert_eq!(p.len(), 4);
        for (i, &(x, y)) in centers.iter().enumerate() {
            assert_eq!(p.cells()[i].id.index(), i);
            assert_eq!(p.cells()[i].len(), 25);
            let lo = p.cells()[i].bounds.lo();
            assert!(
                lo[0] <= x && x <= p.cells()[i].bounds.hi()[0],
                "cell {i} does not cover cluster x={x}"
            );
            assert!(
                lo[1] <= y && y <= p.cells()[i].bounds.hi()[1],
                "cell {i} does not cover cluster y={y}"
            );
        }
    }

    #[test]
    fn empty_table_empty_partitioning() {
        let t = Table::new("E", 2, 0, vec![]);
        let p = Partitioning::build(&t, QuadTreeConfig::default());
        assert!(p.is_empty());
        assert_eq!(p.total_rows(), 0);
    }

    #[test]
    fn small_table_single_cell() {
        let t = TableGenerator::new(10, 2, Distribution::Independent).generate("R");
        let p = Partitioning::build(&t, QuadTreeConfig::default());
        assert_eq!(p.len(), 1);
        assert_eq!(p.cells()[0].len(), 10);
    }

    use caqe_data::Table;
}
