//! Coarse-granularity input abstraction (§5.1 of the paper).
//!
//! CAQE "assumes the input data sets are partitioned into a d-dimensional
//! quad tree". Each **leaf cell** `L_i(l_i, u_i)` carries
//!
//! * its value-space bounds (used to derive output-region bounds through the
//!   monotone mapping functions), and
//! * one **signature** per join predicate, capturing the join-key domain
//!   values of its member tuples (Example 14).
//!
//! The coarse-level join (Example 15) then decides from signatures alone
//! whether a pair of cells can produce even a single join result for a given
//! predicate — without touching tuples.

// Library code must degrade, not abort (DESIGN.md §13).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod cell;
pub mod quadtree;
pub mod signature;

pub use cell::LeafCell;
pub use quadtree::{Partitioning, QuadTreeConfig};
pub use signature::Signature;
