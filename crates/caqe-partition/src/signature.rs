//! Join-predicate signatures (Example 14 of the paper).
//!
//! A cell's signature for join column `c` is the set of distinct key values
//! its member tuples carry in that column. Two cells can produce a join
//! result for predicate `JC_c` iff their signatures intersect (Example 15).
//!
//! The exact key set is kept as a sorted vector; a 64-bit Bloom summary
//! rejects most non-intersecting pairs with a single AND.

use caqe_data::JoinKey;

/// The key-domain signature of one cell for one join predicate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signature {
    /// Sorted, deduplicated key values present in the cell.
    keys: Vec<JoinKey>,
    /// 64-bit Bloom summary of `keys`.
    bloom: u64,
}

impl Signature {
    /// Builds a signature from an iterator of key values.
    pub fn from_keys<I: IntoIterator<Item = JoinKey>>(iter: I) -> Self {
        let mut keys: Vec<JoinKey> = iter.into_iter().collect();
        keys.sort_unstable();
        keys.dedup();
        let bloom = keys.iter().fold(0u64, |b, &k| b | 1u64 << (k % 64));
        Signature { keys, bloom }
    }

    /// Number of distinct keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the signature is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The distinct keys, sorted.
    pub fn keys(&self) -> &[JoinKey] {
        &self.keys
    }

    /// Whether the key is present.
    pub fn contains(&self, key: JoinKey) -> bool {
        self.bloom & (1u64 << (key % 64)) != 0 && self.keys.binary_search(&key).is_ok()
    }

    /// Whether the two signatures share at least one key — the coarse-level
    /// join feasibility test of Example 15.
    pub fn intersects(&self, other: &Signature) -> bool {
        if self.bloom & other.bloom == 0 {
            return false;
        }
        // Merge-walk over the sorted key lists.
        let (mut i, mut j) = (0, 0);
        while i < self.keys.len() && j < other.keys.len() {
            match self.keys[i].cmp(&other.keys[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }

    /// Number of shared keys (used by join-cardinality estimation).
    pub fn intersection_size(&self, other: &Signature) -> usize {
        if self.bloom & other.bloom == 0 {
            return 0;
        }
        let (mut i, mut j, mut n) = (0, 0, 0);
        while i < self.keys.len() && j < other.keys.len() {
            match self.keys[i].cmp(&other.keys[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    n += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example15_supply_chain() {
        // L_i^R countries: {Brazil=0, China=1, Mexico=2}; parts: {10, 11, 12}.
        // L_j^T countries: {Brazil=0, China=1, Germany=3, Mexico=2};
        //       parts: {20, 21}.
        let r_country = Signature::from_keys([0, 1, 2]);
        let t_country = Signature::from_keys([0, 1, 3, 2]);
        let r_part = Signature::from_keys([10, 11, 12]);
        let t_part = Signature::from_keys([20, 21]);
        // Q1 joins on country: feasible (Brazil, China, Mexico shared).
        assert!(r_country.intersects(&t_country));
        assert_eq!(r_country.intersection_size(&t_country), 3);
        // Q2 joins on part: infeasible.
        assert!(!r_part.intersects(&t_part));
        assert_eq!(r_part.intersection_size(&t_part), 0);
    }

    #[test]
    fn dedup_and_sort() {
        let s = Signature::from_keys([5, 1, 5, 3, 1]);
        assert_eq!(s.keys(), &[1, 3, 5]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn contains_membership() {
        let s = Signature::from_keys([2, 4, 6]);
        assert!(s.contains(4));
        assert!(!s.contains(3));
        // 3 + 64 shares a bloom bit with... nothing here; test a bloom-alias
        // key (2 + 64 aliases key 2's bit but is absent).
        assert!(!s.contains(66));
    }

    #[test]
    fn empty_signature() {
        let e = Signature::from_keys([]);
        let s = Signature::from_keys([1]);
        assert!(e.is_empty());
        assert!(!e.intersects(&s));
        assert!(!s.intersects(&e));
    }

    #[test]
    fn bloom_false_positive_resolved_exactly() {
        // Keys 0 and 64 share bloom bit 0 but differ: must not intersect.
        let a = Signature::from_keys([0]);
        let b = Signature::from_keys([64]);
        assert!(!a.intersects(&b));
        assert_eq!(a.intersection_size(&b), 0);
    }
}
