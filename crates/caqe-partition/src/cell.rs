//! Quad-tree leaf cells (Table 1 of the paper: `L_i^T(l_i, u_i)`).

use crate::signature::Signature;
use caqe_data::Table;
use caqe_types::{CellId, Rect};

/// A leaf cell of one table's quad-tree partitioning.
#[derive(Debug, Clone, PartialEq)]
pub struct LeafCell {
    /// Cell identifier within its partitioning.
    pub id: CellId,
    /// Value-space bounds of the member tuples (tight bounding box).
    pub bounds: Rect,
    /// Indices of member rows in the source table.
    pub rows: Vec<usize>,
    /// One signature per join column of the source table.
    pub signatures: Vec<Signature>,
}

impl LeafCell {
    /// Builds a leaf cell over the given rows of `table`, computing tight
    /// bounds and the per-join-column signatures.
    ///
    /// # Panics
    /// Panics if `rows` is empty — empty cells are dropped during
    /// partitioning, never materialized.
    pub fn build(id: CellId, table: &Table, rows: Vec<usize>) -> Self {
        assert!(!rows.is_empty(), "leaf cells must be non-empty");
        // Allowed survivor: guarded by the assert above — documented panic
        // contract, not a recoverable condition.
        #[allow(clippy::expect_used)]
        let bounds = Rect::bounding(rows.iter().map(|&i| table.record(i).vals.as_slice()))
            .expect("non-empty rows");
        let signatures = (0..table.join_cols())
            .map(|c| Signature::from_keys(rows.iter().map(|&i| table.record(i).key(c))))
            .collect();
        LeafCell {
            id,
            bounds,
            rows,
            signatures,
        }
    }

    /// Number of member tuples (the `n_a^R` of Equation 9).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the cell is empty (never true for a built cell).
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The signature for join column `c`.
    pub fn signature(&self, c: usize) -> &Signature {
        &self.signatures[c]
    }

    /// Coarse join feasibility against another cell on join column `c`
    /// (Example 15): true iff the signatures share at least one key.
    pub fn join_feasible(&self, other: &LeafCell, c: usize) -> bool {
        self.signatures[c].intersects(&other.signatures[c])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caqe_data::Record;

    fn table() -> Table {
        Table::new(
            "R",
            2,
            1,
            vec![
                Record::new(0, vec![1.0, 8.0], vec![5]),
                Record::new(1, vec![3.0, 2.0], vec![6]),
                Record::new(2, vec![2.0, 4.0], vec![5]),
            ],
        )
    }

    #[test]
    fn build_computes_tight_bounds_and_signature() {
        let t = table();
        let c = LeafCell::build(CellId(0), &t, vec![0, 2]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.bounds.lo(), &[1.0, 4.0]);
        assert_eq!(c.bounds.hi(), &[2.0, 8.0]);
        assert_eq!(c.signature(0).keys(), &[5]);
    }

    #[test]
    fn join_feasibility() {
        let t = table();
        let a = LeafCell::build(CellId(0), &t, vec![0, 2]); // keys {5}
        let b = LeafCell::build(CellId(1), &t, vec![1]); // keys {6}
        let c = LeafCell::build(CellId(2), &t, vec![0, 1]); // keys {5, 6}
        assert!(!a.join_feasible(&b, 0));
        assert!(a.join_feasible(&c, 0));
        assert!(b.join_feasible(&c, 0));
    }

    #[test]
    #[should_panic]
    fn empty_cell_rejected() {
        let t = table();
        let _ = LeafCell::build(CellId(0), &t, vec![]);
    }
}
