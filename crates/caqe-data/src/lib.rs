//! Tables, records and the synthetic data generators used by the paper's
//! evaluation (§7.1).
//!
//! The paper stress-tests skyline algorithms with the de-facto standard
//! generator of Börzsönyi et al. [3]: *independent*, *correlated* and
//! *anti-correlated* attribute distributions, attribute values in `[1, 100]`,
//! table cardinalities `N ∈ [10K, 500K]`, and a join selectivity
//! `σ ∈ [10⁻⁴, 10⁻¹]` controlled here through the join-key domain size.

// Library code must degrade, not abort (DESIGN.md §13).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod generator;
pub mod record;
pub mod table;
pub mod validate;

pub use generator::{Distribution, TableGenerator};
pub use record::{JoinKey, Record};
pub use table::Table;
pub use validate::{validate_table, Validated, ValidationPolicy, ValidationReport};
