//! Synthetic benchmark data à la Börzsönyi et al. [3] (§7.1 of the paper).
//!
//! Three attribute-correlation regimes:
//!
//! * **Independent** — every attribute is uniform in the value range;
//!   skylines of moderate size.
//! * **Correlated** — attributes of one record are close to each other, so a
//!   few records dominate almost everything; skylines are tiny (the paper
//!   observes ~16 skyline join tuples at d = 4).
//! * **Anti-correlated** — records lie near the anti-diagonal hyperplane
//!   (being good in one dimension implies being bad in another); a large
//!   fraction of the input is in the skyline, the worst case for skyline
//!   processing (75K+ skyline join tuples at d = 4 in the paper).
//!
//! Join selectivity `σ` is controlled via the join-key domain size `K`:
//! uniform keys on both sides give expected selectivity `1/K`, so the
//! generator uses `K = round(1/σ)`.

use crate::record::{JoinKey, Record};
use crate::table::Table;
use caqe_types::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Attribute correlation regime of a generated table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Distribution {
    /// Uniform independent attributes.
    Independent,
    /// Attributes positively correlated within a record.
    Correlated,
    /// Attributes anti-correlated within a record (near-constant sum).
    Anticorrelated,
}

impl Distribution {
    /// All three regimes, in the order the paper's figures present them.
    pub const ALL: [Distribution; 3] = [
        Distribution::Correlated,
        Distribution::Independent,
        Distribution::Anticorrelated,
    ];

    /// Short lowercase label used by the experiment harness CLI.
    pub fn label(self) -> &'static str {
        match self {
            Distribution::Independent => "independent",
            Distribution::Correlated => "correlated",
            Distribution::Anticorrelated => "anticorrelated",
        }
    }

    /// Parses a CLI label (prefixes accepted: `ind`, `cor`, `anti`).
    pub fn parse(s: &str) -> Option<Distribution> {
        let s = s.to_ascii_lowercase();
        if s.starts_with("ind") {
            Some(Distribution::Independent)
        } else if s.starts_with("cor") {
            Some(Distribution::Correlated)
        } else if s.starts_with("anti") {
            Some(Distribution::Anticorrelated)
        } else {
            None
        }
    }
}

/// Configurable generator for one base table.
///
/// ```
/// use caqe_data::{Distribution, TableGenerator};
///
/// let table = TableGenerator::new(1_000, 3, Distribution::Anticorrelated)
///     .with_selectivities(&[0.01])   // join-key domain of 100 values
///     .with_seed(7)
///     .generate("R");
/// assert_eq!(table.len(), 1_000);
/// assert_eq!(table.dims(), 3);
/// assert!(table.key_domain(0).len() <= 100);
/// ```
#[derive(Debug, Clone)]
pub struct TableGenerator {
    /// Table cardinality `N`.
    pub n: usize,
    /// Number of preference attributes `d`.
    pub dims: usize,
    /// Attribute correlation regime.
    pub distribution: Distribution,
    /// Value range `[lo, hi]`; the paper uses `[1, 100]`.
    pub value_range: (Value, Value),
    /// Join-key domain size per join column (`K_c = round(1/σ_c)`).
    pub key_domains: Vec<u32>,
    /// RNG seed for reproducibility.
    pub seed: u64,
}

impl TableGenerator {
    /// A generator with the paper's defaults: values in `[1, 100]` and a
    /// single join column with selectivity `σ = 10⁻²` (domain size 100).
    pub fn new(n: usize, dims: usize, distribution: Distribution) -> Self {
        TableGenerator {
            n,
            dims,
            distribution,
            value_range: (1.0, 100.0),
            key_domains: vec![100],
            seed: 0xCA9E,
        }
    }

    /// Replaces the join-key domains so that join column `c` has selectivity
    /// `σ_c` (domain size `round(1/σ_c)`, at least 1).
    pub fn with_selectivities(mut self, sigmas: &[f64]) -> Self {
        self.key_domains = sigmas
            .iter()
            .map(|&s| {
                assert!(s > 0.0 && s <= 1.0, "selectivity must be in (0, 1]");
                ((1.0 / s).round() as u32).max(1)
            })
            .collect();
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates the table.
    pub fn generate(&self, name: &str) -> Table {
        let mut rng = StdRng::seed_from_u64(self.seed ^ hash_name(name));
        let (lo, hi) = self.value_range;
        let span = hi - lo;
        let mut records = Vec::with_capacity(self.n);
        for id in 0..self.n {
            let unit = match self.distribution {
                Distribution::Independent => unit_independent(&mut rng, self.dims),
                Distribution::Correlated => unit_correlated(&mut rng, self.dims),
                Distribution::Anticorrelated => unit_anticorrelated(&mut rng, self.dims),
            };
            let vals: Vec<Value> = unit.into_iter().map(|u| lo + u * span).collect();
            let keys: Vec<JoinKey> = self
                .key_domains
                .iter()
                .map(|&k| rng.gen_range(0..k))
                .collect();
            records.push(Record::new(id as u64, vals, keys));
        }
        Table::new(name, self.dims, self.key_domains.len(), records)
    }
}

/// Stable, dependency-free string hash (FNV-1a) to decorrelate the two
/// tables of a join from one seed.
fn hash_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// A standard-normal sample via Box–Muller (avoids a `rand_distr`
/// dependency).
fn normal(rng: &mut impl Rng) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        if u1 > f64::EPSILON {
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

/// Rejection-samples `base + scale·N(0,1)` into the unit interval.
///
/// Clamping would pile mass onto *exactly* 0.0 and 1.0, creating tied
/// attribute values across records — a violation of the Distinct Value
/// Attributes assumption (DVA, [36]) that the paper's Theorem 1 relies on.
/// Rejection keeps the values continuous, so ties have probability zero.
fn jitter_into_unit(rng: &mut impl Rng, base: f64, scale: f64) -> f64 {
    for _ in 0..64 {
        let x = base + scale * normal(rng);
        if (0.0..=1.0).contains(&x) {
            return x;
        }
    }
    // Pathological base far outside [0,1]: fall back to uniform.
    rng.gen::<f64>()
}

/// Uniform independent point in the unit hypercube.
fn unit_independent(rng: &mut impl Rng, d: usize) -> Vec<f64> {
    (0..d).map(|_| rng.gen::<f64>()).collect()
}

/// Correlated point: a common base level per record plus small per-dimension
/// jitter, following the construction of Börzsönyi et al.
fn unit_correlated(rng: &mut impl Rng, d: usize) -> Vec<f64> {
    let base = rng.gen::<f64>();
    (0..d).map(|_| jitter_into_unit(rng, base, 0.05)).collect()
}

/// Anti-correlated point: start on the diagonal, then move mass between
/// random dimension pairs so the coordinate *sum* stays (approximately)
/// constant while individual coordinates spread out. Records end up near the
/// anti-diagonal hyperplane, the skyline worst case.
fn unit_anticorrelated(rng: &mut impl Rng, d: usize) -> Vec<f64> {
    let base = jitter_into_unit(rng, 0.5, 0.05);
    let mut x = vec![base; d];
    if d < 2 {
        return x;
    }
    for _ in 0..(3 * d) {
        let i = rng.gen_range(0..d);
        let mut j = rng.gen_range(0..d);
        while j == i {
            j = rng.gen_range(0..d);
        }
        // Transfer up to what keeps both coordinates inside [0, 1].
        let max_up = (1.0 - x[i]).min(x[j]);
        let delta = rng.gen::<f64>() * max_up;
        x[i] += delta;
        x[j] -= delta;
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use caqe_types::dominates;

    fn skyline_size(t: &Table) -> usize {
        let recs = t.records();
        recs.iter()
            .filter(|a| !recs.iter().any(|b| dominates(&b.vals, &a.vals)))
            .count()
    }

    #[test]
    fn generated_tables_have_requested_shape() {
        for dist in Distribution::ALL {
            let t = TableGenerator::new(500, 3, dist).generate("R");
            assert_eq!(t.len(), 500);
            assert_eq!(t.dims(), 3);
            assert_eq!(t.join_cols(), 1);
        }
    }

    #[test]
    fn values_respect_range() {
        for dist in Distribution::ALL {
            let t = TableGenerator::new(1000, 4, dist).generate("R");
            for r in t.records() {
                for &v in &r.vals {
                    assert!((1.0..=100.0).contains(&v), "{dist:?}: value {v} escaped");
                }
            }
        }
    }

    #[test]
    fn determinism_per_seed() {
        let a = TableGenerator::new(100, 3, Distribution::Independent)
            .with_seed(42)
            .generate("R");
        let b = TableGenerator::new(100, 3, Distribution::Independent)
            .with_seed(42)
            .generate("R");
        let c = TableGenerator::new(100, 3, Distribution::Independent)
            .with_seed(43)
            .generate("R");
        assert_eq!(a.records(), b.records());
        assert_ne!(a.records(), c.records());
    }

    #[test]
    fn table_name_decorrelates_content() {
        let gen = TableGenerator::new(100, 3, Distribution::Independent);
        let r = gen.generate("R");
        let t = gen.generate("T");
        assert_ne!(r.records(), t.records());
    }

    #[test]
    fn skyline_size_ordering_across_distributions() {
        // The defining property of the three regimes (paper §7.1):
        // |SKY(correlated)| << |SKY(independent)| << |SKY(anticorrelated)|.
        let n = 2000;
        let sizes: Vec<usize> = [
            Distribution::Correlated,
            Distribution::Independent,
            Distribution::Anticorrelated,
        ]
        .iter()
        .map(|&d| skyline_size(&TableGenerator::new(n, 4, d).generate("R")))
        .collect();
        assert!(
            sizes[0] < sizes[1] && sizes[1] < sizes[2],
            "skyline sizes not ordered: {sizes:?}"
        );
        // Correlated skylines are tiny; anti-correlated are a large fraction.
        assert!(sizes[0] <= 30, "correlated skyline too big: {}", sizes[0]);
        assert!(
            sizes[2] >= n / 10,
            "anti-correlated skyline too small: {}",
            sizes[2]
        );
    }

    #[test]
    fn anticorrelated_sum_is_stable() {
        let t = TableGenerator::new(1000, 4, Distribution::Anticorrelated).generate("R");
        let sums: Vec<f64> = t.records().iter().map(|r| r.vals.iter().sum()).collect();
        let mean = sums.iter().sum::<f64>() / sums.len() as f64;
        let var = sums.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / sums.len() as f64;
        // Sum per record stays near 4 * (midpoint ≈ 50.5): low relative variance.
        assert!((mean - 202.0).abs() < 20.0, "mean sum {mean}");
        assert!(var.sqrt() < 30.0, "sum stddev too large: {}", var.sqrt());
    }

    #[test]
    fn correlated_dims_track_each_other() {
        let t = TableGenerator::new(2000, 2, Distribution::Correlated).generate("R");
        // Pearson correlation between d1 and d2 should be strongly positive.
        let xs: Vec<f64> = t.records().iter().map(|r| r.vals[0]).collect();
        let ys: Vec<f64> = t.records().iter().map(|r| r.vals[1]).collect();
        let n = xs.len() as f64;
        let mx = xs.iter().sum::<f64>() / n;
        let my = ys.iter().sum::<f64>() / n;
        let cov = xs
            .iter()
            .zip(&ys)
            .map(|(x, y)| (x - mx) * (y - my))
            .sum::<f64>();
        let vx = xs.iter().map(|x| (x - mx) * (x - mx)).sum::<f64>();
        let vy = ys.iter().map(|y| (y - my) * (y - my)).sum::<f64>();
        let r = cov / (vx.sqrt() * vy.sqrt());
        assert!(r > 0.9, "correlation too weak: {r}");
    }

    #[test]
    fn no_tied_attribute_values_dva() {
        // DVA: no two records share an exact value on any dimension. The
        // clamp-free generators make ties measure-zero; this guards against
        // reintroducing boundary pile-up.
        for dist in Distribution::ALL {
            let t = TableGenerator::new(3000, 3, dist).generate("R");
            for k in 0..3 {
                let mut vals: Vec<f64> = t.records().iter().map(|r| r.val(k)).collect();
                vals.sort_by(f64::total_cmp);
                let ties = vals.windows(2).filter(|w| w[0] == w[1]).count();
                assert_eq!(ties, 0, "{dist:?} dim {k} has {ties} tied values");
            }
        }
    }

    #[test]
    fn selectivity_controls_key_domain() {
        let t = TableGenerator::new(5000, 2, Distribution::Independent)
            .with_selectivities(&[0.1, 0.01])
            .generate("R");
        assert_eq!(t.join_cols(), 2);
        assert!(t.key_domain(0).len() <= 10);
        assert!(t.key_domain(1).len() <= 100);
        // With N >> K every key should actually appear.
        assert_eq!(t.key_domain(0).len(), 10);
    }

    #[test]
    fn empirical_join_selectivity_matches_sigma() {
        let sigma = 0.05;
        let r = TableGenerator::new(1000, 2, Distribution::Independent)
            .with_selectivities(&[sigma])
            .generate("R");
        let t = TableGenerator::new(1000, 2, Distribution::Independent)
            .with_selectivities(&[sigma])
            .generate("T");
        let matches: usize = r
            .records()
            .iter()
            .map(|a| t.records().iter().filter(|b| a.key(0) == b.key(0)).count())
            .sum();
        let observed = matches as f64 / (1000.0 * 1000.0);
        assert!(
            (observed - sigma).abs() < sigma * 0.25,
            "observed selectivity {observed} vs requested {sigma}"
        );
    }

    #[test]
    #[should_panic]
    fn zero_selectivity_rejected() {
        let _ = TableGenerator::new(10, 2, Distribution::Independent).with_selectivities(&[0.0]);
    }

    #[test]
    fn distribution_labels_roundtrip() {
        for d in Distribution::ALL {
            assert_eq!(Distribution::parse(d.label()), Some(d));
        }
        assert_eq!(
            Distribution::parse("anti"),
            Some(Distribution::Anticorrelated)
        );
        assert_eq!(Distribution::parse("bogus"), None);
    }
}
