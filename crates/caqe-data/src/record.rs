//! Base-table records.

use caqe_types::Value;

/// Join keys are small categorical values; the domain size controls join
/// selectivity (`σ = 1 / |domain|` for uniformly drawn keys on both sides).
pub type JoinKey = u32;

/// One row of a base table: a unique id, `d` real-valued preference
/// attributes (smaller preferred), and one categorical key per join
/// predicate supported by the schema.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Row id, unique within its table.
    pub id: u64,
    /// Preference attribute values, `vals.len() == table.dims()`.
    pub vals: Vec<Value>,
    /// One join key per join column, `keys.len() == table.join_cols()`.
    pub keys: Vec<JoinKey>,
}

impl Record {
    /// Creates a record.
    pub fn new(id: u64, vals: Vec<Value>, keys: Vec<JoinKey>) -> Self {
        Record { id, vals, keys }
    }

    /// The value of preference attribute `k`.
    #[inline]
    pub fn val(&self, k: usize) -> Value {
        self.vals[k]
    }

    /// The join key for join column `c`.
    #[inline]
    pub fn key(&self, c: usize) -> JoinKey {
        self.keys[c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let r = Record::new(7, vec![1.0, 2.0], vec![3, 4]);
        assert_eq!(r.id, 7);
        assert_eq!(r.val(1), 2.0);
        assert_eq!(r.key(0), 3);
    }
}
