//! In-memory base tables.

use crate::record::{JoinKey, Record};
use caqe_types::{Rect, Value};

/// An in-memory base table (e.g. the `R`, `T`, `Hotels`, `Tours` tables of
/// the paper's examples).
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    dims: usize,
    join_cols: usize,
    records: Vec<Record>,
}

impl Table {
    /// Creates a table from records, validating that every record matches
    /// the declared arity.
    ///
    /// # Panics
    /// Panics if a record's value or key arity differs from the declared
    /// `dims` / `join_cols`.
    pub fn new(
        name: impl Into<String>,
        dims: usize,
        join_cols: usize,
        records: Vec<Record>,
    ) -> Self {
        for r in &records {
            assert_eq!(r.vals.len(), dims, "record value arity mismatch");
            assert_eq!(r.keys.len(), join_cols, "record key arity mismatch");
        }
        Table {
            name: name.into(),
            dims,
            join_cols,
            records,
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of preference attributes per record.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of join columns per record.
    pub fn join_cols(&self) -> usize {
        self.join_cols
    }

    /// Number of records (the paper's `N`).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All records.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// The record at index `i`.
    pub fn record(&self, i: usize) -> &Record {
        &self.records[i]
    }

    /// The bounding box of the table's preference attributes, or `None` for
    /// an empty table. Quad-tree partitioning starts from this box.
    pub fn value_bounds(&self) -> Option<Rect> {
        Rect::bounding(self.records.iter().map(|r| r.vals.as_slice()))
    }

    /// The set of distinct keys appearing in join column `c`.
    pub fn key_domain(&self, c: usize) -> Vec<JoinKey> {
        let mut keys: Vec<JoinKey> = self.records.iter().map(|r| r.key(c)).collect();
        keys.sort_unstable();
        keys.dedup();
        keys
    }

    /// Minimum attribute value across all records and dimensions; useful for
    /// sanity checks of the non-negativity assumption (§2.1).
    pub fn min_value(&self) -> Option<Value> {
        self.records
            .iter()
            .flat_map(|r| r.vals.iter().copied())
            .min_by(Value::total_cmp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        Table::new(
            "R",
            2,
            1,
            vec![
                Record::new(0, vec![1.0, 9.0], vec![0]),
                Record::new(1, vec![4.0, 2.0], vec![1]),
                Record::new(2, vec![2.0, 5.0], vec![0]),
            ],
        )
    }

    #[test]
    fn construction_and_accessors() {
        let t = sample();
        assert_eq!(t.name(), "R");
        assert_eq!(t.dims(), 2);
        assert_eq!(t.join_cols(), 1);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.record(1).id, 1);
    }

    #[test]
    fn bounds_and_domains() {
        let t = sample();
        let b = t.value_bounds().unwrap();
        assert_eq!(b.lo(), &[1.0, 2.0]);
        assert_eq!(b.hi(), &[4.0, 9.0]);
        assert_eq!(t.key_domain(0), vec![0, 1]);
        assert_eq!(t.min_value(), Some(1.0));
    }

    #[test]
    fn empty_table() {
        let t = Table::new("E", 2, 0, vec![]);
        assert!(t.is_empty());
        assert!(t.value_bounds().is_none());
        assert!(t.min_value().is_none());
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_panics() {
        let _ = Table::new("X", 3, 0, vec![Record::new(0, vec![1.0], vec![])]);
    }
}
