//! Ingestion validation (DESIGN.md §13).
//!
//! Dominance is undefined for NaN and degenerate for ±Inf preference
//! values, and duplicate record ids break result provenance. The engine
//! therefore validates base tables at ingestion under a configurable
//! [`ValidationPolicy`]. Property-tested guarantees
//! (`tests/chaos_ingestion.rs`): `Quarantine` reproduces the skyline over
//! the *clean* subset of records exactly; `Clamp` never promotes a clean
//! pair into the result that the clean-subset skyline excludes (the
//! sentinel is strictly worse per column, though a clamped tuple may still
//! shadow clean ones through mixed mapping dims); `Reject` errors iff a
//! table is corrupt.

use crate::record::Record;
use crate::table::Table;
use caqe_types::EngineError;

/// What to do with records carrying non-finite preference values or
/// duplicate ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ValidationPolicy {
    /// Fail ingestion with [`EngineError::CorruptInput`] — the safe
    /// default for batch workloads where corrupt input means a broken
    /// upstream pipeline.
    #[default]
    Reject,
    /// Drop offending records and continue with the clean subset.
    Quarantine,
    /// Replace each non-finite value with a finite sentinel *strictly
    /// worse* than every clean value in its column (smaller-is-preferred,
    /// §2.1), so a clamped tuple can never dominate a clean one. Duplicate
    /// ids cannot be clamped and are quarantined.
    Clamp,
}

impl ValidationPolicy {
    /// Stable lowercase name used in traces and `--validate` flags.
    pub fn name(self) -> &'static str {
        match self {
            ValidationPolicy::Reject => "reject",
            ValidationPolicy::Quarantine => "quarantine",
            ValidationPolicy::Clamp => "clamp",
        }
    }

    /// Parses a policy name as accepted by bench `--validate` flags.
    pub fn parse(s: &str) -> Result<Self, EngineError> {
        match s {
            "reject" => Ok(ValidationPolicy::Reject),
            "quarantine" => Ok(ValidationPolicy::Quarantine),
            "clamp" => Ok(ValidationPolicy::Clamp),
            other => Err(EngineError::BadFaultSpec {
                fragment: other.to_string(),
                reason: "expected reject|quarantine|clamp".to_string(),
            }),
        }
    }
}

/// What validation found and did to one table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ValidationReport {
    /// Records with at least one NaN/±Inf preference value.
    pub non_finite: usize,
    /// Records whose id duplicates an earlier record's.
    pub duplicates: usize,
    /// Records dropped (quarantined) from the table.
    pub quarantined: u64,
    /// Individual values replaced by the clamp sentinel.
    pub clamped: u64,
}

impl ValidationReport {
    /// Whether the table was clean.
    pub fn is_clean(&self) -> bool {
        self.non_finite == 0 && self.duplicates == 0
    }
}

/// Outcome of validating one table.
#[derive(Debug, Clone)]
pub struct Validated {
    /// Cleaned replacement table, or `None` when the input was already
    /// clean and can be used as-is (no copy made).
    pub table: Option<Table>,
    /// Violation counts and actions taken.
    pub report: ValidationReport,
}

/// Later records whose id duplicates an earlier one, found without hashing
/// (HashMap/HashSet are banned workspace-wide; see clippy.toml): sort
/// `(id, index)` pairs and mark every run member except the smallest index.
fn duplicate_flags(records: &[Record]) -> Vec<bool> {
    let mut by_id: Vec<(u64, usize)> = records.iter().enumerate().map(|(i, r)| (r.id, i)).collect();
    by_id.sort_unstable();
    let mut dup = vec![false; records.len()];
    for w in by_id.windows(2) {
        if w[0].0 == w[1].0 {
            dup[w[1].1] = true;
        }
    }
    dup
}

/// Validates `table` under `policy`.
///
/// Returns the (possibly cleaned) table and a report; under
/// [`ValidationPolicy::Reject`] any violation is a typed error instead.
/// Clean inputs take a scan-only fast path with no copy, so validation is
/// a strict no-op on the golden-trace workloads.
pub fn validate_table(table: &Table, policy: ValidationPolicy) -> Result<Validated, EngineError> {
    let records = table.records();
    let dup = duplicate_flags(records);
    let non_finite = records
        .iter()
        .filter(|r| r.vals.iter().any(|v| !v.is_finite()))
        .count();
    let duplicates = dup.iter().filter(|&&d| d).count();
    let report = ValidationReport {
        non_finite,
        duplicates,
        ..ValidationReport::default()
    };
    if report.is_clean() {
        return Ok(Validated {
            table: None,
            report,
        });
    }
    match policy {
        ValidationPolicy::Reject => Err(EngineError::CorruptInput {
            table: table.name().to_string(),
            non_finite,
            duplicates,
        }),
        ValidationPolicy::Quarantine => {
            let kept: Vec<Record> = records
                .iter()
                .zip(&dup)
                .filter(|(r, &d)| !d && r.vals.iter().all(|v| v.is_finite()))
                .map(|(r, _)| r.clone())
                .collect();
            let quarantined = (records.len() - kept.len()) as u64;
            Ok(Validated {
                table: Some(Table::new(
                    table.name(),
                    table.dims(),
                    table.join_cols(),
                    kept,
                )),
                report: ValidationReport {
                    quarantined,
                    ..report
                },
            })
        }
        ValidationPolicy::Clamp => {
            // Per-column sentinel: one above the max finite value, so the
            // clamped value is strictly worse than every clean value.
            let sentinel: Vec<f64> = (0..table.dims())
                .map(|k| {
                    records
                        .iter()
                        .map(|r| r.vals[k])
                        .filter(|v| v.is_finite())
                        .fold(0.0_f64, f64::max)
                        + 1.0
                })
                .collect();
            let mut clamped = 0u64;
            let kept: Vec<Record> = records
                .iter()
                .zip(&dup)
                .filter(|(_, &d)| !d)
                .map(|(r, _)| {
                    let mut rec = r.clone();
                    for (k, v) in rec.vals.iter_mut().enumerate() {
                        if !v.is_finite() {
                            *v = sentinel[k];
                            clamped += 1;
                        }
                    }
                    rec
                })
                .collect();
            let quarantined = (records.len() - kept.len()) as u64;
            Ok(Validated {
                table: Some(Table::new(
                    table.name(),
                    table.dims(),
                    table.join_cols(),
                    kept,
                )),
                report: ValidationReport {
                    quarantined,
                    clamped,
                    ..report
                },
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corrupt_table() -> Table {
        Table::new(
            "R",
            2,
            1,
            vec![
                Record::new(0, vec![1.0, 9.0], vec![0]),
                Record::new(1, vec![f64::NAN, 2.0], vec![1]),
                Record::new(2, vec![2.0, f64::INFINITY], vec![0]),
                Record::new(0, vec![3.0, 3.0], vec![1]), // duplicate id
                Record::new(4, vec![4.0, 1.0], vec![0]),
                Record::new(5, vec![f64::NEG_INFINITY, 5.0], vec![1]),
            ],
        )
    }

    #[test]
    fn clean_table_is_untouched() {
        let t = Table::new(
            "R",
            1,
            0,
            vec![
                Record::new(0, vec![1.0], vec![]),
                Record::new(1, vec![2.0], vec![]),
            ],
        );
        let v = validate_table(&t, ValidationPolicy::Reject).expect("clean");
        assert!(v.table.is_none());
        assert!(v.report.is_clean());
    }

    #[test]
    fn reject_surfaces_counts() {
        match validate_table(&corrupt_table(), ValidationPolicy::Reject) {
            Err(EngineError::CorruptInput {
                table,
                non_finite,
                duplicates,
            }) => {
                assert_eq!(table, "R");
                assert_eq!(non_finite, 3);
                assert_eq!(duplicates, 1);
            }
            other => panic!("expected CorruptInput, got {other:?}"),
        }
    }

    #[test]
    fn quarantine_drops_offenders_only() {
        let v = validate_table(&corrupt_table(), ValidationPolicy::Quarantine).expect("cleaned");
        let t = v.table.expect("rebuilt");
        let ids: Vec<u64> = t.records().iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![0, 4]);
        assert_eq!(v.report.quarantined, 4);
        assert_eq!(v.report.clamped, 0);
    }

    #[test]
    fn clamp_produces_strictly_worse_finite_values() {
        let v = validate_table(&corrupt_table(), ValidationPolicy::Clamp).expect("cleaned");
        let t = v.table.expect("rebuilt");
        assert_eq!(t.len(), 5); // only the duplicate id is dropped
        assert_eq!(v.report.quarantined, 1);
        assert_eq!(v.report.clamped, 3);
        // Max finite values: col 0 → 4.0, col 1 → 9.0.
        for r in t.records() {
            assert!(r.vals.iter().all(|v| v.is_finite()));
        }
        assert_eq!(t.record(1).vals[0], 5.0); // NaN → 4.0 + 1
        assert_eq!(t.record(2).vals[1], 10.0); // +Inf → 9.0 + 1
        assert_eq!(t.record(4).vals[0], 5.0); // -Inf → 4.0 + 1
    }

    #[test]
    fn first_occurrence_wins_for_duplicates() {
        let t = Table::new(
            "T",
            1,
            0,
            vec![
                Record::new(7, vec![1.0], vec![]),
                Record::new(7, vec![2.0], vec![]),
                Record::new(7, vec![3.0], vec![]),
            ],
        );
        let v = validate_table(&t, ValidationPolicy::Quarantine).expect("cleaned");
        let t = v.table.expect("rebuilt");
        assert_eq!(t.len(), 1);
        assert_eq!(t.record(0).vals[0], 1.0);
        assert_eq!(v.report.duplicates, 2);
    }

    #[test]
    fn policy_names_parse() {
        for p in [
            ValidationPolicy::Reject,
            ValidationPolicy::Quarantine,
            ValidationPolicy::Clamp,
        ] {
            assert_eq!(ValidationPolicy::parse(p.name()).expect("round trip"), p);
        }
        assert!(ValidationPolicy::parse("drop").is_err());
    }
}
