//! Satisfaction-based weight feedback (Equation 11 of the paper).
//!
//! After each region is processed, queries whose run-time satisfaction lags
//! behind the current best get their CSM weight bumped so the optimizer
//! favours regions that serve them next:
//!
//! ```text
//! w'_i = w_i + (v_max − v_i) / Σ_j (v_max − v_j)
//! ```
//!
//! The raw recurrence grows the total weight mass by one unit per round, so
//! after many rounds a fresh boost is diluted to noise relative to the
//! accumulated mass and a newly starved query can never climb back above an
//! old one. We therefore renormalize after each boost so the *mean* active
//! weight is 1: CSM (Equation 8) and every weight-linear tie-breaker are
//! scale-invariant, so renormalization changes no scheduling decision in a
//! single round while keeping the feedback responsive over long horizons.

/// A non-finite satisfaction (NaN from a zero-emission query under
/// `ValidationPolicy::Clamp`, or an infinity from a poisoned utility) is
/// treated as maximally unsatisfied: the query keeps participating in the
/// rebalance instead of poisoning `v_max` and every boost downstream.
fn sanitize(v: f64) -> f64 {
    if v.is_finite() {
        v
    } else {
        0.0
    }
}

/// Core of Equation 11 over the index set selected by `active`. Inactive
/// slots are never read and never written — their weights pass through
/// byte-identical.
fn apply(weights: &mut [f64], satisfactions: &[f64], active: impl Fn(usize) -> bool) {
    assert_eq!(weights.len(), satisfactions.len());
    let mut n_active = 0usize;
    let mut v_max = f64::NEG_INFINITY;
    for (i, &v) in satisfactions.iter().enumerate() {
        if active(i) {
            n_active += 1;
            v_max = v_max.max(sanitize(v));
        }
    }
    if n_active == 0 {
        return;
    }
    let denom: f64 = satisfactions
        .iter()
        .enumerate()
        .filter(|&(i, _)| active(i))
        .map(|(_, &v)| v_max - sanitize(v))
        .sum();
    if denom <= f64::EPSILON {
        // Everyone equally satisfied: Equation 11 is an exact no-op, and we
        // deliberately skip renormalization too so idle rounds leave the
        // weight vector untouched bit-for-bit.
        return;
    }
    let mut total = 0.0;
    for (i, (w, &v)) in weights.iter_mut().zip(satisfactions).enumerate() {
        if !active(i) {
            continue;
        }
        *w += (v_max - sanitize(v)) / denom;
        total += *w;
    }
    // Rescale so the mean active weight is 1. Guard degenerate totals (all
    // weights zero or non-finite) by leaving the boosted vector as-is.
    if total.is_finite() && total > 0.0 {
        let scale = n_active as f64 / total;
        for (i, w) in weights.iter_mut().enumerate() {
            if active(i) {
                *w *= scale;
            }
        }
    }
}

/// Applies Equation 11 in place, then renormalizes the weights to mean 1.
///
/// `satisfactions[i]` is the run-time satisfaction metric `v(Q_i)` of query
/// `i`. When every query is equally satisfied the update is an exact no-op.
/// Non-finite satisfactions are treated as 0 (maximally unsatisfied) so one
/// NaN cannot poison the whole vector.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn update_weights(weights: &mut [f64], satisfactions: &[f64]) {
    apply(weights, satisfactions, |_| true);
}

/// [`update_weights`] restricted to the queries flagged in `active` — the
/// online session layer's view of a changing query set. Inactive slots
/// (departed or not-yet-admitted queries) are ignored entirely: they do not
/// contribute to `v_max`, receive no boost, and keep their stored weight
/// byte-identical so a later re-admission starts from a known value.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn update_weights_masked(weights: &mut [f64], satisfactions: &[f64], active: &[bool]) {
    assert_eq!(weights.len(), active.len());
    apply(weights, satisfactions, |i| active[i]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example20_weights() {
        // Paper Example 20: v = {0, 1, 0.7, 0}, all w_i = 1 → raw boosts
        // {0.435, 0, 0.130, 0.435}. After mean-1 renormalization (sum 5 over
        // 4 queries → scale 0.8) the paper's ratios survive intact.
        let mut w = vec![1.0; 4];
        update_weights(&mut w, &[0.0, 1.0, 0.7, 0.0]);
        let expect = [1.43 * 0.8, 1.0 * 0.8, 1.13 * 0.8, 1.43 * 0.8];
        for (got, want) in w.iter().zip(expect) {
            assert!((got - want).abs() < 0.005, "{got} vs {want}");
        }
        // Paper ratio check, independent of the normalization constant.
        assert!((w[0] / w[1] - 1.43).abs() < 0.005);
        let mean: f64 = w.iter().sum::<f64>() / w.len() as f64;
        assert!((mean - 1.0).abs() < 1e-12);
    }

    #[test]
    fn equal_satisfaction_leaves_weights_unchanged() {
        let mut w = vec![1.0, 2.0, 3.0];
        update_weights(&mut w, &[0.5, 0.5, 0.5]);
        assert_eq!(w, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn mean_weight_is_one_after_update() {
        let mut w = vec![1.0; 5];
        update_weights(&mut w, &[0.1, 0.9, 0.3, 0.9, 0.0]);
        let mean: f64 = w.iter().sum::<f64>() / w.len() as f64;
        assert!((mean - 1.0).abs() < 1e-12);
    }

    #[test]
    fn most_unsatisfied_gets_largest_boost() {
        let mut w = vec![1.0; 3];
        update_weights(&mut w, &[0.0, 0.5, 1.0]);
        assert!(w[0] > w[1] && w[1] > w[2]);
    }

    #[test]
    fn empty_is_noop() {
        let mut w: Vec<f64> = vec![];
        update_weights(&mut w, &[]);
        assert!(w.is_empty());
    }

    #[test]
    #[should_panic]
    fn length_mismatch_panics() {
        let mut w = vec![1.0];
        update_weights(&mut w, &[0.1, 0.2]);
    }

    #[test]
    fn all_equal_at_extremes_is_noop() {
        // Degenerate all-equal inputs at both ends of the range: everyone
        // maximally satisfied and everyone maximally unsatisfied both zero
        // the denominator, so the weights must pass through untouched.
        for v in [0.0, 1.0] {
            let mut w = vec![0.3, 1.7, 2.0];
            update_weights(&mut w, &[v; 3]);
            assert_eq!(w, vec![0.3, 1.7, 2.0], "v = {v}");
        }
    }

    #[test]
    fn single_lagging_query_absorbs_the_whole_boost() {
        // One query lags, the rest are tied at v_max: the lagger receives
        // the entire unit boost. Pre-renorm weights are {1, 1, 2, 1} (sum 5
        // over 4) → scale 0.8 → {0.8, 0.8, 1.6, 0.8}.
        let mut w = vec![1.0; 4];
        update_weights(&mut w, &[0.9, 0.9, 0.2, 0.9]);
        assert!((w[2] - 1.6).abs() < 1e-12, "lagging weight: {}", w[2]);
        for (i, &wi) in w.iter().enumerate() {
            if i != 2 {
                assert!((wi - 0.8).abs() < 1e-12, "satisfied query {i}: {wi}");
            }
        }
        // The lagger's weight is exactly 2× the satisfied queries'.
        assert!((w[2] / w[0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn single_query_workload_never_changes() {
        // With one query, v_i == v_max by definition: Equation 11 has no
        // one to rebalance toward.
        let mut w = vec![0.42];
        for v in [0.0, 0.5, 1.0] {
            update_weights(&mut w, &[v]);
            assert_eq!(w, vec![0.42], "v = {v}");
        }
    }

    #[test]
    fn nan_satisfaction_does_not_poison_weights() {
        // A NaN satisfaction used to propagate through v_max and the
        // denominator, turning every weight into NaN. Now it is treated as
        // maximally unsatisfied.
        let mut w = vec![1.0; 3];
        update_weights(&mut w, &[f64::NAN, 0.8, 0.5]);
        assert!(w.iter().all(|x| x.is_finite()), "weights: {w:?}");
        // The NaN query is the most unsatisfied → the largest boost.
        assert!(w[0] > w[2] && w[2] > w[1], "weights: {w:?}");

        // Infinities are likewise sanitized.
        let mut w = vec![1.0; 3];
        update_weights(&mut w, &[f64::INFINITY, 0.8, f64::NEG_INFINITY]);
        assert!(w.iter().all(|x| x.is_finite()), "weights: {w:?}");

        // All-NaN: every sanitized value is equal → exact no-op.
        let mut w = vec![0.3, 1.7];
        update_weights(&mut w, &[f64::NAN, f64::NAN]);
        assert_eq!(w, vec![0.3, 1.7]);
    }

    #[test]
    fn long_horizon_starved_query_rank_flips() {
        // Regression for unbounded weight growth. Phase 1: query B starves
        // for many rounds, accumulating weight mass. Phase 2: B is fully
        // satisfied and A starves for a few rounds. Under the renormalized
        // update A's weight overtakes B's quickly; under the old unbounded
        // recurrence B's accumulated mass drowned A's boosts for thousands
        // of rounds.
        let mut w = vec![1.0, 1.0];
        for _ in 0..1000 {
            update_weights(&mut w, &[1.0, 0.0]); // B starved
        }
        assert!(w[1] > w[0]);
        for _ in 0..50 {
            update_weights(&mut w, &[0.0, 1.0]); // A starved
        }
        assert!(w[0] > w[1], "starved query never regained rank: w = {w:?}");
        let mean: f64 = w.iter().sum::<f64>() / 2.0;
        assert!((mean - 1.0).abs() < 1e-9);
    }

    #[test]
    fn masked_update_ignores_inactive_slots() {
        let mut w = vec![1.0, 7.25, 1.0, 0.123];
        // Slots 1 and 3 are inactive (departed queries): their weights must
        // pass through bit-identical and their satisfactions — including a
        // poisonous NaN — must not influence the active pair.
        update_weights_masked(
            &mut w,
            &[0.0, f64::NAN, 1.0, 0.9],
            &[true, false, true, false],
        );
        assert_eq!(w[1], 7.25);
        assert_eq!(w[3], 0.123);
        assert!(w[0] > w[2], "starved active query not boosted: {w:?}");
        let active_mean = (w[0] + w[2]) / 2.0;
        assert!((active_mean - 1.0).abs() < 1e-12);
    }

    #[test]
    fn masked_all_inactive_is_noop() {
        let mut w = vec![0.5, 1.5];
        update_weights_masked(&mut w, &[0.0, 1.0], &[false, false]);
        assert_eq!(w, vec![0.5, 1.5]);
    }
}
