//! Satisfaction-based weight feedback (Equation 11 of the paper).
//!
//! After each region is processed, queries whose run-time satisfaction lags
//! behind the current best get their CSM weight bumped so the optimizer
//! favours regions that serve them next:
//!
//! ```text
//! w'_i = w_i + (v_max − v_i) / Σ_j (v_max − v_j)
//! ```

/// Applies Equation 11 in place.
///
/// `satisfactions[i]` is the run-time satisfaction metric `v(Q_i)` of query
/// `i`. When every query is equally satisfied the denominator vanishes and
/// the weights are left unchanged.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn update_weights(weights: &mut [f64], satisfactions: &[f64]) {
    assert_eq!(weights.len(), satisfactions.len());
    if weights.is_empty() {
        return;
    }
    let v_max = satisfactions.iter().copied().fold(f64::MIN, f64::max);
    let denom: f64 = satisfactions.iter().map(|&v| v_max - v).sum();
    if denom <= f64::EPSILON {
        return;
    }
    for (w, &v) in weights.iter_mut().zip(satisfactions) {
        *w += (v_max - v) / denom;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example20_weights() {
        // Paper Example 20: v = {0, 1, 0.7, 0}, all w_i = 1
        // → w' = {1.43, 1, 1.13, 1.43}.
        let mut w = vec![1.0; 4];
        update_weights(&mut w, &[0.0, 1.0, 0.7, 0.0]);
        let expect = [1.43, 1.0, 1.13, 1.43];
        for (got, want) in w.iter().zip(expect) {
            assert!((got - want).abs() < 0.005, "{got} vs {want}");
        }
    }

    #[test]
    fn equal_satisfaction_leaves_weights_unchanged() {
        let mut w = vec![1.0, 2.0, 3.0];
        update_weights(&mut w, &[0.5, 0.5, 0.5]);
        assert_eq!(w, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn boosts_sum_to_one() {
        let mut w = vec![1.0; 5];
        update_weights(&mut w, &[0.1, 0.9, 0.3, 0.9, 0.0]);
        let total: f64 = w.iter().sum();
        assert!((total - 6.0).abs() < 1e-12);
    }

    #[test]
    fn most_unsatisfied_gets_largest_boost() {
        let mut w = vec![1.0; 3];
        update_weights(&mut w, &[0.0, 0.5, 1.0]);
        assert!(w[0] > w[1] && w[1] > w[2]);
        assert_eq!(w[2], 1.0);
    }

    #[test]
    fn empty_is_noop() {
        let mut w: Vec<f64> = vec![];
        update_weights(&mut w, &[]);
        assert!(w.is_empty());
    }

    #[test]
    #[should_panic]
    fn length_mismatch_panics() {
        let mut w = vec![1.0];
        update_weights(&mut w, &[0.1, 0.2]);
    }

    #[test]
    fn all_equal_at_extremes_is_noop() {
        // Degenerate all-equal inputs at both ends of the range: everyone
        // maximally satisfied and everyone maximally unsatisfied both zero
        // the denominator, so the weights must pass through untouched.
        for v in [0.0, 1.0] {
            let mut w = vec![0.3, 1.7, 2.0];
            update_weights(&mut w, &[v; 3]);
            assert_eq!(w, vec![0.3, 1.7, 2.0], "v = {v}");
        }
    }

    #[test]
    fn single_lagging_query_absorbs_the_whole_boost() {
        // One query lags, the rest are tied at v_max: the lagger receives
        // the entire unit boost and the satisfied queries receive exactly
        // nothing.
        let mut w = vec![1.0; 4];
        update_weights(&mut w, &[0.9, 0.9, 0.2, 0.9]);
        assert!((w[2] - 2.0).abs() < 1e-12, "lagging weight: {}", w[2]);
        for (i, &wi) in w.iter().enumerate() {
            if i != 2 {
                assert_eq!(wi, 1.0, "satisfied query {i} was boosted");
            }
        }
    }

    #[test]
    fn single_query_workload_never_changes() {
        // With one query, v_i == v_max by definition: Equation 11 has no
        // one to rebalance toward.
        let mut w = vec![0.42];
        for v in [0.0, 0.5, 1.0] {
            update_weights(&mut w, &[v]);
            assert_eq!(w, vec![0.42], "v = {v}");
        }
    }
}
