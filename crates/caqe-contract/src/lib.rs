//! Progressiveness contracts (§3 of the paper).
//!
//! A *contract* `C` for query `Q` is a progressive utility function `ϑ` that
//! assigns each result tuple a utility score based on *when* it is reported
//! (Definition 4). This crate provides:
//!
//! * [`model::Contract`] — the contract classes of Table 2 (C1–C5) plus the
//!   piecewise and product combinators of §3.2–3.3;
//! * [`tracker::QueryScore`] — per-query accumulation of the
//!   progressiveness score `pScore` (Equation 7) and the run-time
//!   satisfaction metric `v(Q_i, t_j)` (§6);
//! * [`weights`] — the satisfaction-based weight feedback of Equation 11.

// Library code must degrade, not abort (DESIGN.md §13).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod model;
pub mod tracker;
pub mod weights;

pub use model::{Contract, EmissionCtx};
pub use tracker::{QueryScore, SatisfactionSnapshot};
pub use weights::{update_weights, update_weights_masked};
