//! Per-query score accumulation: `pScore` (Equation 7) and the run-time
//! satisfaction metric `v(Q_i, t_j)` (§6 of the paper).

use crate::model::{Contract, EmissionCtx};
use caqe_types::VirtualSeconds;

/// A point-in-time view of one query's satisfaction state, taken after an
/// emission (or at any scheduling decision). Consumed by the trace layer to
/// build the Figure 9/11 satisfaction *timelines* without re-deriving the
/// running metric from emission logs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SatisfactionSnapshot {
    /// Results emitted so far (the sequence number of the latest emission).
    pub count: u64,
    /// Sum of the utilities awarded so far (`pScore`, Equation 7).
    pub sum_utility: f64,
    /// The run-time satisfaction metric `v(Q_i, t)` at this point.
    pub satisfaction: f64,
}

/// Tracks the emissions of one query under its contract.
#[derive(Debug, Clone)]
pub struct QueryScore {
    contract: Contract,
    /// Best current estimate of the query's final result count.
    est_total: f64,
    /// Virtual time the query entered the system; contracts are evaluated
    /// on time *since admission*, so a query admitted mid-run is not judged
    /// against deadlines that expired before it existed. 0 for the initial
    /// workload — the historical behavior, bit-for-bit.
    start: VirtualSeconds,
    emissions: Vec<(VirtualSeconds, f64)>,
    sum_utility: f64,
}

impl QueryScore {
    /// A fresh tracker for a query under `contract`, with an initial
    /// estimate of the final result cardinality.
    pub fn new(contract: Contract, est_total: f64) -> Self {
        QueryScore::new_at(contract, est_total, 0.0)
    }

    /// [`QueryScore::new`] for a query admitted at virtual time `start`:
    /// every utility evaluation shifts timestamps by `-start` first.
    pub fn new_at(contract: Contract, est_total: f64, start: VirtualSeconds) -> Self {
        QueryScore {
            contract,
            est_total: est_total.max(1.0),
            start,
            emissions: Vec::new(),
            sum_utility: 0.0,
        }
    }

    /// The virtual time this query was admitted at (0 for the initial
    /// workload).
    pub fn start(&self) -> VirtualSeconds {
        self.start
    }

    /// The contract being tracked.
    pub fn contract(&self) -> &Contract {
        &self.contract
    }

    /// Updates the result-cardinality estimate (executors refine it as the
    /// look-ahead produces better information). Affects only *future*
    /// emissions — utilities are assigned at reporting time, as in the
    /// paper.
    pub fn set_est_total(&mut self, est_total: f64) {
        self.est_total = est_total.max(1.0);
    }

    /// The current cardinality estimate.
    pub fn est_total(&self) -> f64 {
        self.est_total
    }

    /// Records one emitted result at virtual time `ts`, returning its
    /// utility score.
    pub fn record(&mut self, ts: VirtualSeconds) -> f64 {
        let seq = self.emissions.len() as u64 + 1;
        let u = self
            .contract
            .utility(&EmissionCtx::new(ts - self.start, seq, self.est_total));
        // Stored timestamps stay absolute — the trace layer reports the
        // global timeline; only the utility evaluation is admission-relative.
        self.emissions.push((ts, u));
        self.sum_utility += u;
        u
    }

    /// The utility a *hypothetical* emission at time `ts` with sequence
    /// offset `ahead` (1 = the very next result) would earn. Used by the
    /// optimizer's benefit model (Equation 8) without perturbing state.
    pub fn hypothetical_utility(&self, ts: VirtualSeconds, ahead: u64) -> f64 {
        let seq = self.emissions.len() as u64 + ahead;
        self.contract
            .utility(&EmissionCtx::new(ts - self.start, seq, self.est_total))
    }

    /// Number of results emitted so far.
    pub fn count(&self) -> u64 {
        self.emissions.len() as u64
    }

    /// The progressiveness score `pScore` (Equation 7): the sum of all
    /// assigned utilities.
    pub fn p_score(&self) -> f64 {
        self.sum_utility
    }

    /// The run-time satisfaction metric `v(Q_i, t)`: the average utility of
    /// all results reported so far; 0 while the query has produced nothing
    /// (an unserved query is maximally unsatisfied, driving the Equation 11
    /// weight boost).
    pub fn runtime_satisfaction(&self) -> f64 {
        if self.emissions.is_empty() {
            0.0
        } else {
            self.sum_utility / self.emissions.len() as f64
        }
    }

    /// The final per-query satisfaction reported in Figures 9 and 11: the
    /// mean utility per result, clamped to `[0, 1]`. A query with no results
    /// at all is vacuously satisfied.
    pub fn final_satisfaction(&self) -> f64 {
        if self.emissions.is_empty() {
            1.0
        } else {
            (self.sum_utility / self.emissions.len() as f64).clamp(0.0, 1.0)
        }
    }

    /// The recorded `(timestamp, utility)` pairs, in emission order.
    pub fn emissions(&self) -> &[(VirtualSeconds, f64)] {
        &self.emissions
    }

    /// The current satisfaction state as one copyable record (see
    /// [`SatisfactionSnapshot`]).
    pub fn snapshot(&self) -> SatisfactionSnapshot {
        SatisfactionSnapshot {
            count: self.count(),
            sum_utility: self.sum_utility,
            satisfaction: self.runtime_satisfaction(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p_score_sums_utilities() {
        let mut s = QueryScore::new(Contract::Deadline { t_hard: 10.0 }, 100.0);
        assert_eq!(s.record(5.0), 1.0);
        assert_eq!(s.record(9.0), 1.0);
        assert_eq!(s.record(11.0), 0.0);
        assert_eq!(s.p_score(), 2.0);
        assert_eq!(s.count(), 3);
        assert!((s.runtime_satisfaction() - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.final_satisfaction() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_query_runtime_vs_final() {
        let s = QueryScore::new(Contract::LogDecay, 10.0);
        assert_eq!(s.runtime_satisfaction(), 0.0);
        assert_eq!(s.final_satisfaction(), 1.0);
        assert_eq!(s.p_score(), 0.0);
    }

    #[test]
    fn sequence_numbers_feed_quota_contracts() {
        // 10% of 10 per 1s ⇒ 1 due per second.
        let mut s = QueryScore::new(
            Contract::Quota {
                frac: 0.1,
                interval: 1.0,
            },
            10.0,
        );
        assert_eq!(s.record(0.5), 1.0); // #1 due at 1s
        assert_eq!(s.record(1.5), 1.0); // #2 due at 2s
        let late = s.record(30.0); // #3 due at 3s → 0.1
        assert!((late - 0.1).abs() < 1e-9);
    }

    #[test]
    fn hypothetical_does_not_mutate() {
        let s = QueryScore::new(Contract::Deadline { t_hard: 10.0 }, 100.0);
        assert_eq!(s.hypothetical_utility(5.0, 1), 1.0);
        assert_eq!(s.hypothetical_utility(15.0, 1), 0.0);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn estimate_update_changes_future_scores_only() {
        let mut s = QueryScore::new(
            Contract::Quota {
                frac: 0.1,
                interval: 1.0,
            },
            10.0,
        );
        let before = s.record(0.5);
        s.set_est_total(1000.0);
        assert_eq!(s.est_total(), 1000.0);
        // Previously recorded utility remains in the score.
        assert_eq!(s.p_score(), before);
    }

    #[test]
    fn estimates_are_floored_at_one() {
        let s = QueryScore::new(Contract::LogDecay, 0.0);
        assert_eq!(s.est_total(), 1.0);
    }

    #[test]
    fn zero_emissions_is_unsatisfied_regardless_of_clock() {
        // The run-time metric is emission-driven: a query that has produced
        // nothing reads v = 0 whether the virtual clock sits at 0 or far
        // past every deadline — the clock only enters through the utilities
        // of actual emissions.
        let s = QueryScore::new(Contract::Deadline { t_hard: 1.0 }, 10.0);
        assert_eq!(s.runtime_satisfaction(), 0.0);
        // Probing utilities deep past the deadline must not perturb it.
        assert_eq!(s.hypothetical_utility(1e9, 1), 0.0);
        assert_eq!(s.runtime_satisfaction(), 0.0);
        assert_eq!(s.count(), 0);
        // The snapshot agrees with the direct reads.
        let snap = s.snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.sum_utility, 0.0);
        assert_eq!(snap.satisfaction, 0.0);
    }

    #[test]
    fn late_admission_shifts_contract_time() {
        // A query admitted at t=100 under a 10s deadline earns full utility
        // for emissions before t=110 and nothing after, while a start-0 twin
        // judges the same absolute timestamps as long expired.
        let mut late = QueryScore::new_at(Contract::Deadline { t_hard: 10.0 }, 100.0, 100.0);
        let mut early = QueryScore::new(Contract::Deadline { t_hard: 10.0 }, 100.0);
        assert_eq!(late.start(), 100.0);
        assert_eq!(late.hypothetical_utility(105.0, 1), 1.0);
        assert_eq!(early.hypothetical_utility(105.0, 1), 0.0);
        assert_eq!(late.record(105.0), 1.0);
        assert_eq!(late.record(111.0), 0.0);
        assert_eq!(early.record(105.0), 0.0);
        // Emission timestamps stay absolute for the trace layer.
        assert_eq!(late.emissions()[0].0, 105.0);
    }

    #[test]
    fn snapshot_tracks_emissions() {
        let mut s = QueryScore::new(Contract::Deadline { t_hard: 10.0 }, 100.0);
        s.record(5.0);
        s.record(11.0);
        let snap = s.snapshot();
        assert_eq!(snap.count, 2);
        assert_eq!(snap.sum_utility, 1.0);
        assert!((snap.satisfaction - 0.5).abs() < 1e-12);
        assert_eq!(snap.satisfaction, s.runtime_satisfaction());
    }
}
