//! Contract specification models (§3.2, Table 2 of the paper).
//!
//! | Id | Class | Utility function |
//! |----|-------|------------------|
//! | C1 | time | step: 1 until `t_hard`, 0 after |
//! | C2 | time | `1 / log10(ts)` decay, clamped to `[0, 1]` |
//! | C3 | time | 1 until `t_soft`, then `1 / (ts − t_soft)` |
//! | C4 | cardinality | a fraction `frac` of all results every `interval` |
//! | C5 | hybrid | `ϑ_C4 · (1/ts)` |
//!
//! **C4 semantics.** The paper specifies "10% of total results be returned
//! every minute" and penalizes intervals that under-deliver (Equation 3).
//! We realize this as a *cumulative quota*: the `k`-th result of a query is
//! due at `deadline(k) = interval · k / (frac · N_est)`; a result emitted by
//! its deadline has utility 1, a late result decays as
//! `deadline(k) / ts`. This keeps the paper's intent — steady progressive
//! delivery scores 1, a blocking dump at the end scores near 0 — while
//! attaching the score to individual tuples as Definition 4 requires.

use caqe_types::VirtualSeconds;

/// Everything a contract may consult when scoring one emitted result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmissionCtx {
    /// Emission (reporting) time of the tuple, `τ_k.ts`.
    pub ts: VirtualSeconds,
    /// 1-based sequence number of this result within its query.
    pub seq: u64,
    /// Best current estimate of the query's total result count `N_est`.
    pub est_total: f64,
}

impl EmissionCtx {
    /// Convenience constructor.
    pub fn new(ts: VirtualSeconds, seq: u64, est_total: f64) -> Self {
        EmissionCtx { ts, seq, est_total }
    }
}

/// A progressiveness contract: the utility function `ϑ` of Definition 4.
///
/// ```
/// use caqe_contract::{Contract, EmissionCtx};
///
/// // 30-second hard deadline (Table 2, C1):
/// let c = Contract::Deadline { t_hard: 30.0 };
/// assert_eq!(c.utility(&EmissionCtx::new(12.0, 1, 100.0)), 1.0);
/// assert_eq!(c.utility(&EmissionCtx::new(31.0, 2, 100.0)), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Contract {
    /// C1 — hard response-time deadline (Example 7): utility 1 up to
    /// `t_hard`, 0 afterwards.
    Deadline {
        /// The hard deadline in virtual seconds.
        t_hard: VirtualSeconds,
    },
    /// C2 — logarithmic decay: `1 / log10(ts)`, clamped to `[0, 1]`.
    LogDecay,
    /// C3 — soft deadline with hyperbolic decay: 1 up to `t_soft`, then
    /// `1 / (ts − t_soft)` (clamped to ≤ 1).
    SoftDeadline {
        /// Start of the decay in virtual seconds.
        t_soft: VirtualSeconds,
    },
    /// C4 — cardinality quota: a fraction `frac` of all results every
    /// `interval` seconds (cumulative-quota semantics, see module docs).
    Quota {
        /// Fraction of the total result set due per interval (paper: 0.1).
        frac: f64,
        /// Interval length in virtual seconds.
        interval: VirtualSeconds,
    },
    /// C5 — the paper's hybrid: `ϑ_C4 · ϑ_time` with `ϑ_time = 1/ts`.
    Hybrid {
        /// Fraction of the total result set due per interval.
        frac: f64,
        /// Interval length in virtual seconds.
        interval: VirtualSeconds,
    },
    /// A piecewise-constant time contract (Examples 7–8): utility of the
    /// first segment whose end time is ≥ `ts`; `tail` applies after the last
    /// segment.
    Piecewise {
        /// `(segment end time, utility)` pairs, ascending by end time.
        steps: Vec<(VirtualSeconds, f64)>,
        /// Utility after the final segment.
        tail: f64,
    },
    /// Generic hybrid combinator (Equation 5): the product of two utility
    /// scores, assumed independent.
    Product(Box<Contract>, Box<Contract>),
}

impl Contract {
    /// The utility score `ϑ(τ_k)` of one emitted result.
    pub fn utility(&self, ctx: &EmissionCtx) -> f64 {
        match self {
            Contract::Deadline { t_hard } => {
                if ctx.ts <= *t_hard {
                    1.0
                } else {
                    0.0
                }
            }
            Contract::LogDecay => {
                let ts = ctx.ts.max(1.0 + 1e-9);
                (1.0 / ts.log10()).clamp(0.0, 1.0)
            }
            Contract::SoftDeadline { t_soft } => {
                if ctx.ts <= *t_soft {
                    1.0
                } else {
                    (1.0 / (ctx.ts - t_soft)).clamp(0.0, 1.0)
                }
            }
            Contract::Quota { frac, interval } => quota_utility(*frac, *interval, ctx),
            Contract::Hybrid { frac, interval } => {
                let time = (1.0 / ctx.ts.max(1e-9)).clamp(0.0, 1.0);
                quota_utility(*frac, *interval, ctx) * time
            }
            Contract::Piecewise { steps, tail } => steps
                .iter()
                .find(|(end, _)| ctx.ts <= *end)
                .map(|(_, u)| *u)
                .unwrap_or(*tail),
            Contract::Product(a, b) => a.utility(ctx) * b.utility(ctx),
        }
    }

    /// The five contract models of Table 2 with the paper's default
    /// parameters, indexed 1–5.
    ///
    /// `t_param` is the tunable `t_C1` / `t_C3` deadline and `interval` the
    /// `n_{i,j}` reporting interval (both in virtual seconds).
    ///
    /// # Panics
    /// Panics for ids outside `1..=5`.
    pub fn table2(id: usize, t_param: VirtualSeconds, interval: VirtualSeconds) -> Contract {
        match id {
            1 => Contract::Deadline { t_hard: t_param },
            2 => Contract::LogDecay,
            3 => Contract::SoftDeadline { t_soft: t_param },
            4 => Contract::Quota {
                frac: 0.1,
                interval,
            },
            5 => Contract::Hybrid {
                frac: 0.1,
                interval,
            },
            other => panic!("Table 2 defines contracts C1..C5, got C{other}"),
        }
    }

    /// Short display label ("C1".."C5" for Table 2 models).
    pub fn label(&self) -> &'static str {
        match self {
            Contract::Deadline { .. } => "C1",
            Contract::LogDecay => "C2",
            Contract::SoftDeadline { .. } => "C3",
            Contract::Quota { .. } => "C4",
            Contract::Hybrid { .. } => "C5",
            Contract::Piecewise { .. } => "piecewise",
            Contract::Product(..) => "product",
        }
    }
}

/// Cumulative-quota utility (see module docs for the semantics).
fn quota_utility(frac: f64, interval: VirtualSeconds, ctx: &EmissionCtx) -> f64 {
    debug_assert!(frac > 0.0 && frac <= 1.0);
    let n_est = ctx.est_total.max(1.0);
    // Results due per interval; the k-th result's deadline.
    let per_interval = (frac * n_est).max(1e-9);
    let deadline = interval * (ctx.seq as f64 / per_interval).ceil();
    if ctx.ts <= deadline {
        1.0
    } else {
        (deadline / ctx.ts).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(ts: f64) -> EmissionCtx {
        EmissionCtx::new(ts, 1, 100.0)
    }

    #[test]
    fn c1_step() {
        let c = Contract::Deadline { t_hard: 30.0 };
        assert_eq!(c.utility(&ctx(10.0)), 1.0);
        assert_eq!(c.utility(&ctx(30.0)), 1.0);
        assert_eq!(c.utility(&ctx(30.1)), 0.0);
    }

    #[test]
    fn c2_log_decay() {
        let c = Contract::LogDecay;
        // Before 10s the raw value exceeds 1 → clamped.
        assert_eq!(c.utility(&ctx(5.0)), 1.0);
        assert!((c.utility(&ctx(10.0)) - 1.0).abs() < 1e-9);
        assert!((c.utility(&ctx(100.0)) - 0.5).abs() < 1e-9);
        assert!((c.utility(&ctx(1000.0)) - 1.0 / 3.0).abs() < 1e-9);
        // Monotone non-increasing.
        assert!(c.utility(&ctx(50.0)) >= c.utility(&ctx(500.0)));
        // ts < 1 does not explode.
        assert_eq!(c.utility(&ctx(0.5)), 1.0);
    }

    #[test]
    fn c3_soft_deadline() {
        // Paper §7.2: with t_C3 = 10, "a tuple with a time stamp of 12
        // seconds has a utility of 0.5".
        let c = Contract::SoftDeadline { t_soft: 10.0 };
        assert_eq!(c.utility(&ctx(8.0)), 1.0);
        assert!((c.utility(&ctx(12.0)) - 0.5).abs() < 1e-9);
        assert!((c.utility(&ctx(14.0)) - 0.25).abs() < 1e-9);
        // Just past the deadline, clamp prevents > 1.
        assert_eq!(c.utility(&ctx(10.5)), 1.0);
    }

    #[test]
    fn c4_quota_on_time_scores_one() {
        // 10% of 100 results per 10s ⇒ 1 result due per second.
        let c = Contract::Quota {
            frac: 0.1,
            interval: 10.0,
        };
        // Result #5 due at ceil(5/10)*10 = 10s.
        assert_eq!(c.utility(&EmissionCtx::new(9.0, 5, 100.0)), 1.0);
        assert_eq!(c.utility(&EmissionCtx::new(10.0, 5, 100.0)), 1.0);
        // Late by 2× → utility 0.5.
        assert!((c.utility(&EmissionCtx::new(20.0, 5, 100.0)) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn c4_blocking_dump_scores_poorly() {
        let c = Contract::Quota {
            frac: 0.1,
            interval: 1.0,
        };
        // All 100 results dumped at t = 1000s; quota would have finished by
        // t = 10s. Early sequence numbers are heavily penalized.
        let n = 100u64;
        let mean: f64 = (1..=n)
            .map(|k| c.utility(&EmissionCtx::new(1000.0, k, n as f64)))
            .sum::<f64>()
            / n as f64;
        assert!(mean < 0.02, "blocking dump scored {mean}");
        // Steady on-time delivery scores 1.
        let steady: f64 = (1..=n)
            .map(|k| c.utility(&EmissionCtx::new(k as f64 / 10.0, k, n as f64)))
            .sum::<f64>()
            / n as f64;
        assert_eq!(steady, 1.0);
    }

    #[test]
    fn c5_hybrid_combines_time_and_quota() {
        let c = Contract::Hybrid {
            frac: 0.1,
            interval: 10.0,
        };
        // On-time result at ts=2: quota 1 × time 1/2 = 0.5.
        assert!((c.utility(&EmissionCtx::new(2.0, 1, 100.0)) - 0.5).abs() < 1e-9);
        // ts ≤ 1 → time component clamped to 1.
        assert_eq!(c.utility(&EmissionCtx::new(0.5, 1, 100.0)), 1.0);
    }

    #[test]
    fn piecewise_example8() {
        // Figure 2.b: 1 until 5 min, 0.8 until 30 min, then log decay — we
        // approximate the tail with 0 here and test the segments.
        let c = Contract::Piecewise {
            steps: vec![(5.0, 1.0), (30.0, 0.8)],
            tail: 0.0,
        };
        assert_eq!(c.utility(&ctx(3.0)), 1.0);
        assert_eq!(c.utility(&ctx(5.0)), 1.0);
        assert_eq!(c.utility(&ctx(20.0)), 0.8);
        assert_eq!(c.utility(&ctx(31.0)), 0.0);
    }

    #[test]
    fn product_is_equation5() {
        // Example 11: cardinality × time.
        let c = Contract::Product(
            Box::new(Contract::Quota {
                frac: 0.1,
                interval: 60.0,
            }),
            Box::new(Contract::Deadline { t_hard: 1800.0 }),
        );
        let on_time = EmissionCtx::new(30.0, 1, 100.0);
        assert_eq!(c.utility(&on_time), 1.0);
        let too_late = EmissionCtx::new(2000.0, 1, 100.0);
        assert_eq!(c.utility(&too_late), 0.0);
    }

    #[test]
    fn table2_constructor() {
        for id in 1..=5 {
            let c = Contract::table2(id, 10.0, 1.0);
            assert_eq!(c.label(), format!("C{id}"));
        }
    }

    #[test]
    #[should_panic]
    fn table2_rejects_unknown_id() {
        let _ = Contract::table2(6, 1.0, 1.0);
    }

    #[test]
    fn utilities_bounded() {
        // All Table 2 contracts stay within [0, 1] over a broad grid.
        for id in 1..=5 {
            let c = Contract::table2(id, 10.0, 1.0);
            for &ts in &[0.1, 1.0, 5.0, 10.0, 50.0, 1e4] {
                for &seq in &[1u64, 10, 100] {
                    let u = c.utility(&EmissionCtx::new(ts, seq, 200.0));
                    assert!((0.0..=1.0).contains(&u), "C{id} at ts={ts}: {u}");
                }
            }
        }
    }
}
