//! Deterministic fault injection for the CAQE engine (DESIGN.md §13).
//!
//! A [`FaultPlan`] is a pure decision function: every injection verdict is
//! a stateless hash of `(seed, injection point, group, region, attempt)`,
//! never of RNG state, thread identity or wall time. Two consequences:
//!
//! * **Thread invariance** — the same plan fires the same faults at the
//!   same virtual-clock points regardless of `--threads`, so the chaos
//!   suite can assert byte-identical traces across parallelism settings.
//! * **Replayability** — a failure observed under `--faults <spec>` is
//!   reproduced exactly by re-running with the same spec.
//!
//! The plan covers the four fault classes of the chaos harness:
//! region cost spikes, estimator perturbation, worker panics inside region
//! processing units, and input corruption at ingestion (NaN/±Inf values
//! and duplicate record ids). A plan with every rate at zero
//! ([`FaultPlan::none`]) is inert: every hook in the engine is a strict
//! no-op, preserving the committed golden trace byte-for-byte.

// Library code must degrade, not abort (DESIGN.md §13).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use caqe_data::{Record, Table};
use caqe_types::EngineError;

/// Domain tags separating the injection points in hash space, so e.g. a
/// panic verdict for region 3 is independent of its cost-spike verdict.
const DOMAIN_PANIC: u64 = 0x50414e49; // "PANI"
const DOMAIN_SPIKE: u64 = 0x5350494b; // "SPIK"
const DOMAIN_EST: u64 = 0x45535449; // "ESTI"
const DOMAIN_CORRUPT: u64 = 0x434f5252; // "CORR"
const DOMAIN_ADMIT: u64 = 0x41444d54; // "ADMT"

/// Panic payload used for injected worker panics. Carrying a dedicated
/// type lets the engine's `catch_unwind` recovery (and the chaos suite's
/// panic hook) distinguish injected faults from genuine bugs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedPanic {
    /// Join-group index the fault fired in.
    pub group: u32,
    /// Region identifier within the group.
    pub region: u32,
    /// 1-based processing attempt that was killed.
    pub attempt: u32,
}

/// Whether a panic payload is an [`InjectedPanic`] from a chaos plan.
///
/// The predicate the silencer filters on, exported so drivers with their
/// own panic-logging hooks (e.g. the `caqe-serve` wall-clock driver) can
/// apply the same classification without re-implementing the downcast.
pub fn is_injected_panic(payload: &dyn std::any::Any) -> bool {
    payload.downcast_ref::<InjectedPanic>().is_some()
}

/// Installs a process-wide panic hook that suppresses the default panic
/// banner for *injected* panics only — genuine panics still print.
///
/// The engine catches every [`InjectedPanic`] with `catch_unwind`, so
/// without this hook a chaos run sprays panic messages over its report even
/// though nothing actually failed. Idempotent; safe to call from every
/// driver and test that enables a fault plan.
///
/// **Composability**: the silencer *chains* — it wraps whatever hook is
/// installed at the moment of its (single effective) installation and
/// forwards every genuine panic to it, and hooks installed *afterwards*
/// (a server's own panic logger, say) wrap the silencer in turn and keep
/// working. For a reversible installation use
/// [`scoped_silence_injected_panics`], which restores the previous hook's
/// behaviour when the guard drops.
pub fn silence_injected_panics() {
    use std::sync::atomic::{AtomicBool, Ordering};
    static INSTALLED: AtomicBool = AtomicBool::new(false);
    if INSTALLED.swap(true, Ordering::SeqCst) {
        return;
    }
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if !is_injected_panic(info.payload()) {
            previous(info);
        }
    }));
}

/// Scope guard for a reversible panic-hook installation; created by
/// [`scoped_silence_injected_panics`]. Dropping the guard restores the
/// behaviour of the hook that was installed when the guard was created.
///
/// Guards should be dropped in reverse creation order (LIFO). The restore
/// is *behavioural*: the previous hook is re-wrapped rather than moved
/// back, so dropping out of order composes instead of panicking — the
/// hooks installed in between simply stay chained.
#[must_use = "dropping the guard immediately restores the previous hook"]
pub struct PanicHookGuard {
    restore: Option<Box<dyn FnOnce() + Send>>,
}

impl std::fmt::Debug for PanicHookGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PanicHookGuard")
            .field("armed", &self.restore.is_some())
            .finish()
    }
}

impl Drop for PanicHookGuard {
    fn drop(&mut self) {
        if let Some(restore) = self.restore.take() {
            restore();
        }
    }
}

/// Installs the injected-panic silencer *reversibly*: genuine panics are
/// forwarded to the hook that was current at call time, and dropping the
/// returned guard reinstates that hook's behaviour. This is what lets the
/// serving driver's panic logging and the chaos suite's silencing coexist
/// in either installation order.
pub fn scoped_silence_injected_panics() -> PanicHookGuard {
    use std::sync::Arc;
    let previous = Arc::new(std::panic::take_hook());
    let chained = Arc::clone(&previous);
    std::panic::set_hook(Box::new(move |info| {
        if !is_injected_panic(info.payload()) {
            chained(info);
        }
    }));
    PanicHookGuard {
        restore: Some(Box::new(move || {
            // Behavioural restore: drop whatever is currently installed
            // (ourselves, in LIFO discipline) and re-wrap the prior hook.
            drop(std::panic::take_hook());
            std::panic::set_hook(Box::new(move |info| previous(info)));
        })),
    }
}

/// Wall-clock retry/backoff policy for the serving driver (`caqe-serve`).
///
/// The virtual-tick `RecoveryPolicy` inside the engine
/// governs *deterministic* in-run recovery; this policy governs the
/// wall-clock loop *around* engine runs: how many times a driver re-submits
/// an epoch after a transient failure and how long it sleeps in between.
/// Exponential with a cap, mirroring the tick-domain policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WallRetryPolicy {
    /// Attempts before the failure is declared terminal (≥ 1).
    pub max_attempts: u32,
    /// Sleep after the first failure, doubling per retry, in milliseconds.
    pub backoff_base_ms: u64,
    /// Ceiling on the exponential backoff, in milliseconds.
    pub backoff_cap_ms: u64,
}

impl Default for WallRetryPolicy {
    fn default() -> Self {
        WallRetryPolicy {
            max_attempts: 3,
            backoff_base_ms: 10,
            backoff_cap_ms: 250,
        }
    }
}

impl WallRetryPolicy {
    /// Backoff after the `attempt`-th failure (1-based):
    /// `base · 2^(attempt−1)` ms, capped.
    pub fn backoff_ms(&self, attempt: u32) -> u64 {
        let shift = attempt.saturating_sub(1).min(32);
        self.backoff_base_ms
            .saturating_mul(1u64 << shift)
            .min(self.backoff_cap_ms)
    }

    /// [`backoff_ms`](WallRetryPolicy::backoff_ms) as a `Duration`.
    pub fn backoff(&self, attempt: u32) -> std::time::Duration {
        std::time::Duration::from_millis(self.backoff_ms(attempt))
    }
}

/// A seeded, virtual-clock-keyed fault plan.
///
/// All rates are probabilities in `[0, 1]` evaluated by stateless hashing;
/// factors are deterministic multipliers applied when the matching rate
/// fires. `Copy + PartialEq` so configs embedding a plan stay `Copy` and
/// comparable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed feeding every injection decision.
    pub seed: u64,
    /// Probability a processed region's actual cost is spiked.
    pub spike_rate: f64,
    /// Multiplier applied to the region's elapsed ticks when a spike fires.
    pub spike_factor: f64,
    /// Probability a region's cost/cardinality estimate is perturbed.
    pub est_rate: f64,
    /// Perturbation magnitude: estimates are multiplied by the factor or
    /// its reciprocal (hash-chosen), modelling both over- and
    /// under-estimation.
    pub est_factor: f64,
    /// Probability one processing *attempt* of a region panics. Verdicts
    /// are per-attempt, so retries can succeed; a rate of 1 forces every
    /// attempt to fail and drives the region into quarantine.
    pub panic_rate: f64,
    /// Probability one ingested record is corrupted (NaN/±Inf value or
    /// duplicated id).
    pub corrupt_rate: f64,
    /// Probability one *admission attempt* of an online session event
    /// panics before any engine state is mutated (a clean retry), or the
    /// admitted query's cardinality estimate is perturbed. Verdicts are
    /// per-attempt, like worker panics.
    pub admit_rate: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

/// SplitMix64 finalizer: a full-avalanche bijection on `u64`.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform `[0, 1)` from the top 53 bits of a hash.
#[inline]
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

impl FaultPlan {
    /// The inert plan: every hook is a strict no-op.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            spike_rate: 0.0,
            spike_factor: 8.0,
            est_rate: 0.0,
            est_factor: 4.0,
            panic_rate: 0.0,
            corrupt_rate: 0.0,
            admit_rate: 0.0,
        }
    }

    /// A plan with the given seed and no faults; combine with the
    /// `with_*` builders.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::none()
        }
    }

    /// Enables cost spikes at `rate` with the given tick multiplier.
    pub fn with_spikes(mut self, rate: f64, factor: f64) -> Self {
        self.spike_rate = rate;
        self.spike_factor = factor;
        self
    }

    /// Enables estimator perturbation at `rate` with the given magnitude.
    pub fn with_estimator_noise(mut self, rate: f64, factor: f64) -> Self {
        self.est_rate = rate;
        self.est_factor = factor;
        self
    }

    /// Enables per-attempt worker panics at `rate`.
    pub fn with_panics(mut self, rate: f64) -> Self {
        self.panic_rate = rate;
        self
    }

    /// Enables per-record ingestion corruption at `rate`.
    pub fn with_corruption(mut self, rate: f64) -> Self {
        self.corrupt_rate = rate;
        self
    }

    /// Enables admission-time faults (online sessions) at `rate`.
    pub fn with_admission_faults(mut self, rate: f64) -> Self {
        self.admit_rate = rate;
        self
    }

    /// Whether any injection point can ever fire.
    pub fn is_active(&self) -> bool {
        self.spike_rate > 0.0
            || self.est_rate > 0.0
            || self.panic_rate > 0.0
            || self.corrupt_rate > 0.0
            || self.admit_rate > 0.0
    }

    /// The plan's decision hash: position-sensitive chaining of the seed,
    /// domain tag and site coordinates through the SplitMix64 finalizer.
    #[inline]
    fn hash(&self, domain: u64, a: u64, b: u64, c: u64) -> u64 {
        let mut h = mix(self.seed ^ 0x9e37_79b9_7f4a_7c15);
        for v in [domain, a, b, c] {
            h = mix(h ^ v.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        }
        h
    }

    #[inline]
    fn coin(h: u64, rate: f64) -> bool {
        if rate <= 0.0 {
            false
        } else if rate >= 1.0 {
            true
        } else {
            unit(h) < rate
        }
    }

    /// Whether processing attempt `attempt` (1-based) of `(group, region)`
    /// is killed by an injected panic.
    pub fn panics(&self, group: u32, region: u32, attempt: u32) -> bool {
        Self::coin(
            self.hash(DOMAIN_PANIC, group as u64, region as u64, attempt as u64),
            self.panic_rate,
        )
    }

    /// The cost-spike multiplier for `(group, region)`, if one fires.
    pub fn cost_spike(&self, group: u32, region: u32) -> Option<f64> {
        if Self::coin(
            self.hash(DOMAIN_SPIKE, group as u64, region as u64, 0),
            self.spike_rate,
        ) {
            Some(self.spike_factor)
        } else {
            None
        }
    }

    /// The estimator perturbation factor for `(group, region)`: `1.0` when
    /// no fault fires, otherwise the plan's factor or its reciprocal.
    pub fn estimator_factor(&self, group: u32, region: u32) -> f64 {
        let h = self.hash(DOMAIN_EST, group as u64, region as u64, 0);
        if Self::coin(h, self.est_rate) {
            if h & (1 << 9) == 0 {
                self.est_factor
            } else {
                1.0 / self.est_factor
            }
        } else {
            1.0
        }
    }

    /// Whether admission attempt `attempt` (1-based) of online session
    /// event `event` is killed by an injected panic. The engine checks this
    /// *before* mutating any state, so a failed admission retries cleanly.
    pub fn admit_panics(&self, event: u64, attempt: u32) -> bool {
        Self::coin(
            self.hash(DOMAIN_ADMIT, event, attempt as u64, 0),
            self.admit_rate,
        )
    }

    /// The cardinality-estimate perturbation for the query admitted by
    /// session event `event`: `1.0` when no fault fires, otherwise the
    /// plan's estimator factor or its reciprocal (hash-chosen). Keyed on a
    /// distinct coordinate from [`FaultPlan::admit_panics`] so the two
    /// verdicts are independent.
    pub fn admit_est_factor(&self, event: u64) -> f64 {
        let h = self.hash(DOMAIN_ADMIT, event, 0, 1);
        if Self::coin(h, self.admit_rate) {
            if h & (1 << 9) == 0 {
                self.est_factor
            } else {
                1.0 / self.est_factor
            }
        } else {
            1.0
        }
    }

    /// Applies ingestion corruption to a table, returning the corrupted
    /// copy. `salt` separates tables sharing a plan (hash the table name).
    ///
    /// Corruption kinds, hash-chosen per hit record: NaN, `+Inf` or `-Inf`
    /// written into one preference attribute, or the record's id replaced
    /// with the id of row 0 (a duplicate). The clean subset of records is
    /// left bit-identical.
    pub fn corrupt_table(&self, table: &Table) -> Table {
        if self.corrupt_rate <= 0.0 || table.is_empty() {
            return table.clone();
        }
        let salt = table.name().bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
        });
        let dims = table.dims();
        let records = table
            .records()
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let h = self.hash(DOMAIN_CORRUPT, salt, i as u64, 0);
                if !Self::coin(h, self.corrupt_rate) {
                    return r.clone();
                }
                let mut rec = r.clone();
                match (h >> 20) % 4 {
                    0 => rec.vals[((h >> 32) as usize) % dims] = f64::NAN,
                    1 => rec.vals[((h >> 32) as usize) % dims] = f64::INFINITY,
                    2 => rec.vals[((h >> 32) as usize) % dims] = f64::NEG_INFINITY,
                    _ => {
                        if i > 0 {
                            rec.id = table.record(0).id;
                        } else {
                            rec.vals[((h >> 32) as usize) % dims] = f64::NAN;
                        }
                    }
                }
                rec
            })
            .collect::<Vec<Record>>();
        Table::new(table.name(), dims, table.join_cols(), records)
    }

    /// Parses a `--faults` spec: comma-separated `key=value` pairs.
    ///
    /// * `seed=<u64>` — decision seed (default 0);
    /// * `spike=<rate>[x<factor>]` — cost spikes (factor default 8);
    /// * `est=<rate>[x<factor>]` — estimator noise (factor default 4);
    /// * `panic=<rate>` — per-attempt worker panics;
    /// * `corrupt=<rate>` — per-record ingestion corruption.
    ///
    /// The empty string or `"none"` yields the inert plan.
    pub fn parse(spec: &str) -> Result<FaultPlan, EngineError> {
        let mut plan = FaultPlan::none();
        let spec = spec.trim();
        if spec.is_empty() || spec == "none" {
            return Ok(plan);
        }
        for part in spec.split(',') {
            let part = part.trim();
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| EngineError::BadFaultSpec {
                    fragment: part.to_string(),
                    reason: "expected key=value".to_string(),
                })?;
            let bad = |reason: &str| EngineError::BadFaultSpec {
                fragment: part.to_string(),
                reason: reason.to_string(),
            };
            let rate_of = |s: &str| -> Result<f64, EngineError> {
                let r: f64 = s.parse().map_err(|_| bad("rate must be a number"))?;
                if !(0.0..=1.0).contains(&r) {
                    return Err(bad("rate must be in [0, 1]"));
                }
                Ok(r)
            };
            let rate_factor = |s: &str, default: f64| -> Result<(f64, f64), EngineError> {
                match s.split_once('x') {
                    Some((r, f)) => {
                        let factor: f64 = f.parse().map_err(|_| bad("factor must be a number"))?;
                        if !(factor.is_finite() && factor > 0.0) {
                            return Err(bad("factor must be finite and positive"));
                        }
                        Ok((rate_of(r)?, factor))
                    }
                    None => Ok((rate_of(s)?, default)),
                }
            };
            match key {
                "seed" => {
                    plan.seed = value.parse().map_err(|_| bad("seed must be a u64"))?;
                }
                "spike" => {
                    (plan.spike_rate, plan.spike_factor) = rate_factor(value, 8.0)?;
                }
                "est" => {
                    (plan.est_rate, plan.est_factor) = rate_factor(value, 4.0)?;
                }
                "panic" => plan.panic_rate = rate_of(value)?,
                "corrupt" => plan.corrupt_rate = rate_of(value)?,
                "admit" => plan.admit_rate = rate_of(value)?,
                _ => return Err(bad("unknown key (seed|spike|est|panic|corrupt|admit)")),
            }
        }
        Ok(plan)
    }

    /// Renders the plan back into a canonical spec string accepted by
    /// [`FaultPlan::parse`].
    pub fn to_spec(&self) -> String {
        if !self.is_active() && self.seed == 0 {
            return "none".to_string();
        }
        let mut parts = vec![format!("seed={}", self.seed)];
        if self.spike_rate > 0.0 {
            parts.push(format!("spike={}x{}", self.spike_rate, self.spike_factor));
        }
        if self.est_rate > 0.0 {
            parts.push(format!("est={}x{}", self.est_rate, self.est_factor));
        }
        if self.panic_rate > 0.0 {
            parts.push(format!("panic={}", self.panic_rate));
        }
        if self.corrupt_rate > 0.0 {
            parts.push(format!("corrupt={}", self.corrupt_rate));
        }
        if self.admit_rate > 0.0 {
            parts.push(format!("admit={}", self.admit_rate));
        }
        parts.join(",")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(n: usize) -> Table {
        let records = (0..n)
            .map(|i| Record::new(i as u64, vec![1.0 + i as f64, 2.0 + i as f64], vec![0]))
            .collect();
        Table::new("R", 2, 1, records)
    }

    #[test]
    fn inert_plan_never_fires() {
        let plan = FaultPlan::none();
        assert!(!plan.is_active());
        for g in 0..4 {
            for r in 0..64 {
                assert!(!plan.panics(g, r, 1));
                assert_eq!(plan.cost_spike(g, r), None);
                assert_eq!(plan.estimator_factor(g, r), 1.0);
            }
        }
        let t = table(16);
        let c = plan.corrupt_table(&t);
        assert_eq!(c.records(), t.records());
    }

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let a = FaultPlan::seeded(42).with_panics(0.5).with_spikes(0.5, 8.0);
        let b = FaultPlan::seeded(43).with_panics(0.5).with_spikes(0.5, 8.0);
        let verdicts_a: Vec<bool> = (0..256).map(|r| a.panics(0, r, 1)).collect();
        let verdicts_a2: Vec<bool> = (0..256).map(|r| a.panics(0, r, 1)).collect();
        let verdicts_b: Vec<bool> = (0..256).map(|r| b.panics(0, r, 1)).collect();
        assert_eq!(verdicts_a, verdicts_a2);
        assert_ne!(verdicts_a, verdicts_b);
        // Roughly half fire at rate 0.5 (loose bound: hash quality check).
        let hits = verdicts_a.iter().filter(|&&v| v).count();
        assert!((64..=192).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn rate_one_always_fires_and_attempts_are_independent() {
        let plan = FaultPlan::seeded(7).with_panics(1.0);
        assert!(plan.panics(0, 0, 1) && plan.panics(3, 9, 4));
        let flaky = FaultPlan::seeded(7).with_panics(0.5);
        let per_attempt: Vec<bool> = (1..=64).map(|k| flaky.panics(0, 0, k)).collect();
        assert!(per_attempt.iter().any(|&v| v));
        assert!(per_attempt.iter().any(|&v| !v));
    }

    #[test]
    fn estimator_noise_goes_both_ways() {
        let plan = FaultPlan::seeded(11).with_estimator_noise(1.0, 4.0);
        let factors: Vec<f64> = (0..64).map(|r| plan.estimator_factor(0, r)).collect();
        assert!(factors.contains(&4.0));
        assert!(factors.contains(&0.25));
    }

    #[test]
    fn corruption_is_deterministic_and_leaves_clean_rows_untouched() {
        // Bit-level record comparison: NaN != NaN under PartialEq, so the
        // determinism check must compare value bit patterns.
        fn bits(r: &Record) -> (u64, Vec<u64>, Vec<u32>) {
            (
                r.id,
                r.vals.iter().map(|v| v.to_bits()).collect(),
                r.keys.clone(),
            )
        }
        let plan = FaultPlan::seeded(5).with_corruption(0.3);
        let t = table(64);
        let c1 = plan.corrupt_table(&t);
        let c2 = plan.corrupt_table(&t);
        for (a, b) in c1.records().iter().zip(c2.records()) {
            assert_eq!(bits(a), bits(b));
        }
        let mut touched = 0;
        for (orig, cor) in t.records().iter().zip(c1.records()) {
            if bits(orig) == bits(cor) {
                continue;
            }
            touched += 1;
            let non_finite = cor.vals.iter().any(|v| !v.is_finite());
            let dup_id = cor.id != orig.id;
            assert!(non_finite || dup_id, "unexpected corruption shape: {cor:?}");
        }
        assert!(touched > 0, "rate 0.3 over 64 rows should hit something");
        assert!(touched < 64);
    }

    #[test]
    fn spec_parsing_round_trips() {
        let plan =
            FaultPlan::parse("seed=42,spike=0.2x8,est=0.3x4,panic=0.1,corrupt=0.05,admit=0.2")
                .expect("valid spec");
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.spike_rate, 0.2);
        assert_eq!(plan.spike_factor, 8.0);
        assert_eq!(plan.est_factor, 4.0);
        assert_eq!(plan.panic_rate, 0.1);
        assert_eq!(plan.admit_rate, 0.2);
        assert_eq!(FaultPlan::parse(&plan.to_spec()).expect("round trip"), plan);
        assert_eq!(FaultPlan::parse("").expect("empty"), FaultPlan::none());
        assert_eq!(FaultPlan::parse("none").expect("none"), FaultPlan::none());
        // Factor defaults apply when omitted.
        let d = FaultPlan::parse("spike=0.5").expect("default factor");
        assert_eq!(d.spike_factor, 8.0);
    }

    #[test]
    fn admission_verdicts_are_deterministic_and_per_attempt() {
        let a = FaultPlan::seeded(7).with_admission_faults(0.5);
        let b = FaultPlan::seeded(7).with_admission_faults(0.5);
        let c = FaultPlan::seeded(8).with_admission_faults(0.5);
        let mut fired = 0;
        let mut diverged = false;
        let mut attempt_varies = false;
        for ev in 0..64u64 {
            assert_eq!(a.admit_panics(ev, 1), b.admit_panics(ev, 1));
            assert_eq!(a.admit_est_factor(ev), b.admit_est_factor(ev));
            if a.admit_panics(ev, 1) != c.admit_panics(ev, 1) {
                diverged = true;
            }
            if a.admit_panics(ev, 1) != a.admit_panics(ev, 2) {
                attempt_varies = true;
            }
            if a.admit_est_factor(ev) != 1.0 {
                fired += 1;
            }
        }
        assert!(diverged, "seed must matter");
        assert!(attempt_varies, "attempt number must matter (clean retries)");
        assert!(fired > 0 && fired < 64, "rate 0.5 should fire sometimes");
        // The inert plan never perturbs admissions.
        let none = FaultPlan::none();
        assert!(!none.admit_panics(3, 1));
        assert_eq!(none.admit_est_factor(3), 1.0);
    }

    #[test]
    fn bad_specs_are_typed_errors() {
        for bad in [
            "spike",
            "spike=nope",
            "spike=1.5",
            "spike=0.5x0",
            "panic=-0.1",
            "unknown=1",
            "seed=abc",
            "admit=2",
        ] {
            match FaultPlan::parse(bad) {
                Err(EngineError::BadFaultSpec { .. }) => {}
                other => panic!("{bad:?} should fail to parse, got {other:?}"),
            }
        }
    }
}
