//! Deterministic observability for the CAQE engine (DESIGN.md §16).
//!
//! Three layers on top of the trace vocabulary:
//!
//! 1. **Metrics registry** ([`MetricsRegistry`]) — counters, gauges and
//!    log2-bucketed histograms keyed by the virtual clock. `BTreeMap`
//!    storage and fixed-order shard merging make every snapshot a pure
//!    function of (workload, config): byte-identical at any `--threads`.
//! 2. **Collection** ([`ObsCollector`], [`ObserverSink`]) — the
//!    contract-SLO monitor (running satisfaction, satisfaction timelines,
//!    deadline-at-risk projection, shed/retry/quarantine/admit/depart
//!    counters) and the phase profiler (per-phase tick and
//!    dominance-charge breakdowns, kernel-dispatch counts, occupancy
//!    gauges) fed either live from a wrapped [`TraceSink`](caqe_trace::TraceSink)
//!    or after the fact from a recorded trace.
//! 3. **Export** — deterministic JSON ([`MetricsRegistry::to_json`]) and
//!    Prometheus text ([`MetricsRegistry::to_prometheus`]) snapshots,
//!    consumed by the `obs_report` dashboard, whose `--reconcile` mode
//!    cross-validates every counter against trace-derived counts.
//!
//! Observability is opt-in per run: when no `ObserverSink` is
//! constructed, the engine's zero-cost `const ENABLED` sink dispatch is
//! untouched, so metrics-off runs are bit-identical to builds without
//! this crate.

// Library code must degrade, not abort (DESIGN.md §13).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod collector;
mod registry;

pub use collector::{names, ObsCollector, ObsConfig, ObserverSink, QueryObs};
pub use registry::{key, Histogram, MetricsRegistry};
