//! The deterministic metrics registry.
//!
//! Three instrument kinds — monotonic [counters](MetricsRegistry::inc),
//! [gauges](MetricsRegistry::set_gauge) and log2-bucketed
//! [histograms](Histogram) — all keyed by `BTreeMap` so every export walks
//! metrics in lexicographic key order. Values derive exclusively from the
//! virtual clock and from `Stats` counters, never from wall time, so two
//! snapshots of the same run are byte-identical at any `--threads` setting.
//!
//! Per-worker shards are plain registries: [`MetricsRegistry::merge`] folds
//! a shard in with counter/histogram addition and last-write-wins gauges,
//! so merging shards in a fixed (chunk-index) order reproduces the serial
//! update sequence exactly.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A log2-bucketed histogram over `u64` observations.
///
/// Bucket `b` covers `[2^(b-1), 2^b - 1]` (bucket 0 holds exact zeros), so
/// observations of virtual-tick durations spread over ~64 buckets with no
/// configuration. Only non-empty buckets are stored, keeping merges and
/// exports proportional to occupancy.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: u64,
    /// Non-empty buckets: bucket index → observation count.
    pub buckets: BTreeMap<u32, u64>,
}

impl Histogram {
    /// The bucket index an observation falls into.
    #[must_use]
    pub fn bucket_of(value: u64) -> u32 {
        u64::BITS - value.leading_zeros()
    }

    /// Inclusive upper bound of bucket `b` (`2^b - 1`; bucket 0 is `{0}`).
    #[must_use]
    pub fn bucket_upper(bucket: u32) -> u64 {
        if bucket >= 64 {
            u64::MAX
        } else {
            (1u64 << bucket) - 1
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        *self.buckets.entry(Self::bucket_of(value)).or_insert(0) += 1;
    }

    /// Adds another histogram into this one (bucket-wise).
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for (b, n) in &other.buckets {
            *self.buckets.entry(*b).or_insert(0) += n;
        }
    }
}

/// Deterministic counter/gauge/histogram store with deterministic exports.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
    /// Non-finite values rejected by [`set_gauge`](Self::set_gauge); the
    /// observability analogue of the JSON writer's non-finite→null drops,
    /// surfaced by `obs_report` whenever it is non-zero.
    dropped_non_finite: u64,
}

/// Builds a metric key `family{k1="v1",k2="v2"}` from label pairs.
///
/// Labels must be passed pre-sorted (they are baked into the key string, so
/// their order is part of metric identity).
#[must_use]
pub fn key(family: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return family.to_string();
    }
    let mut out = String::with_capacity(family.len() + 16 * labels.len());
    out.push_str(family);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        // Metric label values are engine-controlled identifiers; escaping
        // here guards the exposition format, not untrusted input.
        let _ = write!(
            out,
            "{k}=\"{}\"",
            v.replace('\\', "\\\\").replace('"', "\\\"")
        );
    }
    out.push('}');
    out
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `by` to the counter `name` (created at zero).
    pub fn inc(&mut self, name: &str, by: u64) {
        if by == 0 && !self.counters.contains_key(name) {
            // Materialize the key so zero-valued counters still export:
            // reconciliation wants "0 observed" distinct from "not tracked".
            self.counters.insert(name.to_string(), 0);
            return;
        }
        *self.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Sets the gauge `name`. Non-finite values are dropped (counted in
    /// [`dropped_non_finite`](Self::dropped_non_finite)), mirroring the
    /// JSON writer's non-finite→null policy.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        if value.is_finite() {
            self.gauges.insert(name.to_string(), value);
        } else {
            self.dropped_non_finite += 1;
        }
    }

    /// Records one observation into the histogram `name`.
    pub fn observe(&mut self, name: &str, value: u64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .observe(value);
    }

    /// Current value of a counter, if tracked.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Current value of a gauge, if set.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// A histogram by name, if any observation was recorded.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Gauge values rejected for being non-finite.
    #[must_use]
    pub fn dropped_non_finite(&self) -> u64 {
        self.dropped_non_finite
    }

    /// Iterates counters in key order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterates gauges in key order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Folds `other` into this registry: counters and histograms add,
    /// gauges take `other`'s value (last write wins). Merging shards in a
    /// fixed order therefore reproduces the serial update sequence.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
        self.dropped_non_finite += other.dropped_non_finite;
    }

    /// The snapshot as one deterministic JSON object:
    /// `{"counters":{..},"gauges":{..},"histograms":{..},"dropped_non_finite":n}`,
    /// all maps in key order, floats in shortest-roundtrip form.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{v}", json_string(k));
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{}", json_string(k), fmt_f64(*v));
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{}:{{\"count\":{},\"sum\":{},\"buckets\":[",
                json_string(k),
                h.count,
                h.sum
            );
            for (j, (b, n)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{b},{n}]");
            }
            out.push_str("]}");
        }
        let _ = write!(
            out,
            "}},\"dropped_non_finite\":{}}}",
            self.dropped_non_finite
        );
        out
    }

    /// The snapshot in the Prometheus text exposition format.
    ///
    /// Families (the key part before `{`) get one `# TYPE` line each;
    /// histograms expose cumulative `_bucket{le=..}` series plus `_sum` and
    /// `_count`. Output is deterministic: `BTreeMap` order throughout.
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_family = String::new();
        let type_line = |out: &mut String, last: &mut String, key: &str, kind: &str| {
            let family = key.split('{').next().unwrap_or(key);
            if family != last.as_str() {
                let _ = writeln!(out, "# TYPE {family} {kind}");
                last.clear();
                last.push_str(family);
            }
        };
        for (k, v) in &self.counters {
            type_line(&mut out, &mut last_family, k, "counter");
            let _ = writeln!(out, "{k} {v}");
        }
        for (k, v) in &self.gauges {
            type_line(&mut out, &mut last_family, k, "gauge");
            let _ = writeln!(out, "{k} {}", fmt_f64(*v));
        }
        for (k, h) in &self.histograms {
            type_line(&mut out, &mut last_family, k, "histogram");
            let (family, labels) = match k.find('{') {
                Some(i) => (&k[..i], k[i + 1..k.len() - 1].to_string()),
                None => (k.as_str(), String::new()),
            };
            let sep = if labels.is_empty() { "" } else { "," };
            let mut cumulative = 0u64;
            for (b, n) in &h.buckets {
                cumulative += n;
                let _ = writeln!(
                    out,
                    "{family}_bucket{{{labels}{sep}le=\"{}\"}} {cumulative}",
                    Histogram::bucket_upper(*b)
                );
            }
            let _ = writeln!(
                out,
                "{family}_bucket{{{labels}{sep}le=\"+Inf\"}} {}",
                h.count
            );
            if labels.is_empty() {
                let _ = writeln!(out, "{family}_sum {}", h.sum);
                let _ = writeln!(out, "{family}_count {}", h.count);
            } else {
                let _ = writeln!(out, "{family}_sum{{{labels}}} {}", h.sum);
                let _ = writeln!(out, "{family}_count{{{labels}}} {}", h.count);
            }
        }
        let _ = writeln!(
            out,
            "# TYPE caqe_obs_dropped_non_finite counter\ncaqe_obs_dropped_non_finite {}",
            self.dropped_non_finite
        );
        out
    }
}

/// Shortest-roundtrip float rendering; callers guarantee finiteness (gauges
/// reject non-finite values at `set_gauge` time).
fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

/// Minimal JSON string quoting for metric keys (ASCII control, quote,
/// backslash).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        assert_eq!(Histogram::bucket_upper(0), 0);
        assert_eq!(Histogram::bucket_upper(2), 3);
        assert_eq!(Histogram::bucket_upper(64), u64::MAX);
    }

    #[test]
    fn merge_equals_serial_updates() {
        let mut serial = MetricsRegistry::new();
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        let update = |r: &mut MetricsRegistry, i: u64| {
            r.inc("c", i);
            r.observe("h", i);
            r.set_gauge("g", i as f64);
        };
        for i in [1u64, 2, 3, 4] {
            update(&mut serial, i);
        }
        // Shard a takes updates {1, 3}, shard b takes {2, 4}.
        for i in [1u64, 3] {
            update(&mut a, i);
        }
        for i in [2u64, 4] {
            update(&mut b, i);
        }
        // Gauges are last-write-wins, so a-then-b merge order must match
        // the serial order of the *final* writes (b holds write 4).
        let mut merged = MetricsRegistry::new();
        merged.merge(&a);
        merged.merge(&b);
        assert_eq!(merged.counter("c"), serial.counter("c"));
        assert_eq!(merged.gauge("g"), serial.gauge("g"));
        assert_eq!(merged.histogram("h"), serial.histogram("h"));
        assert_eq!(merged.to_json(), serial.to_json());
    }

    #[test]
    fn non_finite_gauges_are_dropped_and_counted() {
        let mut r = MetricsRegistry::new();
        r.set_gauge("ok", 1.5);
        r.set_gauge("bad", f64::NAN);
        r.set_gauge("bad", f64::INFINITY);
        assert_eq!(r.gauge("ok"), Some(1.5));
        assert_eq!(r.gauge("bad"), None);
        assert_eq!(r.dropped_non_finite(), 2);
        assert!(r.to_json().contains("\"dropped_non_finite\":2"));
    }

    #[test]
    fn exports_are_deterministic_and_ordered() {
        let mut r = MetricsRegistry::new();
        r.inc(&key("caqe_spans_total", &[("kind", "region")]), 3);
        r.inc("caqe_decisions_total", 2);
        r.set_gauge("caqe_satisfaction{query=\"0\"}", 0.25);
        r.observe("caqe_span_ticks{kind=\"region\"}", 5);
        r.observe("caqe_span_ticks{kind=\"region\"}", 900);
        let json = r.to_json();
        // Counters sort lexicographically: bare family before labelled.
        assert!(
            json.find("caqe_decisions_total").unwrap() < json.find("caqe_spans_total").unwrap()
        );
        assert_eq!(json, r.clone().to_json());
        let prom = r.to_prometheus();
        assert!(prom.contains("# TYPE caqe_spans_total counter"));
        assert!(prom.contains("caqe_spans_total{kind=\"region\"} 3"));
        assert!(prom.contains("caqe_span_ticks_bucket{kind=\"region\",le=\"7\"} 1"));
        assert!(prom.contains("caqe_span_ticks_bucket{kind=\"region\",le=\"+Inf\"} 2"));
        assert!(prom.contains("caqe_span_ticks_sum{kind=\"region\"} 905"));
    }

    #[test]
    fn zero_inc_materializes_the_key() {
        let mut r = MetricsRegistry::new();
        r.inc("caqe_regions_shed_total", 0);
        assert_eq!(r.counter("caqe_regions_shed_total"), Some(0));
    }
}
