//! Trace-to-metrics collection: the contract-SLO monitor and phase
//! profiler.
//!
//! An [`ObsCollector`] folds [`TraceEvent`]s and end-of-run [`Stats`] into
//! a [`MetricsRegistry`]. Every registry update is a pure function of the
//! event stream, so the collector can either observe live (wrapped around
//! any sink via [`ObserverSink`]) or ingest a recorded trace after the
//! fact — both paths produce byte-identical snapshots, which is what lets
//! `obs_report --reconcile` cross-validate metrics against trace files.
//!
//! The SLO monitor keeps one piece of cross-event state (the per-query
//! at-risk latch used to count transitions); it is always advanced in
//! serial event order, even by the sharded ingest, so snapshots stay
//! bit-identical at any shard count.

use crate::registry::{key, MetricsRegistry};
use caqe_contract::Contract;
use caqe_parallel::{chunk_ranges, map_ordered, Threads};
use caqe_trace::{TraceEvent, TraceSink};
use caqe_types::Stats;

/// Stable metric names, shared by the collector, `obs_report` and tests so
/// reconciliation never drifts from emission.
pub mod names {
    /// Counter: runs observed (one `meta` event each).
    pub const RUNS: &str = "caqe_runs_total";
    /// Gauge: virtual-clock calibration from the run header.
    pub const TICKS_PER_SECOND: &str = "caqe_ticks_per_second";
    /// Counter family: spans, labelled by `kind`.
    pub const SPANS: &str = "caqe_spans_total";
    /// Histogram family: span durations in ticks, labelled by `kind`.
    pub const SPAN_TICKS: &str = "caqe_span_ticks";
    /// Counter: scheduler decisions.
    pub const DECISIONS: &str = "caqe_decisions_total";
    /// Histogram: projected region cost at decision time.
    pub const DECISION_EST_TICKS: &str = "caqe_decision_est_ticks";
    /// Gauge: progressiveness estimate (Eq. 10) at the last decision.
    pub const PROG_EST: &str = "caqe_prog_est";
    /// Gauge: cumulative satisfaction metric (Eq. 8) at the last decision.
    pub const CSM: &str = "caqe_csm";
    /// Counter: emissions (total, plus a per-`query` family).
    pub const EMISSIONS: &str = "caqe_emissions_total";
    /// Histogram family: emission ticks per `query` (the satisfaction
    /// timeline's time axis).
    pub const EMISSION_TICK: &str = "caqe_emission_tick";
    /// Histogram family: running satisfaction per mille per `query` (the
    /// satisfaction timeline's value axis, log2-bucketed).
    pub const SATISFACTION_MILLI: &str = "caqe_satisfaction_milli";
    /// Gauge family: running satisfaction `v(Q_i, t)` per `query`.
    pub const SATISFACTION: &str = "caqe_satisfaction";
    /// Gauge family: 1.0 while the SLO monitor projects the query to miss
    /// its contract budget, else 0.0.
    pub const SLO_AT_RISK: &str = "caqe_slo_at_risk";
    /// Counter: not-at-risk → at-risk transitions (total + per `query`).
    pub const SLO_TRANSITIONS: &str = "caqe_slo_at_risk_transitions_total";
    /// Counter: estimate audits reconciled.
    pub const ESTIMATE_AUDITS: &str = "caqe_estimate_audits_total";
    /// Histogram: `|est_ticks − actual_ticks|` per audited region.
    pub const ESTIMATE_TICK_ERROR: &str = "caqe_estimate_tick_abs_error";
    /// Counter: injected faults (total, plus a per-`kind` family).
    pub const FAULTS: &str = "caqe_faults_total";
    /// Counter: region retry requeues.
    pub const RETRIES: &str = "caqe_region_retries_total";
    /// Counter: regions quarantined.
    pub const QUARANTINES: &str = "caqe_regions_quarantined_total";
    /// Counter: regions shed by the degradation policy.
    pub const SHEDS: &str = "caqe_regions_shed_total";
    /// Counter: session admissions (total, plus a per-`contract` family).
    pub const ADMITS: &str = "caqe_admits_total";
    /// Counter: session departures.
    pub const DEPARTS: &str = "caqe_departs_total";
    /// Counter: regions retired by departures.
    pub const DEPART_REGIONS_RETIRED: &str = "caqe_depart_regions_retired_total";
    /// Counter: ingestion validation audits.
    pub const INGEST_AUDITS: &str = "caqe_ingest_audits_total";
    /// Counter: records quarantined by ingestion validation.
    pub const INGEST_QUARANTINED: &str = "caqe_ingest_quarantined_total";
    /// Counter: non-finite values clamped by ingestion validation.
    pub const INGEST_CLAMPED: &str = "caqe_ingest_clamped_total";
    /// Counter family: phase virtual ticks, labelled by `phase`
    /// (`build`/`probe`/`insert`/`emit`), from end-of-run `Stats`.
    pub const PHASE_TICKS: &str = "caqe_phase_ticks";
    /// Counter family: phase dominance-charge breakdown, labelled by
    /// `phase` (`build`/`insert`/`emit`).
    pub const PHASE_DOM_CMPS: &str = "caqe_phase_dom_cmps";
    /// Counter family: kernel dispatch decisions, labelled by `path`
    /// (`block`/`scalar`).
    pub const KERNEL_DISPATCH: &str = "caqe_kernel_dispatch_total";
    /// Counter family: signature prune-layer events, labelled by `kind`
    /// (`partitions_skipped`/`partitions_rejected`/`sig_builds`/
    /// `cache_hits`/`cache_misses`), from end-of-run `Stats`.
    pub const PRUNE_EVENTS: &str = "caqe_prune_events_total";
    /// Gauge: tuples resident in group arenas (join-history occupancy).
    pub const ARENA_OCCUPANCY: &str = "caqe_arena_occupancy";
    /// Gauge: points interned into shared-plan stores.
    pub const PLAN_INTERNED_OCCUPANCY: &str = "caqe_plan_interned_occupancy";
    /// Prefix for raw end-of-run `Stats` counters
    /// (`caqe_stats_<field>`; per-query emissions carry a `query` label).
    pub const STATS_PREFIX: &str = "caqe_stats_";
    /// Counter: submissions accepted by the serving layer.
    pub const SERVE_SUBMITS: &str = "caqe_serve_submits_total";
    /// Counter: submissions rejected (total, plus a per-`reason` family).
    pub const SERVE_REJECTS: &str = "caqe_serve_rejects_total";
    /// Gauge: current admission-queue depth.
    pub const SERVE_QUEUE_DEPTH: &str = "caqe_serve_queue_depth";
    /// Gauge: high-water admission-queue depth.
    pub const SERVE_QUEUE_DEPTH_PEAK: &str = "caqe_serve_queue_depth_peak";
    /// Counter: serving epochs (deterministic engine runs) completed.
    pub const SERVE_EPOCHS: &str = "caqe_serve_epochs_total";
    /// Counter: epoch retries after transient failures or caught panics.
    pub const SERVE_EPOCH_RETRIES: &str = "caqe_serve_epoch_retries_total";
    /// Counter: snapshots written on graceful shutdown.
    pub const SERVE_SNAPSHOTS: &str = "caqe_serve_snapshots_total";
    /// Counter: restores from a snapshot.
    pub const SERVE_RESTORES: &str = "caqe_serve_restores_total";
    /// Counter: graceful shutdowns drained.
    pub const SERVE_SHUTDOWNS: &str = "caqe_serve_shutdowns_total";
    /// Counter: sessions expired by the wall-clock deadline watchdog.
    pub const SERVE_DEADLINE_EXPIRED: &str = "caqe_serve_deadline_expired_total";
    /// Counter family: sessions by terminal `state`
    /// (`done`/`failed`/`cancelled`/`expired`).
    pub const SERVE_SESSIONS: &str = "caqe_serve_sessions_total";
    /// Gauge: wall-clock milliseconds of the last snapshot restore.
    pub const SERVE_RECOVERY_MS: &str = "caqe_serve_recovery_ms";
    /// Gauge: mean final satisfaction over completed sessions.
    pub const SERVE_MEAN_SATISFACTION: &str = "caqe_serve_mean_satisfaction";
}

/// What the SLO monitor knows about one query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryObs {
    /// Display label (contract class, e.g. `"C1"`).
    pub label: String,
    /// Contract budget in virtual ticks, when the contract class implies
    /// one ([`ObsConfig::contract_budget_ticks`]); `None` disables the
    /// at-risk projection for the query.
    pub budget_ticks: Option<u64>,
    /// Running-satisfaction level the query is expected to hold.
    pub sat_target: f64,
}

/// Static configuration of the SLO monitor: one entry per query slot.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObsConfig {
    /// Per-query monitoring specs, indexed by query id.
    pub queries: Vec<QueryObs>,
}

impl ObsConfig {
    /// Derives monitor specs from the workload's contracts.
    ///
    /// `ticks_per_second` calibrates time budgets (use the engine's
    /// `CostModel` value); `sat_target` is the satisfaction floor to hold
    /// every query to (the degradation policy's floor is the natural
    /// choice).
    #[must_use]
    pub fn from_contracts(contracts: &[Contract], ticks_per_second: f64, sat_target: f64) -> Self {
        ObsConfig {
            queries: contracts
                .iter()
                .map(|c| QueryObs {
                    label: c.label().to_string(),
                    budget_ticks: Self::contract_budget_ticks(c, ticks_per_second),
                    sat_target,
                })
                .collect(),
        }
    }

    /// The virtual-tick budget a contract implies, if any.
    ///
    /// Time contracts convert their deadline; quota contracts convert the
    /// time by which the full result set is due (`interval / frac`);
    /// parameter-free decay contracts (C2) have no budget. [`Contract::Product`]
    /// takes the tighter of its factors.
    #[must_use]
    pub fn contract_budget_ticks(contract: &Contract, ticks_per_second: f64) -> Option<u64> {
        let secs_to_ticks = |s: f64| {
            let t = s * ticks_per_second;
            if t.is_finite() && t >= 0.0 {
                Some(t.ceil() as u64)
            } else {
                None
            }
        };
        match contract {
            Contract::Deadline { t_hard } => secs_to_ticks(*t_hard),
            Contract::SoftDeadline { t_soft } => secs_to_ticks(*t_soft),
            Contract::Quota { frac, interval } | Contract::Hybrid { frac, interval } => {
                secs_to_ticks(interval * (1.0 / frac.max(1e-9)).ceil())
            }
            Contract::Piecewise { steps, .. } => {
                steps.last().and_then(|(end, _)| secs_to_ticks(*end))
            }
            Contract::Product(a, b) => {
                let ba = Self::contract_budget_ticks(a, ticks_per_second);
                let bb = Self::contract_budget_ticks(b, ticks_per_second);
                match (ba, bb) {
                    (Some(x), Some(y)) => Some(x.min(y)),
                    (x, y) => x.or(y),
                }
            }
            Contract::LogDecay => None,
        }
    }
}

/// Folds trace events and run stats into a [`MetricsRegistry`].
#[derive(Debug, Clone, Default)]
pub struct ObsCollector {
    cfg: ObsConfig,
    reg: MetricsRegistry,
    /// Per-query at-risk latch (serial SLO state; see module docs).
    at_risk: Vec<bool>,
}

impl ObsCollector {
    /// A collector with the given SLO configuration.
    #[must_use]
    pub fn new(cfg: ObsConfig) -> Self {
        ObsCollector {
            cfg,
            reg: MetricsRegistry::new(),
            at_risk: Vec::new(),
        }
    }

    /// The accumulated registry.
    #[must_use]
    pub fn registry(&self) -> &MetricsRegistry {
        &self.reg
    }

    /// Consumes the collector, returning the registry.
    #[must_use]
    pub fn into_registry(self) -> MetricsRegistry {
        self.reg
    }

    /// Observes one event (the live-streaming path).
    pub fn on_event(&mut self, ev: &TraceEvent) {
        registry_update(&mut self.reg, ev);
        self.slo_update(ev);
    }

    /// Ingests a recorded event stream serially.
    pub fn ingest_events(&mut self, events: &[TraceEvent]) {
        for ev in events {
            self.on_event(ev);
        }
    }

    /// Ingests a recorded event stream with sharded registry building.
    ///
    /// Events are split into contiguous chunks; each chunk folds into its
    /// own registry shard in parallel, and shards merge back in chunk
    /// order (counter/histogram addition is order-free, gauges are
    /// last-write-wins, so in-order merging reproduces the serial update
    /// sequence). The stateful SLO pass then runs serially over the full
    /// stream — it only touches emission events, so the shardable bulk of
    /// the fold is the per-event registry arithmetic. Snapshots are
    /// byte-identical to [`ingest_events`] at any `threads` value.
    pub fn ingest_events_sharded(&mut self, events: &[TraceEvent], threads: Threads) {
        let ranges = chunk_ranges(threads, events.len(), 256);
        if ranges.len() <= 1 {
            self.ingest_events(events);
            return;
        }
        let shards = map_ordered(threads, ranges, |_, (start, end)| {
            let mut shard = MetricsRegistry::new();
            for ev in &events[start..end] {
                registry_update(&mut shard, ev);
            }
            shard
        });
        for shard in &shards {
            self.reg.merge(shard);
        }
        for ev in events {
            self.slo_update(ev);
        }
    }

    /// Ingests end-of-run [`Stats`]: raw counters under
    /// `caqe_stats_<field>`, the phase-profile families, kernel-dispatch
    /// counts and occupancy gauges.
    pub fn ingest_stats(&mut self, stats: &Stats) {
        let fields: [(&str, u64); 30] = [
            ("join_probes", stats.join_probes),
            ("join_results", stats.join_results),
            ("dom_comparisons", stats.dom_comparisons),
            ("region_comparisons", stats.region_comparisons),
            ("map_evals", stats.map_evals),
            ("tuples_emitted", stats.tuples_emitted),
            ("regions_processed", stats.regions_processed),
            ("regions_pruned", stats.regions_pruned),
            ("tuples_discarded", stats.tuples_discarded),
            ("region_retries", stats.region_retries),
            ("regions_quarantined", stats.regions_quarantined),
            ("regions_shed", stats.regions_shed),
            ("ingest_quarantined", stats.ingest_quarantined),
            ("ingest_clamped", stats.ingest_clamped),
            ("build_ticks", stats.build_ticks),
            ("probe_ticks", stats.probe_ticks),
            ("insert_ticks", stats.insert_ticks),
            ("emit_ticks", stats.emit_ticks),
            ("build_dom_cmps", stats.build_dom_cmps),
            ("insert_dom_cmps", stats.insert_dom_cmps),
            ("emit_region_cmps", stats.emit_region_cmps),
            ("block_kernel_ops", stats.block_kernel_ops),
            ("scalar_kernel_ops", stats.scalar_kernel_ops),
            ("sig_partitions_skipped", stats.sig_partitions_skipped),
            ("sig_partitions_rejected", stats.sig_partitions_rejected),
            ("sig_builds", stats.sig_builds),
            ("presort_cache_hits", stats.presort_cache_hits),
            ("presort_cache_misses", stats.presort_cache_misses),
            ("arena_tuples", stats.arena_tuples),
            ("plan_points_interned", stats.plan_points_interned),
        ];
        for (name, v) in fields {
            self.reg.inc(&format!("{}{name}", names::STATS_PREFIX), v);
        }
        for (phase, ticks) in [
            ("build", stats.build_ticks),
            ("probe", stats.probe_ticks),
            ("insert", stats.insert_ticks),
            ("emit", stats.emit_ticks),
        ] {
            self.reg
                .inc(&key(names::PHASE_TICKS, &[("phase", phase)]), ticks);
        }
        for (phase, cmps) in [
            ("build", stats.build_dom_cmps),
            ("insert", stats.insert_dom_cmps),
            ("emit", stats.emit_region_cmps),
        ] {
            self.reg
                .inc(&key(names::PHASE_DOM_CMPS, &[("phase", phase)]), cmps);
        }
        for (path, n) in [
            ("block", stats.block_kernel_ops),
            ("scalar", stats.scalar_kernel_ops),
        ] {
            self.reg
                .inc(&key(names::KERNEL_DISPATCH, &[("path", path)]), n);
        }
        for (kind, n) in [
            ("partitions_skipped", stats.sig_partitions_skipped),
            ("partitions_rejected", stats.sig_partitions_rejected),
            ("sig_builds", stats.sig_builds),
            ("cache_hits", stats.presort_cache_hits),
            ("cache_misses", stats.presort_cache_misses),
        ] {
            self.reg
                .inc(&key(names::PRUNE_EVENTS, &[("kind", kind)]), n);
        }
        self.reg
            .set_gauge(names::ARENA_OCCUPANCY, stats.arena_tuples as f64);
        self.reg.set_gauge(
            names::PLAN_INTERNED_OCCUPANCY,
            stats.plan_points_interned as f64,
        );
        for (q, pq) in stats.per_query.iter().enumerate() {
            let label = q.to_string();
            self.reg.inc(
                &key("caqe_stats_tuples_emitted", &[("query", &label)]),
                pq.tuples_emitted,
            );
        }
    }

    /// The registry snapshot as deterministic JSON.
    #[must_use]
    pub fn snapshot_json(&self) -> String {
        self.reg.to_json()
    }

    /// The registry snapshot in Prometheus text format.
    #[must_use]
    pub fn snapshot_prometheus(&self) -> String {
        self.reg.to_prometheus()
    }

    /// The deadline-at-risk detector (serial state machine).
    ///
    /// At an emission for query `q` at tick `t` with running satisfaction
    /// `v < target`, the monitor projects the tick at which the
    /// satisfaction trajectory would reach the target if it kept its
    /// current average slope (`t · target / v`); the query is *at risk*
    /// when that projection overshoots the contract's tick budget. The
    /// latch counts rising edges so flapping queries are visible.
    fn slo_update(&mut self, ev: &TraceEvent) {
        let TraceEvent::Emission {
            tick,
            query,
            satisfaction,
            ..
        } = ev
        else {
            return;
        };
        let qi = *query as usize;
        let Some(spec) = self.cfg.queries.get(qi) else {
            return;
        };
        let Some(budget) = spec.budget_ticks else {
            return;
        };
        let risk = if *satisfaction >= spec.sat_target {
            false
        } else {
            let projected = (*tick as f64) * (spec.sat_target / satisfaction.max(1e-9));
            projected > budget as f64
        };
        if qi >= self.at_risk.len() {
            self.at_risk.resize(qi + 1, false);
        }
        let label = qi.to_string();
        self.reg.set_gauge(
            &key(names::SLO_AT_RISK, &[("query", &label)]),
            if risk { 1.0 } else { 0.0 },
        );
        if risk && !self.at_risk[qi] {
            self.reg.inc(names::SLO_TRANSITIONS, 1);
            self.reg
                .inc(&key(names::SLO_TRANSITIONS, &[("query", &label)]), 1);
        }
        self.at_risk[qi] = risk;
    }
}

/// The stateless per-event registry arithmetic, shared by the streaming
/// and sharded ingest paths (their equivalence is what makes sharding
/// safe).
fn registry_update(reg: &mut MetricsRegistry, ev: &TraceEvent) {
    match ev {
        TraceEvent::Meta {
            ticks_per_second, ..
        } => {
            reg.inc(names::RUNS, 1);
            reg.set_gauge(names::TICKS_PER_SECOND, *ticks_per_second);
        }
        TraceEvent::Span {
            kind,
            start_tick,
            end_tick,
            ..
        } => {
            let labels = [("kind", kind.name())];
            reg.inc(&key(names::SPANS, &labels), 1);
            reg.observe(
                &key(names::SPAN_TICKS, &labels),
                end_tick.saturating_sub(*start_tick),
            );
        }
        TraceEvent::Decision {
            prog_est,
            csm,
            est_ticks,
            ..
        } => {
            reg.inc(names::DECISIONS, 1);
            reg.observe(names::DECISION_EST_TICKS, *est_ticks);
            reg.set_gauge(names::PROG_EST, *prog_est);
            reg.set_gauge(names::CSM, *csm);
        }
        TraceEvent::Emission {
            tick,
            query,
            satisfaction,
            ..
        } => {
            let label = (*query as usize).to_string();
            let labels = [("query", label.as_str())];
            reg.inc(names::EMISSIONS, 1);
            reg.inc(&key(names::EMISSIONS, &labels), 1);
            reg.observe(&key(names::EMISSION_TICK, &labels), *tick);
            reg.observe(
                &key(names::SATISFACTION_MILLI, &labels),
                (satisfaction.clamp(0.0, 1.0) * 1000.0).round() as u64,
            );
            reg.set_gauge(&key(names::SATISFACTION, &labels), *satisfaction);
        }
        TraceEvent::EstimateAudit { estimate, .. } => {
            reg.inc(names::ESTIMATE_AUDITS, 1);
            reg.observe(
                names::ESTIMATE_TICK_ERROR,
                estimate.est_ticks.abs_diff(estimate.actual_ticks),
            );
        }
        TraceEvent::FaultInjected { kind, .. } => {
            reg.inc(names::FAULTS, 1);
            reg.inc(&key(names::FAULTS, &[("kind", kind)]), 1);
        }
        TraceEvent::RegionRetry { .. } => reg.inc(names::RETRIES, 1),
        TraceEvent::RegionQuarantined { .. } => reg.inc(names::QUARANTINES, 1),
        TraceEvent::RegionShed { .. } => reg.inc(names::SHEDS, 1),
        TraceEvent::Admit { contract, .. } => {
            reg.inc(names::ADMITS, 1);
            reg.inc(&key(names::ADMITS, &[("contract", contract)]), 1);
        }
        TraceEvent::Depart {
            regions_retired, ..
        } => {
            reg.inc(names::DEPARTS, 1);
            reg.inc(names::DEPART_REGIONS_RETIRED, u64::from(*regions_retired));
        }
        TraceEvent::AdmissionReject { reason, depth, .. } => {
            reg.inc(names::SERVE_REJECTS, 1);
            reg.inc(&key(names::SERVE_REJECTS, &[("reason", reason)]), 1);
            reg.set_gauge(names::SERVE_QUEUE_DEPTH, f64::from(*depth));
        }
        TraceEvent::ServerShutdown { queued, .. } => {
            reg.inc(names::SERVE_SHUTDOWNS, 1);
            reg.inc(names::SERVE_SNAPSHOTS, 1);
            reg.set_gauge(names::SERVE_QUEUE_DEPTH, f64::from(*queued));
        }
        TraceEvent::ServerRestore { queued, .. } => {
            reg.inc(names::SERVE_RESTORES, 1);
            reg.set_gauge(names::SERVE_QUEUE_DEPTH, f64::from(*queued));
        }
        TraceEvent::IngestAudit {
            quarantined,
            clamped,
            ..
        } => {
            reg.inc(names::INGEST_AUDITS, 1);
            reg.inc(names::INGEST_QUARANTINED, *quarantined);
            reg.inc(names::INGEST_CLAMPED, *clamped);
        }
    }
}

/// A [`TraceSink`] adapter that feeds an [`ObsCollector`] and forwards
/// every event to the wrapped sink unchanged.
///
/// `ENABLED` is `true` so the engine emits events for the collector even
/// when the inner sink is a [`NoopSink`](caqe_trace::NoopSink); forwarding
/// is gated on the inner sink's own flag, so wrapping never changes what
/// the inner sink records. Metrics *off* means not constructing an
/// `ObserverSink` at all — the no-op path stays zero-overhead.
#[derive(Debug, Default)]
pub struct ObserverSink<S> {
    /// The wrapped sink (borrow after the run via [`Self::into_parts`]).
    pub inner: S,
    /// The live collector.
    pub collector: ObsCollector,
}

impl<S: TraceSink> ObserverSink<S> {
    /// Wraps `inner`, observing with a collector configured by `cfg`.
    pub fn new(cfg: ObsConfig, inner: S) -> Self {
        ObserverSink {
            inner,
            collector: ObsCollector::new(cfg),
        }
    }

    /// Splits back into the wrapped sink and the collector.
    pub fn into_parts(self) -> (S, ObsCollector) {
        (self.inner, self.collector)
    }
}

impl<S: TraceSink> TraceSink for ObserverSink<S> {
    const ENABLED: bool = true;

    fn record(&mut self, ev: TraceEvent) {
        self.collector.on_event(&ev);
        if S::ENABLED {
            self.inner.record(ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caqe_trace::{NoopSink, RecordingSink, SpanKind};

    fn sample_events() -> Vec<TraceEvent> {
        let mut evs = vec![TraceEvent::Meta {
            strategy: "caqe".into(),
            queries: 2,
            ticks_per_second: 1.0e6,
            start_tick: 0,
        }];
        for i in 0..600u64 {
            evs.push(TraceEvent::Span {
                kind: SpanKind::Region,
                group: Some(0),
                region: Some(i as u32),
                start_tick: i * 10,
                end_tick: i * 10 + 7,
            });
            evs.push(TraceEvent::Emission {
                tick: i * 10 + 7,
                query: (i % 2) as u16,
                seq: i / 2 + 1,
                rid: i as u32,
                tid: i,
                utility: 0.5,
                satisfaction: 0.5 + 0.4 * ((i % 3) as f64 - 1.0) / 10.0,
            });
        }
        evs.push(TraceEvent::RegionShed {
            tick: 6000,
            group: 0,
            region: 99,
            satisfaction: 0.4,
        });
        evs
    }

    fn monitor_cfg() -> ObsConfig {
        ObsConfig::from_contracts(
            &[Contract::Deadline { t_hard: 0.001 }, Contract::LogDecay],
            1.0e6,
            0.9,
        )
    }

    #[test]
    fn serving_events_count_into_serve_metrics() {
        let mut c = ObsCollector::new(ObsConfig::default());
        c.ingest_events(&[
            TraceEvent::AdmissionReject {
                tick: 1,
                session: 4,
                reason: "full",
                depth: 8,
                bound: 8,
            },
            TraceEvent::AdmissionReject {
                tick: 2,
                session: 5,
                reason: "shed",
                depth: 3,
                bound: 8,
            },
            TraceEvent::ServerShutdown {
                tick: 9,
                queued: 2,
                drained: 6,
                snapshot_version: 1,
            },
            TraceEvent::ServerRestore {
                tick: 0,
                snapshot_version: 1,
                queued: 2,
                completed: 6,
            },
        ]);
        let reg = c.registry();
        assert_eq!(reg.counter(names::SERVE_REJECTS), Some(2));
        assert_eq!(
            reg.counter(&key(names::SERVE_REJECTS, &[("reason", "full")])),
            Some(1)
        );
        assert_eq!(
            reg.counter(&key(names::SERVE_REJECTS, &[("reason", "shed")])),
            Some(1)
        );
        assert_eq!(reg.counter(names::SERVE_SHUTDOWNS), Some(1));
        assert_eq!(reg.counter(names::SERVE_SNAPSHOTS), Some(1));
        assert_eq!(reg.counter(names::SERVE_RESTORES), Some(1));
        assert_eq!(reg.gauge(names::SERVE_QUEUE_DEPTH), Some(2.0));
    }

    #[test]
    fn sharded_ingest_matches_serial_at_any_shard_count() {
        let evs = sample_events();
        let mut serial = ObsCollector::new(monitor_cfg());
        serial.ingest_events(&evs);
        for threads in [1, 2, 4, 8] {
            let mut sharded = ObsCollector::new(monitor_cfg());
            sharded.ingest_events_sharded(&evs, Threads::exact(threads));
            assert_eq!(
                sharded.snapshot_json(),
                serial.snapshot_json(),
                "shard count {threads} diverged"
            );
        }
    }

    #[test]
    fn observer_sink_is_transparent_to_the_inner_sink() {
        let evs = sample_events();
        let mut plain = RecordingSink::new();
        for ev in &evs {
            plain.record(ev.clone());
        }
        let mut observed = ObserverSink::new(monitor_cfg(), RecordingSink::new());
        for ev in &evs {
            observed.record(ev.clone());
        }
        let (inner, collector) = observed.into_parts();
        assert_eq!(inner.events(), plain.events());
        // And the live collector matches an after-the-fact ingest.
        let mut replay = ObsCollector::new(monitor_cfg());
        replay.ingest_events(&evs);
        assert_eq!(collector.snapshot_json(), replay.snapshot_json());
    }

    #[test]
    fn observer_over_noop_still_collects() {
        // The wrapper must stay enabled even over a disabled inner sink —
        // a compile-time fact, checked as one.
        const _: () = assert!(<ObserverSink<NoopSink> as TraceSink>::ENABLED);
        let mut observed = ObserverSink::new(monitor_cfg(), NoopSink);
        for ev in sample_events() {
            observed.record(ev);
        }
        let (_, collector) = observed.into_parts();
        assert_eq!(
            collector.registry().counter(names::EMISSIONS),
            Some(600),
            "collector must see events even when the inner sink is no-op"
        );
    }

    #[test]
    fn event_counters_match_event_counts() {
        let evs = sample_events();
        let mut c = ObsCollector::new(monitor_cfg());
        c.ingest_events(&evs);
        let reg = c.registry();
        assert_eq!(reg.counter(names::RUNS), Some(1));
        assert_eq!(reg.counter(names::EMISSIONS), Some(600));
        assert_eq!(
            reg.counter(&key(names::EMISSIONS, &[("query", "0")])),
            Some(300)
        );
        assert_eq!(
            reg.counter(&key(names::SPANS, &[("kind", "region")])),
            Some(600)
        );
        assert_eq!(reg.counter(names::SHEDS), Some(1));
        assert_eq!(reg.gauge(names::TICKS_PER_SECOND), Some(1.0e6));
    }

    #[test]
    fn at_risk_latch_counts_rising_edges() {
        // Query 0: 1 ms budget = 1000 ticks at 1e6 ticks/s; target 0.9.
        let cfg = monitor_cfg();
        assert_eq!(cfg.queries[0].budget_ticks, Some(1000));
        assert_eq!(cfg.queries[1].budget_ticks, None);
        let mut c = ObsCollector::new(cfg);
        let emit = |tick: u64, sat: f64| TraceEvent::Emission {
            tick,
            query: 0,
            seq: 1,
            rid: 0,
            tid: 0,
            utility: sat,
            satisfaction: sat,
        };
        // Healthy: satisfied, or early enough that the projection fits.
        c.on_event(&emit(100, 0.95));
        c.on_event(&emit(200, 0.45)); // projects 200·2 = 400 ≤ 1000
        assert_eq!(
            c.registry()
                .gauge(&key(names::SLO_AT_RISK, &[("query", "0")])),
            Some(0.0)
        );
        // Slipping: at tick 800 with v = 0.45 the projection (1600) busts
        // the 1000-tick budget.
        c.on_event(&emit(800, 0.45));
        assert_eq!(
            c.registry()
                .gauge(&key(names::SLO_AT_RISK, &[("query", "0")])),
            Some(1.0)
        );
        // Recovery clears the gauge; a second slip is a second edge.
        c.on_event(&emit(900, 0.95));
        c.on_event(&emit(950, 0.1));
        assert_eq!(c.registry().counter(names::SLO_TRANSITIONS), Some(2));
        // The budget-less LogDecay query never trips the detector.
        c.on_event(&TraceEvent::Emission {
            tick: 5000,
            query: 1,
            seq: 1,
            rid: 0,
            tid: 0,
            utility: 0.0,
            satisfaction: 0.0,
        });
        assert_eq!(
            c.registry()
                .gauge(&key(names::SLO_AT_RISK, &[("query", "1")])),
            None
        );
    }

    #[test]
    fn stats_ingest_exposes_phase_profile() {
        let mut stats = Stats::new();
        stats.build_ticks = 10;
        stats.probe_ticks = 20;
        stats.insert_ticks = 30;
        stats.emit_ticks = 40;
        stats.build_dom_cmps = 5;
        stats.insert_dom_cmps = 6;
        stats.emit_region_cmps = 7;
        stats.block_kernel_ops = 8;
        stats.scalar_kernel_ops = 9;
        stats.sig_partitions_skipped = 11;
        stats.sig_partitions_rejected = 12;
        stats.sig_builds = 13;
        stats.presort_cache_hits = 14;
        stats.presort_cache_misses = 15;
        stats.arena_tuples = 1000;
        stats.plan_points_interned = 50;
        stats.ensure_queries(2);
        stats.per_query[1].tuples_emitted = 4;
        let mut c = ObsCollector::new(ObsConfig::default());
        c.ingest_stats(&stats);
        let reg = c.registry();
        assert_eq!(
            reg.counter(&key(names::PHASE_TICKS, &[("phase", "insert")])),
            Some(30)
        );
        assert_eq!(
            reg.counter(&key(names::PHASE_DOM_CMPS, &[("phase", "emit")])),
            Some(7)
        );
        assert_eq!(
            reg.counter(&key(names::KERNEL_DISPATCH, &[("path", "block")])),
            Some(8)
        );
        assert_eq!(reg.gauge(names::ARENA_OCCUPANCY), Some(1000.0));
        assert_eq!(
            reg.counter(&key(names::PRUNE_EVENTS, &[("kind", "partitions_skipped")])),
            Some(11)
        );
        assert_eq!(
            reg.counter(&key(names::PRUNE_EVENTS, &[("kind", "cache_misses")])),
            Some(15)
        );
        assert_eq!(reg.counter("caqe_stats_sig_builds"), Some(13));
        assert_eq!(reg.counter("caqe_stats_probe_ticks"), Some(20));
        assert_eq!(
            reg.counter(&key("caqe_stats_tuples_emitted", &[("query", "1")])),
            Some(4)
        );
        // Zero-valued fields still materialize for reconciliation.
        assert_eq!(reg.counter("caqe_stats_regions_shed"), Some(0));
    }

    #[test]
    fn contract_budgets() {
        let tps = 1.0e6;
        assert_eq!(
            ObsConfig::contract_budget_ticks(&Contract::Deadline { t_hard: 2.0 }, tps),
            Some(2_000_000)
        );
        assert_eq!(
            ObsConfig::contract_budget_ticks(&Contract::LogDecay, tps),
            None
        );
        assert_eq!(
            ObsConfig::contract_budget_ticks(
                &Contract::Quota {
                    frac: 0.1,
                    interval: 0.5
                },
                tps
            ),
            Some(5_000_000)
        );
        assert_eq!(
            ObsConfig::contract_budget_ticks(
                &Contract::Product(
                    Box::new(Contract::Deadline { t_hard: 1.0 }),
                    Box::new(Contract::SoftDeadline { t_soft: 0.25 })
                ),
                tps
            ),
            Some(250_000)
        );
    }
}
