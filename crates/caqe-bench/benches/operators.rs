//! Micro-benchmarks for the single-query operators: skyline algorithms over
//! the three canonical distributions, joins, and quad-tree partitioning.

use caqe_data::{Distribution, TableGenerator};
use caqe_operators::{
    hash_join_project, nested_loop_join_project, skyline_bnl, skyline_sfs, JoinSpec, MappingSet,
};
use caqe_partition::{Partitioning, QuadTreeConfig};
use caqe_types::{DimMask, SimClock, Stats};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn points(n: usize, d: usize, dist: Distribution) -> Vec<Vec<f64>> {
    TableGenerator::new(n, d, dist)
        .generate("B")
        .records()
        .iter()
        .map(|r| r.vals.clone())
        .collect()
}

fn bench_skylines(c: &mut Criterion) {
    let mut group = c.benchmark_group("skyline");
    for dist in Distribution::ALL {
        let pts = points(2000, 4, dist);
        let mask = DimMask::full(4);
        group.bench_with_input(BenchmarkId::new("bnl", dist.label()), &pts, |b, pts| {
            b.iter(|| {
                let mut clock = SimClock::default();
                let mut stats = Stats::new();
                black_box(skyline_bnl(pts, mask, &mut clock, &mut stats))
            })
        });
        group.bench_with_input(BenchmarkId::new("sfs", dist.label()), &pts, |b, pts| {
            b.iter(|| {
                let mut clock = SimClock::default();
                let mut stats = Stats::new();
                black_box(skyline_sfs(pts, mask, &mut clock, &mut stats))
            })
        });
    }
    group.finish();
}

fn bench_joins(c: &mut Criterion) {
    let gen = TableGenerator::new(1000, 2, Distribution::Independent).with_selectivities(&[0.02]);
    let r = gen.generate("R");
    let t = gen.generate("T");
    let mapping = MappingSet::mixed(2, 2, 4);
    let mut group = c.benchmark_group("join");
    group.bench_function("hash", |b| {
        b.iter(|| {
            let mut clock = SimClock::default();
            let mut stats = Stats::new();
            black_box(hash_join_project(
                r.records(),
                t.records(),
                JoinSpec::on_column(0),
                &mapping,
                &mut clock,
                &mut stats,
            ))
        })
    });
    group.bench_function("nested_loop", |b| {
        b.iter(|| {
            let mut clock = SimClock::default();
            let mut stats = Stats::new();
            black_box(nested_loop_join_project(
                r.records(),
                t.records(),
                JoinSpec::on_column(0),
                &mapping,
                &mut clock,
                &mut stats,
            ))
        })
    });
    group.finish();
}

fn bench_partitioning(c: &mut Criterion) {
    let t = TableGenerator::new(10_000, 3, Distribution::Independent).generate("R");
    let mut group = c.benchmark_group("quadtree");
    for cells in [16usize, 64, 256] {
        group.bench_with_input(BenchmarkId::new("budget", cells), &cells, |b, &cells| {
            b.iter(|| {
                black_box(Partitioning::build(
                    &t,
                    QuadTreeConfig::with_cell_budget(cells),
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_skylines, bench_joins, bench_partitioning);
criterion_main!(benches);
