//! Micro-benchmarks for the shared-plan machinery: min-max cuboid
//! construction, shared skyline insertion (with and without the Theorem 1
//! shortcut), and region construction with the coarse skyline.

use caqe_cuboid::{MinMaxCuboid, SharedSkylinePlan};
use caqe_data::{Distribution, TableGenerator};
use caqe_operators::MappingSet;
use caqe_partition::{Partitioning, QuadTreeConfig};
use caqe_regions::{build_regions, DependencyGraph, RegionBuildInput};
use caqe_types::{DimMask, QueryId, SimClock, Stats};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn workload_prefs() -> Vec<DimMask> {
    vec![
        DimMask::from_dims([0, 1]),
        DimMask::from_dims([1, 2, 3]),
        DimMask::from_dims([0, 1, 2, 3, 4]),
        DimMask::from_dims([2, 3]),
        DimMask::from_dims([0, 2, 4]),
        DimMask::from_dims([1, 2, 3, 4]),
        DimMask::from_dims([3, 4]),
        DimMask::from_dims([0, 1, 2]),
        DimMask::from_dims([0, 1, 3, 4]),
        DimMask::from_dims([1, 4]),
        DimMask::from_dims([2, 3, 4]),
    ]
}

fn bench_cuboid_build(c: &mut Criterion) {
    let prefs = workload_prefs();
    c.bench_function("minmax_cuboid_build_11q_5d", |b| {
        b.iter(|| black_box(MinMaxCuboid::build(&prefs)))
    });
}

fn bench_shared_insert(c: &mut Criterion) {
    let prefs = workload_prefs();
    let points: Vec<Vec<f64>> = TableGenerator::new(2000, 5, Distribution::Independent)
        .generate("P")
        .records()
        .iter()
        .map(|r| r.vals.clone())
        .collect();
    let mut group = c.benchmark_group("shared_plan_insert_2000");
    for dva in [true, false] {
        group.bench_with_input(BenchmarkId::new("theorem1", dva), &dva, |b, &dva| {
            b.iter(|| {
                let mut plan = SharedSkylinePlan::new(MinMaxCuboid::build(&prefs), dva);
                let mut clock = SimClock::default();
                let mut stats = Stats::new();
                for (i, p) in points.iter().enumerate() {
                    black_box(plan.insert(i as u64, p, &mut clock, &mut stats));
                }
                stats.dom_comparisons
            })
        });
    }
    group.finish();
}

fn bench_region_build(c: &mut Criterion) {
    let gen = TableGenerator::new(4000, 3, Distribution::Independent).with_selectivities(&[0.02]);
    let r = gen.generate("R");
    let t = gen.generate("T");
    let pr = Partitioning::build(&r, QuadTreeConfig::with_cell_budget(16));
    let pt = Partitioning::build(&t, QuadTreeConfig::with_cell_budget(16));
    let mapping = MappingSet::mixed(3, 3, 5);
    let queries: Vec<(QueryId, DimMask)> = workload_prefs()
        .into_iter()
        .enumerate()
        .map(|(i, m)| (QueryId(i as u16), m))
        .collect();
    let mut group = c.benchmark_group("lookahead");
    for prune in [true, false] {
        group.bench_with_input(
            BenchmarkId::new("regions+dg", prune),
            &prune,
            |b, &prune| {
                b.iter(|| {
                    let input = RegionBuildInput {
                        part_r: &pr,
                        part_t: &pt,
                        join_col: 0,
                        mapping: &mapping,
                        queries: &queries,
                        coarse_pruning: prune,
                        keep_empty: false,
                    };
                    let mut clock = SimClock::default();
                    let mut stats = Stats::new();
                    let set = build_regions(&input, &mut clock, &mut stats);
                    let dg = DependencyGraph::build(&set, &mut clock, &mut stats);
                    black_box((set.len(), dg.threats_in(caqe_types::RegionId(0)).len()))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_cuboid_build,
    bench_shared_insert,
    bench_region_build
);
criterion_main!(benches);
