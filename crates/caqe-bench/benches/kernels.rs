//! Criterion micro-benchmarks for the flat-layout migration (DESIGN.md §12)
//! and the partition-signature pruning layer (DESIGN.md §17): every pair is
//! the seed-era `Vec<Vec<f64>>`/`HashMap` kernel (`legacy/*`) against its
//! `PointStore`/`DomKernel` replacement (`flat/*`), and `pruned/*` resolves
//! the *identical* comparison sequence on packed integer signatures — the
//! measured differences are pure data layout, allocation and kernel
//! specialization; results and charges are asserted equal elsewhere
//! (`prune.rs` tests, `tests/property_sig.rs`, `bench_pr8`).
//!
//! CI runs this suite in quick mode as a smoke test; `bench_pr3` and
//! `bench_pr8` measure the composite wall-clock speedups on the fig9-style
//! workload.

use caqe_bench::legacy::{
    legacy_hash_join_project, legacy_skyline_bnl, legacy_skyline_sfs, LegacyIncrementalSkyline,
};
use caqe_data::{Distribution, TableGenerator};
use caqe_operators::{
    hash_join_project_store, skyline_bnl_pruned, skyline_bnl_store, skyline_sfs_store,
    IncrementalSkyline, JoinSpec, MappingSet, SigSkyline,
};
use caqe_types::sig::{SigQuantizer, SigTable};
use caqe_types::{DimMask, DomKernel, PointStore, SimClock, Stats};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn points(n: usize, d: usize, dist: Distribution) -> Vec<Vec<f64>> {
    TableGenerator::new(n, d, dist)
        .generate("B")
        .records()
        .iter()
        .map(|r| r.vals.clone())
        .collect()
}

fn intern(pts: &[Vec<f64>], d: usize) -> PointStore {
    let mut store = PointStore::with_capacity(d, pts.len());
    for p in pts {
        store.push(p);
    }
    store
}

fn bench_skyline_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels/skyline");
    for dist in Distribution::ALL {
        let pts = points(1500, 4, dist);
        let mask = DimMask::full(4);
        let store = intern(&pts, 4);
        let kernel = DomKernel::new(mask, 4);
        group.bench_with_input(
            BenchmarkId::new("legacy_bnl", dist.label()),
            &pts,
            |b, pts| {
                b.iter(|| {
                    let mut clock = SimClock::default();
                    let mut stats = Stats::new();
                    black_box(legacy_skyline_bnl(pts, mask, &mut clock, &mut stats))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("flat_bnl", dist.label()),
            &store,
            |b, store| {
                b.iter(|| {
                    let mut clock = SimClock::default();
                    let mut stats = Stats::new();
                    black_box(skyline_bnl_store(store, &kernel, &mut clock, &mut stats))
                })
            },
        );
        // Signature table built once outside the loop, like a PresortCache
        // hit (bench_pr8 prices the build; here we price the probe).
        let table = {
            let mut s = Stats::new();
            #[allow(clippy::expect_used)]
            SigTable::try_build(&store, mask, &mut s).expect("4-dim subspace fits a signature")
        };
        group.bench_with_input(
            BenchmarkId::new("pruned_bnl", dist.label()),
            &store,
            |b, store| {
                b.iter(|| {
                    let mut clock = SimClock::default();
                    let mut stats = Stats::new();
                    black_box(skyline_bnl_pruned(
                        store, &kernel, &table, &mut clock, &mut stats,
                    ))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("legacy_sfs", dist.label()),
            &pts,
            |b, pts| {
                b.iter(|| {
                    let mut clock = SimClock::default();
                    let mut stats = Stats::new();
                    black_box(legacy_skyline_sfs(pts, mask, &mut clock, &mut stats))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("flat_sfs", dist.label()),
            &store,
            |b, store| {
                b.iter(|| {
                    let mut clock = SimClock::default();
                    let mut stats = Stats::new();
                    black_box(skyline_sfs_store(store, &kernel, &mut clock, &mut stats))
                })
            },
        );
    }
    group.finish();
}

fn bench_incremental_kernels(c: &mut Criterion) {
    let pts = points(2000, 4, Distribution::Anticorrelated);
    let mask = DimMask::from_dims([0, 2]);
    let mut group = c.benchmark_group("kernels/incremental");
    group.bench_function("legacy_insert_stream", |b| {
        b.iter(|| {
            let mut sky = LegacyIncrementalSkyline::new(mask);
            let mut clock = SimClock::default();
            let mut stats = Stats::new();
            for (i, p) in pts.iter().enumerate() {
                black_box(sky.insert(i as u64, p, &mut clock, &mut stats));
            }
            sky.len()
        })
    });
    group.bench_function("flat_insert_stream", |b| {
        b.iter(|| {
            let mut sky = IncrementalSkyline::new(mask);
            let mut clock = SimClock::default();
            let mut stats = Stats::new();
            for (i, p) in pts.iter().enumerate() {
                black_box(sky.insert(i as u64, p, &mut clock, &mut stats));
            }
            sky.len()
        })
    });
    let quant = {
        let store = intern(&pts, 4);
        #[allow(clippy::expect_used)]
        SigQuantizer::from_store(&store, mask).expect("2-dim subspace fits a signature")
    };
    // Streaming twin: quantizes each arriving point itself (no shared
    // table), the worst case for the pruned path.
    group.bench_function("pruned_insert_stream", |b| {
        b.iter(|| {
            let mut sky = SigSkyline::new(mask, quant.clone());
            let mut clock = SimClock::default();
            let mut stats = Stats::new();
            for (i, p) in pts.iter().enumerate() {
                black_box(sky.insert(i as u64, p, &mut clock, &mut stats));
            }
            sky.len()
        })
    });
    group.finish();
}

fn bench_join_kernels(c: &mut Criterion) {
    let gen = TableGenerator::new(1200, 2, Distribution::Independent)
        .with_selectivities(&[0.02])
        .with_seed(0xBE11C);
    let r = gen.generate("R");
    let t = gen.generate("T");
    let mapping = MappingSet::mixed(2, 2, 4);
    let spec = JoinSpec::on_column(0);
    let mut group = c.benchmark_group("kernels/join");
    group.bench_function("legacy_hash_map", |b| {
        b.iter(|| {
            let mut clock = SimClock::default();
            let mut stats = Stats::new();
            black_box(legacy_hash_join_project(
                r.records(),
                t.records(),
                spec,
                &mapping,
                &mut clock,
                &mut stats,
            ))
            .len()
        })
    });
    group.bench_function("flat_sorted_runs", |b| {
        b.iter(|| {
            let mut clock = SimClock::default();
            let mut stats = Stats::new();
            black_box(hash_join_project_store(
                r.records(),
                t.records(),
                spec,
                &mapping,
                &mut clock,
                &mut stats,
            ))
            .len()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_skyline_kernels,
    bench_incremental_kernels,
    bench_join_kernels
);
criterion_main!(benches);
