//! Experiment harness regenerating the paper's evaluation (§7).
//!
//! * [`workloads`] — the paper's query workload: `|S_Q|` skyline-over-join
//!   queries differing in their skyline dimensions (`d ∈ [2, 5]`), with the
//!   per-contract priority assignments of §7.2;
//! * [`experiment`] — one-stop comparison runner producing the rows behind
//!   Figures 9, 10 and 11 for all five systems;
//! * [`report`] — plain-text table rendering and JSON row emission so
//!   EXPERIMENTS.md can be regenerated verbatim;
//! * [`legacy`] — the seed-era `Vec<Vec<f64>>`/`HashMap` kernels, kept as
//!   the baseline the flat-layout migration (DESIGN.md §12) is benchmarked
//!   against.
//!
//! Binaries: `fig9`, `fig10`, `fig11`, `table2`, `ablation`, `sweep`,
//! `par_speedup`, `bench_pr3`, `bench_pr4`, `trace_report`, `obs_report`,
//! `bench_check` — see DESIGN.md §5 for the per-experiment index. All
//! execution drivers accept `--trace <dir>` to export the deterministic
//! trace of every run (DESIGN.md §11), `--faults <spec>` plus
//! `--validation <policy>` to run under a deterministic chaos plan
//! (DESIGN.md §13), and the comparison drivers take `--metrics <dir>` to
//! export deterministic metrics snapshots (DESIGN.md §16; see [`obs`]).

pub mod experiment;
pub mod json;
pub mod legacy;
pub mod obs;
pub mod report;
pub mod workloads;

pub use experiment::{
    run_comparison, run_comparison_observed, run_comparison_traced, ComparisonRow, ExperimentConfig,
};
pub use workloads::{paper_workload, ContractParams, PriorityPolicy};
