//! One-stop comparison runner for the paper's figures.

use crate::workloads::{paper_workload, ContractParams, PriorityPolicy};
use caqe_baselines::all_strategies;
use caqe_core::{ExecConfig, ExecutionStrategy, RunOutcome, Workload};
use caqe_data::{Distribution, Table, TableGenerator, ValidationPolicy};
use caqe_faults::FaultPlan;
use caqe_trace::{write_trace, RecordingSink};
use std::path::Path;

/// Everything one experimental cell needs.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Table cardinality `N` (both tables).
    pub n: usize,
    /// Attribute count of each base table.
    pub input_dims: usize,
    /// Attribute correlation regime.
    pub distribution: Distribution,
    /// Join selectivity `σ`.
    pub sigma: f64,
    /// Workload size `|S_Q|`.
    pub workload_size: usize,
    /// Table 2 contract id (1–5).
    pub contract_id: usize,
    /// Deadline as a fraction of the calibrated reference execution time.
    pub deadline_fraction: f64,
    /// Target quad-tree leaves per table.
    pub cells_per_table: usize,
    /// RNG seed.
    pub seed: u64,
    /// Pre-computed calibration reference (total virtual seconds of the
    /// non-shared blocking baseline). Computed on demand when `None`; set
    /// it once per (distribution, N) to share across contract cells.
    pub reference_secs: Option<f64>,
    /// Host worker threads (`ExecConfig::parallelism`): `None` = serial,
    /// `Some(0)` = all cores, `Some(n)` = exactly `n`. Never changes any
    /// reported number except wall-clock seconds.
    pub parallelism: Option<usize>,
    /// Deterministic fault plan (inert by default); see the `--faults`
    /// flag on the bench drivers.
    pub faults: FaultPlan,
    /// Ingestion validation policy. Chaos cells with input corruption
    /// should pick `Quarantine` or `Clamp` — `Reject` aborts the run.
    pub validation: ValidationPolicy,
}

impl ExperimentConfig {
    /// A sensible default cell: the paper's 11-query workload at a
    /// laptop-scale cardinality.
    pub fn new(distribution: Distribution, contract_id: usize) -> Self {
        ExperimentConfig {
            n: 3000,
            input_dims: 3,
            distribution,
            sigma: 0.02,
            workload_size: 11,
            contract_id,
            deadline_fraction: 0.3,
            cells_per_table: 12,
            seed: 0xEDB7,
            reference_secs: None,
            parallelism: None,
            faults: FaultPlan::none(),
            validation: ValidationPolicy::default(),
        }
    }

    /// Generates the two base tables.
    pub fn tables(&self) -> (Table, Table) {
        let gen = TableGenerator::new(self.n, self.input_dims, self.distribution)
            .with_selectivities(&[self.sigma])
            .with_seed(self.seed);
        (gen.generate("R"), gen.generate("T"))
    }

    /// The execution environment shared by all compared systems.
    pub fn exec(&self) -> ExecConfig {
        ExecConfig::default()
            .with_target_cells(self.n, self.cells_per_table)
            .with_parallelism(self.parallelism)
            .with_faults(self.faults)
            .with_validation(self.validation)
    }

    /// Builds the workload, calibrating contract deadlines against the
    /// measured total runtime of the non-shared blocking baseline — the
    /// analogue of the paper picking 10 s / 40 s / 30 min per distribution.
    pub fn workload(&self) -> Workload {
        let reference = self
            .reference_secs
            .unwrap_or_else(|| self.reference_seconds());
        let params = ContractParams::from_reference(reference, self.deadline_fraction);
        paper_workload(
            self.workload_size,
            self.input_dims,
            self.contract_id,
            params,
            PriorityPolicy::for_contract(self.contract_id),
        )
    }

    /// Measures the total virtual runtime of JFSL — the priority-ordered,
    /// non-shared, blocking baseline — on this cell's tables and workload
    /// shape. The contract used for probing is irrelevant: utility functions
    /// never influence JFSL's processing order or cost.
    pub fn reference_seconds(&self) -> f64 {
        let (r, t) = self.tables();
        let probe = paper_workload(
            self.workload_size,
            self.input_dims,
            2, // C2: parameter-free
            ContractParams {
                t_param: 1.0,
                interval: 1.0,
            },
            PriorityPolicy::for_contract(self.contract_id),
        );
        // Calibration always runs on clean input: contract deadlines must
        // not shift with the chaos plan being evaluated against them.
        let clean = ExecConfig::default()
            .with_target_cells(self.n, self.cells_per_table)
            .with_parallelism(self.parallelism);
        caqe_baselines::JfslStrategy
            .run(&r, &t, &probe, &clean)
            .virtual_seconds
    }
}

/// One row of a comparison: the numbers the paper plots.
#[derive(Debug, Clone)]
pub struct ComparisonRow {
    /// Strategy name.
    pub strategy: String,
    /// Distribution label.
    pub distribution: String,
    /// Contract label ("C1".."C5").
    pub contract: String,
    /// Workload size.
    pub workload_size: usize,
    /// Average per-query satisfaction (Figures 9 and 11).
    pub avg_satisfaction: f64,
    /// Cumulative progressiveness score (Equation 6).
    pub total_p_score: f64,
    /// Join results materialized (Figure 10.a — memory metric).
    pub join_results: u64,
    /// Tuple-level dominance comparisons (Figure 10.b — CPU metric).
    pub dom_comparisons: u64,
    /// Abstract region-level comparisons (look-ahead overhead).
    pub region_comparisons: u64,
    /// Total virtual execution time in seconds (Figure 10.c).
    pub virtual_seconds: f64,
    /// Wall-clock seconds of the run (informational).
    pub wall_seconds: f64,
    /// Results emitted across all queries.
    pub results: usize,
    /// Region processing attempts that failed and were retried.
    pub region_retries: u64,
    /// Regions quarantined after exhausting their retry budget.
    pub regions_quarantined: u64,
    /// Regions shed by contract-aware degradation.
    pub regions_shed: u64,
    /// Input records quarantined at ingestion.
    pub ingest_quarantined: u64,
    /// Input values clamped at ingestion.
    pub ingest_clamped: u64,
}

impl ComparisonRow {
    /// Extracts a row from a run outcome.
    pub fn from_outcome(outcome: &RunOutcome, cfg: &ExperimentConfig) -> Self {
        ComparisonRow {
            strategy: outcome.strategy.clone(),
            distribution: cfg.distribution.label().to_string(),
            contract: format!("C{}", cfg.contract_id),
            workload_size: cfg.workload_size,
            avg_satisfaction: outcome.avg_satisfaction(),
            total_p_score: outcome.total_p_score(),
            join_results: outcome.stats.join_results,
            dom_comparisons: outcome.stats.dom_comparisons,
            region_comparisons: outcome.stats.region_comparisons,
            virtual_seconds: outcome.virtual_seconds,
            wall_seconds: outcome.wall_seconds,
            results: outcome.total_results(),
            region_retries: outcome.stats.region_retries,
            regions_quarantined: outcome.stats.regions_quarantined,
            regions_shed: outcome.stats.regions_shed,
            ingest_quarantined: outcome.stats.ingest_quarantined,
            ingest_clamped: outcome.stats.ingest_clamped,
        }
    }

    /// Serializes the row as one JSON object (same field names as the
    /// struct, in declaration order).
    pub fn to_json(&self) -> String {
        self.to_json_counted().0
    }

    /// Like [`ComparisonRow::to_json`], additionally returning how many
    /// non-finite values were serialized as `null`.
    pub fn to_json_counted(&self) -> (String, u64) {
        let mut w = crate::json::ObjectWriter::new();
        w.string("strategy", &self.strategy)
            .string("distribution", &self.distribution)
            .string("contract", &self.contract)
            .uint("workload_size", self.workload_size as u64)
            .number("avg_satisfaction", self.avg_satisfaction)
            .number("total_p_score", self.total_p_score)
            .uint("join_results", self.join_results)
            .uint("dom_comparisons", self.dom_comparisons)
            .uint("region_comparisons", self.region_comparisons)
            .number("virtual_seconds", self.virtual_seconds)
            .number("wall_seconds", self.wall_seconds)
            .uint("results", self.results as u64)
            .uint("region_retries", self.region_retries)
            .uint("regions_quarantined", self.regions_quarantined)
            .uint("regions_shed", self.regions_shed)
            .uint("ingest_quarantined", self.ingest_quarantined)
            .uint("ingest_clamped", self.ingest_clamped);
        w.finish_counted()
    }
}

/// File-system-safe trace label for one (strategy, cell) pair.
fn trace_label(strategy: &str, cfg: &ExperimentConfig) -> String {
    format!(
        "{}_{}_c{}_q{}",
        strategy.to_lowercase(),
        cfg.distribution.label(),
        cfg.contract_id,
        cfg.workload_size
    )
    .chars()
    .map(|c| {
        if c.is_ascii_alphanumeric() || c == '_' {
            c
        } else {
            '-'
        }
    })
    .collect()
}

/// Runs all five systems on one experimental cell.
pub fn run_comparison(cfg: &ExperimentConfig) -> Vec<ComparisonRow> {
    run_comparison_traced(cfg, None)
}

/// Like [`run_comparison`], but when `trace_dir` is set each strategy runs
/// with a recording sink and its deterministic trace is exported under a
/// `<strategy>_<distribution>_c<contract>_q<size>` label.
pub fn run_comparison_traced(
    cfg: &ExperimentConfig,
    trace_dir: Option<&Path>,
) -> Vec<ComparisonRow> {
    run_comparison_observed(cfg, trace_dir, None)
}

/// The full observability variant: `trace_dir` exports deterministic
/// traces, `metrics_dir` exports per-strategy metrics snapshots
/// (`<label>.metrics.json` + `<label>.prom`, DESIGN.md §16) under the same
/// labels, so `obs_report --reconcile` can pair every snapshot with its
/// trace. With both `None` this is exactly [`run_comparison`].
pub fn run_comparison_observed(
    cfg: &ExperimentConfig,
    trace_dir: Option<&Path>,
    metrics_dir: Option<&Path>,
) -> Vec<ComparisonRow> {
    let (r, t) = cfg.tables();
    let workload = cfg.workload();
    let exec = cfg.exec();
    all_strategies()
        .iter()
        .map(|s| {
            let outcome = if trace_dir.is_some() || metrics_dir.is_some() {
                let mut sink = RecordingSink::new();
                let outcome = s.run_traced(&r, &t, &workload, &exec, &mut sink);
                let label = trace_label(s.name(), cfg);
                if let Some(dir) = trace_dir {
                    write_trace(dir, &label, sink.events()).expect("trace export failed");
                }
                if let Some(dir) = metrics_dir {
                    let collector = crate::obs::collect(&workload, sink.events(), &outcome);
                    crate::obs::write_snapshot(dir, &label, &collector)
                        .expect("metrics export failed");
                }
                outcome
            } else {
                s.run(&r, &t, &workload, &exec)
            };
            ComparisonRow::from_outcome(&outcome, cfg)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_produces_five_rows() {
        let mut cfg = ExperimentConfig::new(Distribution::Correlated, 1);
        cfg.n = 400;
        cfg.workload_size = 4;
        cfg.cells_per_table = 6;
        let rows = run_comparison(&cfg);
        assert_eq!(rows.len(), 5);
        for row in &rows {
            assert!(row.avg_satisfaction >= 0.0 && row.avg_satisfaction <= 1.0);
            assert!(row.results > 0, "{} emitted nothing", row.strategy);
            assert_eq!(row.contract, "C1");
        }
        // All systems agree on result counts per construction of the tests
        // elsewhere; here just check they all emitted the same total.
        let counts: std::collections::BTreeSet<usize> = rows.iter().map(|r| r.results).collect();
        assert_eq!(counts.len(), 1);
    }

    #[test]
    fn traced_comparison_exports_per_strategy_traces() {
        let mut cfg = ExperimentConfig::new(Distribution::Correlated, 2);
        cfg.n = 300;
        cfg.workload_size = 3;
        cfg.cells_per_table = 6;
        let dir = std::env::temp_dir().join("caqe_bench_trace_test");
        let _ = std::fs::remove_dir_all(&dir);
        let rows = run_comparison_traced(&cfg, Some(&dir));
        assert_eq!(rows.len(), 5);
        let jsonl: Vec<_> = std::fs::read_dir(&dir)
            .expect("trace dir exists")
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "jsonl"))
            .collect();
        assert_eq!(jsonl.len(), 5, "one event stream per strategy");
        for p in &jsonl {
            let text = std::fs::read_to_string(p).unwrap();
            for line in text.lines() {
                crate::json::parse(line).expect("every trace line is valid JSON");
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn observed_comparison_exports_metrics_snapshots() {
        let mut cfg = ExperimentConfig::new(Distribution::Correlated, 2);
        cfg.n = 300;
        cfg.workload_size = 3;
        cfg.cells_per_table = 6;
        let dir = std::env::temp_dir().join("caqe_bench_metrics_test");
        let _ = std::fs::remove_dir_all(&dir);
        let rows = run_comparison_observed(&cfg, None, Some(&dir));
        assert_eq!(rows.len(), 5);
        let snapshots: Vec<_> = std::fs::read_dir(&dir)
            .expect("metrics dir exists")
            .flatten()
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.ends_with(".metrics.json"))
            })
            .collect();
        assert_eq!(snapshots.len(), 5, "one snapshot per strategy");
        for p in &snapshots {
            let text = std::fs::read_to_string(p).unwrap();
            let v = crate::json::parse(text.trim()).expect("snapshot is valid JSON");
            let emitted = v["counters"][caqe_obs::names::EMISSIONS]
                .as_f64()
                .expect("emission counter present");
            assert!(emitted > 0.0, "{}: no emissions collected", p.display());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reference_seconds_positive_and_scales() {
        let small = ExperimentConfig {
            n: 200,
            workload_size: 2,
            ..ExperimentConfig::new(Distribution::Independent, 2)
        };
        let large = ExperimentConfig {
            n: 800,
            workload_size: 2,
            ..ExperimentConfig::new(Distribution::Independent, 2)
        };
        let a = small.reference_seconds();
        let b = large.reference_seconds();
        assert!(a > 0.0);
        assert!(b > a, "reference did not scale: {a} vs {b}");
    }
}
