//! Seed-era hot-path implementations, preserved verbatim as the benchmark
//! baseline for the flat-layout migration (DESIGN.md §12).
//!
//! These are the `Vec<Vec<f64>>` + `HashMap` kernels the engine shipped with
//! before the [`caqe_types::PointStore`] / [`caqe_types::DomKernel`]
//! rewrite: one heap allocation per projected tuple, `relate_in` walking the
//! full mask per comparison, and SFS recomputing the monotone score inside
//! the sort comparator. They charge the virtual clock and [`Stats`] exactly
//! like their replacements, so `bench_pr3` can assert that the two paths
//! perform *identical* comparison counts while timing only the layout and
//! kernel specialization — the quantity BENCH_PR3.json's `speedup` reports.
//!
//! Nothing outside the bench crate may depend on this module.

use caqe_data::Record;
use caqe_operators::{InsertOutcome, JoinSpec, MappingSet, OutTuple};
use caqe_types::{relate_in, DimMask, DomRelation, SimClock, Stats, Value};

/// Seed Block-Nested-Loop skyline: window of indices, `relate_in` per test.
pub fn legacy_skyline_bnl(
    points: &[Vec<Value>],
    mask: DimMask,
    clock: &mut SimClock,
    stats: &mut Stats,
) -> Vec<usize> {
    let mut window: Vec<usize> = Vec::new();
    'next: for (i, p) in points.iter().enumerate() {
        let mut k = 0;
        while k < window.len() {
            clock.charge_dom_cmps(1);
            stats.dom_comparisons += 1;
            match relate_in(&points[window[k]], p, mask) {
                DomRelation::Dominates => continue 'next,
                DomRelation::DominatedBy => {
                    window.swap_remove(k);
                }
                DomRelation::Equal | DomRelation::Incomparable => k += 1,
            }
        }
        window.push(i);
    }
    window.sort_unstable();
    window
}

/// Seed Sort-Filter-Skyline: the monotone score is recomputed inside the
/// sort comparator — O(n log n · d) score work where one O(n · d) pass
/// suffices. This is the exact defect PR3's satellite fix removed; kept here
/// so the benchmark can price it.
pub fn legacy_skyline_sfs(
    points: &[Vec<Value>],
    mask: DimMask,
    clock: &mut SimClock,
    stats: &mut Stats,
) -> Vec<usize> {
    let score = |p: &[Value]| -> Value { mask.iter().map(|k| p[k]).sum() };
    let mut order: Vec<usize> = (0..points.len()).collect();
    order.sort_by(|&a, &b| score(&points[a]).total_cmp(&score(&points[b])));
    let mut sky: Vec<usize> = Vec::new();
    'next: for i in order {
        for &s in &sky {
            clock.charge_dom_cmps(1);
            stats.dom_comparisons += 1;
            match relate_in(&points[s], &points[i], mask) {
                DomRelation::Dominates => continue 'next,
                DomRelation::DominatedBy => unreachable!("SFS invariant violated"),
                DomRelation::Equal | DomRelation::Incomparable => {}
            }
        }
        sky.push(i);
    }
    sky.sort_unstable();
    sky
}

/// Seed streaming skyline: each member owns its point as a `Vec<Value>`
/// (`point.to_vec()` per admission), comparisons go through `relate_in`.
#[derive(Debug, Clone)]
pub struct LegacyIncrementalSkyline {
    mask: DimMask,
    entries: Vec<(u64, Vec<Value>)>,
}

impl LegacyIncrementalSkyline {
    /// An empty skyline over subspace `mask`.
    pub fn new(mask: DimMask) -> Self {
        LegacyIncrementalSkyline {
            mask,
            entries: Vec::new(),
        }
    }

    /// Current number of skyline members.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the skyline is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Tags of the current members, in insertion order.
    pub fn tags(&self) -> impl Iterator<Item = u64> + '_ {
        self.entries.iter().map(|(t, _)| *t)
    }

    /// Seed insert: `relate_in` per member, `to_vec` per admission.
    pub fn insert(
        &mut self,
        tag: u64,
        point: &[Value],
        clock: &mut SimClock,
        stats: &mut Stats,
    ) -> InsertOutcome {
        let mut removed = Vec::new();
        let mut k = 0;
        while k < self.entries.len() {
            clock.charge_dom_cmps(1);
            stats.dom_comparisons += 1;
            match relate_in(&self.entries[k].1, point, self.mask) {
                DomRelation::Dominates => {
                    debug_assert!(removed.is_empty(), "partial order violated");
                    return InsertOutcome::Dominated;
                }
                DomRelation::DominatedBy => {
                    removed.push(self.entries.swap_remove(k).0);
                }
                DomRelation::Equal | DomRelation::Incomparable => k += 1,
            }
        }
        self.entries.push((tag, point.to_vec()));
        InsertOutcome::Added { removed }
    }
}

/// Seed hash equi-join fused with projection: `HashMap`-indexed build side,
/// one fresh `Vec<Value>` allocated per match via `MappingSet::apply`.
///
/// The `HashMap` is exactly why this lives behind an allow: the workspace
/// bans iteration-ordered maps on traced paths (clippy.toml), and this
/// legacy baseline only *probes* the map (probe order follows the probe
/// table, so output order is still deterministic) — but it is the shape the
/// migration removed, and the benchmark must run the removed shape.
#[allow(clippy::disallowed_types)]
pub fn legacy_hash_join_project(
    left: &[Record],
    right: &[Record],
    spec: JoinSpec,
    mapping: &MappingSet,
    clock: &mut SimClock,
    stats: &mut Stats,
) -> Vec<OutTuple> {
    use std::collections::HashMap;
    let (build, probe, build_is_left) = if left.len() <= right.len() {
        (left, right, true)
    } else {
        (right, left, false)
    };
    let mut index: HashMap<u32, Vec<&Record>> = HashMap::new();
    for b in build {
        index.entry(b.key(spec.column)).or_default().push(b);
    }
    let mut out = Vec::new();
    for p in probe {
        clock.charge_join_probes(1);
        stats.join_probes += 1;
        if let Some(matches) = index.get(&p.key(spec.column)) {
            for b in matches {
                clock.charge_join_probes(1);
                stats.join_probes += 1;
                let (r, t) = if build_is_left { (*b, p) } else { (p, *b) };
                let k = mapping.output_dims() as u64;
                clock.charge_map_evals(k);
                stats.map_evals += k;
                stats.join_results += 1;
                out.push(OutTuple {
                    rid: r.id,
                    tid: t.id,
                    vals: mapping.apply(&r.vals, &t.vals),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use caqe_operators::{
        hash_join_project, skyline_bnl, skyline_sfs, IncrementalSkyline, MappingSet,
    };

    fn lattice(n: usize, d: usize) -> Vec<Vec<Value>> {
        (0..n)
            .map(|i| (0..d).map(|j| ((i * 37 + j * 13) % 23) as Value).collect())
            .collect()
    }

    #[test]
    fn legacy_skylines_match_migrated_paths_exactly() {
        let points = lattice(150, 4);
        for mask in [DimMask::full(4), DimMask::from_dims([1, 3])] {
            let mut c1 = SimClock::default();
            let mut s1 = Stats::new();
            let mut c2 = SimClock::default();
            let mut s2 = Stats::new();
            assert_eq!(
                legacy_skyline_bnl(&points, mask, &mut c1, &mut s1),
                skyline_bnl(&points, mask, &mut c2, &mut s2)
            );
            // The migrated path records which kernel implementation ran;
            // the legacy path predates that diagnostic, so compare the
            // charged observables.
            assert_eq!(s1.observable(), s2.observable());
            assert_eq!(c1.ticks(), c2.ticks());

            let mut c3 = SimClock::default();
            let mut s3 = Stats::new();
            let mut c4 = SimClock::default();
            let mut s4 = Stats::new();
            assert_eq!(
                legacy_skyline_sfs(&points, mask, &mut c3, &mut s3),
                skyline_sfs(&points, mask, &mut c4, &mut s4)
            );
            assert_eq!(s3.observable(), s4.observable());
            assert_eq!(c3.ticks(), c4.ticks());
        }
    }

    #[test]
    fn legacy_incremental_matches_migrated_incremental() {
        let points = lattice(120, 3);
        let mask = DimMask::from_dims([0, 2]);
        let mut old = LegacyIncrementalSkyline::new(mask);
        let mut new = IncrementalSkyline::new(mask);
        let mut c1 = SimClock::default();
        let mut s1 = Stats::new();
        let mut c2 = SimClock::default();
        let mut s2 = Stats::new();
        assert!(old.is_empty());
        for (i, p) in points.iter().enumerate() {
            let a = old.insert(i as u64, p, &mut c1, &mut s1);
            let b = new.insert(i as u64, p, &mut c2, &mut s2);
            assert_eq!(a, b, "outcome diverged at point {i}");
        }
        assert_eq!(old.len(), new.len());
        assert!(old.tags().eq(new.tags()));
        assert_eq!(s1.observable(), s2.observable());
        assert_eq!(c1.ticks(), c2.ticks());
    }

    #[test]
    fn legacy_join_matches_migrated_join() {
        let rec = |id: u64, v: f64, key: u32| Record::new(id, vec![v, v * 0.5], vec![key]);
        let left: Vec<Record> = (0..40)
            .map(|i| rec(i, i as f64, (i as u32 * 7) % 5))
            .collect();
        let right: Vec<Record> = (0..60)
            .map(|i| rec(100 + i, i as f64, (i as u32 * 3) % 5))
            .collect();
        let mapping = MappingSet::mixed(2, 2, 4);
        let spec = JoinSpec::on_column(0);
        let mut c1 = SimClock::default();
        let mut s1 = Stats::new();
        let old = legacy_hash_join_project(&left, &right, spec, &mapping, &mut c1, &mut s1);
        let mut c2 = SimClock::default();
        let mut s2 = Stats::new();
        let new = hash_join_project(&left, &right, spec, &mapping, &mut c2, &mut s2);
        assert_eq!(old, new);
        assert_eq!(s1, s2);
        assert_eq!(c1.ticks(), c2.ticks());
    }
}
