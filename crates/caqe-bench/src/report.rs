//! Plain-text and JSON rendering of comparison rows.

use crate::experiment::ComparisonRow;

/// Renders rows as an aligned plain-text table, one line per row.
pub fn render_table(title: &str, rows: &[ComparisonRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    out.push_str(&format!(
        "{:<9} {:<15} {:<4} {:>4} {:>8} {:>12} {:>12} {:>12} {:>10} {:>8}\n",
        "strategy",
        "distribution",
        "ctr",
        "|Q|",
        "avg-sat",
        "p-score",
        "joins",
        "dom-cmps",
        "virt-sec",
        "results"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<9} {:<15} {:<4} {:>4} {:>8.3} {:>12.1} {:>12} {:>12} {:>10.2} {:>8}\n",
            r.strategy,
            r.distribution,
            r.contract,
            r.workload_size,
            r.avg_satisfaction,
            r.total_p_score,
            r.join_results,
            r.dom_comparisons,
            r.virtual_seconds,
            r.results
        ));
    }
    out
}

/// Serializes rows as JSON lines (one object per row) for machine use.
pub fn render_jsonl(rows: &[ComparisonRow]) -> String {
    rows.iter()
        .map(|r| r.to_json())
        .collect::<Vec<_>>()
        .join("\n")
}

/// Parses a `--key value`-style CLI, returning the value for `key`.
pub fn cli_arg(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Whether a bare flag is present.
pub fn cli_flag(args: &[String], key: &str) -> bool {
    args.iter().any(|a| a == key)
}

/// Parses the shared `--threads <n>` knob (`0` = all cores; absent =
/// serial).
pub fn cli_threads(args: &[String]) -> Option<usize> {
    cli_arg(args, "--threads").map(|s| s.parse().expect("--threads takes a number"))
}

/// Parses the shared `--trace <dir>` knob: when present, every run also
/// writes its deterministic trace exports (JSONL, satisfaction CSV,
/// Chrome-trace spans, estimator audit) into the directory.
pub fn cli_trace(args: &[String]) -> Option<std::path::PathBuf> {
    cli_arg(args, "--trace").map(std::path::PathBuf::from)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> ComparisonRow {
        ComparisonRow {
            strategy: "CAQE".into(),
            distribution: "independent".into(),
            contract: "C2".into(),
            workload_size: 11,
            avg_satisfaction: 0.82,
            total_p_score: 123.4,
            join_results: 1000,
            dom_comparisons: 5000,
            region_comparisons: 700,
            virtual_seconds: 12.5,
            wall_seconds: 0.2,
            results: 88,
        }
    }

    #[test]
    fn table_contains_key_fields() {
        let s = render_table("Figure 9.b", &[row()]);
        assert!(s.contains("Figure 9.b"));
        assert!(s.contains("CAQE"));
        assert!(s.contains("0.820"));
        assert!(s.contains("independent"));
    }

    #[test]
    fn jsonl_round_trips() {
        let s = render_jsonl(&[row(), row()]);
        assert_eq!(s.lines().count(), 2);
        let v = crate::json::parse(s.lines().next().unwrap()).unwrap();
        assert_eq!(v["strategy"], "CAQE");
        assert_eq!(v["join_results"], 1000);
    }

    #[test]
    fn cli_helpers() {
        let args: Vec<String> = ["--dist", "correlated", "--full"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(cli_arg(&args, "--dist").as_deref(), Some("correlated"));
        assert_eq!(cli_arg(&args, "--n"), None);
        assert!(cli_flag(&args, "--full"));
        assert!(!cli_flag(&args, "--quick"));
    }
}
