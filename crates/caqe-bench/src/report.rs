//! Plain-text and JSON rendering of comparison rows.

use crate::experiment::ComparisonRow;
use caqe_data::ValidationPolicy;
use caqe_faults::FaultPlan;

/// Renders rows as an aligned plain-text table, one line per row.
pub fn render_table(title: &str, rows: &[ComparisonRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    out.push_str(&format!(
        "{:<9} {:<15} {:<4} {:>4} {:>8} {:>12} {:>12} {:>12} {:>10} {:>8}\n",
        "strategy",
        "distribution",
        "ctr",
        "|Q|",
        "avg-sat",
        "p-score",
        "joins",
        "dom-cmps",
        "virt-sec",
        "results"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<9} {:<15} {:<4} {:>4} {:>8.3} {:>12.1} {:>12} {:>12} {:>10.2} {:>8}\n",
            r.strategy,
            r.distribution,
            r.contract,
            r.workload_size,
            r.avg_satisfaction,
            r.total_p_score,
            r.join_results,
            r.dom_comparisons,
            r.virtual_seconds,
            r.results
        ));
    }
    // Degradation summary: only printed when fault handling actually fired,
    // so fault-free reports look exactly as before.
    let (retries, quar, shed, iq, ic) = rows.iter().fold((0, 0, 0, 0, 0), |a, r| {
        (
            a.0 + r.region_retries,
            a.1 + r.regions_quarantined,
            a.2 + r.regions_shed,
            a.3 + r.ingest_quarantined,
            a.4 + r.ingest_clamped,
        )
    });
    if retries + quar + shed + iq + ic > 0 {
        out.push_str(&format!(
            "-- degradation: {retries} retries, {quar} quarantined, {shed} shed, \
             {iq} records quarantined at ingest, {ic} values clamped\n"
        ));
    }
    out
}

/// Serializes rows as JSON lines (one object per row) for machine use.
/// Non-finite numbers are serialized as `null` — see
/// [`render_jsonl_counted`] for surfacing how many.
pub fn render_jsonl(rows: &[ComparisonRow]) -> String {
    render_jsonl_counted(rows).0
}

/// [`render_jsonl`] plus the total count of non-finite values that were
/// serialized as `null`; drivers print the count in their report summary
/// instead of dropping the information silently.
pub fn render_jsonl_counted(rows: &[ComparisonRow]) -> (String, u64) {
    let mut dropped = 0;
    let text = rows
        .iter()
        .map(|r| {
            let (json, n) = r.to_json_counted();
            dropped += n;
            json
        })
        .collect::<Vec<_>>()
        .join("\n");
    (text, dropped)
}

/// Parses a `--key value`-style CLI, returning the value for `key`.
pub fn cli_arg(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Parses `--key value` into any `FromStr` type, falling back to `default`
/// when the flag is absent. A present-but-unparsable value exits with code
/// 2 and a contextual message naming the flag and the offending text —
/// drivers must never panic on user input.
pub fn cli_parse<T: std::str::FromStr>(args: &[String], key: &str, default: T) -> T
where
    T::Err: std::fmt::Display,
{
    match cli_arg(args, key) {
        Some(text) => match text.parse() {
            Ok(v) => v,
            Err(e) => {
                eprintln!("bad {key} value `{text}`: {e}");
                std::process::exit(2);
            }
        },
        None => default,
    }
}

/// Whether a bare flag is present.
pub fn cli_flag(args: &[String], key: &str) -> bool {
    args.iter().any(|a| a == key)
}

/// Parses the shared `--threads <n>` knob (`0` = all cores; absent =
/// serial).
pub fn cli_threads(args: &[String]) -> Option<usize> {
    cli_arg(args, "--threads").map(|text| match text.parse() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("bad --threads value `{text}`: {e}");
            std::process::exit(2);
        }
    })
}

/// Parses the shared `--trace <dir>` knob: when present, every run also
/// writes its deterministic trace exports (JSONL, satisfaction CSV,
/// Chrome-trace spans, estimator audit) into the directory.
pub fn cli_trace(args: &[String]) -> Option<std::path::PathBuf> {
    cli_arg(args, "--trace").map(std::path::PathBuf::from)
}

/// Parses the shared `--metrics <dir>` knob: when present, every run also
/// writes its deterministic metrics snapshot (`<label>.metrics.json` +
/// `<label>.prom`, DESIGN.md §16) into the directory.
pub fn cli_metrics(args: &[String]) -> Option<std::path::PathBuf> {
    cli_arg(args, "--metrics").map(std::path::PathBuf::from)
}

/// Parses the shared `--faults <spec>` knob into a deterministic fault
/// plan (see [`FaultPlan::parse`] for the spec grammar, e.g.
/// `seed=7,panic=0.2,spike=0.3x8`). Exits with the parse error on a bad
/// spec. Absent flag → inert plan.
pub fn cli_faults(args: &[String]) -> FaultPlan {
    match cli_arg(args, "--faults") {
        Some(spec) => match FaultPlan::parse(&spec) {
            Ok(plan) => {
                if plan.is_active() {
                    // Injected panics are caught by the engine; keep their
                    // banners out of the driver's report.
                    caqe_faults::silence_injected_panics();
                }
                plan
            }
            Err(e) => {
                eprintln!("bad --faults spec: {e}");
                std::process::exit(2);
            }
        },
        None => FaultPlan::none(),
    }
}

/// Parses the shared `--validation reject|quarantine|clamp` knob (absent
/// flag → the `Reject` default). Exits with the parse error on a bad name.
pub fn cli_validation(args: &[String]) -> ValidationPolicy {
    match cli_arg(args, "--validation") {
        Some(name) => match ValidationPolicy::parse(&name) {
            Ok(policy) => policy,
            Err(e) => {
                eprintln!("bad --validation policy: {e}");
                std::process::exit(2);
            }
        },
        None => ValidationPolicy::default(),
    }
}

/// Parses both chaos knobs at once — every execution driver takes
/// `--faults <spec>` and `--validation <policy>` (DESIGN.md §13).
pub fn cli_chaos(args: &[String]) -> (FaultPlan, ValidationPolicy) {
    (cli_faults(args), cli_validation(args))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> ComparisonRow {
        ComparisonRow {
            strategy: "CAQE".into(),
            distribution: "independent".into(),
            contract: "C2".into(),
            workload_size: 11,
            avg_satisfaction: 0.82,
            total_p_score: 123.4,
            join_results: 1000,
            dom_comparisons: 5000,
            region_comparisons: 700,
            virtual_seconds: 12.5,
            wall_seconds: 0.2,
            results: 88,
            region_retries: 0,
            regions_quarantined: 0,
            regions_shed: 0,
            ingest_quarantined: 0,
            ingest_clamped: 0,
        }
    }

    #[test]
    fn table_contains_key_fields() {
        let s = render_table("Figure 9.b", &[row()]);
        assert!(s.contains("Figure 9.b"));
        assert!(s.contains("CAQE"));
        assert!(s.contains("0.820"));
        assert!(s.contains("independent"));
    }

    #[test]
    fn jsonl_round_trips() {
        let s = render_jsonl(&[row(), row()]);
        assert_eq!(s.lines().count(), 2);
        let v = crate::json::parse(s.lines().next().unwrap()).unwrap();
        assert_eq!(v["strategy"], "CAQE");
        assert_eq!(v["join_results"], 1000);
    }

    #[test]
    fn degradation_summary_only_when_faults_fired() {
        let clean = render_table("t", &[row()]);
        assert!(!clean.contains("degradation"));
        let mut r = row();
        r.region_retries = 3;
        r.regions_quarantined = 1;
        let chaotic = render_table("t", &[r]);
        assert!(chaotic.contains("degradation: 3 retries, 1 quarantined"));
    }

    #[test]
    fn jsonl_counts_dropped_non_finite_values() {
        let (_, none) = render_jsonl_counted(&[row()]);
        assert_eq!(none, 0);
        let mut r = row();
        r.avg_satisfaction = f64::NAN;
        r.virtual_seconds = f64::INFINITY;
        let (text, dropped) = render_jsonl_counted(&[r]);
        assert_eq!(dropped, 2);
        assert!(text.contains("\"avg_satisfaction\":null"));
    }

    #[test]
    fn cli_faults_parses_specs() {
        let none: Vec<String> = vec![];
        assert!(!cli_faults(&none).is_active());
        let args: Vec<String> = ["--faults", "seed=9,panic=0.5"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let plan = cli_faults(&args);
        assert!(plan.is_active());
        assert_eq!(plan.seed, 9);
    }

    #[test]
    fn cli_helpers() {
        let args: Vec<String> = ["--dist", "correlated", "--full"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(cli_arg(&args, "--dist").as_deref(), Some("correlated"));
        assert_eq!(cli_arg(&args, "--n"), None);
        assert!(cli_flag(&args, "--full"));
        assert!(!cli_flag(&args, "--quick"));
    }
}
