//! Dependency-free JSON writing and parsing for experiment reports.
//!
//! The build environment vendors no serde, so the harness carries its own
//! tiny JSON layer: an escaping writer used by [`crate::report::render_jsonl`]
//! and a strict recursive-descent parser used by report tooling and tests to
//! round-trip rows.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object (key order not preserved).
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Member access for objects; `Null` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> &JsonValue {
        const NULL: JsonValue = JsonValue::Null;
        match self {
            JsonValue::Object(map) => map.get(key).unwrap_or(&NULL),
            _ => &NULL,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for JsonValue {
    type Output = JsonValue;
    fn index(&self, key: &str) -> &JsonValue {
        self.get(key)
    }
}

impl PartialEq<&str> for JsonValue {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<f64> for JsonValue {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<i32> for JsonValue {
    fn eq(&self, other: &i32) -> bool {
        self.as_f64() == Some(*other as f64)
    }
}

impl PartialEq<u64> for JsonValue {
    fn eq(&self, other: &u64) -> bool {
        self.as_f64() == Some(*other as f64)
    }
}

/// Incremental writer for one JSON object.
#[derive(Debug, Default)]
pub struct ObjectWriter {
    buf: String,
    first: bool,
    dropped: u64,
}

impl ObjectWriter {
    /// Starts an empty object.
    pub fn new() -> Self {
        ObjectWriter {
            buf: String::from("{"),
            first: true,
            dropped: 0,
        }
    }

    /// How many non-finite float values were serialized as `null` so far.
    /// JSON has no NaN/Infinity; callers surface this count in report
    /// summaries instead of dropping the information silently.
    pub fn dropped_values(&self) -> u64 {
        self.dropped
    }

    fn key(&mut self, key: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        write_escaped(&mut self.buf, key);
        self.buf.push(':');
    }

    /// Adds a string field.
    pub fn string(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        write_escaped(&mut self.buf, value);
        self
    }

    /// Adds a float field (JSON-safe: non-finite values become `null`).
    pub fn number(&mut self, key: &str, value: f64) -> &mut Self {
        self.key(key);
        if value.is_finite() {
            let _ = write!(self.buf, "{value}");
        } else {
            self.buf.push_str("null");
            self.dropped += 1;
        }
        self
    }

    /// Adds an unsigned integer field.
    pub fn uint(&mut self, key: &str, value: u64) -> &mut Self {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Adds a boolean field.
    pub fn bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Adds a raw, already-serialized JSON fragment.
    pub fn raw(&mut self, key: &str, json: &str) -> &mut Self {
        self.key(key);
        self.buf.push_str(json);
        self
    }

    /// Closes and returns the object text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }

    /// Closes and returns the object text plus the count of non-finite
    /// values serialized as `null` (see [`ObjectWriter::dropped_values`]).
    pub fn finish_counted(mut self) -> (String, u64) {
        self.buf.push('}');
        (self.buf, self.dropped)
    }
}

fn write_escaped(buf: &mut String, s: &str) {
    buf.push('"');
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(buf, "\\u{:04x}", c as u32);
            }
            c => buf.push(c),
        }
    }
    buf.push('"');
}

/// Parses one JSON document.
///
/// Strict on structure, tolerant on number formats (`f64` semantics).
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".into()),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| format!("invalid number `{text}` at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_escapes_and_orders() {
        let mut w = ObjectWriter::new();
        w.string("name", "a\"b\\c\nd")
            .number("x", 1.5)
            .uint("n", 42)
            .bool("ok", true)
            .number("bad", f64::NAN);
        let s = w.finish();
        assert_eq!(
            s,
            "{\"name\":\"a\\\"b\\\\c\\nd\",\"x\":1.5,\"n\":42,\"ok\":true,\"bad\":null}"
        );
    }

    #[test]
    fn writer_counts_non_finite_values() {
        let mut w = ObjectWriter::new();
        w.number("a", 1.0)
            .number("b", f64::NAN)
            .number("c", f64::INFINITY)
            .number("d", f64::NEG_INFINITY);
        assert_eq!(w.dropped_values(), 3);
        let (s, dropped) = w.finish_counted();
        assert_eq!(dropped, 3);
        assert_eq!(s, "{\"a\":1,\"b\":null,\"c\":null,\"d\":null}");
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let mut w = ObjectWriter::new();
        w.string("strategy", "CAQE").uint("join_results", 1000);
        let v = parse(&w.finish()).unwrap();
        assert_eq!(v["strategy"], "CAQE");
        assert_eq!(v["join_results"], 1000u64);
        assert_eq!(v["missing"], JsonValue::Null);
    }

    #[test]
    fn parse_handles_nesting_and_ws() {
        let v = parse(" { \"a\" : [ 1 , 2.5 , \"x\" , null , true ] } ").unwrap();
        match &v["a"] {
            JsonValue::Array(items) => {
                assert_eq!(items.len(), 5);
                assert_eq!(items[0], 1);
                assert_eq!(items[1], 2.5);
                assert_eq!(items[2], "x");
                assert_eq!(items[3], JsonValue::Null);
                assert_eq!(items[4], JsonValue::Bool(true));
            }
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("123abc").is_err());
        assert!(parse("{} trailing").is_err());
    }

    #[test]
    fn escaped_string_round_trip() {
        let v = parse("\"line\\nbreak \\u0041\"").unwrap();
        assert_eq!(v, "line\nbreak A");
    }
}
