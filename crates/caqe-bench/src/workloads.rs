//! The paper's experimental query workload (§7.1–7.2).
//!
//! Queries "perform join, project and skyline operations … and differ in
//! their skyline dimensions". We draw `|S_Q|` preference subspaces of sizes
//! 2–5 over a 5-dimensional output space (built with DVA-safe mixed mapping
//! functions), and assign priorities per the experiment's policy:
//!
//! * contracts C1/C2 — queries with *more* skyline dimensions get higher
//!   priority;
//! * contracts C3/C4 — queries with *fewer* dimensions get higher priority;
//! * contract C5 — priorities uniform.

use caqe_contract::Contract;
use caqe_core::{QuerySpec, Workload};
use caqe_operators::MappingSet;
use caqe_types::{DimMask, VirtualSeconds};

/// How query priorities relate to skyline dimensionality (§7.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PriorityPolicy {
    /// Higher-dimensional queries get higher priority (C1, C2).
    HighDimsFirst,
    /// Lower-dimensional queries get higher priority (C3, C4).
    LowDimsFirst,
    /// Uniform priorities (C5).
    Uniform,
}

impl PriorityPolicy {
    /// The paper's policy for a Table 2 contract id.
    pub fn for_contract(id: usize) -> PriorityPolicy {
        match id {
            1 | 2 => PriorityPolicy::HighDimsFirst,
            3 | 4 => PriorityPolicy::LowDimsFirst,
            _ => PriorityPolicy::Uniform,
        }
    }
}

/// Tunable contract parameters (`t_C1`, `t_C3`, and the reporting interval
/// `n_{i,j}` of C4/C5), in virtual seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContractParams {
    /// Deadline parameter for C1 and C3.
    pub t_param: VirtualSeconds,
    /// Interval for the cardinality-based contracts C4 and C5.
    pub interval: VirtualSeconds,
}

impl ContractParams {
    /// The paper ties contract tightness to the workload's cost regime
    /// (10 s for correlated, 40 s for independent, 30 min for
    /// anti-correlated at N = 500 K). We generalize: the deadline is a
    /// fraction of a reference total execution time measured by a
    /// calibration run, with the interval at a tenth of the deadline.
    pub fn from_reference(reference_secs: VirtualSeconds, fraction: f64) -> Self {
        let t = (reference_secs * fraction).max(1e-3);
        ContractParams {
            t_param: t,
            interval: t / 10.0,
        }
    }
}

/// The fixed menu of preference subspaces over the 5-dim output space,
/// sizes 2–5, from which workloads of any size up to 16 are drawn. The
/// first eleven form the paper's `|S_Q| = 11` workload.
const PREF_MENU: [&[usize]; 16] = [
    &[0, 1],
    &[1, 2, 3],
    &[0, 1, 2, 3, 4],
    &[2, 3],
    &[0, 2, 4],
    &[1, 2, 3, 4],
    &[3, 4],
    &[0, 1, 2],
    &[0, 1, 3, 4],
    &[1, 4],
    &[2, 3, 4],
    &[0, 4],
    &[0, 2, 3],
    &[0, 1, 2, 4],
    &[1, 3],
    &[1, 2, 4],
];

/// Builds the evaluation workload.
///
/// * `size` — number of queries `|S_Q|` (1–16; the paper uses 1–11);
/// * `input_dims` — attribute count of each base table;
/// * `contract_id` — Table 2 contract (1–5) applied to every query;
/// * `params` — the contract's tunable deadline/interval;
/// * `policy` — priority assignment (see [`PriorityPolicy`]).
///
/// # Panics
/// Panics if `size` is 0 or exceeds the menu.
pub fn paper_workload(
    size: usize,
    input_dims: usize,
    contract_id: usize,
    params: ContractParams,
    policy: PriorityPolicy,
) -> Workload {
    assert!((1..=PREF_MENU.len()).contains(&size), "1 ≤ |S_Q| ≤ 16");
    let out_dims = 5;
    let mapping = MappingSet::mixed(input_dims, input_dims, out_dims);
    let chosen = &PREF_MENU[..size];
    let (min_d, max_d) = chosen.iter().fold((usize::MAX, 0), |(lo, hi), p| {
        (lo.min(p.len()), hi.max(p.len()))
    });

    let queries = chosen
        .iter()
        .map(|dims| {
            let pref = DimMask::from_dims(dims.iter().copied());
            let priority = match policy {
                PriorityPolicy::Uniform => 0.5,
                PriorityPolicy::HighDimsFirst => rank_priority(dims.len(), min_d, max_d, false),
                PriorityPolicy::LowDimsFirst => rank_priority(dims.len(), min_d, max_d, true),
            };
            QuerySpec {
                join_col: 0,
                mapping: mapping.clone(),
                pref,
                priority,
                contract: Contract::table2(contract_id, params.t_param, params.interval),
            }
        })
        .collect();
    Workload::new(queries)
}

/// Maps a dimensionality to a priority in `[0.1, 1.0]`, linear between the
/// workload's min and max dimensionality, inverted when `low_first`.
fn rank_priority(d: usize, min_d: usize, max_d: usize, low_first: bool) -> f64 {
    if max_d == min_d {
        return 0.5;
    }
    let frac = (d - min_d) as f64 / (max_d - min_d) as f64;
    let frac = if low_first { 1.0 - frac } else { frac };
    0.1 + 0.9 * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> ContractParams {
        ContractParams {
            t_param: 10.0,
            interval: 1.0,
        }
    }

    #[test]
    fn workload_size_respected() {
        for size in [1, 4, 11, 16] {
            let w = paper_workload(size, 3, 2, params(), PriorityPolicy::Uniform);
            assert_eq!(w.len(), size);
        }
    }

    #[test]
    fn menu_subspaces_are_valid_and_distinct() {
        let w = paper_workload(16, 3, 1, params(), PriorityPolicy::Uniform);
        let mut seen = std::collections::BTreeSet::new();
        for q in w.queries() {
            assert!((2..=5).contains(&q.pref.len()));
            assert!(seen.insert(q.pref), "duplicate subspace {}", q.pref);
        }
    }

    #[test]
    fn priority_policies_order_by_dimensionality() {
        let hi = paper_workload(11, 3, 1, params(), PriorityPolicy::HighDimsFirst);
        let lo = paper_workload(11, 3, 3, params(), PriorityPolicy::LowDimsFirst);
        for (qh, ql) in hi.queries().iter().zip(lo.queries()) {
            assert!((0.1..=1.0).contains(&qh.priority));
            // Same query, opposite policies: priorities mirror around 0.55.
            assert!((qh.priority + ql.priority - 1.1).abs() < 1e-9);
        }
        // The 5-dim query outranks every 2-dim query under HighDimsFirst.
        let five = hi.queries().iter().find(|q| q.pref.len() == 5).unwrap();
        let two = hi.queries().iter().find(|q| q.pref.len() == 2).unwrap();
        assert!(five.priority > two.priority);
    }

    #[test]
    fn contracts_follow_table2() {
        for id in 1..=5 {
            let w = paper_workload(3, 2, id, params(), PriorityPolicy::for_contract(id));
            assert_eq!(
                w.query(caqe_types::QueryId(0)).contract.label(),
                format!("C{id}")
            );
        }
    }

    #[test]
    fn reference_scaled_params() {
        let p = ContractParams::from_reference(100.0, 0.3);
        assert!((p.t_param - 30.0).abs() < 1e-12);
        assert!((p.interval - 3.0).abs() < 1e-12);
        // Degenerate reference stays positive.
        let tiny = ContractParams::from_reference(0.0, 0.5);
        assert!(tiny.t_param > 0.0);
    }

    #[test]
    #[should_panic]
    fn zero_size_rejected() {
        let _ = paper_workload(0, 2, 1, params(), PriorityPolicy::Uniform);
    }
}
