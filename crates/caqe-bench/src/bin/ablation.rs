//! Ablation study: which of CAQE's ingredients buys what?
//!
//! Runs the Figure 9 workload with individual engine components disabled:
//!
//! * `no-lookahead`  — skip the coarse-level skyline pruning (§5.2);
//! * `no-discard`    — keep look-ahead but never discard dominated
//!   cells/regions during execution (§6);
//! * `no-feedback`   — freeze the Equation 11 weights at the priorities;
//! * `count-driven`  — replace the CSM by ProgXe+'s count-per-cost policy;
//! * `fifo`          — process regions in id order (scheduling off);
//! * `blocking`      — disable progressive emission (report at the end).
//!
//! ```text
//! cargo run --release -p caqe-bench --bin ablation -- [--dist independent]
//!     [--contract 3] [--n <rows>] [--json] [--trace <dir>] [--metrics <dir>]
//!     [--faults <spec>] [--validation reject|quarantine|clamp]
//! ```

use caqe_bench::report::{
    cli_arg, cli_chaos, cli_flag, cli_metrics, cli_parse, cli_threads, cli_trace, render_jsonl,
    render_table,
};
use caqe_bench::{ComparisonRow, ExperimentConfig};
use caqe_core::{run_engine, run_engine_traced, EngineConfig, SchedulingPolicy};
use caqe_data::Distribution;
use caqe_trace::RecordingSink;

fn variants() -> Vec<(&'static str, EngineConfig)> {
    let full = EngineConfig::caqe();
    vec![
        ("CAQE", full),
        (
            "no-lookahead",
            EngineConfig {
                coarse_pruning: false,
                ..full
            },
        ),
        (
            "no-discard",
            EngineConfig {
                dominance_discard: false,
                ..full
            },
        ),
        (
            "no-feedback",
            EngineConfig {
                feedback: false,
                ..full
            },
        ),
        (
            "count-driven",
            EngineConfig {
                policy: SchedulingPolicy::CountDriven,
                feedback: false,
                ..full
            },
        ),
        (
            "fifo",
            EngineConfig {
                policy: SchedulingPolicy::Fifo,
                feedback: false,
                ..full
            },
        ),
        (
            "blocking",
            EngineConfig {
                progressive_emission: false,
                ..full
            },
        ),
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let dist = cli_arg(&args, "--dist")
        .map(|d| match Distribution::parse(&d) {
            Some(dist) => dist,
            None => {
                eprintln!(
                    "bad --dist value `{d}` (expected independent|correlated|anticorrelated)"
                );
                std::process::exit(2);
            }
        })
        .unwrap_or(Distribution::Independent);
    let contract: usize = cli_parse(&args, "--contract", 3);
    let mut cfg = ExperimentConfig::new(dist, contract);
    cfg.parallelism = cli_threads(&args);
    let (faults, validation) = cli_chaos(&args);
    cfg.faults = faults;
    cfg.validation = validation;
    if let Some(n) = cli_arg(&args, "--n") {
        cfg.n = match n.parse() {
            Ok(v) => v,
            Err(e) => {
                eprintln!("bad --n value `{n}`: {e}");
                std::process::exit(2);
            }
        };
    } else if dist == Distribution::Anticorrelated {
        cfg.n = 1200;
    }
    cfg.reference_secs = Some(cfg.reference_seconds());

    let (r, t) = cfg.tables();
    let workload = cfg.workload();
    let exec = cfg.exec();
    let trace_dir = cli_trace(&args);
    let metrics_dir = cli_metrics(&args);

    let rows: Vec<ComparisonRow> = variants()
        .into_iter()
        .map(|(name, engine)| {
            let outcome = if trace_dir.is_some() || metrics_dir.is_some() {
                let mut sink = RecordingSink::new();
                let outcome =
                    run_engine_traced(name, &r, &t, &workload, &exec, &engine, 0, &mut sink);
                let label = name.replace('-', "_");
                if let Some(dir) = &trace_dir {
                    caqe_trace::write_trace(dir, &label, sink.events())
                        .expect("trace export failed");
                }
                if let Some(dir) = &metrics_dir {
                    let collector = caqe_bench::obs::collect(&workload, sink.events(), &outcome);
                    caqe_bench::obs::write_snapshot(dir, &label, &collector)
                        .expect("metrics export failed");
                }
                outcome
            } else {
                run_engine(name, &r, &t, &workload, &exec, &engine, 0)
            };
            ComparisonRow::from_outcome(&outcome, &cfg)
        })
        .collect();

    if cli_flag(&args, "--json") {
        println!("{}", render_jsonl(&rows));
    } else {
        print!(
            "{}",
            render_table(
                &format!(
                    "Ablation ({}, contract C{contract}, |S_Q|={})",
                    dist.label(),
                    cfg.workload_size
                ),
                &rows
            )
        );
        let full = rows.first().expect("CAQE row");
        println!("\n-- deltas vs full CAQE --");
        for row in &rows[1..] {
            println!(
                "  {:<13} satisfaction {:+.3}  joins x{:.2}  comparisons x{:.2}  time x{:.2}",
                row.strategy,
                row.avg_satisfaction - full.avg_satisfaction,
                row.join_results as f64 / full.join_results.max(1) as f64,
                row.dom_comparisons as f64 / full.dom_comparisons.max(1) as f64,
                row.virtual_seconds / full.virtual_seconds.max(1e-9),
            );
        }
    }
}
