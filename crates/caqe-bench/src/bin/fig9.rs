//! Figure 9: average contract satisfaction of CAQE, S-JFSL, JFSL, ProgXe+
//! and SSMJ under contracts C1–C5, per data distribution.
//!
//! ```text
//! cargo run --release -p caqe-bench --bin fig9 -- [--dist correlated|independent|anticorrelated]
//!                                                 [--n <rows>] [--queries <k>] [--json]
//!                                                 [--trace <dir>] [--metrics <dir>]
//!                                                 [--faults <spec>]
//!                                                 [--validation reject|quarantine|clamp]
//! ```
//!
//! Without `--dist`, all three panels (9.a correlated, 9.b independent,
//! 9.c anti-correlated) are produced. With `--trace`, every run exports
//! its deterministic trace into the directory (see `trace_report`); with
//! `--metrics`, its metrics snapshot (see `obs_report`).

use caqe_bench::report::{
    cli_arg, cli_chaos, cli_flag, cli_metrics, cli_threads, cli_trace, render_jsonl, render_table,
};
use caqe_bench::{run_comparison_observed, ComparisonRow, ExperimentConfig};
use caqe_data::Distribution;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let dists: Vec<Distribution> = match cli_arg(&args, "--dist") {
        Some(d) => vec![Distribution::parse(&d).expect("unknown distribution")],
        None => Distribution::ALL.to_vec(),
    };
    let json = cli_flag(&args, "--json");
    let trace_dir = cli_trace(&args);
    let metrics_dir = cli_metrics(&args);
    let (faults, validation) = cli_chaos(&args);

    for dist in dists {
        let panel = match dist {
            Distribution::Correlated => "Figure 9.a (correlated)",
            Distribution::Independent => "Figure 9.b (independent)",
            Distribution::Anticorrelated => "Figure 9.c (anti-correlated)",
        };
        let mut rows: Vec<ComparisonRow> = Vec::new();
        let mut reference: Option<f64> = None;
        for contract in 1..=5 {
            let mut cfg = ExperimentConfig::new(dist, contract);
            cfg.parallelism = cli_threads(&args);
            cfg.faults = faults;
            cfg.validation = validation;
            if let Some(n) = cli_arg(&args, "--n") {
                cfg.n = match n.parse() {
                    Ok(v) => v,
                    Err(e) => {
                        eprintln!("bad --n value `{n}`: {e}");
                        std::process::exit(2);
                    }
                };
            } else if dist == Distribution::Anticorrelated {
                // The skyline worst case: keep the default panel tractable.
                cfg.n = 1200;
            }
            if let Some(k) = cli_arg(&args, "--queries") {
                cfg.workload_size = match k.parse() {
                    Ok(v) => v,
                    Err(e) => {
                        eprintln!("bad --queries value `{k}`: {e}");
                        std::process::exit(2);
                    }
                };
            }
            // One calibration probe per panel, shared across contracts.
            let r = *reference.get_or_insert_with(|| cfg.reference_seconds());
            cfg.reference_secs = Some(r);
            rows.extend(run_comparison_observed(
                &cfg,
                trace_dir.as_deref(),
                metrics_dir.as_deref(),
            ));
        }
        if json {
            println!("{}", render_jsonl(&rows));
        } else {
            print!("{}", render_table(panel, &rows));
            summarize(&rows);
        }
    }
}

/// Prints the per-contract satisfaction ranking — the bar heights of Fig. 9.
fn summarize(rows: &[ComparisonRow]) {
    for contract in ["C1", "C2", "C3", "C4", "C5"] {
        let mut per: Vec<(&str, f64)> = rows
            .iter()
            .filter(|r| r.contract == contract)
            .map(|r| (r.strategy.as_str(), r.avg_satisfaction))
            .collect();
        per.sort_by(|a, b| b.1.total_cmp(&a.1));
        let ranked: Vec<String> = per.iter().map(|(s, v)| format!("{s}={v:.3}")).collect();
        println!("  {contract}: {}", ranked.join("  "));
    }
    println!();
}
