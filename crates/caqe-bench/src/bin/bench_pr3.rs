//! Single-thread kernel speedup of the flat-layout migration (DESIGN.md
//! §12), recorded in `BENCH_PR3.json`.
//!
//! Replays the kernel work of the fig9-style BENCH_PR2 workload (same
//! tables: n=2500 per side, seed 0xBE11C; same eight queries) through both
//! implementations of every migrated hot path — join + projection, BNL and
//! SFS skylines, and the streaming skyline insert — once with the seed-era
//! `Vec<Vec<f64>>`/`HashMap` kernels ([`caqe_bench::legacy`]) and once with
//! the `PointStore`/`DomKernel` kernels that replaced them. Both paths are
//! verified to perform the *identical* comparison sequence (same `Stats`,
//! same results) before any timing is reported, so `speedup` prices the
//! data layout and kernel specialization alone — hence
//! `"measures": "kernel"`, as opposed to BENCH_PR2's threading ratio.
//!
//! ```text
//! cargo run --release -p caqe-bench --bin bench_pr3 -- [--n <rows>]
//!     [--cells <per-table>] [--reps <r>] [--out <path>]
//! ```

use caqe_bench::json::ObjectWriter;
use caqe_bench::legacy::{
    legacy_hash_join_project, legacy_skyline_bnl, legacy_skyline_sfs, LegacyIncrementalSkyline,
};
use caqe_bench::report::{cli_arg, cli_parse};
use caqe_contract::Contract;
use caqe_core::{QuerySpec, Workload};
use caqe_data::{Distribution, Table, TableGenerator};
use caqe_operators::{
    hash_join_project_store, skyline_bnl_store, skyline_sfs_store, IncrementalSkyline, JoinSpec,
    MappingFn, MappingSet,
};
use caqe_types::{DimMask, DomKernel, SimClock, Stats};
use std::num::NonZeroUsize;
use std::time::Instant;

/// Same four mapping variants as BENCH_PR2's `par_speedup` workload.
fn mapping_variant(v: usize) -> MappingSet {
    let fns = (0..4)
        .map(|j| {
            let mut wr = vec![0.0; 2];
            let mut wt = vec![0.0; 2];
            wr[j % 2] = 1.0 + 0.05 * v as f64;
            wt[(j + v) % 2] = 1.0 + 0.1 * j as f64;
            MappingFn::new(wr, wt, 0.0)
        })
        .collect();
    MappingSet::new(fns)
}

/// The eight-query BENCH_PR2 workload: four mapping variants × two
/// preference subspaces, alternating join columns.
fn workload() -> Workload {
    let mut queries = Vec::new();
    for v in 0..4 {
        let mapping = mapping_variant(v);
        for (pref, priority) in [
            (DimMask::from_dims([0, 1]), 0.8),
            (DimMask::from_dims([2, 3]), 0.4),
        ] {
            queries.push(QuerySpec {
                join_col: v % 2,
                mapping: mapping.clone(),
                pref,
                priority,
                contract: Contract::LogDecay,
            });
        }
    }
    Workload::new(queries)
}

/// One query's kernel replay result: everything both paths must agree on.
#[derive(PartialEq)]
struct Replay {
    pairs: Vec<(u64, u64)>,
    bnl: Vec<usize>,
    sfs: Vec<usize>,
    incremental_tags: Vec<u64>,
    stats: Stats,
    ticks: u64,
}

/// Seed-era kernels: per-tuple `Vec` allocation, `relate_in`, `HashMap`.
fn replay_legacy(r: &Table, t: &Table, spec: &QuerySpec) -> Replay {
    let mut clock = SimClock::default();
    let mut stats = Stats::new();
    let join = legacy_hash_join_project(
        r.records(),
        t.records(),
        JoinSpec::on_column(spec.join_col),
        &spec.mapping,
        &mut clock,
        &mut stats,
    );
    let points: Vec<Vec<f64>> = join.iter().map(|o| o.vals.clone()).collect();
    let bnl = legacy_skyline_bnl(&points, spec.pref, &mut clock, &mut stats);
    let sfs = legacy_skyline_sfs(&points, spec.pref, &mut clock, &mut stats);
    let mut sky = LegacyIncrementalSkyline::new(spec.pref);
    for (i, p) in points.iter().enumerate() {
        sky.insert(i as u64, p, &mut clock, &mut stats);
    }
    Replay {
        pairs: join.iter().map(|o| (o.rid, o.tid)).collect(),
        bnl,
        sfs,
        incremental_tags: sky.tags().collect(),
        stats,
        ticks: clock.ticks(),
    }
}

/// Migrated kernels: flat `PointStore`, specialized `DomKernel`s.
fn replay_flat(r: &Table, t: &Table, spec: &QuerySpec) -> Replay {
    let mut clock = SimClock::default();
    let mut stats = Stats::new();
    let join = hash_join_project_store(
        r.records(),
        t.records(),
        JoinSpec::on_column(spec.join_col),
        &spec.mapping,
        &mut clock,
        &mut stats,
    );
    let kernel = DomKernel::new(spec.pref, join.store.stride());
    let bnl = skyline_bnl_store(&join.store, &kernel, &mut clock, &mut stats);
    let sfs = skyline_sfs_store(&join.store, &kernel, &mut clock, &mut stats);
    let mut sky = IncrementalSkyline::new(spec.pref);
    for i in 0..join.len() {
        sky.insert(i as u64, join.store.at(i), &mut clock, &mut stats);
    }
    Replay {
        pairs: join.pairs,
        bnl,
        sfs,
        incremental_tags: sky.tags().collect(),
        stats,
        ticks: clock.ticks(),
    }
}

/// Best-of-`reps` wall seconds for replaying every query through `f`.
fn measure(
    r: &Table,
    t: &Table,
    w: &Workload,
    reps: usize,
    f: impl Fn(&Table, &Table, &QuerySpec) -> Replay,
) -> (f64, Vec<Replay>) {
    let mut best = f64::INFINITY;
    let mut replays = None;
    for _ in 0..reps {
        let start = Instant::now();
        let out: Vec<Replay> = w.queries().iter().map(|q| f(r, t, q)).collect();
        best = best.min(start.elapsed().as_secs_f64());
        replays = Some(out);
    }
    (best, replays.expect("reps >= 1"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: usize = cli_parse(&args, "--n", 2500);
    let cells: usize = cli_parse(&args, "--cells", 22);
    let reps: usize = cli_parse(&args, "--reps", 3);
    let out_path = cli_arg(&args, "--out").unwrap_or_else(|| "BENCH_PR3.json".to_string());
    if cli_arg(&args, "--metrics").is_some() {
        eprintln!(
            "note: bench_pr3 replays kernels outside the engine; no trace events, \
             so --metrics writes nothing"
        );
    }

    let gen = TableGenerator::new(n, 2, Distribution::Independent)
        .with_selectivities(&[0.02, 0.03])
        .with_seed(0xBE11C);
    let (r, t) = (gen.generate("R"), gen.generate("T"));
    let w = workload();

    let (legacy_secs, legacy_out) = measure(&r, &t, &w, reps, replay_legacy);
    let (flat_secs, flat_out) = measure(&r, &t, &w, reps, replay_flat);

    // The migration contract: same comparisons, same counts, same results —
    // only the layout changed. Verified before any number is reported.
    let mut dom_comparisons = 0u64;
    let mut join_results = 0u64;
    for (q, (a, b)) in legacy_out.iter().zip(&flat_out).enumerate() {
        assert_eq!(a.pairs, b.pairs, "q{q}: join output diverged");
        assert_eq!(a.bnl, b.bnl, "q{q}: BNL skyline diverged");
        assert_eq!(a.sfs, b.sfs, "q{q}: SFS skyline diverged");
        assert_eq!(
            a.incremental_tags, b.incremental_tags,
            "q{q}: incremental skyline diverged"
        );
        // The legacy kernels predate the dispatch diagnostics, so only the
        // charged observables are compared; the flat arm must have taken at
        // least one dispatch decision for the diagnostics to mean anything.
        assert_eq!(
            a.stats.observable(),
            b.stats.observable(),
            "q{q}: stats diverged"
        );
        assert!(
            b.stats.block_kernel_ops + b.stats.scalar_kernel_ops > 0,
            "q{q}: flat arm recorded no kernel dispatches"
        );
        assert_eq!(a.ticks, b.ticks, "q{q}: virtual clock diverged");
        dom_comparisons += a.stats.dom_comparisons;
        join_results += a.stats.join_results;
    }

    let cores = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    let speedup = legacy_secs / flat_secs;
    let mut obj = ObjectWriter::new();
    obj.string("bench", "bench_pr3")
        .uint("n", n as u64)
        .uint("cells_per_table", cells as u64)
        .uint("queries", w.len() as u64)
        .uint("threads", 1)
        .uint("host_cores", cores as u64)
        .uint("reps", reps as u64)
        .string("measures", "kernel")
        .number("legacy_wall_seconds", legacy_secs)
        .number("flat_wall_seconds", flat_secs)
        .number("speedup", speedup)
        .uint("join_results", join_results)
        .uint("dom_comparisons", dom_comparisons)
        .bool("counts_identical", true);
    let json = obj.finish();
    std::fs::write(&out_path, format!("{json}\n")).expect("write bench json");
    println!(
        "kernel replay, n={n}, {} queries, single thread: legacy {legacy_secs:.3}s, \
         flat {flat_secs:.3}s -> {speedup:.2}x ({dom_comparisons} dom cmps, \
         {join_results} join results, counts identical) ({out_path})",
        w.len()
    );
}
